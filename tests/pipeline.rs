//! End-to-end pipeline integration: generate → label → train → evaluate →
//! deploy, plus model persistence round-trips across process boundaries
//! (simulated through the text format).

use neuro::{load_params, save_params, NeuroSelectConfig};
use neuroselect::cnf::{verify_model, Cnf};
use neuroselect::sat_gen::{competition_batch, DatasetConfig};
use neuroselect::sat_solver::{check_proof, Checkpoint, Solver};
use neuroselect::{
    evaluate, label_batch, train, Budget, Classifier, LabelingConfig, NeuroSelectClassifier,
    NeuroSelectSolver, SolveResult, TrainConfig,
};

/// Certifies a pipeline verdict against the formula it came from: SAT
/// models are replayed, UNSAT is re-derived with proof logging and the
/// DRAT proof checked (pipeline instances are all tiny).
fn certify(f: &Cnf, result: &SolveResult, name: &str) {
    match result {
        SolveResult::Sat(model) => {
            assert!(verify_model(f, model).is_ok(), "{name}: invalid model");
        }
        SolveResult::Unsat => {
            let mut s = Solver::from_cnf(f);
            s.enable_proof();
            assert!(s.solve().is_unsat(), "{name}: UNSAT not reproducible");
            s.audit_invariants(Checkpoint::PostPropagate)
                .expect("invariant audit");
            let proof = s.take_proof().expect("proof enabled");
            assert_eq!(check_proof(f, &proof), Ok(()), "{name}: proof rejected");
        }
        SolveResult::Unknown => {}
    }
}

fn tiny_model() -> NeuroSelectConfig {
    NeuroSelectConfig {
        hidden_dim: 8,
        hgt_layers: 1,
        mpnn_per_hgt: 2,
        use_attention: true,
        seed: 9,
    }
}

#[test]
fn end_to_end_label_train_evaluate_deploy() {
    let data_cfg = DatasetConfig::tiny();
    let label_cfg = LabelingConfig::default();
    let train_set = label_batch(&competition_batch("train", &data_cfg, 1), &label_cfg);
    let test_set = label_batch(&competition_batch("test", &data_cfg, 2), &label_cfg);
    assert_eq!(train_set.len(), 6);

    let mut classifier = NeuroSelectClassifier::new(tiny_model(), 5e-3);
    let history = train(
        &mut classifier,
        &train_set,
        &TrainConfig {
            epochs: 5,
            seed: 1,
            balance: true,
        },
    );
    assert_eq!(history.len(), 5);
    assert!(history.iter().all(|l| l.is_finite()));

    let metrics = evaluate(&classifier, &test_set);
    assert_eq!(metrics.total(), test_set.len());

    let solver = NeuroSelectSolver::new(classifier);
    for inst in &test_set {
        let out = solver.solve(&inst.instance.cnf, Budget::propagations(50_000_000));
        assert!(!out.result.is_unknown(), "{}", inst.instance.name);
        certify(&inst.instance.cnf, &out.result, &inst.instance.name);
    }
}

#[test]
fn trained_model_survives_serialization() {
    let data_cfg = DatasetConfig::tiny();
    let label_cfg = LabelingConfig::default();
    let data = label_batch(&competition_batch("s", &data_cfg, 5), &label_cfg);

    let mut original = NeuroSelectClassifier::new(tiny_model(), 5e-3);
    train(
        &mut original,
        &data,
        &TrainConfig {
            epochs: 3,
            seed: 2,
            balance: true,
        },
    );

    let mut buffer = Vec::new();
    save_params(&mut buffer, original.store()).expect("save");

    let mut restored = NeuroSelectClassifier::new(tiny_model(), 5e-3);
    load_params(buffer.as_slice(), restored.store_mut()).expect("load");

    // predictions must be bit-identical
    for inst in &data {
        let g = original.prepare(&inst.instance.cnf);
        assert_eq!(
            original.predict(&g),
            restored.predict(&g),
            "{}",
            inst.instance.name
        );
    }
}

#[test]
fn selection_respects_label_when_overfit() {
    // Overfit the classifier on one batch; on the training instances the
    // selected policy must then match the label.
    let data_cfg = DatasetConfig::tiny();
    let label_cfg = LabelingConfig::default();
    let data = label_batch(&competition_batch("o", &data_cfg, 9), &label_cfg);
    let mut classifier = NeuroSelectClassifier::new(tiny_model(), 1e-2);
    train(
        &mut classifier,
        &data,
        &TrainConfig {
            epochs: 80,
            seed: 3,
            balance: true,
        },
    );

    // only check when training actually separated the data
    let metrics = evaluate(&classifier, &data);
    if metrics.accuracy() == 1.0 {
        let solver = NeuroSelectSolver::new(classifier);
        for inst in &data {
            let (policy, _, _) = solver.select_policy(&inst.instance.cnf);
            assert_eq!(policy.label(), inst.label(), "{}", inst.instance.name);
        }
    }
}

#[test]
fn inference_cost_is_recorded() {
    let data_cfg = DatasetConfig::tiny();
    let f = competition_batch("i", &data_cfg, 3).instances[0]
        .cnf
        .clone();
    let solver = NeuroSelectSolver::new(NeuroSelectClassifier::new(tiny_model(), 1e-3));
    let out = solver.solve(&f, Budget::propagations(50_000_000));
    // inference happened (graph build + forward pass take nonzero time)
    assert!(out.inference_time.as_nanos() > 0);
    assert!(out.total_time() >= out.solve_time);
    certify(&f, &out.result, "inference-cost instance");
}
