//! Chaos suite for the NeuroSelect pipeline's degradation ladder
//! (`--features faults`): model-weight I/O faults, inference panics, and
//! inference stalls must step the policy pick down the
//! Model → Heuristic → Default ladder — recorded in telemetry — while
//! the *solve* still returns a verified-correct verdict. A broken model
//! may cost policy quality, never correctness.

#![cfg(feature = "faults")]

use neuroselect::{
    neuro, Budget, NeuroSelectClassifier, NeuroSelectSolver, PolicyKind, PolicySource,
};
use std::time::{Duration, Instant};

fn tiny_solver() -> NeuroSelectSolver {
    NeuroSelectSolver::new(NeuroSelectClassifier::new(
        neuro::NeuroSelectConfig {
            hidden_dim: 8,
            hgt_layers: 1,
            mpnn_per_hgt: 1,
            use_attention: true,
            seed: 3,
        },
        0.01,
    ))
}

/// A degraded pick must still produce a correct, verified solve.
fn assert_solves_correctly(s: &NeuroSelectSolver, seed: u64) {
    let f = neuroselect::sat_gen::phase_transition_3sat(25, seed);
    let out = s.solve_recorded(&f, Budget::unlimited(), "chaos", None);
    assert!(
        !out.result.is_unknown(),
        "seed {seed}: must reach a verdict"
    );
    if let Some(model) = out.result.model() {
        neuroselect::cnf::verify_model(&f, model).expect("model verifies");
    }
}

#[test]
fn model_io_fault_degrades_load_then_recovery_restores_the_model() {
    let dir = std::env::temp_dir().join("neuroselect-chaos-pipeline");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("weights.params");
    let mut s = tiny_solver();
    let mut buf = Vec::new();
    neuro::save_params(&mut buf, s.classifier().store()).expect("serialize");
    std::fs::write(&path, buf).expect("write weights");

    let scope = faults::install("model-io(after=8)".parse().expect("plan"));
    assert!(
        s.load_weights(&path).is_err(),
        "an I/O fault mid-read must surface as a load error"
    );
    assert!(scope.fired(faults::site::MODEL_IO) > 0, "fault must fire");
    let fault = s.model_fault().expect("load failure is sticky");
    assert_eq!(fault.kind(), "model-load-error");

    // Degraded but alive: every solve under the sticky fault uses the
    // heuristic rung and still reaches a verified verdict.
    for seed in [1u64, 2, 3] {
        let f = neuroselect::sat_gen::phase_transition_3sat(25, seed);
        let out = s.solve_recorded(&f, Budget::unlimited(), "model-io", None);
        assert_eq!(out.source, PolicySource::Heuristic);
        assert_eq!(out.record.degradations.len(), 1);
        assert_eq!(out.record.degradations[0].kind, "model-load-error");
        assert!(!out.result.is_unknown());
    }

    // With the fault plan gone the same file loads fine and clears the
    // sticky fault — degraded mode is recoverable, not an end state.
    drop(scope);
    s.load_weights(&path).expect("clean reload");
    assert!(s.model_fault().is_none());
    let f = neuroselect::sat_gen::phase_transition_3sat(25, 1);
    assert_eq!(s.decide_policy(&f).0.source, PolicySource::Model);
    std::fs::remove_file(&path).ok();
}

#[test]
fn inference_panic_falls_back_to_the_heuristic() {
    let scope = faults::install("inference-panic(times=10)".parse().expect("plan"));
    let s = tiny_solver();
    for seed in [1u64, 2, 3] {
        let f = neuroselect::sat_gen::phase_transition_3sat(25, seed);
        let (decision, _) = s.decide_policy(&f);
        assert_eq!(decision.source, PolicySource::Heuristic);
        assert_eq!(decision.degradations.len(), 1);
        assert_eq!(decision.degradations[0].kind(), "inference-panic");
        assert_solves_correctly(&s, seed);
    }
    assert!(scope.fired(faults::site::INFERENCE_PANIC) >= 3);
}

#[test]
fn inference_stall_past_the_deadline_discards_the_answer() {
    let scope = faults::install("inference-stall(ms=80,times=10)".parse().expect("plan"));
    let mut s = tiny_solver();
    s.inference_deadline = Some(Duration::from_millis(20));
    for seed in [1u64, 2, 3] {
        let f = neuroselect::sat_gen::phase_transition_3sat(25, seed);
        let start = Instant::now();
        let (decision, _) = s.decide_policy(&f);
        // The stalled inference completes (cooperative deadline, not
        // preemption) and its answer is discarded; the pick must not
        // take meaningfully longer than the stall itself.
        assert!(start.elapsed() < Duration::from_secs(5));
        assert_eq!(decision.source, PolicySource::Heuristic);
        assert_eq!(decision.degradations[0].kind(), "inference-deadline");
        let detail = decision.degradations[0].detail();
        assert!(detail.contains("deadline"), "telemetry detail: {detail}");
    }
    assert!(scope.fired(faults::site::INFERENCE_STALL) >= 3);
}

#[test]
fn heuristic_panic_lands_on_the_default_policy() {
    // Double fault: the model is out (sticky load failure) *and* the
    // heuristic panics — the bottom rung is the built-in default policy,
    // which cannot fail.
    let scope = faults::install("heuristic-panic(times=10)".parse().expect("plan"));
    let mut s = tiny_solver();
    let _ = s.load_weights(std::path::Path::new("/nonexistent/weights.params"));
    assert!(s.model_fault().is_some());
    for seed in [1u64, 2, 3] {
        let f = neuroselect::sat_gen::phase_transition_3sat(25, seed);
        let (decision, _) = s.decide_policy(&f);
        assert_eq!(decision.source, PolicySource::Default);
        assert_eq!(decision.policy, PolicyKind::Default);
        let kinds: Vec<&str> = decision.degradations.iter().map(|d| d.kind()).collect();
        assert_eq!(kinds, ["model-load-error", "heuristic-panic"]);
        assert_solves_correctly(&s, seed);
    }
    assert!(scope.fired(faults::site::HEURISTIC_PANIC) >= 3);
}
