//! Differential testing of the clause-sharing portfolio against the
//! sequential solver: on every generator family the portfolio verdict at
//! 1, 2, 4, and 8 workers must equal the sequential verdict, every SAT
//! model must verify, and every UNSAT answer must carry a DRAT log that
//! replays through the RUP checker.
//!
//! The worker counts are overridable via the `PORTFOLIO_WORKERS`
//! environment variable (comma-separated, e.g. `PORTFOLIO_WORKERS=2,8`),
//! which is how CI exercises specific widths without recompiling.

use neuroselect::cnf::{verify_model, Cnf};
use neuroselect::sat_gen::{
    coloring_cnf, parity_chain_unsat, phase_transition_3sat, pigeonhole, random_xorsat,
    tseitin_expander_unsat, Graph,
};
use neuroselect::sat_solver::{
    check_proof, solve_portfolio, solve_with_policy, PortfolioConfig, SolverConfig,
};
use neuroselect::{Budget, PolicyKind};
use telemetry::json::ToJson;

/// Worker counts to race, from `PORTFOLIO_WORKERS` or the default sweep.
fn worker_counts() -> Vec<usize> {
    let spec = std::env::var("PORTFOLIO_WORKERS").unwrap_or_else(|_| String::from("1,2,4,8"));
    let counts: Vec<usize> = spec
        .split(',')
        .filter_map(|tok| tok.trim().parse().ok())
        .filter(|&n| n >= 1)
        .collect();
    assert!(
        !counts.is_empty(),
        "PORTFOLIO_WORKERS parsed to nothing: {spec:?}"
    );
    counts
}

/// The instances differentially tested at every worker count. Kept small:
/// each runs once per worker count, and CI machines may expose one core.
fn differential_suite() -> Vec<(&'static str, Cnf)> {
    vec![
        ("3sat-40-sat", phase_transition_3sat(40, 3)),
        ("3sat-50", phase_transition_3sat(50, 11)),
        ("xorsat-24", random_xorsat(24, 40, 5)),
        ("php-5-4", pigeonhole(5, 4)),
        ("parity-60", parity_chain_unsat(60)),
        ("tseitin-5", tseitin_expander_unsat(5, 2)),
        ("color-14", coloring_cnf(&Graph::random(14, 28, 4), 3)),
    ]
}

/// Solves `f` with a proof-collecting, self-verifying portfolio.
fn portfolio_config(workers: usize, name: &str) -> PortfolioConfig {
    let mut cfg = PortfolioConfig::new(workers);
    cfg.proof = true;
    cfg.verify = true;
    cfg.instance_id = format!("diff-{name}");
    cfg
}

#[test]
fn portfolio_verdicts_match_sequential_at_every_width() {
    let widths = worker_counts();
    for (name, f) in differential_suite() {
        let (seq, _) = solve_with_policy(&f, PolicyKind::Default, Budget::unlimited());
        assert!(!seq.is_unknown(), "{name}: sequential must be decisive");
        for &workers in &widths {
            let out = solve_portfolio(&f, &portfolio_config(workers, name))
                .unwrap_or_else(|e| panic!("{name} x{workers}: portfolio failed: {e}"));
            assert_eq!(
                out.result.is_sat(),
                seq.is_sat(),
                "{name} x{workers}: portfolio verdict diverged from sequential"
            );
            assert_eq!(out.workers.len(), workers);
            match &out.result {
                r if r.is_sat() => {
                    let model = r.model().expect("SAT carries a model");
                    assert!(
                        verify_model(&f, model).is_ok(),
                        "{name} x{workers}: invalid model"
                    );
                }
                r if r.is_unsat() => {
                    // solve_portfolio already replayed the shared log
                    // (verify=true); re-check here so the differential
                    // harness stands on its own.
                    let proof = out.proof.as_ref().expect("UNSAT carries a proof");
                    assert!(proof.claims_unsat(), "{name} x{workers}: no empty clause");
                    assert_eq!(
                        check_proof(&f, proof),
                        Ok(()),
                        "{name} x{workers}: shared DRAT log failed RUP replay"
                    );
                }
                _ => panic!("{name} x{workers}: portfolio returned UNKNOWN"),
            }
        }
    }
}

#[test]
fn single_worker_portfolio_is_bitwise_sequential() {
    // The determinism anchor: `--portfolio=1` must be the sequential
    // solver, not merely agree with it. Worker 0 runs the base config
    // unchanged and no exchange or stop flag is installed, so the whole
    // statistics block — propagations, conflicts, restarts, everything —
    // must byte-match the sequential run's JSON rendering.
    for (name, f) in differential_suite() {
        let (seq, seq_stats) = solve_with_policy(&f, PolicyKind::Default, Budget::unlimited());
        let mut cfg = PortfolioConfig::new(1);
        cfg.base = SolverConfig::with_policy(PolicyKind::Default);
        cfg.policy_mix = vec![PolicyKind::Default];
        cfg.instance_id = format!("det-{name}");
        let out = solve_portfolio(&f, &cfg).expect("single-worker portfolio");
        assert_eq!(out.result.is_sat(), seq.is_sat(), "{name}: verdict");
        assert_eq!(out.winner, Some(0));
        assert_eq!(
            out.workers[0].stats.to_json().to_string(),
            seq_stats.to_json().to_string(),
            "{name}: single-worker portfolio stats diverged from sequential"
        );
        assert_eq!(out.pool.exported, 0, "{name}: nothing may be exported");
        assert_eq!(out.pool.imported, 0, "{name}: nothing may be imported");
    }
}

#[test]
fn portfolio_with_inprocessing_matches_sequential_and_replays_proofs() {
    // Portfolio safety of the inprocessing engine: every worker runs
    // in-search rounds (interval 1 maximizes them) while sharing clauses
    // and a common append-only proof log. Verdicts must still match the
    // sequential solver, SAT models must verify against the original
    // formula (BVE reconstruction per worker), and the shared DRAT log —
    // which records inprocessing additions but no deletions — must
    // replay on UNSAT.
    let widths = worker_counts();
    for (name, f) in differential_suite() {
        let (seq, _) = solve_with_policy(&f, PolicyKind::Default, Budget::unlimited());
        for &workers in &widths {
            let mut cfg = portfolio_config(workers, &format!("inproc-{name}"));
            cfg.base.inprocess = true;
            cfg.base.inprocess_interval = 1;
            let out = solve_portfolio(&f, &cfg)
                .unwrap_or_else(|e| panic!("{name} x{workers}: inprocessing portfolio: {e}"));
            assert_eq!(
                out.result.is_sat(),
                seq.is_sat(),
                "{name} x{workers}: inprocessing portfolio verdict diverged"
            );
            match &out.result {
                r if r.is_sat() => {
                    let model = r.model().expect("SAT carries a model");
                    assert!(
                        verify_model(&f, model).is_ok(),
                        "{name} x{workers}: invalid model under inprocessing"
                    );
                }
                r if r.is_unsat() => {
                    let proof = out.proof.as_ref().expect("UNSAT carries a proof");
                    assert!(proof.claims_unsat(), "{name} x{workers}: no empty clause");
                    assert_eq!(
                        check_proof(&f, proof),
                        Ok(()),
                        "{name} x{workers}: shared DRAT log failed under inprocessing"
                    );
                }
                _ => panic!("{name} x{workers}: inprocessing portfolio returned UNKNOWN"),
            }
        }
    }
}

#[test]
fn portfolio_respects_policy_mix_and_reports_every_worker() {
    let f = phase_transition_3sat(40, 9);
    let mut cfg = portfolio_config(4, "mix");
    cfg.policy_mix = vec![
        PolicyKind::PropFreq,
        PolicyKind::Default,
        PolicyKind::PropFreq,
        PolicyKind::Default,
    ];
    let out = solve_portfolio(&f, &cfg).expect("portfolio with explicit mix");
    assert_eq!(out.workers.len(), 4);
    for (i, report) in out.workers.iter().enumerate() {
        assert_eq!(report.worker, i);
        assert_eq!(report.policy, cfg.policy_mix[i].to_string());
    }
    assert!(out.winner.is_some(), "someone must win an unlimited race");
}

#[test]
fn portfolio_under_budget_solves_at_least_what_either_policy_does() {
    // The acceptance bar from the issue, scaled to test size: on a mixed
    // batch under a fixed conflict budget, a 4-worker portfolio must solve
    // at least as many instances as the better single policy.
    let batch: Vec<Cnf> = vec![
        phase_transition_3sat(60, 21),
        phase_transition_3sat(60, 22),
        phase_transition_3sat(70, 23),
        pigeonhole(6, 5),
        random_xorsat(28, 48, 7),
        tseitin_expander_unsat(6, 3),
    ];
    let budget = Budget::conflicts(6_000);
    let solved_by = |policy: PolicyKind| -> usize {
        batch
            .iter()
            .filter(|f| !solve_with_policy(f, policy, budget).0.is_unknown())
            .count()
    };
    let best_single = solved_by(PolicyKind::Default).max(solved_by(PolicyKind::PropFreq));
    let portfolio_solved = batch
        .iter()
        .enumerate()
        .filter(|(i, f)| {
            let mut cfg = portfolio_config(4, &format!("budget-{i}"));
            cfg.budget = budget;
            !solve_portfolio(f, &cfg)
                .expect("portfolio run")
                .result
                .is_unknown()
        })
        .count();
    assert!(
        portfolio_solved >= best_single,
        "portfolio-4 solved {portfolio_solved} but the better single policy solved {best_single}"
    );
}

#[test]
fn portfolio_budget_exhaustion_returns_unknown_cleanly() {
    // A budget every worker exhausts: the race must come back UNKNOWN with
    // no winner rather than panic, deadlock, or fabricate a verdict.
    let f = phase_transition_3sat(120, 1);
    let mut cfg = portfolio_config(2, "starved");
    cfg.budget = Budget::conflicts(5);
    let out = solve_portfolio(&f, &cfg).expect("starved portfolio");
    assert!(out.result.is_unknown());
    assert_eq!(out.winner, None);
    assert_eq!(out.workers.len(), 2);
}
