//! Cross-crate integration: every generator family solves correctly under
//! both deletion policies, with models verified, expected verdicts checked,
//! and UNSAT results certified by DRAT proofs where cheap enough.

use neuroselect::cnf::{verify_model, Cnf};
use neuroselect::sat_gen::{
    coloring_cnf, competition_batch, equivalence_miter_cnf, parity_chain_unsat,
    phase_transition_3sat, pigeonhole, tseitin_expander_unsat, DatasetConfig, Family, Graph,
};
use neuroselect::sat_solver::{check_proof, Checkpoint, PolicyKind, Solver, SolverConfig};
use neuroselect::{Budget, SolveResult};

/// UNSAT verdicts on instances up to this many variables are replayed
/// through the RUP checker; above it the forward check gets slow.
const PROOF_CHECK_MAX_VARS: u32 = 256;

/// Solves with the full certification pipeline: final-state invariant
/// audit, model verification on SAT, and DRAT replay on small UNSAT.
fn solve_checked(f: &Cnf, policy: PolicyKind) -> SolveResult {
    let mut s = Solver::new(f, SolverConfig::with_policy(policy));
    s.enable_proof();
    let r = s.solve();
    s.audit_invariants(Checkpoint::PostPropagate)
        .expect("invariant audit after solving");
    match &r {
        SolveResult::Sat(model) => assert!(verify_model(f, model).is_ok(), "invalid model"),
        SolveResult::Unsat if f.num_vars() <= PROOF_CHECK_MAX_VARS => {
            let proof = s.take_proof().expect("proof enabled");
            assert_eq!(check_proof(f, &proof), Ok(()));
        }
        _ => {}
    }
    r
}

fn solve_both_policies(f: &Cnf) -> (SolveResult, SolveResult) {
    (
        solve_checked(f, PolicyKind::Default),
        solve_checked(f, PolicyKind::PropFreq),
    )
}

#[test]
fn mixed_batch_policies_agree_and_models_verify() {
    let batch = competition_batch("itest", &DatasetConfig::tiny(), 3);
    assert_eq!(batch.instances.len(), 6);
    for inst in &batch.instances {
        // solve_both_policies model-verifies every SAT answer and replays
        // the DRAT proof of every small UNSAT one
        let (ra, rb) = solve_both_policies(&inst.cnf);
        assert_eq!(ra.is_sat(), rb.is_sat(), "{} verdict mismatch", inst.name);
        // family-specific expectations
        match inst.family {
            Family::Pigeonhole | Family::XorSat | Family::CircuitEquiv => {
                assert!(ra.is_unsat(), "{} must be UNSAT", inst.name)
            }
            _ => {}
        }
    }
}

#[test]
fn pigeonhole_unsat_proof_checks() {
    let f = pigeonhole(5, 4);
    let mut s = Solver::from_cnf(&f);
    s.enable_proof();
    assert!(s.solve().is_unsat());
    let proof = s.take_proof().expect("proof enabled");
    assert!(proof.claims_unsat());
    assert_eq!(check_proof(&f, &proof), Ok(()));
}

#[test]
fn tseitin_expander_proof_checks() {
    let f = tseitin_expander_unsat(5, 11);
    let mut s = Solver::from_cnf(&f);
    s.enable_proof();
    assert!(s.solve().is_unsat());
    let proof = s.take_proof().expect("proof enabled");
    assert_eq!(check_proof(&f, &proof), Ok(()));
}

#[test]
fn parity_chain_unsat_for_long_chains() {
    // Parity chains refute by pure propagation; check a long one stays
    // cheap (no decisions should be needed beyond the first).
    let f = parity_chain_unsat(500);
    let mut s = Solver::from_cnf(&f);
    assert!(s.solve().is_unsat());
    assert!(s.stats().conflicts <= 4, "chains refute almost immediately");
    s.audit_invariants(Checkpoint::PostPropagate)
        .expect("invariant audit after refutation");
}

#[test]
fn unsat_proof_checks_with_aggressive_reduction() {
    let f = pigeonhole(6, 5);
    let mut s = Solver::new(
        &f,
        SolverConfig {
            reduce_init: 2,
            reduce_inc: 1,
            tier1_glue: 0,
            ..SolverConfig::default()
        },
    );
    s.enable_proof();
    assert!(s.solve().is_unsat());
    let proof = s.take_proof().expect("proof enabled");
    // Deletion steps must be present (reductions happened) and the proof
    // must still check — deletions may not break RUP derivability.
    assert!(proof
        .steps()
        .iter()
        .any(|st| matches!(st, neuroselect::sat_solver::ProofStep::Delete(_))));
    assert_eq!(check_proof(&f, &proof), Ok(()));
}

/// Inprocessing-enabled certification: verdicts must match the plain
/// solver on every generator family, with models verified against the
/// original formula (BVE reconstruction on the hook) and small UNSAT
/// verdicts replayed through the RUP checker, delete lines included.
fn solve_inprocessed_checked(f: &Cnf, label: &str) -> SolveResult {
    let mut s = Solver::new(
        f,
        SolverConfig {
            inprocess: true,
            inprocess_interval: 1,
            ..SolverConfig::default()
        },
    );
    s.enable_proof();
    let r = s.solve();
    s.audit_invariants(Checkpoint::PostPropagate)
        .unwrap_or_else(|e| panic!("{label}: invariant audit: {e}"));
    match &r {
        SolveResult::Sat(model) => assert!(
            verify_model(f, model).is_ok(),
            "{label}: invalid model after inprocessing"
        ),
        SolveResult::Unsat if f.num_vars() <= PROOF_CHECK_MAX_VARS => {
            let proof = s.take_proof().expect("proof enabled");
            assert_eq!(check_proof(f, &proof), Ok(()), "{label}: DRAT replay");
        }
        _ => {}
    }
    r
}

#[test]
fn mixed_batch_inprocessing_parity() {
    let batch = competition_batch("itest-inprocess", &DatasetConfig::tiny(), 5);
    for inst in &batch.instances {
        let plain = solve_checked(&inst.cnf, PolicyKind::Default);
        let inproc = solve_inprocessed_checked(&inst.cnf, &inst.name);
        assert_eq!(
            plain.is_sat(),
            inproc.is_sat(),
            "{}: inprocessing flipped the verdict",
            inst.name
        );
    }
}

#[test]
fn tseitin_and_miter_inprocessing_parity_with_certified_proofs() {
    let tseitin = tseitin_expander_unsat(5, 11);
    assert!(
        solve_inprocessed_checked(&tseitin, "tseitin-expander").is_unsat(),
        "tseitin expander must stay UNSAT under inprocessing"
    );
    for seed in [1u64, 2] {
        let spec = logic_circuit::RandomCircuitSpec {
            num_inputs: 6,
            num_gates: 40,
            num_outputs: 2,
        };
        let f = equivalence_miter_cnf(spec, seed);
        assert!(
            solve_inprocessed_checked(&f, &format!("miter-{seed}")).is_unsat(),
            "miter seed {seed} must stay UNSAT under inprocessing"
        );
    }
}

#[test]
fn coloring_decodes_to_proper_coloring() {
    let g = Graph::random(20, 44, 8);
    let f = coloring_cnf(&g, 3);
    if let SolveResult::Sat(model) = solve_checked(&f, PolicyKind::Default) {
        let colors = neuroselect::sat_gen::decode_coloring(&g, 3, &model);
        for &(a, b) in &g.edges {
            assert_ne!(colors[a as usize], colors[b as usize]);
        }
    }
}

#[test]
fn budget_censoring_is_monotone() {
    // A solve under a bigger budget never flips from solved to unknown.
    let f = phase_transition_3sat(60, 77);
    let mut small = Solver::from_cnf(&f);
    let r_small = small.solve_with_budget(Budget::conflicts(10));
    // an exhausted budget must still leave a consistent solver behind
    small
        .audit_invariants(Checkpoint::PostPropagate)
        .expect("invariant audit after budget exhaustion");
    let mut large = Solver::from_cnf(&f);
    let r_large = large.solve_with_budget(Budget::conflicts(1_000_000));
    if !r_small.is_unknown() {
        assert_eq!(r_small.is_sat(), r_large.is_sat());
    }
    assert!(!r_large.is_unknown());
    if let Some(model) = r_large.model() {
        assert!(verify_model(&f, model).is_ok());
    }
}

#[test]
fn equivalence_miter_unsat_across_seeds() {
    for seed in [1u64, 2, 3] {
        let spec = logic_circuit::RandomCircuitSpec {
            num_inputs: 6,
            num_gates: 40,
            num_outputs: 2,
        };
        let f = equivalence_miter_cnf(spec, seed);
        let (ra, rb) = solve_both_policies(&f);
        assert!(ra.is_unsat() && rb.is_unsat(), "seed {seed}");
    }
}

#[test]
fn solver_statistics_are_consistent() {
    let f = phase_transition_3sat(80, 5);
    let mut s = Solver::from_cnf(&f);
    let result = s.solve();
    assert!(!result.is_unknown());
    let st = *s.stats();
    assert!(st.learned_clauses <= st.conflicts);
    assert!(st.deleted_clauses <= st.learned_clauses);
    assert!(st.restarts <= st.conflicts);
    let db = s.db_stats();
    assert!(db.learned_clauses <= st.learned_clauses as usize);
    assert_eq!(db.live_clauses, db.learned_clauses + db.original_clauses);
    s.audit_invariants(Checkpoint::PostPropagate)
        .expect("invariant audit");
    if let Some(model) = result.model() {
        assert!(verify_model(&f, model).is_ok());
    }
}
