//! A self-contained, offline stand-in for the subset of the [`criterion`]
//! benchmark-harness API this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this shim (see `vendor/` in the repository root). Benchmarks
//! compile and run: each closure is warmed up once, then timed over a
//! fixed iteration budget, and a mean per-iteration wall time is printed.
//! There is no statistical analysis, outlier rejection, or HTML report —
//! treat the numbers as smoke-level only.
//!
//! [`criterion`]: https://crates.io/crates/criterion

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark harness entry point.
pub struct Criterion {
    /// Target number of timed iterations per benchmark.
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// Registers a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        run_one("", id, self.sample_size, f);
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the iteration budget for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares the per-iteration throughput (recorded, not analyzed).
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Runs a benchmark identified by `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(&self.name, &id.0, self.sample_size, f);
        self
    }

    /// Runs a benchmark that borrows an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        run_one(&self.name, &id.0, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

fn run_one<F>(group: &str, id: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher); // warm-up
    bencher.iters = sample_size as u64;
    bencher.elapsed = Duration::ZERO;
    f(&mut bencher);
    let per_iter = bencher.elapsed.as_nanos() / u128::from(bencher.iters.max(1));
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    println!(
        "bench {label:<50} {per_iter:>12} ns/iter ({} iters)",
        bencher.iters
    );
}

/// Times the measured routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Measures `routine` over this sample's iteration budget.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
    }
}

/// A benchmark identifier, optionally parameterized.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An identifier `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", name.into(), parameter))
    }

    /// An identifier that is just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(format!("{parameter}"))
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Throughput declaration (recorded for API compatibility only).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Declares a group of benchmark functions taking `&mut Criterion`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_smoke() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        let mut runs = 0u32;
        group.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, &n| {
            b.iter(|| {
                runs += 1;
                (0..n).sum::<u64>()
            });
        });
        group.finish();
        // one warm-up iteration + sample_size timed iterations
        assert_eq!(runs, 4);
    }
}
