//! A self-contained, offline stand-in for the subset of the [`rand`]
//! crate API this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this shim instead (see `vendor/` in the repository root). It
//! provides [`rngs::SmallRng`] (a splitmix64 generator), the [`Rng`] /
//! [`SeedableRng`] traits with `gen`, `gen_range`, and `gen_bool`, and
//! [`seq::SliceRandom::shuffle`]. Streams are deterministic per seed but
//! are **not** bit-compatible with the real `rand` crate; every use in
//! this workspace treats the generator as an arbitrary seeded source, so
//! only determinism matters.
//!
//! [`rand`]: https://crates.io/crates/rand

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next raw 32 random bits (upper half of [`next_u64`](Self::next_u64)).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing random-value methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A uniformly random value of a [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// A uniformly random value in `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} not in [0, 1]"
        );
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Construction of generators from seeds, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically seeded from `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly over their whole domain via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64()) as f32
    }
}

/// Maps 64 random bits to a uniform double in `[0, 1)` (53-bit mantissa).
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types with uniform range sampling for [`Rng::gen_range`].
pub trait SampleUniform: Copy + PartialOrd {
    /// A value uniform in `[low, high)` (or `[low, high]` when `inclusive`).
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self, inclusive: bool) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                let lo = low as i128;
                let hi = high as i128 + if inclusive { 1 } else { 0 };
                assert!(lo < hi, "gen_range called with an empty range");
                let span = (hi - lo) as u128;
                // Modulo bias is below 2^-64 for every span used in this
                // workspace; acceptable for test and benchmark seeding.
                let draw = ((rng.next_u64() as u128) % span) as i128;
                (lo + draw) as $t
            }
        }
    )*};
}

impl_uniform_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                let _ = inclusive; // measure-zero difference for floats
                assert!(low < high, "gen_range called with an empty range");
                let f = unit_f64(rng.next_u64()) as $t;
                low + f * (high - low)
            }
        }
    )*};
}

impl_uniform_float!(f32, f64);

/// Range shapes accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(rng, *self.start(), *self.end(), true)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (splitmix64).
    ///
    /// Statistically solid for test-data generation; not cryptographic and
    /// not stream-compatible with `rand`'s `SmallRng`.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            // Pre-advance once so seeds 0 and 1 diverge immediately.
            let mut rng = SmallRng { state };
            let _ = rng.next_u64();
            SmallRng {
                state: rng.state ^ state.rotate_left(17),
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    /// Alias kept for API compatibility; same generator as [`SmallRng`].
    pub type StdRng = SmallRng;
}

/// Sequence helpers.
pub mod seq {
    use super::{Rng, SampleUniform};

    /// Slice shuffling and sampling, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = usize::sample_in(rng, 0, i, true);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[usize::sample_in(rng, 0, self.len(), false)])
            }
        }
    }
}

/// Commonly imported items, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::{SmallRng, StdRng};
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        let mut c = SmallRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&x));
            let y = rng.gen_range(1usize..=4);
            assert!((1..=4).contains(&y));
            let f = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&f));
            let p = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&p));
        }
    }

    #[test]
    fn range_distribution_covers_all_values() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(9);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 100-element shuffle should move something");
    }
}
