//! Test-runner configuration and the per-test random source.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real proptest defaults to 256; 64 keeps the no-shrinking shim
        // fast while still exercising each property broadly.
        ProptestConfig { cases: 64 }
    }
}

/// The random source threaded through strategy sampling.
///
/// Seeded from the test's name (FNV-1a), so each property sees a stable
/// case stream across runs — failures reproduce without regression files.
pub struct TestRng {
    /// The underlying generator (public so strategies can draw directly).
    pub rng: SmallRng,
}

impl TestRng {
    /// Creates the deterministic generator for the named test.
    pub fn for_test(name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
        TestRng {
            rng: SmallRng::seed_from_u64(hash),
        }
    }
}
