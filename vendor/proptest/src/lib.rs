//! A self-contained, offline stand-in for the subset of the [`proptest`]
//! crate API this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this shim (see `vendor/` in the repository root). It provides
//! the [`Strategy`] trait with `prop_map` / `prop_flat_map`, range and
//! tuple strategies, [`collection::vec`], [`prelude::Just`],
//! `prop_oneof!`, `any::<T>()`, and a `proptest!` macro that runs each
//! property for [`ProptestConfig::cases`] deterministic pseudo-random
//! cases.
//!
//! **Deviation from the real crate:** failing cases are *not* shrunk and
//! `*.proptest-regressions` files are ignored; a failure panics with the
//! case's assertion message directly. Case streams are deterministic per
//! test name, so failures reproduce across runs.
//!
//! [`proptest`]: https://crates.io/crates/proptest

#![forbid(unsafe_code)]

pub mod strategy;
pub mod test_runner;

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// A size specification: an exact length or a range of lengths.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        /// Inclusive upper bound.
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.rng.gen_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The commonly imported surface (`proptest::prelude`).
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniform choice among strategies of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Declares property tests: each `fn` runs its body for every generated
/// case. Accepts an optional leading `#![proptest_config(expr)]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strategy:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut runner_rng =
                    $crate::test_runner::TestRng::for_test(stringify!($name));
                for case in 0..config.cases {
                    let _ = case;
                    $(let $pat = $crate::strategy::Strategy::sample(&($strategy), &mut runner_rng);)+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small_vec() -> impl Strategy<Value = Vec<i32>> {
        crate::collection::vec(-3i32..3, 0..5)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_vecs(v in small_vec(), n in 1usize..=4) {
            prop_assert!(v.len() < 5);
            prop_assert!(v.iter().all(|x| (-3..3).contains(x)));
            prop_assert!((1..=4).contains(&n));
        }

        #[test]
        fn oneof_and_flat_map(x in (1i32..10).prop_flat_map(|v| prop_oneof![Just(v), Just(-v)])) {
            prop_assert!(x != 0 && x.abs() < 10);
        }

        #[test]
        fn tuples_and_map(
            (r, c) in (1usize..4, 1usize..4),
            b in any::<bool>(),
            f in -2.0f32..2.0,
        ) {
            prop_assert!((1..=9).contains(&(r * c)));
            prop_assert!(usize::from(b) <= 1);
            prop_assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::TestRng::for_test("seed");
        let mut b = crate::test_runner::TestRng::for_test("seed");
        let s = crate::collection::vec(0u32..100, 3..=3);
        assert_eq!(s.sample(&mut a), s.sample(&mut b));
    }
}
