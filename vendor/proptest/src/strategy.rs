//! The [`Strategy`] trait and built-in combinators.

use crate::test_runner::TestRng;
use rand::Rng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
///
/// Unlike the real `proptest`, sampling is direct (no intermediate value
/// trees), so failing inputs are not shrunk.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms every generated value with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then samples from the strategy `f` builds from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Keeps only generated values satisfying `pred` (rejection sampling).
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }

    /// Erases the strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe sampling, used by [`BoxedStrategy`].
trait DynStrategy<V> {
    fn sample_dyn(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.sample(rng)
    }
}

/// A type-erased [`Strategy`].
pub struct BoxedStrategy<V>(Box<dyn DynStrategy<V>>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn sample(&self, rng: &mut TestRng) -> V {
        self.0.sample_dyn(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn sample(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.sample(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1000 consecutive samples: {}",
            self.whence
        );
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed strategies (built by `prop_oneof!`).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Creates the union; `options` must be non-empty.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn sample(&self, rng: &mut TestRng) -> V {
        let i = rng.rng.gen_range(0..self.options.len());
        self.options[i].sample(rng)
    }
}

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.rng.gen::<u64>() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.rng.gen::<bool>()
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, sign-symmetric, spanning several orders of magnitude.
        rng.rng.gen_range(-1.0e6f32..1.0e6)
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.rng.gen_range(-1.0e12f64..1.0e12)
    }
}

/// The canonical strategy for `T` (see [`Arbitrary`]).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// See [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}
