//! Incremental per-output equivalence checking with assumptions.
//!
//! Instead of one monolithic miter, this encodes both circuits once and
//! probes each output pair with a solver *assumption* — the industrial
//! methodology for localizing which outputs a bug affects. All learned
//! clauses are reused across the queries (incremental solving).
//!
//! ```text
//! cargo run --release --example incremental_equivalence
//! ```

use neuroselect::logic_circuit::{
    encode, inject_fault, random_circuit, rewrite, Circuit, Gate, NodeId, RandomCircuitSpec,
};
use neuroselect::sat_solver::{Budget, Solver};
use std::error::Error;

/// Appends a copy of `source` to `target`, reusing `shared_inputs` for its
/// primary inputs; returns the mapped output nodes.
fn append_circuit(target: &mut Circuit, source: &Circuit, shared_inputs: &[NodeId]) -> Vec<NodeId> {
    let mut map: Vec<NodeId> = Vec::with_capacity(source.len());
    let mut next_input = 0;
    for gate in source.gates() {
        let new_id = match *gate {
            Gate::Input => {
                let id = shared_inputs[next_input];
                next_input += 1;
                id
            }
            Gate::Const(v) => target.constant(v),
            Gate::Not(x) => target.not_gate(map[x.index()]),
            Gate::And(x, y) => target.and_gate(map[x.index()], map[y.index()]),
            Gate::Or(x, y) => target.or(map[x.index()], map[y.index()]),
            Gate::Xor(x, y) => target.xor(map[x.index()], map[y.index()]),
            Gate::Nand(x, y) => target.nand(map[x.index()], map[y.index()]),
            Gate::Nor(x, y) => target.nor(map[x.index()], map[y.index()]),
            Gate::Xnor(x, y) => target.xnor(map[x.index()], map[y.index()]),
            Gate::Mux { sel, hi, lo } => {
                target.mux(map[sel.index()], map[hi.index()], map[lo.index()])
            }
        };
        map.push(new_id);
    }
    source.outputs().iter().map(|o| map[o.index()]).collect()
}

/// Encodes the two circuits side by side and probes each output pair with
/// one assumption per query on a single incremental solver. Returns, per
/// output, whether the pair is equivalent.
fn per_output_equivalence(golden: &Circuit, candidate: &Circuit) -> Vec<bool> {
    let mut paired = Circuit::new();
    let inputs: Vec<NodeId> = (0..golden.inputs().len()).map(|_| paired.input()).collect();
    let outs_a = append_circuit(&mut paired, golden, &inputs);
    let outs_b = append_circuit(&mut paired, candidate, &inputs);
    let diff_nodes: Vec<NodeId> = outs_a
        .iter()
        .zip(&outs_b)
        .map(|(&a, &b)| paired.xor(a, b))
        .collect();
    paired.set_outputs(diff_nodes.iter().copied());

    let enc = encode(&paired);
    let mut solver = Solver::from_cnf(&enc.cnf);
    diff_nodes
        .iter()
        .map(|&d| {
            let probe = enc.lit(d, true); // "this output pair differs"
            solver
                .solve_with_assumptions(&[probe], Budget::unlimited())
                .is_unsat()
        })
        .collect()
}

fn main() -> Result<(), Box<dyn Error>> {
    let spec = RandomCircuitSpec {
        num_inputs: 10,
        num_gates: 150,
        num_outputs: 8,
    };
    let golden = random_circuit(spec, 7);
    let optimized = rewrite(&golden, 0.8, 13);

    println!("checking {} output pairs incrementally…", spec.num_outputs);
    let clean = per_output_equivalence(&golden, &optimized);
    println!("rewritten twin : {clean:?}");
    if !clean.iter().all(|&e| e) {
        return Err("rewrite broke an output — bug".into());
    }

    // Some faults are logically masked; try a few injection sites until
    // one is observable.
    for fault_seed in 0..20u64 {
        let Some(faulty) = inject_fault(&optimized, fault_seed) else {
            break;
        };
        let after_fault = per_output_equivalence(&golden, &faulty);
        let affected: Vec<usize> = after_fault
            .iter()
            .enumerate()
            .filter(|(_, &ok)| !ok)
            .map(|(i, _)| i)
            .collect();
        if affected.is_empty() {
            println!("fault #{fault_seed}: masked at every output");
        } else {
            println!("fault #{fault_seed}: {after_fault:?}");
            println!(
                "observable at output(s) {affected:?} — assumption probing \
                 localized it without re-encoding"
            );
            return Ok(());
        }
    }
    println!("every probed fault was masked (unusual but possible)");
    Ok(())
}
