//! Incremental per-output equivalence checking over `rsatd` sessions.
//!
//! Instead of one monolithic miter, this encodes both circuits once into a
//! single daemon session and probes each output pair with a solver
//! *assumption* — the industrial methodology for localizing which outputs
//! a bug affects. All learned clauses are reused across the queries within
//! a session, and one daemon serves every candidate circuit in turn.
//!
//! ```text
//! cargo run --release --example incremental_equivalence
//! ```

use neuroselect::logic_circuit::{
    inject_fault, random_circuit, rewrite, Circuit, Gate, IncrementalEncoder, NodeId,
    RandomCircuitSpec,
};
use neuroselect::rsatd::{Daemon, DaemonConfig, DaemonError, Verdict};
use std::error::Error;

/// Appends a copy of `source` to `target`, reusing `shared_inputs` for its
/// primary inputs; returns the mapped output nodes.
fn append_circuit(target: &mut Circuit, source: &Circuit, shared_inputs: &[NodeId]) -> Vec<NodeId> {
    let mut map: Vec<NodeId> = Vec::with_capacity(source.len());
    let mut next_input = 0;
    for gate in source.gates() {
        let new_id = match *gate {
            Gate::Input => {
                let id = shared_inputs[next_input];
                next_input += 1;
                id
            }
            Gate::Const(v) => target.constant(v),
            Gate::Not(x) => target.not_gate(map[x.index()]),
            Gate::And(x, y) => target.and_gate(map[x.index()], map[y.index()]),
            Gate::Or(x, y) => target.or(map[x.index()], map[y.index()]),
            Gate::Xor(x, y) => target.xor(map[x.index()], map[y.index()]),
            Gate::Nand(x, y) => target.nand(map[x.index()], map[y.index()]),
            Gate::Nor(x, y) => target.nor(map[x.index()], map[y.index()]),
            Gate::Xnor(x, y) => target.xnor(map[x.index()], map[y.index()]),
            Gate::Mux { sel, hi, lo } => {
                target.mux(map[sel.index()], map[hi.index()], map[lo.index()])
            }
        };
        map.push(new_id);
    }
    source.outputs().iter().map(|o| map[o.index()]).collect()
}

/// Encodes the two circuits side by side into one daemon session and
/// probes each output pair with one assumption per query. Returns, per
/// output, whether the pair is equivalent.
fn per_output_equivalence(
    daemon: &Daemon,
    golden: &Circuit,
    candidate: &Circuit,
) -> Result<Vec<bool>, DaemonError> {
    let mut paired = Circuit::new();
    let inputs: Vec<NodeId> = (0..golden.inputs().len()).map(|_| paired.input()).collect();
    let outs_a = append_circuit(&mut paired, golden, &inputs);
    let outs_b = append_circuit(&mut paired, candidate, &inputs);
    let diff_nodes: Vec<NodeId> = outs_a
        .iter()
        .zip(&outs_b)
        .map(|(&a, &b)| paired.xor(a, b))
        .collect();
    paired.set_outputs(diff_nodes.iter().copied());

    let mut enc = IncrementalEncoder::new();
    let cnf = enc.encode_new(&paired);
    let clauses: Vec<Vec<i64>> = cnf
        .clauses()
        .iter()
        .map(|c| c.lits().iter().map(|l| i64::from(l.to_dimacs())).collect())
        .collect();
    let probes: Vec<i64> = diff_nodes
        .iter()
        .map(|&d| i64::from(enc.lit(d, true).to_dimacs())) // "this output pair differs"
        .collect();

    let session = daemon.open_session(enc.num_vars(), false)?;
    session.add_clauses(&clauses)?;
    // Probe literals must survive in-search simplification across the
    // whole query sequence; freeze them all up front.
    session.freeze(&probes)?;
    let mut equivalent = Vec::with_capacity(probes.len());
    for probe in &probes {
        let reply = session.solve(&[*probe], None)?;
        equivalent.push(match reply.verdict {
            Verdict::Unsat => true,
            Verdict::Sat => false,
            Verdict::Unknown(cause) => {
                return Err(DaemonError::Internal(format!("probe degraded: {cause}")))
            }
        });
    }
    session.close()?;
    Ok(equivalent)
}

fn main() -> Result<(), Box<dyn Error>> {
    let spec = RandomCircuitSpec {
        num_inputs: 10,
        num_gates: 150,
        num_outputs: 8,
    };
    let golden = random_circuit(spec, 7);
    let optimized = rewrite(&golden, 0.8, 13);

    let daemon = Daemon::start(DaemonConfig::default());
    println!("checking {} output pairs incrementally…", spec.num_outputs);
    let clean = per_output_equivalence(&daemon, &golden, &optimized)?;
    println!("rewritten twin : {clean:?}");
    if !clean.iter().all(|&e| e) {
        return Err("rewrite broke an output — bug".into());
    }

    // Some faults are logically masked; try a few injection sites until
    // one is observable. Each candidate gets its own session from the
    // same daemon.
    for fault_seed in 0..20u64 {
        let Some(faulty) = inject_fault(&optimized, fault_seed) else {
            break;
        };
        let after_fault = per_output_equivalence(&daemon, &golden, &faulty)?;
        let affected: Vec<usize> = after_fault
            .iter()
            .enumerate()
            .filter(|(_, &ok)| !ok)
            .map(|(i, _)| i)
            .collect();
        if affected.is_empty() {
            println!("fault #{fault_seed}: masked at every output");
        } else {
            println!("fault #{fault_seed}: {after_fault:?}");
            println!(
                "observable at output(s) {affected:?} — assumption probing \
                 localized it without re-encoding"
            );
            daemon.shutdown();
            return Ok(());
        }
    }
    println!("every probed fault was masked (unusual but possible)");
    daemon.shutdown();
    Ok(())
}
