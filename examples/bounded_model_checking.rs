//! Bounded model checking of a sequential circuit.
//!
//! A gated counter increments whenever its enable input is high; the safety
//! monitor fires when the counter saturates. BMC unrolls the transition
//! relation frame by frame and asks SAT: the property "counter never
//! saturates within k steps" holds exactly while the unrolling is UNSAT,
//! and the first SAT bound yields a concrete input trace (the
//! counterexample), which we decode and replay against the simulator.
//!
//! ```text
//! cargo run --release --example bounded_model_checking
//! ```

use neuroselect::logic_circuit::{encode, unroll, Circuit, NodeId, SequentialCircuit};
use neuroselect::sat_solver::Solver;
use std::error::Error;

/// Builds the gated counter machine: `bits` state bits, one enable input,
/// monitor = "all bits 1".
fn gated_counter(bits: usize) -> SequentialCircuit {
    let mut c = Circuit::new();
    let state: Vec<NodeId> = (0..bits).map(|_| c.input()).collect();
    let enable = c.input();
    let mut carry = enable;
    let mut next = Vec::with_capacity(bits);
    for &s in &state {
        let sum = c.xor(s, carry);
        let new_carry = c.and_gate(s, carry);
        next.push(sum);
        carry = new_carry;
    }
    let saturated = c.and_many(&state);
    let mut outputs = next;
    outputs.push(saturated);
    c.set_outputs(outputs);
    SequentialCircuit::new(c, bits)
}

fn main() -> Result<(), Box<dyn Error>> {
    const BITS: usize = 4;
    let seq = gated_counter(BITS);
    let initial = vec![false; BITS];
    println!("machine: {BITS}-bit gated counter | property: counter never saturates\n");

    for bound in 1.. {
        let unrolled = unroll(&seq, bound, &initial);
        let mut enc = encode(&unrolled);
        enc.assert_node(unrolled.outputs()[0], true);
        let mut solver = Solver::from_cnf(&enc.cnf);
        let result = solver.solve();
        if let Some(model) = result.model() {
            println!(
                "bound {bound:>2}: SAT — property VIOLATED \
                 ({} conflicts, {} propagations)",
                solver.stats().conflicts,
                solver.stats().propagations
            );
            // Decode the counterexample trace: per-frame enable inputs.
            let inputs = enc.input_values(&unrolled, model);
            let per_frame: Vec<Vec<bool>> = inputs
                .chunks(seq.num_primary_inputs())
                .map(|c| c.to_vec())
                .collect();
            let trace: String = per_frame
                .iter()
                .map(|f| if f[0] { '1' } else { '0' })
                .collect();
            println!("counterexample enable trace: {trace}");
            // Replay against the reference simulator.
            assert!(
                seq.simulate(&initial, &per_frame),
                "decoded trace must reach the bad state in simulation"
            );
            println!("trace replayed in simulation: monitor fires ✓");
            assert_eq!(
                bound,
                (1 << BITS),
                "saturation needs 2^bits - 1 increments, observed at frame 2^bits"
            );
            break;
        }
        println!(
            "bound {bound:>2}: UNSAT — property holds up to {bound} steps \
             ({} conflicts)",
            solver.stats().conflicts
        );
    }
    Ok(())
}
