//! Bounded model checking over one incremental `rsatd` session.
//!
//! A gated counter increments whenever its enable input is high; the safety
//! monitor fires when the counter saturates. Instead of re-encoding and
//! re-solving the whole unrolling at each bound, this drives a single
//! daemon session: every bound pushes one more time frame, feeds only the
//! *delta* clauses to the session, and re-solves under an assumption
//! selecting that frame's monitor. Learned clauses from bound `k` carry
//! into bound `k + 1`, which is exactly the cold-start amortization the
//! daemon's incremental sessions exist for. The first SAT bound yields a
//! concrete input trace (the counterexample), which we decode and replay
//! against the simulator.
//!
//! ```text
//! cargo run --release --example bounded_model_checking
//! ```

use neuroselect::logic_circuit::{
    Circuit, IncrementalEncoder, IncrementalUnroll, NodeId, SequentialCircuit,
};
use neuroselect::rsatd::{Daemon, DaemonConfig, Verdict};
use std::error::Error;
use std::time::Duration;

/// Builds the gated counter machine: `bits` state bits, one enable input,
/// monitor = "all bits 1".
fn gated_counter(bits: usize) -> SequentialCircuit {
    let mut c = Circuit::new();
    let state: Vec<NodeId> = (0..bits).map(|_| c.input()).collect();
    let enable = c.input();
    let mut carry = enable;
    let mut next = Vec::with_capacity(bits);
    for &s in &state {
        let sum = c.xor(s, carry);
        let new_carry = c.and_gate(s, carry);
        next.push(sum);
        carry = new_carry;
    }
    let saturated = c.and_many(&state);
    let mut outputs = next;
    outputs.push(saturated);
    c.set_outputs(outputs);
    SequentialCircuit::new(c, bits)
}

/// Converts one delta CNF into the daemon's wire clause shape.
fn dimacs_clauses(delta: &neuroselect::cnf::Cnf) -> Vec<Vec<i64>> {
    delta
        .clauses()
        .iter()
        .map(|c| c.lits().iter().map(|l| l.to_dimacs() as i64).collect())
        .collect()
}

fn main() -> Result<(), Box<dyn Error>> {
    const BITS: usize = 4;
    const MAX_BOUND: usize = 1 << BITS;
    let seq = gated_counter(BITS);
    let initial = vec![false; BITS];
    println!("machine: {BITS}-bit gated counter | property: counter never saturates\n");

    // A session's variable space is fixed at `open`, so size it for the
    // deepest bound up front. The incremental encoder numbers variables
    // by node index, which makes the total just the final node count.
    let mut scratch = IncrementalUnroll::new(&seq, &initial);
    for _ in 0..MAX_BOUND {
        scratch.push_frame();
    }
    let total_vars = scratch.circuit().len() as u32;

    let daemon = Daemon::start(DaemonConfig::default());
    let session = daemon.open_session(total_vars, false)?;

    let mut unrolling = IncrementalUnroll::new(&seq, &initial);
    let mut encoder = IncrementalEncoder::new();
    let mut violated_at = None;
    for bound in 1..=MAX_BOUND {
        // Grow by one frame and ship only the new clauses.
        let bad = unrolling.push_frame();
        let delta = encoder.encode_new(unrolling.circuit());
        session.add_clauses(&dimacs_clauses(&delta))?;

        // The probe literal must survive in-search simplification at
        // every later bound, so freeze it before assuming it.
        let probe = i64::from(encoder.lit(bad, true).to_dimacs());
        session.freeze(&[probe])?;
        let reply = session.solve(&[probe], Some(Duration::from_secs(30)))?;
        match reply.verdict {
            Verdict::Sat => {
                println!(
                    "bound {bound:>2}: SAT — property VIOLATED \
                     ({} conflicts, {} propagations, {} ms)",
                    reply.conflicts, reply.propagations, reply.duration_ms
                );
                violated_at = Some(bound);
                break;
            }
            Verdict::Unsat => println!(
                "bound {bound:>2}: UNSAT — property holds up to {bound} steps \
                 ({} conflicts)",
                reply.conflicts
            ),
            Verdict::Unknown(cause) => {
                return Err(format!("bound {bound}: solve degraded ({cause})").into())
            }
        }
    }
    let bound = violated_at.ok_or("counter must saturate within 2^bits frames")?;

    // Decode the counterexample trace: the model is signed DIMACS
    // literals; frame inputs appear in push order.
    let model = session.model()?;
    let assignment: Vec<bool> = model.iter().map(|&l| l > 0).collect();
    let inputs = encoder.input_values(unrolling.circuit(), &assignment);
    let per_frame: Vec<Vec<bool>> = inputs
        .chunks(seq.num_primary_inputs())
        .map(|c| c.to_vec())
        .collect();
    let trace: String = per_frame
        .iter()
        .map(|f| if f[0] { '1' } else { '0' })
        .collect();
    println!("counterexample enable trace: {trace}");
    // Replay against the reference simulator.
    assert!(
        seq.simulate(&initial, &per_frame),
        "decoded trace must reach the bad state in simulation"
    );
    println!("trace replayed in simulation: monitor fires ✓");
    assert_eq!(
        bound,
        1 << BITS,
        "saturation needs 2^bits - 1 increments, observed at frame 2^bits"
    );

    session.close()?;
    daemon.shutdown();
    Ok(())
}
