//! Policy duel: run the default and the propagation-frequency clause
//! deletion policies head-to-head on a mixed instance suite — a miniature
//! of the paper's Figure 4 motivation experiment showing that *neither
//! policy dominates*.
//!
//! ```text
//! cargo run --release --example policy_duel
//! ```

use neuroselect::sat_gen::{competition_batch, DatasetConfig};
use neuroselect::sat_solver::{solve_with_policy, Budget, PolicyKind};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let config = DatasetConfig {
        instances_per_batch: 18,
        scale: 1.0,
        seed: 42,
    };
    let batch = competition_batch("duel", &config, 1);
    let budget = Budget::propagations(20_000_000);

    println!(
        "{:<28} {:>6} {:>12} {:>12} {:>8}  winner",
        "instance", "sat?", "props(def)", "props(freq)", "Δ%"
    );
    let mut wins_default = 0;
    let mut wins_freq = 0;
    let mut ties = 0;
    for inst in &batch.instances {
        let (r_def, s_def) = solve_with_policy(&inst.cnf, PolicyKind::Default, budget);
        let (r_new, s_new) = solve_with_policy(&inst.cnf, PolicyKind::PropFreq, budget);
        assert_eq!(
            r_def.is_sat(),
            r_new.is_sat(),
            "policies must agree on the verdict"
        );
        let delta = 100.0 * (s_def.propagations as f64 - s_new.propagations as f64)
            / s_def.propagations.max(1) as f64;
        let winner = if delta > 2.0 {
            wins_freq += 1;
            "prop-freq"
        } else if delta < -2.0 {
            wins_default += 1;
            "default"
        } else {
            ties += 1;
            "~tie"
        };
        println!(
            "{:<28} {:>6} {:>12} {:>12} {:>7.1}%  {winner}",
            inst.name,
            if r_def.is_sat() { "SAT" } else { "UNSAT" },
            s_def.propagations,
            s_new.propagations,
            delta
        );
    }
    println!(
        "\nsummary: prop-freq wins {wins_freq}, default wins {wins_default}, ties {ties} \
         (win margin > 2% propagations)"
    );
    println!(
        "neither policy dominates — exactly the observation (Figure 4) that \
         motivates learning to select the policy per instance."
    );
    Ok(())
}
