//! End-to-end NeuroSelect: generate a dataset, label it by dual-policy
//! solving, train the HGT classifier, evaluate it, and deploy it as a
//! policy-selecting solver — the full pipeline of the paper at laptop
//! scale, with model persistence to disk.
//!
//! ```text
//! cargo run --release --example train_and_select
//! ```

use neuro::{load_params, save_params, NeuroSelectConfig};
use neuroselect::sat_gen::{competition_batch, test_batch, DatasetConfig};
use neuroselect::sat_solver::{solve_with_policy, PolicyKind};
use neuroselect::{
    evaluate, label_batch, positive_rate, train, Budget, LabelingConfig, NeuroSelectClassifier,
    NeuroSelectSolver, RuntimeSummary, TrainConfig,
};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    // 1. Dataset: two training batches + the held-out "2022" test batch.
    let data_cfg = DatasetConfig {
        instances_per_batch: 18,
        scale: 0.8,
        seed: 11,
    };
    let label_cfg = LabelingConfig::default();
    println!("generating and labelling the dataset (dual-policy solving)…");
    let mut train_set = Vec::new();
    for b in 0..2 {
        let batch = competition_batch(&format!("train-{b}"), &data_cfg, b);
        train_set.extend(label_batch(&batch, &label_cfg));
    }
    let test_set = label_batch(&test_batch(&data_cfg), &label_cfg);
    println!(
        "train: {} instances ({:.0}% label-1) | test: {} instances ({:.0}% label-1)",
        train_set.len(),
        100.0 * positive_rate(&train_set),
        test_set.len(),
        100.0 * positive_rate(&test_set)
    );

    // 2. Train the NeuroSelect classifier (scaled-down architecture for a
    //    quick demo; Section 5.2 uses dim 32, 2 HGT layers, 400 epochs).
    let model_cfg = NeuroSelectConfig {
        hidden_dim: 16,
        hgt_layers: 1,
        mpnn_per_hgt: 2,
        use_attention: true,
        seed: 5,
    };
    let mut classifier = NeuroSelectClassifier::new(model_cfg, 3e-3);
    println!("\ntraining…");
    let history = train(
        &mut classifier,
        &train_set,
        &TrainConfig {
            epochs: 40,
            seed: 3,
            balance: true,
        },
    );
    println!(
        "loss: first epoch {:.4} → last epoch {:.4}",
        history.first().copied().unwrap_or(0.0),
        history.last().copied().unwrap_or(0.0)
    );

    // 3. Evaluate on held-out instances (Table 2 style).
    let metrics = evaluate(&classifier, &test_set);
    println!("test metrics: {metrics}");

    // 4. Persist and reload the model.
    let model_path = std::env::temp_dir().join("neuroselect-demo.params");
    save_params(std::fs::File::create(&model_path)?, classifier.store())?;
    let mut reloaded = NeuroSelectClassifier::new(model_cfg, 3e-3);
    load_params(
        std::io::BufReader::new(std::fs::File::open(&model_path)?),
        reloaded.store_mut(),
    )?;
    println!("model saved to {} and reloaded", model_path.display());

    // 5. Deploy: NeuroSelect-guided solving vs. always-default (Table 3).
    let solver = NeuroSelectSolver::new(reloaded);
    let budget = Budget::propagations(20_000_000);
    let mut default_costs = Vec::new();
    let mut selected_costs = Vec::new();
    for inst in &test_set {
        let (r, s) = solve_with_policy(&inst.instance.cnf, PolicyKind::Default, budget);
        default_costs.push((!r.is_unknown()).then_some(s.propagations as f64));
        let out = solver.solve(&inst.instance.cnf, budget);
        selected_costs.push((!out.result.is_unknown()).then_some(out.stats.propagations as f64));
    }
    let d = RuntimeSummary::from_costs(default_costs);
    let n = RuntimeSummary::from_costs(selected_costs);
    println!("\n                    solved   median props     mean props");
    println!(
        "default only      {:>6}   {:>12.0}   {:>12.0}",
        d.solved, d.median, d.mean
    );
    println!(
        "NeuroSelect       {:>6}   {:>12.0}   {:>12.0}",
        n.solved, n.median, n.mean
    );
    if n.mean < d.mean {
        println!(
            "NeuroSelect reduced mean propagations by {:.1}%",
            100.0 * (d.mean - n.mean) / d.mean
        );
    } else {
        println!("no mean improvement on this run (small demo dataset)");
    }
    Ok(())
}
