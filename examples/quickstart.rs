//! Quickstart: parse a DIMACS CNF, solve it with both clause-deletion
//! policies, and print the verdict, model, and solver statistics.
//!
//! Run with a file:
//! ```text
//! cargo run --example quickstart -- path/to/problem.cnf
//! ```
//! or without arguments to solve a built-in example.

use neuroselect::{cnf, sat_solver};
use sat_solver::{Budget, PolicyKind, Solver, SolverConfig};
use std::error::Error;
use std::fs::File;
use std::io::BufReader;

fn main() -> Result<(), Box<dyn Error>> {
    let formula = match std::env::args().nth(1) {
        Some(path) => {
            println!("reading {path}");
            cnf::parse_dimacs(BufReader::new(File::open(path)?))?
        }
        None => {
            println!("no file given; using a built-in pigeonhole instance PHP(7, 6)");
            neuroselect::sat_gen::pigeonhole(7, 6)
        }
    };
    let stats = formula.stats();
    println!(
        "formula: {} variables, {} clauses, {} literals",
        stats.num_vars, stats.num_clauses, stats.num_lits
    );

    for policy in [PolicyKind::Default, PolicyKind::PropFreq] {
        let mut solver = Solver::new(&formula, SolverConfig::with_policy(policy));
        let result = solver.solve_with_budget(Budget::conflicts(2_000_000));
        let s = solver.stats();
        println!("\n=== policy: {policy} ===");
        match result {
            neuroselect::SolveResult::Sat(model) => {
                cnf::verify_model(&formula, &model)
                    .map_err(|i| format!("solver returned an invalid model (clause {i})"))?;
                let assignment: Vec<String> = model
                    .iter()
                    .take(16)
                    .enumerate()
                    .map(|(i, &v)| format!("x{}={}", i + 1, u8::from(v)))
                    .collect();
                println!(
                    "SATISFIABLE (model verified): {}{}",
                    assignment.join(" "),
                    if model.len() > 16 { " …" } else { "" }
                );
            }
            neuroselect::SolveResult::Unsat => println!("UNSATISFIABLE"),
            neuroselect::SolveResult::Unknown => println!("UNKNOWN (budget exhausted)"),
        }
        println!(
            "decisions {} | propagations {} | conflicts {} | restarts {} | \
             reductions {} | learned {} (avg glue {:.2}) | deleted {}",
            s.decisions,
            s.propagations,
            s.conflicts,
            s.restarts,
            s.reductions,
            s.learned_clauses,
            s.avg_glue(),
            s.deleted_clauses
        );
    }
    Ok(())
}
