//! Combinational equivalence checking and SAT-based test generation —
//! the EDA workload that motivates industrial SAT solving.
//!
//! The example synthesizes a random circuit, "optimizes" it with
//! semantics-preserving rewrites, and proves the two equivalent by showing
//! their miter UNSAT. It then injects a gate fault into the optimized
//! netlist and uses the solver as an ATPG engine to produce a test vector
//! exposing the fault.
//!
//! ```text
//! cargo run --example circuit_equivalence
//! ```

use neuroselect::logic_circuit::{
    encode, inject_fault, miter, random_circuit, rewrite, RandomCircuitSpec,
};
use neuroselect::sat_solver::Solver;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let spec = RandomCircuitSpec {
        num_inputs: 10,
        num_gates: 120,
        num_outputs: 6,
    };
    println!(
        "synthesizing a random circuit: {} inputs, {} gates, {} outputs",
        spec.num_inputs, spec.num_gates, spec.num_outputs
    );
    let golden = random_circuit(spec, 2024);
    let optimized = rewrite(&golden, 0.85, 7);
    println!(
        "rewritten twin has {} gates (original {})",
        optimized.num_gates(),
        golden.num_gates()
    );

    // --- equivalence check: miter must be UNSAT --------------------------
    let m = miter(&golden, &optimized);
    let mut enc = encode(&m);
    enc.assert_node(m.outputs()[0], true);
    let f = enc.cnf.clone();
    println!(
        "equivalence miter: {} variables, {} clauses",
        f.num_vars(),
        f.num_clauses()
    );
    let mut solver = Solver::from_cnf(&f);
    let result = solver.solve();
    if result.is_unsat() {
        println!(
            "EQUIVALENT (miter UNSAT) — {} conflicts, {} propagations",
            solver.stats().conflicts,
            solver.stats().propagations
        );
    } else {
        return Err("rewrite broke equivalence — this is a bug".into());
    }

    // --- fault detection: miter against a faulty netlist is SAT ----------
    let faulty = inject_fault(&optimized, 99).ok_or("no gate to corrupt")?;
    let fm = miter(&golden, &faulty);
    let mut fenc = encode(&fm);
    fenc.assert_node(fm.outputs()[0], true);
    let mut fault_solver = Solver::from_cnf(&fenc.cnf);
    match fault_solver.solve() {
        neuroselect::SolveResult::Sat(model) => {
            let vector = fenc.input_values(&fm, &model);
            let bits: String = vector.iter().map(|&b| if b { '1' } else { '0' }).collect();
            println!("\nfault injected; ATPG found a detecting test vector: {bits}");
            let g = golden.evaluate(&vector);
            let b = faulty.evaluate(&vector);
            println!("golden outputs : {g:?}");
            println!("faulty outputs : {b:?}");
            assert_ne!(g, b, "test vector must distinguish the netlists");
        }
        _ => println!("\nfault is untestable (masked by surrounding logic)"),
    }
    Ok(())
}
