//! Workspace call-graph assembly, the `callgraph.facts` golden manifest,
//! and the transitive hot-path purity rule.
//!
//! The graph is built from the per-file facts the extractor produces.
//! Call-site resolution is deliberately conservative (DESIGN.md §14):
//!
//! * typed resolution — `self` methods, `self.field` chains (via struct
//!   field types), `Type::method` paths, call-result chaining through a
//!   callee's return type, and params with known workspace types — yields
//!   precise edges;
//! * `dyn Trait` fields dispatch to every workspace `impl` of the trait
//!   (plus the trait's default methods); when no impl is known, the site
//!   becomes an explicit `dynamic-call` diagnostic instead of a silent
//!   gap, as does a call through an fn-typed parameter;
//! * untyped receivers fall back to *every* workspace method with that
//!   name — except for ubiquitous `std` method names
//!   ([`COMMON_STD_METHODS`]), where a by-name edge would be noise; the
//!   caller's own effect scan still catches `.push(`-class effects at
//!   such sites, so nothing panic- or alloc-shaped is lost.
//!
//! Call sites under `#[cfg(feature = "…")]` keep their gate: the purity
//! walk skips them, because they are compiled out of default builds (the
//! guarantee the rule protects is the *default-build* hot path).

use crate::extract::{CallSite, CallTarget, EffectKind, FileFacts, FnItem, Receiver, StructInfo};
use crate::rules::Diagnostic;
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};

/// Transitive purity roots: BCP, conflict analysis, recursive clause
/// minimization, and the audited watch-list/assignment accessors.
/// (`LitMap::get` is `#[cfg(test)]`-only and therefore not in the
/// shipped graph.)
pub const HOT_PATH_ROOTS: &[&str] = &[
    "sat_solver::solver::Solver::propagate",
    "sat_solver::solver::Solver::analyze",
    "sat_solver::solver::Solver::lit_redundant",
    "sat_solver::varmap::at",
    "sat_solver::varmap::VarMap::get",
    "sat_solver::varmap::VarMap::get_mut",
    "sat_solver::varmap::LitMap::get_mut",
];

/// Ubiquitous `std` method names excluded from by-name fallback
/// resolution: an untyped `ws.push(…)` should not edge into every
/// workspace type that happens to define `push`. Typed receivers still
/// resolve these precisely, and the effect scan still flags the site.
const COMMON_STD_METHODS: &[&str] = &[
    "push",
    "pop",
    "insert",
    "remove",
    "extend",
    "append",
    "clear",
    "truncate",
    "resize",
    "reserve",
    "get",
    "get_mut",
    "len",
    "is_empty",
    "contains",
    "contains_key",
    "iter",
    "iter_mut",
    "into_iter",
    "next",
    "clone",
    "fmt",
    "eq",
    "ne",
    "cmp",
    "partial_cmp",
    "hash",
    "drop",
    "as_ref",
    "as_mut",
    "as_str",
    "into",
    "from",
    "default",
    "take",
    "replace",
    "swap",
    "split_off",
    "last",
    "first",
    "sort",
    "sort_unstable",
    "dedup",
    "retain",
    "drain",
    "rev",
    "map",
    "and_then",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "ok",
    "err",
    "filter",
    "collect",
    "count",
    "sum",
    "min",
    "max",
    "abs",
    "sqrt",
    "powi",
    "exp",
    "ln",
    "to_string",
    "to_owned",
    "to_vec",
    "lock",
    "read",
    "write",
    "store",
    "load",
    "send",
    "recv",
    "join",
    "flush",
    "finish",
    "field",
    "key",
    "value",
    "new",
    "add",
    "sub",
    "mul",
    "div",
    "index",
];

/// Generic-ish type wrappers skipped when deriving a base type from type
/// tokens (`Box<dyn T>`, `Option<MutexGuard<'_, Stripe>>`, …).
const TYPE_WRAPPERS: &[&str] = &[
    "Box",
    "Arc",
    "Rc",
    "Option",
    "Result",
    "Vec",
    "VecDeque",
    "RefCell",
    "Cell",
    "Mutex",
    "RwLock",
    "MutexGuard",
    "RwLockReadGuard",
    "RwLockWriteGuard",
    "OnceLock",
];

/// How an edge was resolved (DESIGN.md §14 edge kinds).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeKind {
    /// Free-fn or `Type::method` path call.
    Direct,
    /// Typed method resolution.
    Method,
    /// `dyn Trait` dispatch (one edge per workspace impl).
    Dispatch,
    /// Untyped receiver resolved by method name only.
    ByName,
}

/// One resolved call edge.
#[derive(Debug, Clone)]
pub struct Edge {
    /// Callee node index.
    pub to: usize,
    /// Call-site line in the caller's file.
    pub line: u32,
    /// Call-site token index.
    pub tok: usize,
    /// Feature gate on the call site, if any.
    pub cfg: Option<String>,
    /// Resolution kind.
    pub kind: EdgeKind,
}

/// An unresolvable dynamic call site (trait object with no known impl,
/// or a call through an fn-typed parameter).
#[derive(Debug, Clone)]
pub struct DynSite {
    /// Site line.
    pub line: u32,
    /// Compact descriptor (`param:each`, `dyn:Sink::emit`).
    pub desc: String,
    /// Feature gate on the site, if any.
    pub cfg: Option<String>,
}

/// One fn node: the extracted item plus resolved edges.
#[derive(Debug)]
pub struct FnNode {
    /// The (merged) extracted item.
    pub item: FnItem,
    /// Resolved outgoing edges.
    pub edges: Vec<Edge>,
    /// Unresolvable dynamic call sites.
    pub dynamics: Vec<DynSite>,
    /// Calls into workspace `macro_rules!` macros: (macro id, line, cfg).
    pub macro_calls: Vec<(String, u32, Option<String>)>,
    /// Number of cfg variants merged into this node.
    pub variants: u32,
}

/// The assembled workspace call graph.
pub struct Graph {
    /// Per-file facts (token streams for the lock-order body rescan).
    pub files: Vec<FileFacts>,
    /// Fn nodes.
    pub nodes: Vec<FnNode>,
    /// Workspace macro ids (macro-opaque items), sorted.
    pub macros: Vec<String>,
    by_id: HashMap<String, usize>,
    by_name: HashMap<String, Vec<usize>>,
    by_type: HashMap<(String, String), usize>,
    trait_impls: HashMap<String, Vec<String>>,
    structs: HashMap<String, Vec<StructInfo>>,
    /// Lock-typed statics by name → module.
    pub lock_statics: HashMap<String, String>,
}

impl Graph {
    /// Node index for an exact id.
    pub fn by_id(&self, id: &str) -> Option<usize> {
        self.by_id.get(id).copied()
    }

    /// Token stream for a file path.
    pub fn file_tokens(&self, path: &str) -> Option<&FileFacts> {
        self.files.iter().find(|f| f.path == path)
    }

    /// Builds the graph: merges cfg variants, indexes, resolves calls.
    pub fn build(files: Vec<FileFacts>) -> Graph {
        let mut g = Graph {
            files,
            nodes: Vec::new(),
            macros: Vec::new(),
            by_id: HashMap::new(),
            by_name: HashMap::new(),
            by_type: HashMap::new(),
            trait_impls: HashMap::new(),
            structs: HashMap::new(),
            lock_statics: HashMap::new(),
        };
        // Pass 1: nodes (merging same-id variants) and indexes.
        for fi in 0..g.files.len() {
            for f in g.files[fi].fns.clone() {
                match g.by_id.get(&f.id) {
                    Some(&idx) => {
                        let n = &mut g.nodes[idx];
                        n.variants += 1;
                        // A variant that is compiled by default makes the
                        // merged node default-compiled.
                        if f.cfg_feature.is_none() {
                            n.item.cfg_feature = None;
                        }
                        n.item.calls.extend(f.calls);
                        n.item.effects.extend(f.effects);
                    }
                    None => {
                        let idx = g.nodes.len();
                        g.by_id.insert(f.id.clone(), idx);
                        g.by_name.entry(f.name.clone()).or_default().push(idx);
                        if let Some(t) = &f.self_type {
                            g.by_type.entry((t.clone(), f.name.clone())).or_insert(idx);
                        }
                        g.nodes.push(FnNode {
                            item: f,
                            edges: Vec::new(),
                            dynamics: Vec::new(),
                            macro_calls: Vec::new(),
                            variants: 1,
                        });
                    }
                }
            }
            for s in g.files[fi].structs.clone() {
                g.structs.entry(s.name.clone()).or_default().push(s);
            }
            for st in &g.files[fi].statics {
                if st.is_lock {
                    g.lock_statics.insert(st.name.clone(), st.module.clone());
                }
            }
            for m in &g.files[fi].macros {
                g.macros.push(m.clone());
            }
        }
        g.macros.sort();
        g.macros.dedup();
        for n in &g.nodes {
            if let (Some(tr), Some(ty), false) =
                (&n.item.trait_name, &n.item.self_type, n.item.is_trait_decl)
            {
                let v = g.trait_impls.entry(tr.clone()).or_default();
                if !v.contains(ty) {
                    v.push(ty.clone());
                }
            }
        }
        for v in g.trait_impls.values_mut() {
            v.sort();
        }
        // Pass 2: resolve call sites into edges.
        for idx in 0..g.nodes.len() {
            let calls = g.nodes[idx].item.calls.clone();
            for c in &calls {
                g.resolve_call(idx, c);
            }
        }
        g
    }

    fn resolve_call(&mut self, caller: usize, c: &CallSite) {
        match &c.target {
            CallTarget::MacroUse(name) => {
                let matches: Vec<String> = self
                    .macros
                    .iter()
                    .filter(|m| m.rsplit("::").next() == Some(name.as_str()))
                    .cloned()
                    .collect();
                for m in matches {
                    self.nodes[caller]
                        .macro_calls
                        .push((m, c.line, c.cfg_feature.clone()));
                }
            }
            CallTarget::Path(segs) => {
                let targets = self.resolve_path(caller, segs);
                match targets {
                    Resolved::Edges(t, kind) => self.add_edges(caller, c, &t, kind),
                    Resolved::Dynamic(desc) => self.nodes[caller].dynamics.push(DynSite {
                        line: c.line,
                        desc,
                        cfg: c.cfg_feature.clone(),
                    }),
                    Resolved::External => {}
                }
            }
            CallTarget::Method { name, receiver } => {
                match self.resolve_method(caller, name, receiver) {
                    Resolved::Edges(t, kind) => self.add_edges(caller, c, &t, kind),
                    Resolved::Dynamic(desc) => self.nodes[caller].dynamics.push(DynSite {
                        line: c.line,
                        desc,
                        cfg: c.cfg_feature.clone(),
                    }),
                    Resolved::External => {}
                }
            }
        }
    }

    fn add_edges(&mut self, caller: usize, c: &CallSite, targets: &[usize], kind: EdgeKind) {
        for &to in targets {
            self.nodes[caller].edges.push(Edge {
                to,
                line: c.line,
                tok: c.tok,
                cfg: c.cfg_feature.clone(),
                kind,
            });
        }
    }

    fn resolve_path(&self, caller: usize, segs: &[String]) -> Resolved {
        let mut segs: Vec<&str> = segs.iter().map(String::as_str).collect();
        while segs
            .first()
            .is_some_and(|s| matches!(*s, "crate" | "self" | "super") && segs.len() > 1)
        {
            segs.remove(0);
        }
        let Some(&name) = segs.last() else {
            return Resolved::External;
        };
        let item = &self.nodes[caller].item;
        if segs.len() == 1 {
            // Fn-typed parameter → dynamic call.
            if item.params.iter().any(|(p, _)| p == name) {
                return Resolved::Dynamic(format!("param:{name}"));
            }
            // Nested (shadowing) fn of this fn.
            if let Some(&idx) = self.by_id.get(&format!("{}::{name}", item.id)) {
                return Resolved::Edges(vec![idx], EdgeKind::Direct);
            }
            // Same-module free fn.
            if let Some(&idx) = self.by_id.get(&format!("{}::{name}", item.module)) {
                return Resolved::Edges(vec![idx], EdgeKind::Direct);
            }
            // Any workspace free fn with that name (imports are invisible
            // at token level; over-approximate).
            let frees: Vec<usize> = self
                .by_name
                .get(name)
                .map(|v| {
                    v.iter()
                        .copied()
                        .filter(|&i| self.nodes[i].item.self_type.is_none())
                        .collect()
                })
                .unwrap_or_default();
            if !frees.is_empty() {
                return Resolved::Edges(frees, EdgeKind::Direct);
            }
            return Resolved::External;
        }
        let qualifier = segs[segs.len() - 2];
        if qualifier == "Self" {
            if let Some(t) = &item.self_type {
                if let Some(&idx) = self.by_type.get(&(t.clone(), name.to_string())) {
                    return Resolved::Edges(vec![idx], EdgeKind::Direct);
                }
            }
        }
        if let Some(&idx) = self.by_type.get(&(qualifier.to_string(), name.to_string())) {
            return Resolved::Edges(vec![idx], EdgeKind::Direct);
        }
        // Module-path suffix match (`telemetry::metrics::inc`).
        let joined = segs.join("::");
        let hits: Vec<usize> = self
            .by_name
            .get(name)
            .map(|v| {
                v.iter()
                    .copied()
                    .filter(|&i| {
                        let id = &self.nodes[i].item.id;
                        id == &joined || id.ends_with(&format!("::{joined}"))
                    })
                    .collect()
            })
            .unwrap_or_default();
        if !hits.is_empty() {
            return Resolved::Edges(hits, EdgeKind::Direct);
        }
        Resolved::External
    }

    fn resolve_method(&self, caller: usize, name: &str, receiver: &Receiver) -> Resolved {
        let item = &self.nodes[caller].item;
        match receiver {
            Receiver::SelfChain(fields) if fields.is_empty() => {
                if let Some(t) = item.self_type.clone() {
                    if item.is_trait_decl {
                        return self.dispatch_trait(&t, name);
                    }
                    if let Some(&idx) = self.by_type.get(&(t, name.to_string())) {
                        return Resolved::Edges(vec![idx], EdgeKind::Method);
                    }
                    // Default method of the trait this impl implements.
                    if let Some(tr) = item.trait_name.clone() {
                        if let Some(&idx) = self.by_type.get(&(tr, name.to_string())) {
                            return Resolved::Edges(vec![idx], EdgeKind::Method);
                        }
                    }
                }
                self.fallback(caller, name)
            }
            Receiver::SelfChain(fields) => {
                let Some(start) = item.self_type.clone() else {
                    return self.fallback(caller, name);
                };
                self.resolve_typed_chain(caller, &start, fields, name)
            }
            Receiver::VarChain(chain) => {
                // A parameter with a known workspace type acts like `self`.
                let head = &chain[0];
                if let Some((_, ty)) = item.params.iter().find(|(p, _)| p == head) {
                    match base_type(ty) {
                        BaseType::Dyn(tr) if chain.len() == 1 => {
                            return match self.dispatch_trait(&tr, name) {
                                Resolved::External => {
                                    Resolved::Dynamic(format!("dyn:{tr}::{name}"))
                                }
                                r => r,
                            };
                        }
                        BaseType::Concrete(b) => {
                            return self.resolve_typed_chain(caller, &b, &chain[1..], name);
                        }
                        _ => {}
                    }
                }
                self.fallback(caller, name)
            }
            Receiver::Call(inner) => {
                // `<lock-field>.lock().m(…)` (possibly behind a poison-
                // recovery method): resolve `m` on the type *inside* the
                // lock, so guarded calls stay typed instead of falling
                // back by name.
                if let Some(content) = self.guard_content_type(caller, inner) {
                    if let Some(&idx) = self.by_type.get(&(content.clone(), name.to_string())) {
                        return Resolved::Edges(vec![idx], EdgeKind::Method);
                    }
                    if self.structs.contains_key(&content) {
                        return Resolved::External;
                    }
                }
                // Resolve the inner call; a unique target with a concrete
                // return type lets the chain stay typed.
                let inner_targets = match inner.as_ref() {
                    CallTarget::Path(segs) => self.resolve_path(caller, segs),
                    CallTarget::Method {
                        name: n,
                        receiver: r,
                    } => self.resolve_method(caller, n, r),
                    CallTarget::MacroUse(_) => Resolved::External,
                };
                if let Resolved::Edges(t, _) = inner_targets {
                    if let Some(&first) = t.first() {
                        match base_type(&self.nodes[first].item.ret) {
                            BaseType::Concrete(b) => {
                                if let Some(&idx) = self.by_type.get(&(b, name.to_string())) {
                                    return Resolved::Edges(vec![idx], EdgeKind::Method);
                                }
                                return Resolved::External;
                            }
                            BaseType::Generic => return Resolved::External,
                            _ => {}
                        }
                    }
                }
                self.fallback(caller, name)
            }
            Receiver::Opaque => self.fallback(caller, name),
        }
    }

    /// Walks `start.f1.f2.…` through struct field types, then resolves
    /// `name` on the final type.
    fn resolve_typed_chain(
        &self,
        caller: usize,
        start: &str,
        fields: &[String],
        name: &str,
    ) -> Resolved {
        let crate_of = |m: &str| m.split("::").next().unwrap_or("").to_string();
        let caller_crate = crate_of(&self.nodes[caller].item.module);
        let mut cur = start.to_string();
        for (pos, f) in fields.iter().enumerate() {
            let Some(defs) = self.structs.get(&cur) else {
                return self.fallback(caller, name);
            };
            let def = defs
                .iter()
                .find(|d| crate_of(&d.module) == caller_crate)
                .or_else(|| defs.first());
            let Some(field) = def.and_then(|d| d.fields.iter().find(|x| &x.name == f)) else {
                return self.fallback(caller, name);
            };
            match base_type(&field.tokens) {
                BaseType::Dyn(tr) if pos + 1 == fields.len() => {
                    return match self.dispatch_trait(&tr, name) {
                        Resolved::External => Resolved::Dynamic(format!("dyn:{tr}::{name}")),
                        r => r,
                    };
                }
                BaseType::Concrete(b) => cur = b,
                _ => return self.fallback(caller, name),
            }
        }
        if let Some(&idx) = self.by_type.get(&(cur.clone(), name.to_string())) {
            return Resolved::Edges(vec![idx], EdgeKind::Method);
        }
        // Known workspace type without this method: it is a std method on
        // a field of that type (`Vec`-wrapped etc.) — external.
        if self.structs.contains_key(&cur) {
            return Resolved::External;
        }
        self.fallback(caller, name)
    }

    /// For a `<chain>.lock()/.read()/.write()` receiver — possibly behind
    /// a poison-recovery method — the type *inside* the lock, provided
    /// the chain really ends at a `Mutex`/`RwLock` field.
    fn guard_content_type(&self, caller: usize, target: &CallTarget) -> Option<String> {
        let CallTarget::Method { name, receiver } = target else {
            return None;
        };
        match name.as_str() {
            "unwrap" | "expect" | "unwrap_or_else" => match receiver {
                Receiver::Call(inner) => self.guard_content_type(caller, inner),
                _ => None,
            },
            "lock" | "read" | "write" => {
                let item = &self.nodes[caller].item;
                let (start, fields): (String, &[String]) = match receiver {
                    Receiver::SelfChain(fields) if !fields.is_empty() => {
                        (item.self_type.clone()?, fields.as_slice())
                    }
                    Receiver::VarChain(chain) if chain.len() > 1 => {
                        let (_, ty) = item.params.iter().find(|(p, _)| p == &chain[0])?;
                        (Self::base_type_name(ty)?, &chain[1..])
                    }
                    _ => return None,
                };
                let owner = if fields.len() == 1 {
                    start
                } else {
                    self.chain_type(caller, &start, &fields[..fields.len() - 1])?
                };
                let defs = self.structs.get(&owner)?;
                let last = fields.last()?;
                let field = defs
                    .iter()
                    .find_map(|d| d.fields.iter().find(|x| &x.name == last))?;
                if !field.tokens.iter().any(|t| t == "Mutex" || t == "RwLock") {
                    return None;
                }
                Self::base_type_name(&field.tokens)
            }
            _ => None,
        }
    }

    /// Walks `start.f1…fn` through struct field types and returns the
    /// final concrete type, preferring same-crate struct definitions on
    /// name collisions.
    fn chain_type(&self, caller: usize, start: &str, fields: &[String]) -> Option<String> {
        let crate_of = |m: &str| m.split("::").next().unwrap_or("").to_string();
        let caller_crate = crate_of(&self.nodes[caller].item.module);
        let mut cur = start.to_string();
        for f in fields {
            let defs = self.structs.get(&cur)?;
            let def = defs
                .iter()
                .find(|d| crate_of(&d.module) == caller_crate)
                .or_else(|| defs.first());
            let field = def.and_then(|d| d.fields.iter().find(|x| &x.name == f))?;
            match base_type(&field.tokens) {
                BaseType::Concrete(b) => cur = b,
                _ => return None,
            }
        }
        Some(cur)
    }

    /// All impls of `tr` providing `name`, plus the trait's own default.
    fn dispatch_trait(&self, tr: &str, name: &str) -> Resolved {
        let mut targets = Vec::new();
        if let Some(types) = self.trait_impls.get(tr) {
            for t in types {
                if let Some(&idx) = self.by_type.get(&(t.clone(), name.to_string())) {
                    targets.push(idx);
                }
            }
        }
        if let Some(&idx) = self.by_type.get(&(tr.to_string(), name.to_string())) {
            // Trait-decl node: a signature-only decl has no body and acts
            // as a harmless sink; a default method carries its real body.
            targets.push(idx);
        }
        if targets.is_empty() {
            Resolved::External
        } else {
            Resolved::Edges(targets, EdgeKind::Dispatch)
        }
    }

    /// Walks `start.f1…fn` through struct field types and returns the
    /// type owning the *last* field — the lock-identity base used by the
    /// lock-order analysis (`Pool.stripes`, not `Exchange.pool.stripes`).
    pub fn owner_of_field(&self, start: &str, fields: &[String]) -> Option<String> {
        let mut cur = start.to_string();
        for f in &fields[..fields.len().checked_sub(1)?] {
            let defs = self.structs.get(&cur)?;
            let field = defs
                .iter()
                .find_map(|d| d.fields.iter().find(|x| &x.name == f))?;
            match base_type(&field.tokens) {
                BaseType::Concrete(b) => cur = b,
                _ => return None,
            }
        }
        self.structs.get(&cur)?;
        Some(cur)
    }

    /// Base type name for a token-level type (wrappers and generics
    /// stripped), shared with the lock-order analysis.
    pub fn base_type_name(tokens: &[String]) -> Option<String> {
        match base_type(tokens) {
            BaseType::Concrete(b) => Some(b),
            _ => None,
        }
    }

    /// Untyped-receiver fallback: all same-named workspace methods,
    /// unless the name is a ubiquitous std method. When the caller's own
    /// crate defines candidates, cross-crate ones are dropped — an
    /// untyped `c.lit(0)` inside `sat-solver` means one of *its* `lit`
    /// methods, not every crate's.
    fn fallback(&self, caller: usize, name: &str) -> Resolved {
        if COMMON_STD_METHODS.contains(&name) {
            return Resolved::External;
        }
        let crate_of = |m: &str| m.split("::").next().unwrap_or("").to_string();
        let caller_crate = crate_of(&self.nodes[caller].item.module);
        let hits: Vec<usize> = self
            .by_name
            .get(name)
            .map(|v| {
                v.iter()
                    .copied()
                    .filter(|&i| self.nodes[i].item.self_type.is_some())
                    .collect()
            })
            .unwrap_or_default();
        let local: Vec<usize> = hits
            .iter()
            .copied()
            .filter(|&i| crate_of(&self.nodes[i].item.module) == caller_crate)
            .collect();
        let hits = if local.is_empty() { hits } else { local };
        if hits.is_empty() {
            Resolved::External
        } else {
            Resolved::Edges(hits, EdgeKind::ByName)
        }
    }
}

enum Resolved {
    Edges(Vec<usize>, EdgeKind),
    Dynamic(String),
    External,
}

enum BaseType {
    Concrete(String),
    Dyn(String),
    Generic,
    Unknown,
}

/// Derives the base type from type tokens: skip wrappers and path
/// qualifiers, detect `dyn Trait`, treat single-capital idents as
/// generics.
fn base_type(tokens: &[String]) -> BaseType {
    let mut iter = tokens.iter().peekable();
    while let Some(t) = iter.next() {
        if t == "dyn" {
            if let Some(tr) = iter.next() {
                return BaseType::Dyn(tr.clone());
            }
            return BaseType::Unknown;
        }
        let first_upper = t.chars().next().is_some_and(|c| c.is_ascii_uppercase());
        if !first_upper {
            continue; // module segment, primitive, `mut`, lifetime-ish
        }
        if TYPE_WRAPPERS.contains(&t.as_str()) {
            continue;
        }
        if t.len() <= 2
            && t.chars()
                .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit())
        {
            return BaseType::Generic;
        }
        return BaseType::Concrete(t.clone());
    }
    BaseType::Unknown
}

// ---------------------------------------------------------------------------
// Golden facts manifest.
// ---------------------------------------------------------------------------

/// Serializes the graph into the `callgraph.facts` format: one sorted
/// line per fn (or macro). Line numbers are omitted so pure code motion
/// does not churn the manifest.
pub fn to_manifest(g: &Graph) -> String {
    let mut out = String::from(
        "# Workspace call-graph facts: per fn, its resolved workspace callees,\n\
         # effect categories, and unresolved dynamic-call sites. Golden manifest —\n\
         # CI fails on drift. Regenerate: cargo run -p xtask -- callgraph-update\n",
    );
    let mut lines: Vec<String> = Vec::new();
    for n in &g.nodes {
        lines.push(fact_line(g, n));
    }
    for m in &g.macros {
        lines.push(format!("macro {m}"));
    }
    lines.sort();
    for l in lines {
        out.push_str(&l);
        out.push('\n');
    }
    out
}

fn fact_line(g: &Graph, n: &FnNode) -> String {
    let mut effects: Vec<&str> = n
        .item
        .effects
        .iter()
        .filter(|e| !e.what.ends_with("[cfg-gated]"))
        .map(|e| e.kind.name())
        .collect();
    effects.sort();
    effects.dedup();
    let mut calls: Vec<String> = n
        .edges
        .iter()
        .map(|e| g.nodes[e.to].item.id.clone())
        .chain(n.macro_calls.iter().map(|(m, _, _)| m.clone()))
        .collect();
    calls.sort();
    calls.dedup();
    let mut dynamics: Vec<String> = n.dynamics.iter().map(|d| d.desc.clone()).collect();
    dynamics.sort();
    dynamics.dedup();
    let or_dash = |s: String| if s.is_empty() { "-".to_string() } else { s };
    format!(
        "fn {} file={} cfg={} inline={} effects={} calls={} dynamic={}",
        n.item.id,
        n.item.path,
        n.item.cfg_feature.as_deref().unwrap_or("-"),
        if n.item.is_inline { "y" } else { "n" },
        or_dash(effects.join("+")),
        or_dash(calls.join(",")),
        or_dash(dynamics.join(";")),
    )
}

/// Parses a facts manifest into `key → full line` (key = `fn <id>` or
/// `macro <id>`).
pub fn parse_manifest(text: &str) -> Result<BTreeMap<String, String>, String> {
    let mut map = BTreeMap::new();
    for (no, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(kind), Some(id)) = (parts.next(), parts.next()) else {
            return Err(format!(
                "callgraph.facts:{}: malformed line {raw:?}",
                no + 1
            ));
        };
        if kind != "fn" && kind != "macro" {
            return Err(format!(
                "callgraph.facts:{}: unknown entry kind {kind:?}",
                no + 1
            ));
        }
        map.insert(format!("{kind} {id}"), line.to_string());
    }
    Ok(map)
}

/// Compares the current graph against the committed manifest; drift
/// becomes `callgraph-drift` diagnostics with a regeneration hint.
pub fn compare(g: &Graph, manifest: &BTreeMap<String, String>, diags: &mut Vec<Diagnostic>) {
    const FACTS: &str = "crates/xtask/callgraph.facts";
    const HINT: &str = "regenerate with `cargo run -p xtask -- callgraph-update`";
    let mut current: BTreeMap<String, String> = BTreeMap::new();
    for n in &g.nodes {
        current.insert(format!("fn {}", n.item.id), fact_line(g, n));
    }
    for m in &g.macros {
        current.insert(format!("macro {m}"), format!("macro {m}"));
    }
    let mut drift: Vec<String> = Vec::new();
    for (key, line) in &current {
        match manifest.get(key) {
            None => drift.push(format!("`{key}` is new (not in the manifest)")),
            Some(old) if old != line => drift.push(format!(
                "`{key}` changed: recorded `{old}`, current `{line}`"
            )),
            _ => {}
        }
    }
    for key in manifest.keys() {
        if !current.contains_key(key) {
            drift.push(format!("`{key}` no longer exists in the workspace"));
        }
    }
    const CAP: usize = 25;
    let extra = drift.len().saturating_sub(CAP);
    for d in drift.into_iter().take(CAP) {
        diags.push(Diagnostic {
            rule: "callgraph-drift",
            path: FACTS.to_string(),
            line: 1,
            message: format!("{d}; {HINT}"),
        });
    }
    if extra > 0 {
        diags.push(Diagnostic {
            rule: "callgraph-drift",
            path: FACTS.to_string(),
            line: 1,
            message: format!("… and {extra} more drifted entries; {HINT}"),
        });
    }
}

// ---------------------------------------------------------------------------
// Transitive hot-path purity.
// ---------------------------------------------------------------------------

/// Inline-allow annotations per file: `(line, rule)` pairs, with the
/// same same-line-or-line-above semantics as `Lexed::is_allowed`.
pub type AllowMap = HashMap<String, Vec<(u32, String)>>;

/// Whether `rule` at `path:line` carries an inline allow.
pub fn allowed(allows: &AllowMap, path: &str, rule: &str, line: u32) -> bool {
    allows.get(path).is_some_and(|v| {
        v.iter()
            .any(|(l, r)| (*l == line || l + 1 == line) && r == rule)
    })
}

/// The transitive hot-path purity walk: BFS from [`HOT_PATH_ROOTS`] over
/// default-build edges; every effect in a reachable fn is a
/// `hot-path-purity` diagnostic (with the call chain), every
/// unresolvable call a `dynamic-call` diagnostic.
///
/// Suppression levers, from narrow to broad:
/// * `// xtask: allow(hot-path-purity) <why>` on the effect line — an
///   individually audited effect (amortized growth, debug-audited index);
/// * `// xtask: allow(no-index)` / `allow(no-panic)` — an already
///   audited per-file site also satisfies the transitive rule;
/// * `// xtask: allow(hot-path-call) <why>` on a call line — prunes the
///   edge itself (for `Option`-gated cold branches the walk cannot see).
pub fn hot_path_purity(g: &Graph, allows: &AllowMap, diags: &mut Vec<Diagnostic>) {
    let mut roots = Vec::new();
    for r in HOT_PATH_ROOTS {
        match g.by_id(r) {
            Some(idx) => roots.push(idx),
            None => diags.push(Diagnostic {
                rule: "hot-path-purity",
                path: "crates/sat-solver/src/solver.rs".to_string(),
                line: 1,
                message: format!(
                    "hot-path root `{r}` not found in the call graph; if the fn was \
                     renamed, update HOT_PATH_ROOTS in crates/xtask/src/callgraph.rs"
                ),
            }),
        }
    }
    // BFS with parent links for chain reconstruction.
    let mut parent: HashMap<usize, usize> = HashMap::new();
    let mut seen: HashSet<usize> = roots.iter().copied().collect();
    let mut queue: VecDeque<usize> = roots.iter().copied().collect();
    while let Some(idx) = queue.pop_front() {
        let node = &g.nodes[idx];
        for e in &node.edges {
            if e.cfg.is_some() {
                continue; // compiled out of default builds
            }
            if allowed(allows, &node.item.path, "hot-path-call", e.line) {
                continue; // audited cold edge
            }
            let callee = &g.nodes[e.to];
            if callee.item.cfg_feature.is_some() {
                continue;
            }
            if seen.insert(e.to) {
                parent.insert(e.to, idx);
                queue.push_back(e.to);
            }
        }
    }
    let chain = |mut idx: usize| -> String {
        let mut parts = vec![short_id(&g.nodes[idx].item.id)];
        let mut hops = 0;
        while let Some(&p) = parent.get(&idx) {
            parts.push(short_id(&g.nodes[p].item.id));
            idx = p;
            hops += 1;
            if hops >= 6 {
                parts.push("…".to_string());
                break;
            }
        }
        parts.reverse();
        parts.join(" → ")
    };
    let mut order: Vec<usize> = seen.iter().copied().collect();
    order.sort();
    for idx in order {
        let node = &g.nodes[idx];
        let path = &node.item.path;
        for ef in &node.item.effects {
            if ef.what.ends_with("[cfg-gated]") {
                continue;
            }
            let equivalent = match ef.kind {
                EffectKind::Index => Some("no-index"),
                EffectKind::Panic => Some("no-panic"),
                _ => None,
            };
            if allowed(allows, path, "hot-path-purity", ef.line)
                || equivalent.is_some_and(|r| allowed(allows, path, r, ef.line))
            {
                continue;
            }
            diags.push(Diagnostic {
                rule: "hot-path-purity",
                path: path.clone(),
                line: ef.line,
                message: format!(
                    "{} ({}) is reachable from the solver hot path ({}); keep the hot \
                     path pure, or annotate the audited site with \
                     `// xtask: allow(hot-path-purity) <why>`",
                    ef.what,
                    ef.kind.name(),
                    chain(idx)
                ),
            });
        }
        for d in &node.dynamics {
            if d.cfg.is_some() || allowed(allows, path, "dynamic-call", d.line) {
                continue;
            }
            diags.push(Diagnostic {
                rule: "dynamic-call",
                path: path.clone(),
                line: d.line,
                message: format!(
                    "unresolvable dynamic call ({}) on the solver hot path ({}); purity \
                     cannot be proven through it — audit the possible targets and \
                     annotate with `// xtask: allow(dynamic-call) <targets>`",
                    d.desc,
                    chain(idx)
                ),
            });
        }
        for (m, line, cfg) in &node.macro_calls {
            if cfg.is_some() || allowed(allows, path, "hot-path-purity", *line) {
                continue;
            }
            diags.push(Diagnostic {
                rule: "hot-path-purity",
                path: path.clone(),
                line: *line,
                message: format!(
                    "expansion of macro-opaque `{}` on the solver hot path ({}); the \
                     macro body is not analyzed — audit it and annotate with \
                     `// xtask: allow(hot-path-purity) <why>`",
                    short_id(m),
                    chain(idx)
                ),
            });
        }
    }
}

/// Last two id segments, for readable chains (`Solver::propagate`).
pub fn short_id(id: &str) -> String {
    let parts: Vec<&str> = id.rsplit("::").take(2).collect();
    parts.into_iter().rev().collect::<Vec<_>>().join("::")
}

// ---------------------------------------------------------------------------
// `cargo xtask callgraph --dot FN`.
// ---------------------------------------------------------------------------

/// Renders the subgraph reachable from fns matching `pattern` (exact id,
/// id suffix, or bare name) as Graphviz DOT. Feature-gated edges are
/// dashed and labeled with their gate.
pub fn dot(g: &Graph, pattern: &str) -> Result<String, String> {
    let mut roots: Vec<usize> = (0..g.nodes.len())
        .filter(|&i| {
            let id = &g.nodes[i].item.id;
            id == pattern
                || id.ends_with(&format!("::{pattern}"))
                || g.nodes[i].item.name == pattern
        })
        .collect();
    if roots.is_empty() {
        let near: Vec<&str> = g
            .nodes
            .iter()
            .filter(|n| n.item.id.contains(pattern))
            .take(8)
            .map(|n| n.item.id.as_str())
            .collect();
        return Err(if near.is_empty() {
            format!("no fn matches `{pattern}`")
        } else {
            format!("no fn matches `{pattern}`; close ids: {}", near.join(", "))
        });
    }
    roots.sort();
    let mut seen: HashSet<usize> = roots.iter().copied().collect();
    let mut queue: VecDeque<usize> = roots.iter().copied().collect();
    let mut edges: Vec<(usize, usize, Option<String>, EdgeKind)> = Vec::new();
    while let Some(idx) = queue.pop_front() {
        for e in &g.nodes[idx].edges {
            edges.push((idx, e.to, e.cfg.clone(), e.kind));
            if seen.insert(e.to) {
                queue.push_back(e.to);
            }
        }
    }
    let mut out = String::from("digraph callgraph {\n  rankdir=LR;\n  node [shape=box];\n");
    let mut order: Vec<usize> = seen.iter().copied().collect();
    order.sort();
    for idx in order {
        let n = &g.nodes[idx];
        let mut kinds: Vec<&str> = n
            .item
            .effects
            .iter()
            .filter(|e| !e.what.ends_with("[cfg-gated]"))
            .map(|e| e.kind.name())
            .collect();
        kinds.sort();
        kinds.dedup();
        let label = if kinds.is_empty() {
            short_id(&n.item.id)
        } else {
            format!("{}\\n[{}]", short_id(&n.item.id), kinds.join("+"))
        };
        let style = if roots.contains(&idx) {
            ", style=filled, fillcolor=lightyellow"
        } else {
            ""
        };
        out.push_str(&format!(
            "  \"{}\" [label=\"{}\", tooltip=\"{}:{}\"{}];\n",
            n.item.id, label, n.item.path, n.item.line, style
        ));
    }
    edges.sort_by_key(|e| (e.0, e.1));
    edges.dedup_by(|a, b| a.0 == b.0 && a.1 == b.1 && a.2 == b.2);
    for (from, to, cfg, kind) in edges {
        // Dotted = heuristic by-name edge, blue = dyn dispatch, dashed =
        // feature-gated — the triage cues for reading a `--dot` graph.
        let mut attrs: Vec<String> = Vec::new();
        match kind {
            EdgeKind::ByName => attrs.push("style=dotted, color=gray40".to_string()),
            EdgeKind::Dispatch => attrs.push("color=blue".to_string()),
            EdgeKind::Direct | EdgeKind::Method => {}
        }
        if let Some(f) = cfg {
            attrs.push(format!("style=dashed, label=\"cfg({f})\""));
        }
        let attrs = if attrs.is_empty() {
            String::new()
        } else {
            format!(" [{}]", attrs.join(", "))
        };
        out.push_str(&format!(
            "  \"{}\" -> \"{}\"{};\n",
            g.nodes[from].item.id, g.nodes[to].item.id, attrs
        ));
    }
    out.push_str("}\n");
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::extract_file;
    use crate::lexer::{lex, strip_test_items};

    fn facts(path: &str, src: &str) -> FileFacts {
        let lexed = lex(src);
        let tokens = strip_test_items(&lexed.tokens);
        extract_file(path, src, tokens)
    }

    fn graph(files: &[(&str, &str)]) -> Graph {
        Graph::build(files.iter().map(|(p, s)| facts(p, s)).collect())
    }

    fn purity_diags(g: &Graph) -> Vec<Diagnostic> {
        let mut diags = Vec::new();
        hot_path_purity(g, &AllowMap::new(), &mut diags);
        diags
    }

    /// The acceptance-criteria regression: an allocating helper two call
    /// hops away from `propagate`, in another file, is caught with its
    /// chain spelled out.
    #[test]
    fn allocating_helper_two_hops_from_propagate_is_caught() {
        let solver = "pub struct Solver { scratch: Scratch }\n\
                      impl Solver {\n    fn propagate(&mut self) -> Option<u32> {\n        helper_a(self);\n        None\n    }\n\
                      fn analyze(&mut self) {}\n    fn lit_redundant(&mut self) -> bool { false }\n}";
        let util = "pub(crate) fn helper_a(s: &mut Solver) { helper_b(s) }\n\
                    fn helper_b(s: &mut Solver) {\n    s.scratch.grow();\n}\n\
                    pub struct Scratch { xs: Vec<u32> }\n\
                    impl Scratch {\n    fn grow(&mut self) {\n        self.xs.push(1);\n    }\n}";
        let varmap = "pub(crate) fn at() {}\n\
                      pub struct VarMap;\nimpl VarMap { pub fn get(&self) {} pub fn get_mut(&mut self) {} }\n\
                      pub struct LitMap;\nimpl LitMap { pub fn get_mut(&mut self) {} }";
        let g = graph(&[
            ("crates/sat-solver/src/solver.rs", solver),
            ("crates/sat-solver/src/util.rs", util),
            ("crates/sat-solver/src/varmap.rs", varmap),
        ]);
        let diags = purity_diags(&g);
        let alloc: Vec<&Diagnostic> = diags
            .iter()
            .filter(|d| d.rule == "hot-path-purity" && d.message.contains("push"))
            .collect();
        assert_eq!(alloc.len(), 1, "{diags:?}");
        assert_eq!(alloc[0].path, "crates/sat-solver/src/util.rs");
        assert!(
            alloc[0].message.contains("Solver::propagate")
                && alloc[0].message.contains("util::helper_a")
                && alloc[0].message.contains("Scratch::grow"),
            "chain missing: {}",
            alloc[0].message
        );
    }

    #[test]
    fn cfg_gated_call_sites_and_fns_are_not_walked() {
        let solver = "pub struct Solver;\n\
                      impl Solver {\n    fn propagate(&mut self) -> Option<u32> {\n        #[cfg(feature = \"trace\")]\n        traced(self);\n        None\n    }\n\
                      fn analyze(&mut self) {}\n    fn lit_redundant(&mut self) -> bool { false }\n}\n\
                      #[cfg(feature = \"trace\")]\nfn traced(_s: &mut Solver) { let v = vec![1]; drop(v); }";
        let varmap = "pub(crate) fn at() {}\n\
                      pub struct VarMap;\nimpl VarMap { pub fn get(&self) {} pub fn get_mut(&mut self) {} }\n\
                      pub struct LitMap;\nimpl LitMap { pub fn get_mut(&mut self) {} }";
        let g = graph(&[
            ("crates/sat-solver/src/solver.rs", solver),
            ("crates/sat-solver/src/varmap.rs", varmap),
        ]);
        let diags = purity_diags(&g);
        assert!(
            diags.iter().all(|d| !d.message.contains("vec!")),
            "{diags:?}"
        );
    }

    #[test]
    fn dynamic_calls_on_hot_path_must_be_reported() {
        let solver = "pub struct Solver { policy: Box<dyn Policy> }\n\
                      impl Solver {\n    fn propagate(&mut self) -> Option<u32> {\n        self.policy.score(1);\n        None\n    }\n\
                      fn analyze(&mut self) {}\n    fn lit_redundant(&mut self) -> bool { false }\n}";
        let varmap = "pub(crate) fn at() {}\n\
                      pub struct VarMap;\nimpl VarMap { pub fn get(&self) {} pub fn get_mut(&mut self) {} }\n\
                      pub struct LitMap;\nimpl LitMap { pub fn get_mut(&mut self) {} }";
        // No workspace impl of Policy exists → dynamic-call diagnostic.
        let g = graph(&[
            ("crates/sat-solver/src/solver.rs", solver),
            ("crates/sat-solver/src/varmap.rs", varmap),
        ]);
        let diags = purity_diags(&g);
        assert!(
            diags
                .iter()
                .any(|d| d.rule == "dynamic-call" && d.message.contains("dyn:Policy::score")),
            "{diags:?}"
        );
        // With an impl in the workspace, the same site dispatches to it
        // instead, and the impl's effects surface transitively.
        let imp = "pub struct Greedy;\n\
                   impl Policy for Greedy {\n    fn score(&mut self, x: u32) -> u32 { let mut v = Vec::new(); v.push(x); x }\n}";
        let g2 = graph(&[
            ("crates/sat-solver/src/solver.rs", solver),
            ("crates/sat-solver/src/policy.rs", imp),
            ("crates/sat-solver/src/varmap.rs", varmap),
        ]);
        let diags2 = purity_diags(&g2);
        assert!(
            diags2.iter().all(|d| d.rule != "dynamic-call"),
            "{diags2:?}"
        );
        assert!(
            diags2
                .iter()
                .any(|d| d.rule == "hot-path-purity" && d.path.ends_with("policy.rs")),
            "{diags2:?}"
        );
    }

    #[test]
    fn inline_allows_prune_effects_and_edges() {
        let solver = "pub struct Solver;\n\
                      impl Solver {\n    fn propagate(&mut self) -> Option<u32> {\n        cold_path(self);\n        None\n    }\n\
                      fn analyze(&mut self) {}\n    fn lit_redundant(&mut self) -> bool { false }\n}\n\
                      fn cold_path(_s: &mut Solver) { let mut v = Vec::new(); v.push(1); }";
        let varmap = "pub(crate) fn at() {}\n\
                      pub struct VarMap;\nimpl VarMap { pub fn get(&self) {} pub fn get_mut(&mut self) {} }\n\
                      pub struct LitMap;\nimpl LitMap { pub fn get_mut(&mut self) {} }";
        let g = graph(&[
            ("crates/sat-solver/src/solver.rs", solver),
            ("crates/sat-solver/src/varmap.rs", varmap),
        ]);
        assert!(purity_diags(&g).iter().any(|d| d.rule == "hot-path-purity"));
        // An edge-pruning allow on the call line silences the whole
        // subtree.
        let mut allows = AllowMap::new();
        allows.insert(
            "crates/sat-solver/src/solver.rs".to_string(),
            vec![(4, "hot-path-call".to_string())],
        );
        let mut diags = Vec::new();
        hot_path_purity(&g, &allows, &mut diags);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn manifest_roundtrip_and_drift() {
        let src = "pub struct S;\nimpl S { fn a(&self) { self.b() } fn b(&self) {} }";
        let g = graph(&[("crates/core/src/lib.rs", src)]);
        let manifest = parse_manifest(&to_manifest(&g)).expect("parses");
        let mut diags = Vec::new();
        compare(&g, &manifest, &mut diags);
        assert!(diags.is_empty(), "{diags:?}");
        // A graph change drifts.
        let src2 = "pub struct S;\nimpl S { fn a(&self) {} fn b(&self) {} }";
        let g2 = graph(&[("crates/core/src/lib.rs", src2)]);
        let mut diags2 = Vec::new();
        compare(&g2, &manifest, &mut diags2);
        assert!(
            diags2
                .iter()
                .any(|d| d.rule == "callgraph-drift" && d.message.contains("callgraph-update")),
            "{diags2:?}"
        );
    }

    #[test]
    fn dot_prints_reachable_subgraph() {
        let src = "pub struct S;\nimpl S { fn a(&self) { self.b() } fn b(&self) { helper() } }\nfn helper() {}\nfn unrelated() {}";
        let g = graph(&[("crates/core/src/lib.rs", src)]);
        let out = dot(&g, "S::a").expect("root found");
        assert!(out.contains("\"core::S::a\" -> \"core::S::b\""), "{out}");
        assert!(out.contains("core::helper"), "{out}");
        assert!(!out.contains("unrelated"), "{out}");
        assert!(dot(&g, "nope").is_err());
    }
}
