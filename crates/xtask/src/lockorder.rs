//! Lock-order and lock-panic analysis over the workspace call graph.
//!
//! From each fn's token stream we recover every `Mutex` acquisition site
//! and the *guard scope* it creates (DESIGN.md §14):
//!
//! * a `let`-bound guard (`let g = m.lock()…;`) is live from the end of
//!   its `let` statement to the close of the enclosing block, truncated
//!   at an explicit `drop(g)`;
//! * a temporary guard (`m.lock().unwrap().push(x);`) is live for the
//!   rest of its statement — the poisoning-recovery chain immediately
//!   after `.lock()` (`.unwrap()`, `.unwrap_or_else(…)`, `.ok()`) runs
//!   on the `LockResult` *before* the guard exists and is skipped;
//! * a guard-returning fn (`fn lock_stripe(…) -> Option<MutexGuard<…>>`)
//!   propagates its acquisition to every caller, where the call site is
//!   treated exactly like a direct `.lock()`.
//!
//! Lock identity is `Type.field` (`SharedClausePool.stripes`) — element
//! granularity inside a striped collection is deliberately collapsed, so
//! acquiring a second stripe while holding one shows up as a self-edge
//! that must be justified (ordered indices) or restructured. Statics are
//! `module::NAME`.
//!
//! Two rules fire on top of the per-fn scopes plus the call graph's
//! transitive closure (all build configurations — a deadlock behind a
//! feature flag is still a deadlock):
//!
//! * `lock-order` — a held-while-acquiring edge `A → B` that is part of
//!   a cycle (including the self-edge double-acquire case);
//! * `lock-panic` — a panic-capable or IO (blocking) effect, or a call
//!   that can transitively reach one, while a guard is held. Raw
//!   indexing is *not* flagged here: the workspace's audited-indexing
//!   discipline (`no-index` + debug bound audits) covers it, and
//!   treating every slice access as panic-capable would drown the rule.

use crate::callgraph::{allowed, short_id, AllowMap, Graph};
use crate::extract::{CallTarget, EffectKind, Receiver};
use crate::lexer::Token;
use crate::rules::Diagnostic;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Return-type tokens that mark a fn as guard-returning.
const GUARD_TYPES: &[&str] = &["MutexGuard", "RwLockReadGuard", "RwLockWriteGuard"];

/// Methods chained directly onto `.lock()` that operate on the
/// `LockResult` (poison recovery), not on the live guard.
const RECOVERY_METHODS: &[&str] = &["unwrap", "expect", "unwrap_or_else", "map_err", "ok"];

/// One acquisition site inside a fn body.
struct Acq {
    /// Lock identity (`Type.field` or `module::STATIC`).
    lock: String,
    /// Token index of the acquiring call name.
    tok: usize,
    /// Source line.
    line: u32,
    /// Guard liveness as a token range in the file stream.
    scope: (usize, usize),
}

/// Per-fn scan state reused across the two acquisition passes.
struct ScanCtx {
    node: usize,
    /// `let` statements: (binding name, `=` tok, `;` tok).
    lets: Vec<(String, usize, usize)>,
    /// Local alias → lock base (`stripe` → `SharedClausePool.stripes`).
    aliases: HashMap<String, String>,
    /// Brace pairs inside the body, for enclosing-block lookup.
    braces: Vec<(usize, usize)>,
    body: (usize, usize),
}

/// Entry point: analyzes every fn with a body, emits `lock-order` and
/// `lock-panic` diagnostics (inline-allow aware).
pub fn lock_analysis(g: &Graph, allows: &AllowMap, diags: &mut Vec<Diagnostic>) {
    // Pass A: per-fn direct `.lock()` acquisitions and guard-returning
    // fns' propagated lock.
    let mut ctxs: Vec<ScanCtx> = Vec::new();
    let mut acqs: Vec<Vec<Acq>> = (0..g.nodes.len()).map(|_| Vec::new()).collect();
    let mut returned: HashMap<usize, String> = HashMap::new();
    for (idx, slot) in acqs.iter_mut().enumerate() {
        if let Some(ctx) = scan_ctx(g, idx) {
            let direct = direct_acqs(g, &ctx);
            if g.nodes[idx]
                .item
                .ret
                .iter()
                .any(|t| GUARD_TYPES.contains(&t.as_str()))
            {
                if let Some(first) = direct.iter().min_by_key(|a| a.tok) {
                    returned.insert(idx, first.lock.clone());
                }
            }
            *slot = direct;
            ctxs.push(ctx);
        }
    }
    // Pass B: calls to guard-returning fns are acquisitions in the
    // caller, with the same scope inference.
    for ctx in &ctxs {
        let node = &g.nodes[ctx.node];
        let Some(ff) = g.file_tokens(&node.item.path) else {
            continue;
        };
        let seen: BTreeSet<usize> = acqs[ctx.node].iter().map(|a| a.tok).collect();
        let mut extra = Vec::new();
        for e in &node.edges {
            if seen.contains(&e.tok) || extra.iter().any(|a: &Acq| a.tok == e.tok) {
                continue;
            }
            if let Some(lock) = returned.get(&e.to) {
                extra.push(Acq {
                    lock: lock.clone(),
                    tok: e.tok,
                    line: e.line,
                    scope: guard_scope(&ff.tokens, ctx, e.tok),
                });
            }
        }
        acqs[ctx.node].extend(extra);
    }
    // Transitive closures over the full call graph: which locks a fn can
    // acquire, and whether it can panic or block on IO.
    let t_acquires = fixpoint_locks(g, &acqs);
    let panics = fixpoint_panics(g);

    let mut out: BTreeSet<(String, u32, &'static str, String)> = BTreeSet::new();
    // (lock A, lock B) → witness (path, line, fn id).
    let mut held: BTreeMap<(String, String), (String, u32, String)> = BTreeMap::new();
    for ctx in &ctxs {
        let node = &g.nodes[ctx.node];
        let path = &node.item.path;
        for a in &acqs[ctx.node] {
            let (s, e) = a.scope;
            // Inner direct acquisitions while `a` is held.
            for b in &acqs[ctx.node] {
                if b.tok > s && b.tok < e {
                    held.entry((a.lock.clone(), b.lock.clone())).or_insert((
                        path.clone(),
                        b.line,
                        node.item.id.clone(),
                    ));
                }
            }
            // Calls made while `a` is held.
            for edge in &node.edges {
                if edge.tok <= s || edge.tok >= e {
                    continue;
                }
                for l in t_acquires.get(&edge.to).into_iter().flatten() {
                    held.entry((a.lock.clone(), l.clone())).or_insert((
                        path.clone(),
                        edge.line,
                        node.item.id.clone(),
                    ));
                }
                if let Some(site) = panics.get(&edge.to) {
                    if !allowed(allows, path, "lock-panic", edge.line) {
                        out.insert((
                            path.clone(),
                            edge.line,
                            "lock-panic",
                            format!(
                                "call to `{}` while holding `{}` can reach {}; shrink the \
                                 critical section (drop the guard first) or annotate with \
                                 `// xtask: allow(lock-panic) <why>`",
                                short_id(&g.nodes[edge.to].item.id),
                                a.lock,
                                site
                            ),
                        ));
                    }
                }
            }
            // Panic/IO effects of this fn inside the guard scope.
            for ef in &node.item.effects {
                if ef.tok <= s || ef.tok >= e {
                    continue;
                }
                if !matches!(ef.kind, EffectKind::Panic | EffectKind::Io) {
                    continue;
                }
                if allowed(allows, path, "lock-panic", ef.line) {
                    continue;
                }
                out.insert((
                    path.clone(),
                    ef.line,
                    "lock-panic",
                    format!(
                        "{} while holding `{}`; a panic here poisons the lock (and IO \
                         blocks everyone waiting on it) — drop the guard first or \
                         annotate with `// xtask: allow(lock-panic) <why>`",
                        ef.what, a.lock
                    ),
                ));
            }
        }
    }
    // Cycle detection on the held-while-acquiring lock graph.
    let mut adj: BTreeMap<&String, Vec<&String>> = BTreeMap::new();
    for (a, b) in held.keys() {
        adj.entry(a).or_default().push(b);
    }
    let reaches = |from: &String, to: &String| -> bool {
        let mut stack = vec![from];
        let mut seen: BTreeSet<&String> = BTreeSet::new();
        while let Some(x) = stack.pop() {
            if x == to {
                return true;
            }
            if seen.insert(x) {
                if let Some(next) = adj.get(x) {
                    stack.extend(next.iter().copied());
                }
            }
        }
        false
    };
    for ((a, b), (path, line, fn_id)) in &held {
        if allowed(allows, path, "lock-order", *line) {
            continue;
        }
        if a == b {
            out.insert((
                path.clone(),
                *line,
                "lock-order",
                format!(
                    "`{}` acquired in `{}` while a guard for it is already held \
                     (double-acquire / stripe self-edge); if the two acquisitions are \
                     provably distinct and ordered, annotate with \
                     `// xtask: allow(lock-order) <why>`",
                    a,
                    short_id(fn_id)
                ),
            ));
        } else if reaches(b, a) {
            let other = held
                .iter()
                .find(|((x, _), _)| x == b)
                .map(|(_, (p, l, _))| format!("{p}:{l}"))
                .unwrap_or_else(|| "elsewhere".to_string());
            out.insert((
                path.clone(),
                *line,
                "lock-order",
                format!(
                    "lock-order cycle: `{}` is acquired here while `{}` is held (in \
                     `{}`), but the reverse order exists (see {}); pick one global \
                     order or annotate with `// xtask: allow(lock-order) <why>`",
                    b,
                    a,
                    short_id(fn_id),
                    other
                ),
            ));
        }
    }
    for (path, line, rule, message) in out {
        diags.push(Diagnostic {
            rule,
            path,
            line,
            message,
        });
    }
}

/// Builds the per-fn scan state: `let` statements, lock aliases, brace
/// pairs.
fn scan_ctx(g: &Graph, idx: usize) -> Option<ScanCtx> {
    let node = &g.nodes[idx];
    let (open, close) = node.item.body?;
    let ff = g.file_tokens(&node.item.path)?;
    let toks = &ff.tokens;
    let mut braces = Vec::new();
    let mut stack = Vec::new();
    for (k, t) in toks.iter().enumerate().take(close + 1).skip(open) {
        if t.is_punct("{") {
            stack.push(k);
        } else if t.is_punct("}") {
            if let Some(o) = stack.pop() {
                braces.push((o, k));
            }
        }
    }
    let mut ctx = ScanCtx {
        node: idx,
        lets: Vec::new(),
        aliases: HashMap::new(),
        braces,
        body: (open, close),
    };
    let self_base = node
        .item
        .self_type
        .clone()
        .unwrap_or_else(|| node.item.module.clone());
    let mut k = open + 1;
    while k < close {
        if !toks[k].is_ident("let") || toks[k - 1].is_ident("if") || toks[k - 1].is_ident("while") {
            k += 1;
            continue;
        }
        // Find `=` then `;` at delimiter depth 0 (handles let-else).
        let mut depth = 0i32;
        let mut eq = None;
        let mut semi = None;
        let mut colon = None;
        let mut m = k + 1;
        while m < close {
            let t = &toks[m];
            if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
                depth += 1;
            } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
                depth -= 1;
            } else if depth == 0 && t.is_punct(":") && eq.is_none() && colon.is_none() {
                colon = Some(m);
            } else if depth == 0 && t.is_punct("=") && eq.is_none() {
                eq = Some(m);
            } else if depth == 0 && t.is_punct(";") {
                semi = Some(m);
                break;
            }
            m += 1;
        }
        let (Some(eq), Some(semi)) = (eq, semi) else {
            k += 1;
            continue;
        };
        // Binding name: last lowercase ident in the pattern (skips
        // `mut`, `ref`, and `Ok`/`Some` constructors).
        let pat_end = colon.unwrap_or(eq).min(eq);
        let name = toks[k + 1..pat_end]
            .iter()
            .rfind(|t| {
                t.is_ident_kind()
                    && !t.is_ident("mut")
                    && !t.is_ident("ref")
                    && t.text
                        .chars()
                        .next()
                        .is_some_and(|c| c.is_lowercase() || c == '_')
            })
            .map(|t| t.text.clone());
        if let Some(name) = name {
            // Alias: an initializer reading `self.field…` or a lock
            // static binds the name to that lock base.
            if let Some(base) = init_lock_base(g, &self_base, toks, eq + 1, semi) {
                ctx.aliases.insert(name.clone(), base);
            }
            ctx.lets.push((name, eq, semi));
        }
        k = semi + 1;
    }
    Some(ctx)
}

/// Lock base named by an initializer token range: `self.f1.f2…` resolved
/// through struct field types, or a known lock static.
fn init_lock_base(
    g: &Graph,
    self_base: &str,
    toks: &[Token],
    start: usize,
    end: usize,
) -> Option<String> {
    let mut m = start;
    while m < end {
        let t = &toks[m];
        if t.is_ident("self") && m + 2 < end && toks[m + 1].is_punct(".") {
            let mut fields = Vec::new();
            let mut p = m + 2;
            while p < end && toks[p].is_ident_kind() {
                // Stop at a method call segment (`.get(…)`).
                if p + 1 < end && toks[p + 1].is_punct("(") {
                    break;
                }
                fields.push(toks[p].text.clone());
                if p + 2 < end && toks[p + 1].is_punct(".") {
                    p += 2;
                } else {
                    break;
                }
            }
            if !fields.is_empty() {
                return Some(field_lock_id(g, self_base, &fields));
            }
        }
        if t.is_ident_kind() {
            if let Some(module) = g.lock_statics.get(&t.text) {
                return Some(format!("{module}::{}", t.text));
            }
        }
        m += 1;
    }
    None
}

/// `Type.field` lock id for a field chain, walking intermediate field
/// types where the struct definitions are known.
fn field_lock_id(g: &Graph, start: &str, fields: &[String]) -> String {
    let last = fields.last().map(String::as_str).unwrap_or("");
    match g.owner_of_field(start, fields) {
        Some(owner) => format!("{owner}.{last}"),
        None => format!("{start}.{}", fields.join(".")),
    }
}

/// Direct `.lock()` acquisitions of one fn, with their guard scopes.
fn direct_acqs(g: &Graph, ctx: &ScanCtx) -> Vec<Acq> {
    let node = &g.nodes[ctx.node];
    let Some(ff) = g.file_tokens(&node.item.path) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for ef in &node.item.effects {
        if ef.kind != EffectKind::Lock {
            continue;
        }
        let recv = node.item.calls.iter().find_map(|c| match &c.target {
            CallTarget::Method { name, receiver } if c.tok == ef.tok && name == "lock" => {
                Some(receiver.clone())
            }
            _ => None,
        });
        let lock = match recv {
            Some(r) => receiver_lock_id(g, ctx, &r, ef.line),
            None => format!("{}.<expr>:{}", node.item.module, ef.line),
        };
        out.push(Acq {
            lock,
            tok: ef.tok,
            line: ef.line,
            scope: guard_scope(&ff.tokens, ctx, ef.tok),
        });
    }
    out
}

/// Lock identity for an acquisition receiver.
fn receiver_lock_id(g: &Graph, ctx: &ScanCtx, recv: &Receiver, line: u32) -> String {
    let item = &g.nodes[ctx.node].item;
    let self_base = item
        .self_type
        .clone()
        .unwrap_or_else(|| item.module.clone());
    match recv {
        Receiver::SelfChain(fields) if !fields.is_empty() => field_lock_id(g, &self_base, fields),
        Receiver::SelfChain(_) => self_base,
        Receiver::VarChain(chain) => {
            let head = &chain[0];
            if let Some(a) = ctx.aliases.get(head) {
                return a.clone();
            }
            if let Some(module) = g.lock_statics.get(head) {
                return format!("{module}::{head}");
            }
            if let Some((_, ty)) = item.params.iter().find(|(p, _)| p == head) {
                if let Some(base) = Graph::base_type_name(ty) {
                    if chain.len() > 1 {
                        return field_lock_id(g, &base, &chain[1..]);
                    }
                    return base;
                }
            }
            format!("{}.{}", item.module, chain.join("."))
        }
        Receiver::Call(inner) => call_lock_base(g, ctx, inner)
            .unwrap_or_else(|| format!("{}.<call>:{line}", item.module)),
        Receiver::Opaque => format!("{}.<opaque>:{line}", item.module),
    }
}

/// Lock base of a call expression used as a lock receiver
/// (`collector().lock()`, `self.pool.handle().lock()`).
fn call_lock_base(g: &Graph, ctx: &ScanCtx, target: &CallTarget) -> Option<String> {
    let item = &g.nodes[ctx.node].item;
    match target {
        CallTarget::Path(segs) => {
            let name = segs.last()?;
            let id = format!("{}::{name}", item.module);
            if let Some(idx) = g.by_id(&id) {
                return Some(g.nodes[idx].item.id.clone());
            }
            // Any unique workspace free fn with the name: its id is a
            // stable identity for the lock it hands out.
            Some(format!("fn:{name}"))
        }
        CallTarget::Method { receiver, .. } => match receiver {
            Receiver::SelfChain(fields) if !fields.is_empty() => {
                let base = item
                    .self_type
                    .clone()
                    .unwrap_or_else(|| item.module.clone());
                Some(field_lock_id(g, &base, fields))
            }
            Receiver::VarChain(chain) => {
                let head = &chain[0];
                if let Some(a) = ctx.aliases.get(head) {
                    return Some(a.clone());
                }
                g.lock_statics
                    .get(head)
                    .map(|module| format!("{module}::{head}"))
            }
            _ => None,
        },
        CallTarget::MacroUse(_) => None,
    }
}

/// Guard scope for an acquisition at `tok`: `let`-bound (statement end →
/// enclosing block close, truncated at `drop(name)`) or temporary (after
/// the recovery chain → statement end; an `{` at depth 0 — the `if let`
/// body — extends through its block).
fn guard_scope(toks: &[Token], ctx: &ScanCtx, tok: usize) -> (usize, usize) {
    let (_, body_close) = ctx.body;
    for (name, eq, semi) in &ctx.lets {
        if tok > *eq && tok < *semi {
            let close = enclosing_close(&ctx.braces, *semi).unwrap_or(body_close);
            let mut end = close;
            // `drop(name)` inside the scope ends it early.
            let mut m = semi + 1;
            while m + 3 <= close {
                if toks[m].is_ident("drop")
                    && toks[m + 1].is_punct("(")
                    && toks[m + 2].is_ident(name)
                    && toks[m + 3].is_punct(")")
                {
                    end = m;
                    break;
                }
                m += 1;
            }
            return (*semi, end);
        }
    }
    // Temporary guard: start after the call's arguments and any poison
    // recovery chained straight onto `.lock()`.
    let mut p = tok + 1;
    if p < toks.len() && toks[p].is_punct("(") {
        p = match_open(toks, p, body_close, "(", ")");
    }
    loop {
        if p + 2 < toks.len()
            && toks[p + 1].is_punct(".")
            && toks[p + 2].is_ident_kind()
            && RECOVERY_METHODS.contains(&toks[p + 2].text.as_str())
            && p + 3 < toks.len()
            && toks[p + 3].is_punct("(")
        {
            p = match_open(toks, p + 3, body_close, "(", ")");
        } else {
            break;
        }
    }
    let start = p;
    let mut depth = 0i32;
    let mut m = p + 1;
    while m < body_close {
        let t = &toks[m];
        if t.is_punct("(") || t.is_punct("[") {
            depth += 1;
        } else if t.is_punct(")") || t.is_punct("]") {
            if depth == 0 {
                return (start, m); // approximation: argument-position
                                   // temporary ends with its call
            }
            depth -= 1;
        } else if t.is_punct("{") && depth == 0 {
            return (start, match_open(toks, m, body_close, "{", "}"));
        } else if t.is_punct(";") && depth == 0 {
            return (start, m);
        }
        m += 1;
    }
    (start, body_close)
}

/// Index of the token closing the delimiter opened at `open`.
fn match_open(toks: &[Token], open: usize, limit: usize, o: &str, c: &str) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while i <= limit && i < toks.len() {
        if toks[i].is_punct(o) {
            depth += 1;
        } else if toks[i].is_punct(c) {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
        i += 1;
    }
    limit
}

/// Innermost brace pair containing `tok`.
fn enclosing_close(braces: &[(usize, usize)], tok: usize) -> Option<usize> {
    braces
        .iter()
        .filter(|(o, c)| *o < tok && tok < *c)
        .min_by_key(|(o, c)| c - o)
        .map(|(_, c)| *c)
}

/// Transitive lock acquisitions per fn (fixpoint over all edges).
fn fixpoint_locks(g: &Graph, acqs: &[Vec<Acq>]) -> HashMap<usize, BTreeSet<String>> {
    let mut sets: HashMap<usize, BTreeSet<String>> = HashMap::new();
    for (idx, list) in acqs.iter().enumerate() {
        if !list.is_empty() {
            sets.insert(idx, list.iter().map(|a| a.lock.clone()).collect());
        }
    }
    loop {
        let mut changed = false;
        for idx in 0..g.nodes.len() {
            let mut add: BTreeSet<String> = BTreeSet::new();
            for e in &g.nodes[idx].edges {
                if let Some(s) = sets.get(&e.to) {
                    add.extend(s.iter().cloned());
                }
            }
            if add.is_empty() {
                continue;
            }
            let cur = sets.entry(idx).or_default();
            let before = cur.len();
            cur.extend(add);
            changed |= cur.len() != before;
        }
        if !changed {
            return sets;
        }
    }
}

/// Transitive panic/IO capability per fn: maps fn index to a stable
/// description of one witness site.
fn fixpoint_panics(g: &Graph) -> HashMap<usize, String> {
    let mut sites: HashMap<usize, String> = HashMap::new();
    for (idx, n) in g.nodes.iter().enumerate() {
        if let Some(ef) = n
            .item
            .effects
            .iter()
            .find(|e| matches!(e.kind, EffectKind::Panic | EffectKind::Io))
        {
            sites.insert(idx, format!("{} at {}:{}", ef.what, n.item.path, ef.line));
        }
    }
    loop {
        let mut changed = false;
        for idx in 0..g.nodes.len() {
            if sites.contains_key(&idx) {
                continue;
            }
            let inherited = g.nodes[idx]
                .edges
                .iter()
                .find_map(|e| sites.get(&e.to).cloned());
            if let Some(s) = inherited {
                sites.insert(idx, s);
                changed = true;
            }
        }
        if !changed {
            return sites;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::extract_file;
    use crate::lexer::{lex, strip_test_items};

    fn graph(files: &[(&str, &str)]) -> Graph {
        Graph::build(
            files
                .iter()
                .map(|(p, s)| {
                    let lexed = lex(s);
                    extract_file(p, s, strip_test_items(&lexed.tokens))
                })
                .collect(),
        )
    }

    fn run(files: &[(&str, &str)]) -> Vec<Diagnostic> {
        let mut diags = Vec::new();
        lock_analysis(&graph(files), &AllowMap::new(), &mut diags);
        diags
    }

    /// The acceptance-criteria regression: inverted acquisition order
    /// across two fns is a cycle.
    #[test]
    fn inverted_lock_order_is_a_cycle() {
        let src = "static ALPHA: Mutex<u32> = Mutex::new(0);\n\
                   static BETA: Mutex<u32> = Mutex::new(0);\n\
                   fn ab() {\n    let a = ALPHA.lock().unwrap();\n    let b = BETA.lock().unwrap();\n    drop(b); drop(a);\n}\n\
                   fn ba() {\n    let b = BETA.lock().unwrap();\n    let a = ALPHA.lock().unwrap();\n    drop(a); drop(b);\n}";
        let diags = run(&[("crates/core/src/lib.rs", src)]);
        assert!(
            diags
                .iter()
                .any(|d| d.rule == "lock-order" && d.message.contains("cycle")),
            "{diags:?}"
        );
        // Consistent order in both fns: no cycle.
        let ok = "static ALPHA: Mutex<u32> = Mutex::new(0);\n\
                  static BETA: Mutex<u32> = Mutex::new(0);\n\
                  fn ab() {\n    let a = ALPHA.lock().unwrap();\n    let b = BETA.lock().unwrap();\n    drop(b); drop(a);\n}\n\
                  fn ab2() {\n    let a = ALPHA.lock().unwrap();\n    let b = BETA.lock().unwrap();\n    drop(b); drop(a);\n}";
        let diags = run(&[("crates/core/src/lib.rs", ok)]);
        assert!(diags.iter().all(|d| d.rule != "lock-order"), "{diags:?}");
    }

    /// Stripe-style double acquire through a guard-returning helper:
    /// element granularity collapses to one lock id, so holding one
    /// stripe while taking another is a self-edge.
    #[test]
    fn stripe_self_edge_through_guard_returning_fn() {
        let src = "pub struct Pool { stripes: Vec<Mutex<u32>> }\n\
                   impl Pool {\n\
                   fn lock_stripe(&self, i: usize) -> Option<MutexGuard<'_, u32>> {\n\
                       let s = self.stripes.get(i)?;\n        s.lock().ok()\n    }\n\
                   fn exchange(&self) {\n\
                       let g = self.lock_stripe(0);\n        let h = self.lock_stripe(1);\n\
                       drop(h); drop(g);\n    }\n}";
        let diags = run(&[("crates/core/src/pool.rs", src)]);
        assert!(
            diags.iter().any(|d| d.rule == "lock-order"
                && d.message.contains("Pool.stripes")
                && d.message.contains("already held")),
            "{diags:?}"
        );
    }

    #[test]
    fn panic_under_held_guard_is_flagged_and_drop_clears_it() {
        let bad = "static M: Mutex<u32> = Mutex::new(0);\n\
                   fn f(o: Option<u32>) -> u32 {\n    let g = M.lock().unwrap();\n    let v = o.unwrap();\n    drop(g); v\n}";
        let diags = run(&[("crates/core/src/lib.rs", bad)]);
        assert!(
            diags.iter().any(|d| d.rule == "lock-panic" && d.line == 4),
            "{diags:?}"
        );
        // Poison recovery on the LockResult itself is not "under the
        // guard", and dropping the guard before the panic-capable call
        // clears the diagnostic.
        let ok = "static M: Mutex<u32> = Mutex::new(0);\n\
                  fn f(o: Option<u32>) -> u32 {\n    let g = M.lock().unwrap();\n    drop(g);\n    o.unwrap()\n}";
        let diags = run(&[("crates/core/src/lib.rs", ok)]);
        assert!(diags.iter().all(|d| d.rule != "lock-panic"), "{diags:?}");
    }

    #[test]
    fn transitive_panic_through_a_callee_is_flagged() {
        let src = "static M: Mutex<u32> = Mutex::new(0);\n\
                   fn helper(o: Option<u32>) -> u32 { o.unwrap() }\n\
                   fn f(o: Option<u32>) -> u32 {\n    let g = M.lock().unwrap();\n    let v = helper(o);\n    drop(g); v\n}";
        let diags = run(&[("crates/core/src/lib.rs", src)]);
        assert!(
            diags.iter().any(|d| d.rule == "lock-panic"
                && d.line == 5
                && d.message.contains("core::helper")),
            "{diags:?}"
        );
    }

    #[test]
    fn temporary_guard_recovery_chain_is_not_under_the_guard() {
        // The whole statement is `.lock().unwrap_or_else(recover).add(x)`
        // — only `.add(` runs under the guard, and it is alloc-class, so
        // nothing fires.
        let src = "pub struct Log { steps: Vec<u32> }\n\
                   impl Log { fn add(&mut self, x: u32) { self.steps.push(x) } }\n\
                   pub struct Ex { proof: Mutex<Log> }\n\
                   impl Ex {\n    fn on_learn(&self, x: u32) {\n\
                       self.proof.lock().unwrap_or_else(recover).add(x);\n    }\n}\n\
                   fn recover(e: u32) -> u32 { e }";
        let diags = run(&[("crates/core/src/lib.rs", src)]);
        assert!(diags.iter().all(|d| d.rule != "lock-panic"), "{diags:?}");
    }

    #[test]
    fn inline_allow_suppresses_lock_rules() {
        let src = "static ALPHA: Mutex<u32> = Mutex::new(0);\n\
                   static BETA: Mutex<u32> = Mutex::new(0);\n\
                   fn ab() {\n    let a = ALPHA.lock().unwrap();\n    let b = BETA.lock().unwrap();\n    drop(b); drop(a);\n}\n\
                   fn ba() {\n    let b = BETA.lock().unwrap();\n    let a = ALPHA.lock().unwrap();\n    drop(a); drop(b);\n}";
        let g = graph(&[("crates/core/src/lib.rs", src)]);
        let mut allows = AllowMap::new();
        // The cycle is witnessed on both inner-acquisition lines (5, 9).
        allows.insert(
            "crates/core/src/lib.rs".to_string(),
            vec![(5, "lock-order".to_string()), (9, "lock-order".to_string())],
        );
        let mut diags = Vec::new();
        lock_analysis(&g, &allows, &mut diags);
        assert!(diags.iter().all(|d| d.rule != "lock-order"), "{diags:?}");
    }
}
