//! The lint rules and their per-module scoping.
//!
//! Every rule emits `file:line`-anchored [`Diagnostic`]s. Suppression is
//! two-tier: an inline `// xtask: allow(<rule>) <reason>` comment on the
//! offending line (for individually audited sites), or an entry in
//! `crates/xtask/lint.allow` (for grandfathered files). The shipped tree is
//! expected to lint clean with a near-empty allowlist.

#[cfg(test)]
use crate::lexer::{lex, strip_test_items};
use crate::lexer::{Lexed, Token, TokenKind};

/// A single lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable rule name (used in allowlists and inline annotations).
    pub rule: &'static str,
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// 1-based line number.
    pub line: u32,
    /// What is wrong and what to do instead.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// The BCP/analyze hot path: panics and raw indexing are forbidden here —
/// state access flows through the audited `varmap` boundary instead.
const HOT_PATH_MODULES: &[&str] = &[
    "crates/sat-solver/src/solver.rs",
    "crates/sat-solver/src/clause_db.rs",
    "crates/sat-solver/src/heap.rs",
    "crates/sat-solver/src/vmtf.rs",
    "crates/sat-solver/src/varmap.rs",
];

/// Modules that coordinate racing threads. `Ordering::Relaxed` is suspect
/// here: the portfolio stop flag and winner CAS carry real happens-before
/// edges (Release store / Acquire load), and a relaxed operation on one of
/// them is a liveness or soundness bug that tests will rarely catch. Only
/// pure statistics counters may be relaxed, and every such site must be
/// individually annotated with `// xtask: allow(atomic-ordering) <why>`.
const CONCURRENCY_MODULES: &[&str] = &[
    "crates/sat-solver/src/portfolio.rs",
    "crates/sat-solver/src/solver.rs",
    "crates/core/src/parallel.rs",
    "crates/core/src/race.rs",
];

/// Crates on the deterministic solving path: iterating a `HashMap` or
/// `HashSet` here would make runs irreproducible.
const SOLVER_CRATES: &[&str] = &[
    "crates/sat-solver/",
    "crates/cnf/",
    "crates/sat-gen/",
    "crates/sat-graph/",
    "crates/logic-circuit/",
];

/// Keywords that may directly precede `[` without it being an index
/// expression (`for l in [a, b]`, `return [x]`, ...).
const NON_INDEX_KEYWORDS: &[&str] = &[
    "in", "return", "break", "continue", "else", "match", "mut", "ref", "move", "as", "if",
    "while", "loop", "yield",
];

/// The one module allowed to re-raise caught panics: it owns the
/// portfolio's crash-isolation policy (see its module docs).
const UNWIND_MODULE: &str = "crates/sat-solver/src/resilience.rs";

fn is_hot_path(path: &str) -> bool {
    HOT_PATH_MODULES.contains(&path)
}

fn is_concurrency_module(path: &str) -> bool {
    CONCURRENCY_MODULES.contains(&path)
}

fn is_solver_crate_src(path: &str) -> bool {
    SOLVER_CRATES.iter().any(|c| path.starts_with(c)) && path.contains("/src/")
}

/// Library sources: everything under `src/` except binaries.
fn is_lib_source(path: &str) -> bool {
    path.contains("/src/") && !path.contains("/src/bin/") && !path.ends_with("/main.rs")
}

/// Lints one source file, appending findings to `diags`. Inline
/// `xtask: allow` annotations are honored here; the file-level allowlist is
/// applied by the caller. (The driver lexes once and calls [`lint_lexed`];
/// this convenience wrapper is for tests.)
#[cfg(test)]
pub fn lint_file(path: &str, src: &str, diags: &mut Vec<Diagnostic>) {
    let lexed = lex(src);
    let tokens = strip_test_items(&lexed.tokens);
    lint_lexed(path, src, &lexed, &tokens, diags);
}

/// Pre-lexed variant of [`lint_file`], so the driver can lex each file
/// once and share the token stream with the call-graph extractor.
pub fn lint_lexed(
    path: &str,
    src: &str,
    lexed: &Lexed,
    tokens: &[Token],
    diags: &mut Vec<Diagnostic>,
) {
    let mut found = Vec::new();
    if is_hot_path(path) {
        no_panic(path, tokens, &mut found);
        no_index(path, tokens, &mut found);
        no_hard_assert(path, tokens, &mut found);
        telemetry_feature_gate(path, src, tokens, &mut found, "trace", "trace-feature-gate");
        telemetry_feature_gate(
            path,
            src,
            tokens,
            &mut found,
            "metrics",
            "metrics-feature-gate",
        );
    }
    if is_concurrency_module(path) {
        atomic_ordering(path, tokens, &mut found);
    }
    if is_solver_crate_src(path) {
        no_hash_iter(path, tokens, &mut found);
    }
    if path.contains("/src/") {
        no_float_eq(path, tokens, &mut found);
    }
    if path != UNWIND_MODULE {
        no_unwind_escape(path, tokens, &mut found);
    }
    if is_lib_source(path) {
        pub_docs(path, tokens, &mut found);
    }
    if path.ends_with("/src/lib.rs") {
        unsafe_forbidden(path, tokens, &mut found);
    }
    apply_inline_allows(lexed, &mut found);
    diags.extend(found);
}

fn apply_inline_allows(lexed: &Lexed, diags: &mut Vec<Diagnostic>) {
    diags.retain(|d| !lexed.is_allowed(d.rule, d.line));
}

fn diag(
    out: &mut Vec<Diagnostic>,
    rule: &'static str,
    path: &str,
    line: u32,
    message: impl Into<String>,
) {
    out.push(Diagnostic {
        rule,
        path: path.to_string(),
        line,
        message: message.into(),
    });
}

/// `no-panic`: no `unwrap()`, `expect(...)`, `panic!`, `unreachable!`,
/// `todo!`, or `unimplemented!` in hot-path modules. BCP and conflict
/// analysis run millions of times; a reachable panic there is a latent
/// crash, and an unreachable one belongs in a `debug_assert!`.
fn no_panic(path: &str, tokens: &[Token], out: &mut Vec<Diagnostic>) {
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident {
            continue;
        }
        let next_is = |s: &str| tokens.get(i + 1).is_some_and(|n| n.is_punct(s));
        let prev_is_dot = i > 0 && tokens[i - 1].is_punct(".");
        match t.text.as_str() {
            "unwrap" | "expect" if prev_is_dot && next_is("(") => diag(
                out,
                "no-panic",
                path,
                t.line,
                format!(
                    "`.{}()` in a hot-path module; restructure to handle the None/Err case \
                     or use a `debug_assert!`-audited accessor",
                    t.text
                ),
            ),
            "panic" | "unreachable" | "todo" | "unimplemented" if next_is("!") => diag(
                out,
                "no-panic",
                path,
                t.line,
                format!(
                    "`{}!` in a hot-path module; make the state unrepresentable or \
                     downgrade to `debug_assert!`",
                    t.text
                ),
            ),
            _ => {}
        }
    }
}

/// `no-index`: no raw slice/array indexing in hot-path modules. Indexed
/// state lives behind the `varmap` audited boundary (`VarMap`, `LitMap`,
/// `at()`), which pairs each access with a `debug_assert!` bounds check.
fn no_index(path: &str, tokens: &[Token], out: &mut Vec<Diagnostic>) {
    for (i, t) in tokens.iter().enumerate() {
        if !t.is_punct("[") || i == 0 {
            continue;
        }
        let prev = &tokens[i - 1];
        let indexable = match prev.kind {
            TokenKind::Ident => !NON_INDEX_KEYWORDS.contains(&prev.text.as_str()),
            TokenKind::Punct => matches!(prev.text.as_str(), ")" | "]" | "?"),
            _ => false,
        };
        if indexable {
            diag(
                out,
                "no-index",
                path,
                t.line,
                "raw slice indexing in a hot-path module; use the audited `varmap` \
                 accessors (`VarMap`/`LitMap`/`at()`) or annotate the audited site",
            );
        }
    }
}

/// `no-hard-assert`: hot-path modules must use `debug_assert!` so release
/// builds keep full propagation speed; a hard `assert!` there is either a
/// documented API contract (annotate it) or a mistake.
fn no_hard_assert(path: &str, tokens: &[Token], out: &mut Vec<Diagnostic>) {
    for (i, t) in tokens.iter().enumerate() {
        if t.kind == TokenKind::Ident
            && matches!(t.text.as_str(), "assert" | "assert_eq" | "assert_ne")
            && tokens.get(i + 1).is_some_and(|n| n.is_punct("!"))
        {
            diag(
                out,
                "no-hard-assert",
                path,
                t.line,
                format!(
                    "`{}!` in a hot-path module; use `debug_assert!` instead",
                    t.text
                ),
            );
        }
    }
}

/// `trace-feature-gate` / `metrics-feature-gate`: in hot-path modules
/// every `trace::` (resp. `metrics::`) call site must sit under a
/// `#[cfg(feature = "...")]` gate naming that telemetry feature. Elsewhere
/// both APIs may rely on their disarmed fast path (one relaxed atomic
/// load), but BCP and conflict analysis run millions of times per second —
/// default builds must compile to literally zero telemetry code there.
///
/// The lexer normalizes string literals to `""`, so the attribute's feature
/// name is confirmed against the raw source lines spanning the attribute.
fn telemetry_feature_gate(
    path: &str,
    src: &str,
    tokens: &[Token],
    out: &mut Vec<Diagnostic>,
    module: &str,
    rule: &'static str,
) {
    let lines: Vec<&str> = src.lines().collect();
    let quoted = format!("\"{module}\"");
    // Pass 1: token ranges gated by `#[cfg(... feature = "<module>" ...)]`
    // — the attribute plus the item or statement it covers (up to the `}`
    // closing its first brace, or a `;` outside braces).
    let mut gated: Vec<(usize, usize)> = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if !(tokens[i].is_punct("#") && tokens.get(i + 1).is_some_and(|t| t.is_punct("["))) {
            i += 1;
            continue;
        }
        let start = i;
        let mut depth = 0usize;
        let mut saw_cfg = false;
        let mut saw_feature_str = false;
        let mut j = i + 1;
        while j < tokens.len() {
            let t = &tokens[j];
            if t.is_punct("[") {
                depth += 1;
            } else if t.is_punct("]") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if t.is_ident("cfg") {
                saw_cfg = true;
            } else if t.is_ident("feature")
                && tokens.get(j + 1).is_some_and(|n| n.is_punct("="))
                && tokens.get(j + 2).is_some_and(|n| n.kind == TokenKind::Str)
            {
                saw_feature_str = true;
            }
            j += 1;
        }
        if j >= tokens.len() {
            break;
        }
        let names_feature = (tokens[start].line..=tokens[j].line).any(|l| {
            lines
                .get(l as usize - 1)
                .is_some_and(|raw| raw.contains(quoted.as_str()))
        });
        if !(saw_cfg && saw_feature_str && names_feature) {
            i = j + 1;
            continue;
        }
        // Walk the gated item/statement: ends at `;` outside braces or at
        // the `}` closing the first opened brace (fn bodies, gated blocks,
        // gated `if` statements).
        let mut brace = 0i32;
        let mut k = j + 1;
        let mut end = tokens.len().saturating_sub(1);
        while k < tokens.len() {
            let t = &tokens[k];
            if t.is_punct("{") {
                brace += 1;
            } else if t.is_punct("}") {
                brace -= 1;
                if brace == 0 {
                    end = k;
                    break;
                }
            } else if t.is_punct(";") && brace == 0 {
                end = k;
                break;
            }
            k += 1;
        }
        gated.push((start, end));
        i = j + 1;
    }
    // Pass 2: `<module> ::` paths outside every gated range.
    for (idx, t) in tokens.iter().enumerate() {
        if t.is_ident(module)
            && tokens.get(idx + 1).is_some_and(|n| n.is_punct("::"))
            && !gated.iter().any(|&(s, e)| idx >= s && idx <= e)
        {
            diag(
                out,
                rule,
                path,
                t.line,
                format!(
                    "`{module}::` call in a hot-path module outside a \
                     `#[cfg(feature = {quoted})]` gate; wrap the statement so \
                     default builds keep zero telemetry overhead"
                ),
            );
        }
    }
}

/// `atomic-ordering`: no `Ordering::Relaxed` in thread-coordination
/// modules. Publication atomics (the stop flag, the winner CAS, anything a
/// consumer reads to observe another thread's writes) need Release/Acquire
/// pairs; relaxed is only defensible for standalone statistics counters,
/// each annotated inline with the reason.
fn atomic_ordering(path: &str, tokens: &[Token], out: &mut Vec<Diagnostic>) {
    for (i, t) in tokens.iter().enumerate() {
        if t.is_ident("Relaxed")
            && i >= 2
            && tokens[i - 1].is_punct("::")
            && tokens[i - 2].is_ident("Ordering")
        {
            diag(
                out,
                "atomic-ordering",
                path,
                t.line,
                "`Ordering::Relaxed` in a thread-coordination module; publication \
                 atomics need Release/Acquire — if this is a pure statistics counter, \
                 annotate the site with `// xtask: allow(atomic-ordering) <why>`",
            );
        }
    }
}

/// `no-hash-iter`: iterating a `HashMap`/`HashSet` in a solver crate
/// introduces platform- and run-dependent ordering; iterate a sorted or
/// dense structure instead. Point lookups are fine.
fn no_hash_iter(path: &str, tokens: &[Token], out: &mut Vec<Diagnostic>) {
    // Pass 1: names bound to hash containers, via `name: HashMap<...>`
    // (fields, params, typed lets) and `let [mut] name = ... HashMap ... ;`.
    let mut hash_names: Vec<String> = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if t.kind == TokenKind::Ident && (t.text == "HashMap" || t.text == "HashSet") {
            // Walk back over a path prefix (`std::collections::`) and
            // reference sigils to find `name :`.
            let mut j = i;
            while j >= 2 && tokens[j - 1].is_punct("::") && tokens[j - 2].kind == TokenKind::Ident {
                j -= 2;
            }
            while j >= 1 && (tokens[j - 1].is_punct("&") || tokens[j - 1].is_ident("mut")) {
                j -= 1;
            }
            if j >= 2 && tokens[j - 1].is_punct(":") && tokens[j - 2].kind == TokenKind::Ident {
                hash_names.push(tokens[j - 2].text.clone());
            }
        }
        if t.is_ident("let") {
            let mut j = i + 1;
            if tokens.get(j).is_some_and(|t| t.is_ident("mut")) {
                j += 1;
            }
            let Some(name) = tokens.get(j).filter(|t| t.kind == TokenKind::Ident) else {
                continue;
            };
            // Untyped binding: scan the initializer up to `;` for a hash
            // container constructor. (Typed bindings hit the `name :` case.)
            if tokens.get(j + 1).is_some_and(|t| t.is_punct("=")) {
                let mut k = j + 2;
                while k < tokens.len() && !tokens[k].is_punct(";") {
                    if tokens[k].is_ident("HashMap") || tokens[k].is_ident("HashSet") {
                        hash_names.push(name.text.clone());
                        break;
                    }
                    k += 1;
                }
            }
        }
    }
    // Pass 2: iteration over those names.
    const ITER_METHODS: &[&str] = &[
        "iter",
        "iter_mut",
        "keys",
        "values",
        "values_mut",
        "drain",
        "retain",
        "into_iter",
        "into_keys",
        "into_values",
    ];
    for (i, t) in tokens.iter().enumerate() {
        // `name.iter()` / `self.name.keys()` ...
        if t.kind == TokenKind::Ident
            && hash_names.iter().any(|n| n == &t.text)
            && tokens.get(i + 1).is_some_and(|n| n.is_punct("."))
            && tokens.get(i + 3).is_some_and(|n| n.is_punct("("))
        {
            if let Some(m) = tokens.get(i + 2) {
                if m.kind == TokenKind::Ident && ITER_METHODS.contains(&m.text.as_str()) {
                    diag(
                        out,
                        "no-hash-iter",
                        path,
                        m.line,
                        format!(
                            "`.{}()` on hash container `{}`: iteration order is \
                             nondeterministic; collect and sort, or use a dense/ordered map",
                            m.text, t.text
                        ),
                    );
                }
            }
        }
        // `for pat in [&[mut]] name { ... }`
        if t.is_ident("for") {
            let mut depth = 0i32;
            let mut j = i + 1;
            while j < tokens.len() {
                let u = &tokens[j];
                if u.is_punct("(") || u.is_punct("[") {
                    depth += 1;
                } else if u.is_punct(")") || u.is_punct("]") {
                    depth -= 1;
                } else if depth == 0 && u.is_ident("in") {
                    break;
                } else if depth == 0 && (u.is_punct("{") || u.is_punct(";")) {
                    j = tokens.len(); // not a for-loop header after all
                }
                j += 1;
            }
            let mut k = j + 1;
            while tokens
                .get(k)
                .is_some_and(|t| t.is_punct("&") || t.is_ident("mut"))
            {
                k += 1;
            }
            // The iterated expression may be a dotted path (`self.seen`);
            // the final segment names the container.
            let mut last: Option<&Token> = None;
            while let Some(tok) = tokens.get(k) {
                if tok.kind != TokenKind::Ident {
                    break;
                }
                last = Some(tok);
                if tokens.get(k + 1).is_some_and(|t| t.is_punct("."))
                    && tokens
                        .get(k + 2)
                        .is_some_and(|t| t.kind == TokenKind::Ident)
                {
                    k += 2;
                } else {
                    k += 1;
                    break;
                }
            }
            if let (Some(name), Some(after)) = (last, tokens.get(k)) {
                if hash_names.iter().any(|n| n == &name.text) && after.is_punct("{") {
                    diag(
                        out,
                        "no-hash-iter",
                        path,
                        name.line,
                        format!(
                            "`for` over hash container `{}`: iteration order is \
                             nondeterministic; collect and sort, or use a dense/ordered map",
                            name.text
                        ),
                    );
                }
            }
        }
    }
}

/// `no-unwind-escape`: `resume_unwind` and `process::abort` are confined
/// to `crates/sat-solver/src/resilience.rs`, the module that owns the
/// crash-isolation policy. Anywhere else, a re-raised panic tears through
/// the portfolio's `catch_unwind` boundary with a payload the isolation
/// layer never rendered, and an abort skips every cleanup and degraded
/// mode outright. Route crashes through `run_isolated`/`propagate`, or
/// annotate an individually audited site with
/// `// xtask: allow(no-unwind-escape) <why>`.
fn no_unwind_escape(path: &str, tokens: &[Token], out: &mut Vec<Diagnostic>) {
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident {
            continue;
        }
        let next_is_call = tokens.get(i + 1).is_some_and(|n| n.is_punct("("));
        if !next_is_call {
            continue;
        }
        match t.text.as_str() {
            "resume_unwind" => diag(
                out,
                "no-unwind-escape",
                path,
                t.line,
                "`resume_unwind` outside the resilience module; re-raise through \
                 `sat_solver::resilience::propagate` (or annotate an audited site)",
            ),
            "abort"
                if i >= 2 && tokens[i - 1].is_punct("::") && tokens[i - 2].is_ident("process") =>
            {
                diag(
                    out,
                    "no-unwind-escape",
                    path,
                    t.line,
                    "`process::abort` outside the resilience module; aborts skip every \
                     degraded mode — return an error or propagate a panic instead",
                );
            }
            _ => {}
        }
    }
}

/// `no-float-eq`: comparing against a float literal with `==`/`!=` is
/// almost always a rounding bug; compare with a tolerance or restructure.
fn no_float_eq(path: &str, tokens: &[Token], out: &mut Vec<Diagnostic>) {
    for (i, t) in tokens.iter().enumerate() {
        if !(t.is_punct("==") || t.is_punct("!=")) {
            continue;
        }
        let prev_float = i > 0 && tokens[i - 1].kind == TokenKind::Float;
        let next_float = match tokens.get(i + 1) {
            Some(n) if n.kind == TokenKind::Float => true,
            Some(n) if n.is_punct("-") => tokens
                .get(i + 2)
                .is_some_and(|m| m.kind == TokenKind::Float),
            _ => false,
        };
        if prev_float || next_float {
            diag(
                out,
                "no-float-eq",
                path,
                t.line,
                format!(
                    "float literal compared with `{}`; use an epsilon or an integer \
                     representation (allowlist the site if the exact compare is intended)",
                    t.text
                ),
            );
        }
    }
}

/// Item keywords that can follow `pub` and require a doc comment.
const DOCUMENTED_ITEMS: &[&str] = &[
    "fn", "struct", "enum", "trait", "const", "static", "type", "mod", "union",
];

/// `pub-docs`: every `pub` item (and named `pub` field) in library sources
/// carries a doc comment. `pub(crate)` and `pub use` re-exports are exempt.
fn pub_docs(path: &str, tokens: &[Token], out: &mut Vec<Diagnostic>) {
    for (i, t) in tokens.iter().enumerate() {
        if !t.is_ident("pub") {
            continue;
        }
        let Some(next) = tokens.get(i + 1) else {
            continue;
        };
        if next.is_punct("(") {
            continue; // pub(crate) / pub(super)
        }
        // What is being declared?
        let (item_kind, name_idx) =
            if next.kind == TokenKind::Ident && DOCUMENTED_ITEMS.contains(&next.text.as_str()) {
                (next.text.as_str(), i + 2)
            } else if next.is_ident("unsafe") || next.is_ident("async") || next.is_ident("extern") {
                ("fn", i + 3)
            } else if next.is_ident("use") {
                continue; // re-export; docs inherited from the target
            } else if next.kind == TokenKind::Ident
                && tokens.get(i + 2).is_some_and(|t| t.is_punct(":"))
            {
                ("field", i + 1)
            } else {
                continue; // tuple-struct field or something exotic
            };
        // An out-of-line module (`pub mod name;`) carries its docs as `//!`
        // inside its own file.
        if item_kind == "mod" && tokens.get(i + 3).is_some_and(|t| t.is_punct(";")) {
            continue;
        }
        // Walk back over attributes; a doc comment (or #[doc]) must precede.
        let mut j = i;
        let mut documented = false;
        while j > 0 {
            let prev = &tokens[j - 1];
            if prev.kind == TokenKind::DocComment {
                documented = true;
                break;
            }
            if prev.is_punct("]") {
                // Skip the attribute backwards; treat #[doc...] as docs.
                let mut depth = 1usize;
                let mut k = j - 1;
                let mut has_doc_ident = false;
                while k > 0 && depth > 0 {
                    k -= 1;
                    if tokens[k].is_punct("]") {
                        depth += 1;
                    } else if tokens[k].is_punct("[") {
                        depth -= 1;
                    } else if tokens[k].is_ident("doc") {
                        has_doc_ident = true;
                    }
                }
                if k > 0 && tokens[k - 1].is_punct("#") {
                    k -= 1;
                }
                if has_doc_ident {
                    documented = true;
                    break;
                }
                j = k;
                continue;
            }
            break;
        }
        if !documented {
            let name = tokens
                .get(name_idx)
                .map(|t| t.text.clone())
                .unwrap_or_default();
            diag(
                out,
                "pub-docs",
                path,
                t.line,
                format!("public {item_kind} `{name}` lacks a doc comment"),
            );
        }
    }
}

/// `unsafe-forbidden`: every library crate keeps `#![forbid(unsafe_code)]`
/// at its root, so the no-unsafe guarantee can't silently erode.
fn unsafe_forbidden(path: &str, tokens: &[Token], out: &mut Vec<Diagnostic>) {
    let has = tokens.windows(4).any(|w| {
        w[0].is_ident("forbid")
            && w[1].is_punct("(")
            && w[2].is_ident("unsafe_code")
            && w[3].is_punct(")")
    });
    if !has {
        diag(
            out,
            "unsafe-forbidden",
            path,
            1,
            "library crate root is missing `#![forbid(unsafe_code)]`",
        );
    }
}

/// One entry of the file-level allowlist `crates/xtask/lint.allow`:
/// `<rule> <path>[:<line>]`, suppressing that rule for the whole file or a
/// single line. `#` starts a comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// Rule name the entry suppresses.
    pub rule: String,
    /// Workspace-relative path.
    pub path: String,
    /// Restrict the suppression to one line, if given.
    pub line: Option<u32>,
}

/// Parses the allowlist file format. Malformed lines are reported as
/// errors rather than silently ignored — a typo in an allowlist must not
/// re-open a violation.
pub fn parse_allowlist(text: &str) -> Result<Vec<AllowEntry>, String> {
    let mut entries = Vec::new();
    for (no, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(rule), Some(target), None) = (parts.next(), parts.next(), parts.next()) else {
            return Err(format!(
                "lint.allow:{}: expected `<rule> <path>[:<line>]`, got {raw:?}",
                no + 1
            ));
        };
        let (path, line_no) = match target.rsplit_once(':') {
            Some((p, l)) if l.chars().all(|c| c.is_ascii_digit()) && !l.is_empty() => {
                let parsed = l
                    .parse::<u32>()
                    .map_err(|_| format!("lint.allow:{}: bad line number {l:?}", no + 1))?;
                (p.to_string(), Some(parsed))
            }
            _ => (target.to_string(), None),
        };
        entries.push(AllowEntry {
            rule: rule.to_string(),
            path,
            line: line_no,
        });
    }
    Ok(entries)
}

/// Drops diagnostics matched by the allowlist; returns the entries that
/// matched nothing (stale entries are themselves reported by the driver).
pub fn apply_allowlist(diags: &mut Vec<Diagnostic>, entries: &[AllowEntry]) -> Vec<AllowEntry> {
    let mut used = vec![false; entries.len()];
    diags.retain(|d| {
        let mut hit = false;
        for (e, flag) in entries.iter().zip(used.iter_mut()) {
            if e.rule == d.rule && e.path == d.path && e.line.is_none_or(|l| l == d.line) {
                *flag = true;
                hit = true;
            }
        }
        !hit
    });
    entries
        .iter()
        .zip(used)
        .filter(|(_, u)| !u)
        .map(|(e, _)| e.clone())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const HOT: &str = "crates/sat-solver/src/solver.rs";
    const SOLVER: &str = "crates/cnf/src/parse.rs";
    const LIB: &str = "crates/telemetry/src/record.rs";

    fn run(path: &str, src: &str) -> Vec<Diagnostic> {
        let mut diags = Vec::new();
        lint_file(path, src, &mut diags);
        diags
    }

    fn rules(diags: &[Diagnostic]) -> Vec<&str> {
        diags.iter().map(|d| d.rule).collect()
    }

    #[test]
    fn no_panic_catches_unwrap_expect_panic() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    let a = x.unwrap();\n    let b = x.expect(\"msg\");\n    panic!(\"boom\");\n}";
        let d = run(HOT, src);
        assert_eq!(rules(&d), vec!["no-panic", "no-panic", "no-panic"]);
        assert_eq!(d[0].line, 2);
        assert_eq!(d[2].line, 4);
    }

    #[test]
    fn no_panic_ignores_unwrap_or_and_tests_and_other_files() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) }\n#[cfg(test)]\nmod tests {\n    fn t() { None::<u32>.unwrap(); }\n}";
        assert!(run(HOT, src).is_empty());
        let elsewhere = "fn f(x: Option<u32>) -> u32 { x.unwrap() }";
        assert!(run("crates/bench/src/report.rs", elsewhere).is_empty());
    }

    #[test]
    fn no_index_catches_indexing_but_not_literals_or_types() {
        let src = "fn f(xs: &[u32], i: usize) -> u32 {\n    let a: [u8; 4] = [0; 4];\n    for x in [1u32, 2] { let _ = x; }\n    let v = vec![1];\n    xs[i]\n}";
        let d = run(HOT, src);
        assert_eq!(rules(&d), vec!["no-index"]);
        assert_eq!(d[0].line, 5);
    }

    #[test]
    fn no_index_respects_inline_allow() {
        let src = "fn f(xs: &[u32]) -> u32 {\n    xs[0] // xtask: allow(no-index) audited\n}";
        assert!(run(HOT, src).is_empty());
    }

    #[test]
    fn no_hard_assert_wants_debug_assert() {
        let src = "fn f(x: u32) {\n    assert!(x > 0);\n    debug_assert!(x > 0);\n    assert_eq!(x, 1);\n}";
        let d = run(HOT, src);
        assert_eq!(rules(&d), vec!["no-hard-assert", "no-hard-assert"]);
    }

    #[test]
    fn no_hash_iter_catches_iteration_not_lookup() {
        let src = "use std::collections::HashMap;\nfn f() {\n    let mut m: HashMap<u32, u32> = HashMap::new();\n    m.insert(1, 2);\n    let _ = m.get(&1);\n    for (k, v) in &m { let _ = (k, v); }\n    let _: Vec<_> = m.keys().collect();\n}";
        let d = run(SOLVER, src);
        assert_eq!(rules(&d), vec!["no-hash-iter", "no-hash-iter"]);
        assert_eq!(d[0].line, 6); // the for-loop
        assert_eq!(d[1].line, 7); // .keys()
    }

    #[test]
    fn no_hash_iter_tracks_untyped_let_and_fields() {
        let src = "use std::collections::HashSet;\nstruct S { seen: HashSet<u32> }\nimpl S {\n    fn f(&self) {\n        for v in &self.seen { let _ = v; }\n    }\n}\nfn g() {\n    let s = HashSet::from([1u32]);\n    let _ = s.iter().count();\n}";
        let d = run(SOLVER, src);
        assert_eq!(d.len(), 2, "{d:?}");
    }

    #[test]
    fn trace_feature_gate_requires_cfg_on_hot_path_trace_calls() {
        let ungated =
            "fn f(s: &mut Solver) {\n    let _g = telemetry::trace::span(\"propagate\");\n}";
        let d = run(HOT, ungated);
        assert_eq!(rules(&d), vec!["trace-feature-gate"]);
        assert_eq!(d[0].line, 2);
        // Outside hot-path modules the rule does not apply.
        assert!(run("crates/sat-solver/src/portfolio.rs", ungated).is_empty());
    }

    #[test]
    fn trace_feature_gate_accepts_gated_statements_and_items() {
        // Gated `let`, gated `if` statement, and a gated fn are all fine;
        // a second ungated site in the same file is still caught.
        let src = "fn f(s: &mut Solver) {\n    #[cfg(feature = \"trace\")]\n    let span = telemetry::trace::span(\"analyze\");\n    #[cfg(feature = \"trace\")]\n    if s.imported {\n        telemetry::trace::instant_with(\"import-use\", &[(\"glue\", 3)]);\n    }\n    #[cfg(feature = \"trace\")]\n    drop(span);\n}\n#[cfg(feature = \"trace\")]\nfn g() {\n    telemetry::trace::instant(\"reduce\");\n}\nfn h() {\n    telemetry::trace::instant(\"oops\");\n}";
        let d = run(HOT, src);
        assert_eq!(rules(&d), vec!["trace-feature-gate"], "{d:?}");
        assert_eq!(d[0].line, 16);
        // A cfg gate naming a *different* feature does not count.
        let wrong = "fn f() {\n    #[cfg(feature = \"metrics\")]\n    let _g = telemetry::trace::span(\"propagate\");\n}";
        assert_eq!(rules(&run(HOT, wrong)), vec!["trace-feature-gate"]);
        // An audited site can be annotated inline.
        let allowed = "fn f() {\n    telemetry::trace::instant(\"x\"); // xtask: allow(trace-feature-gate) cold slow path\n}";
        assert!(run(HOT, allowed).is_empty());
    }

    #[test]
    fn metrics_feature_gate_mirrors_the_trace_rule() {
        let ungated =
            "fn f(s: &mut Solver) {\n    telemetry::metrics::inc(telemetry::metrics::Counter::Conflicts);\n}";
        let d = run(HOT, ungated);
        assert_eq!(
            rules(&d),
            vec!["metrics-feature-gate", "metrics-feature-gate"]
        );
        assert_eq!(d[0].line, 2);
        // Outside hot-path modules the registry's disarmed fast path is fine.
        assert!(run("crates/sat-solver/src/portfolio.rs", ungated).is_empty());
        // Properly gated statements pass; a cfg naming the *other*
        // telemetry feature does not count.
        let gated = "fn f() {\n    #[cfg(feature = \"metrics\")]\n    telemetry::metrics::inc(telemetry::metrics::Counter::Decisions);\n}";
        assert!(run(HOT, gated).is_empty());
        let wrong = "fn f() {\n    #[cfg(feature = \"trace\")]\n    telemetry::metrics::inc(telemetry::metrics::Counter::Decisions);\n}";
        assert_eq!(
            rules(&run(HOT, wrong)),
            vec!["metrics-feature-gate", "metrics-feature-gate"]
        );
    }

    #[test]
    fn atomic_ordering_flags_relaxed_in_concurrency_modules() {
        let src = "use std::sync::atomic::{AtomicBool, Ordering};\nfn f(stop: &AtomicBool) {\n    stop.store(true, Ordering::Relaxed);\n    let _ = stop.load(Ordering::Acquire);\n    stop.store(false, std::sync::atomic::Ordering::Relaxed);\n}";
        let d = run("crates/sat-solver/src/portfolio.rs", src);
        assert_eq!(rules(&d), vec!["atomic-ordering", "atomic-ordering"]);
        assert_eq!(d[0].line, 3);
        assert_eq!(d[1].line, 5); // fully qualified path is caught too
    }

    #[test]
    fn atomic_ordering_respects_inline_allow_and_scope() {
        let allowed = "fn f(n: &std::sync::atomic::AtomicU64) {\n    n.fetch_add(1, Ordering::Relaxed); // xtask: allow(atomic-ordering) statistics counter\n}";
        assert!(run("crates/core/src/parallel.rs", allowed).is_empty());
        // Outside the concurrency modules the rule does not apply.
        let elsewhere =
            "fn f(n: &std::sync::atomic::AtomicU64) { n.fetch_add(1, Ordering::Relaxed); }";
        assert!(run("crates/bench/src/report.rs", elsewhere).is_empty());
        // Test modules are stripped before linting.
        let in_tests = "#[cfg(test)]\nmod tests {\n    fn t(s: &std::sync::atomic::AtomicBool) { s.store(true, Ordering::Relaxed); }\n}";
        assert!(run("crates/sat-solver/src/portfolio.rs", in_tests).is_empty());
    }

    #[test]
    fn no_unwind_escape_confines_reraise_to_the_resilience_module() {
        let src = "fn f(p: Box<dyn std::any::Any + Send>) {\n    std::panic::resume_unwind(p);\n}\nfn g() {\n    std::process::abort();\n}";
        let d = run("crates/core/src/parallel.rs", src);
        assert_eq!(rules(&d), vec!["no-unwind-escape", "no-unwind-escape"]);
        assert_eq!(d[0].line, 2);
        assert_eq!(d[1].line, 5);
        // The resilience module itself is exempt.
        assert!(run("crates/sat-solver/src/resilience.rs", src).is_empty());
        // An audited site can be annotated inline.
        let allowed = "fn f(p: Box<dyn std::any::Any + Send>) {\n    std::panic::resume_unwind(p); // xtask: allow(no-unwind-escape) audited\n}";
        assert!(run("crates/core/src/parallel.rs", allowed).is_empty());
        // `abort` as an ordinary method name is not flagged.
        let method = "fn f(tx: &Transaction) { tx.abort(); }";
        assert!(run("crates/core/src/parallel.rs", method).is_empty());
    }

    #[test]
    fn no_float_eq_catches_literal_compares() {
        let src = "fn f(x: f64) -> bool {\n    if x == 0.0 { return true; }\n    let _ = x != 1.5;\n    let _ = 2.0 == x;\n    x as u32 == 0\n}";
        let d = run(LIB, src);
        assert_eq!(rules(&d), vec!["no-float-eq", "no-float-eq", "no-float-eq"]);
    }

    #[test]
    fn pub_docs_requires_doc_comments() {
        let src = "/// Documented.\npub fn good() {}\npub fn bad() {}\n#[derive(Debug)]\npub struct Worse { pub field: u32 }\npub(crate) fn internal() {}\npub use std::fmt;";
        let d = run(LIB, src);
        let names: Vec<&str> = d.iter().map(|x| x.message.as_str()).collect();
        assert_eq!(d.len(), 3, "{names:?}");
        assert!(d[0].message.contains("`bad`"));
        assert!(d[1].message.contains("`Worse`"));
        assert!(d[2].message.contains("`field`"));
    }

    #[test]
    fn pub_docs_accepts_attrs_between_doc_and_item() {
        let src = "/// Documented.\n#[derive(Debug, Clone)]\n#[repr(C)]\npub struct Fine { \n    /// Also documented.\n    pub x: u32,\n}";
        assert!(run(LIB, src).is_empty());
    }

    #[test]
    fn unsafe_forbidden_checks_lib_roots() {
        let src = "//! Crate docs.\n#![warn(missing_docs)]\nfn private() {}";
        let d = run("crates/cnf/src/lib.rs", src);
        assert!(rules(&d).contains(&"unsafe-forbidden"));
        let ok = "//! Crate docs.\n#![forbid(unsafe_code)]\nfn private() {}";
        let d = run("crates/cnf/src/lib.rs", ok);
        assert!(!rules(&d).contains(&"unsafe-forbidden"));
    }

    #[test]
    fn allowlist_roundtrip_and_stale_detection() {
        let entries = parse_allowlist(
            "# comment\nno-float-eq crates/core/src/metrics.rs\nno-index crates/x.rs:12\n",
        )
        .expect("parses");
        assert_eq!(entries.len(), 2);
        let mut diags = vec![
            Diagnostic {
                rule: "no-float-eq",
                path: "crates/core/src/metrics.rs".into(),
                line: 71,
                message: String::new(),
            },
            Diagnostic {
                rule: "no-index",
                path: "crates/x.rs".into(),
                line: 13,
                message: String::new(),
            },
        ];
        let stale = apply_allowlist(&mut diags, &entries);
        assert_eq!(diags.len(), 1, "line-scoped entry must not match line 13");
        assert_eq!(stale.len(), 1);
        assert_eq!(stale[0].rule, "no-index");
        assert!(parse_allowlist("too many words here\n").is_err());
    }
}
