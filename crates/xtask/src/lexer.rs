//! A minimal, dependency-free Rust tokenizer.
//!
//! The lint rules in this crate need just enough lexical structure to be
//! reliable: comments, strings (including raw strings), character literals
//! vs. lifetimes, numbers (with float detection), identifiers, and
//! multi-character operators. Everything else is a single punctuation
//! token. The build environment is offline, so reaching for `syn` is not an
//! option — and token-level analysis is all the rules require.

/// The coarse classification the lint rules dispatch on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword.
    Ident,
    /// Integer literal.
    Int,
    /// Floating-point literal (contains `.` or an exponent, or a float
    /// suffix).
    Float,
    /// String, byte-string, or character literal.
    Str,
    /// Lifetime (`'a`) — distinct from `Str` so `'a` never looks like a
    /// character literal.
    Lifetime,
    /// Operator or punctuation, possibly multi-character (`==`, `::`, ...).
    Punct,
    /// Doc comment (`///`, `//!`, `/** */`, `/*! */`).
    DocComment,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    /// Classification.
    pub kind: TokenKind,
    /// The token's text (for `Punct`, the full operator).
    pub text: String,
    /// 1-based line number of the token's first character.
    pub line: u32,
}

impl Token {
    /// Whether this is an identifier with exactly this text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == text
    }

    /// Whether this is punctuation with exactly this text.
    pub fn is_punct(&self, text: &str) -> bool {
        self.kind == TokenKind::Punct && self.text == text
    }

    /// Whether this is any identifier (or keyword).
    pub fn is_ident_kind(&self) -> bool {
        self.kind == TokenKind::Ident
    }
}

/// A lexed source file: the token stream plus the inline lint-suppression
/// annotations found in ordinary comments.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All tokens in source order (comments omitted, doc comments kept).
    pub tokens: Vec<Token>,
    /// `(line, rule)` pairs from `// xtask: allow(<rule>) <reason>`
    /// comments; a diagnostic of `rule` on `line` is suppressed.
    pub allows: Vec<(u32, String)>,
}

impl Lexed {
    /// Whether a diagnostic of `rule` at `line` is suppressed by an inline
    /// annotation on the same line or on the line directly above.
    pub fn is_allowed(&self, rule: &str, line: u32) -> bool {
        self.allows
            .iter()
            .any(|(l, r)| (*l == line || l + 1 == line) && r == rule)
    }
}

/// Multi-character operators, longest first so matching is greedy.
const OPERATORS: &[&str] = &[
    "..=", "<<=", ">>=", "...", "==", "!=", "<=", ">=", "&&", "||", "->", "=>", "::", "..", "+=",
    "-=", "*=", "/=", "%=", "^=", "|=", "&=", "<<", ">>",
];

/// Tokenizes `src`. Invalid input never panics: unrecognized bytes become
/// single-character `Punct` tokens and unterminated literals run to the end
/// of the file.
pub fn lex(src: &str) -> Lexed {
    let chars: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;

    macro_rules! push {
        ($kind:expr, $text:expr, $line:expr) => {
            out.tokens.push(Token {
                kind: $kind,
                text: $text,
                line: $line,
            })
        };
    }

    while i < chars.len() {
        let c = chars[i];
        // Whitespace.
        if c.is_whitespace() {
            if c == '\n' {
                line += 1;
            }
            i += 1;
            continue;
        }
        // Comments.
        if c == '/' && i + 1 < chars.len() {
            match chars[i + 1] {
                '/' => {
                    let start = i;
                    while i < chars.len() && chars[i] != '\n' {
                        i += 1;
                    }
                    let text: String = chars[start..i].iter().collect();
                    if text.starts_with("///") || text.starts_with("//!") {
                        push!(TokenKind::DocComment, text, line);
                    } else if let Some(rule) = parse_allow(&text) {
                        out.allows.push((line, rule));
                    }
                    continue;
                }
                '*' => {
                    let start_line = line;
                    let is_doc = matches!(chars.get(i + 2), Some('*') | Some('!'))
                        && chars.get(i + 3) != Some(&'/');
                    let mut depth = 0usize;
                    while i < chars.len() {
                        if chars[i] == '\n' {
                            line += 1;
                            i += 1;
                        } else if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                            depth += 1;
                            i += 2;
                        } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                            depth -= 1;
                            i += 2;
                            if depth == 0 {
                                break;
                            }
                        } else {
                            i += 1;
                        }
                    }
                    if is_doc {
                        push!(TokenKind::DocComment, String::from("/** */"), start_line);
                    }
                    continue;
                }
                _ => {}
            }
        }
        // Strings, byte strings, raw strings.
        if c == '"' {
            i = consume_string(&chars, i, &mut line);
            push!(TokenKind::Str, String::from("\"\""), line);
            continue;
        }
        if (c == 'r' || c == 'b') && is_raw_or_byte_literal(&chars, i) {
            let start_line = line;
            i = consume_prefixed_literal(&chars, i, &mut line);
            push!(TokenKind::Str, String::from("\"\""), start_line);
            continue;
        }
        // Character literal or lifetime.
        if c == '\'' {
            if is_lifetime(&chars, i) {
                let start = i;
                i += 1;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                push!(TokenKind::Lifetime, text, line);
            } else {
                i += 1; // opening quote
                while i < chars.len() && chars[i] != '\'' {
                    if chars[i] == '\\' {
                        i += 1;
                    }
                    i += 1;
                }
                i += 1; // closing quote
                push!(TokenKind::Str, String::from("''"), line);
            }
            continue;
        }
        // Numbers.
        if c.is_ascii_digit() {
            let start = i;
            let mut is_float = false;
            i += 1;
            // Radix prefixes: hex/octal/binary are always integers.
            if c == '0' && matches!(chars.get(i), Some('x') | Some('o') | Some('b')) {
                i += 1;
                while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
            } else {
                while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '_') {
                    i += 1;
                }
                // Fractional part: `.` followed by a digit (not `..` or a
                // method call on the literal).
                if chars.get(i) == Some(&'.')
                    && chars.get(i + 1).is_some_and(|d| d.is_ascii_digit())
                {
                    is_float = true;
                    i += 1;
                    while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '_') {
                        i += 1;
                    }
                }
                // Exponent.
                if matches!(chars.get(i), Some('e') | Some('E'))
                    && (chars.get(i + 1).is_some_and(|d| d.is_ascii_digit())
                        || (matches!(chars.get(i + 1), Some('+') | Some('-'))
                            && chars.get(i + 2).is_some_and(|d| d.is_ascii_digit())))
                {
                    is_float = true;
                    i += 1;
                    if matches!(chars.get(i), Some('+') | Some('-')) {
                        i += 1;
                    }
                    while i < chars.len() && chars[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                // Suffix (u32, f64, ...).
                let suffix_start = i;
                while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                let suffix: String = chars[suffix_start..i].iter().collect();
                if suffix.starts_with('f') {
                    is_float = true;
                }
            }
            let text: String = chars[start..i].iter().collect();
            let kind = if is_float {
                TokenKind::Float
            } else {
                TokenKind::Int
            };
            push!(kind, text, line);
            continue;
        }
        // Identifiers and keywords.
        if c.is_alphanumeric() || c == '_' {
            let start = i;
            while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            let text: String = chars[start..i].iter().collect();
            push!(TokenKind::Ident, text, line);
            continue;
        }
        // Operators, longest match first.
        let mut matched = false;
        for op in OPERATORS {
            let len = op.len();
            if i + len <= chars.len() && chars[i..i + len].iter().collect::<String>() == **op {
                push!(TokenKind::Punct, (*op).to_string(), line);
                i += len;
                matched = true;
                break;
            }
        }
        if !matched {
            push!(TokenKind::Punct, c.to_string(), line);
            i += 1;
        }
    }
    out
}

/// Extracts the rule name from a `// xtask: allow(<rule>) ...` comment.
fn parse_allow(comment: &str) -> Option<String> {
    let rest = comment.split("xtask: allow(").nth(1)?;
    let rule = rest.split(')').next()?.trim();
    if rule.is_empty() {
        None
    } else {
        Some(rule.to_string())
    }
}

/// Whether the `'` at position `i` starts a lifetime rather than a
/// character literal: an identifier follows with no closing quote right
/// after the first character.
fn is_lifetime(chars: &[char], i: usize) -> bool {
    match chars.get(i + 1) {
        Some('\\') => false,
        Some(c) if c.is_alphanumeric() || *c == '_' => chars.get(i + 2) != Some(&'\''),
        _ => false,
    }
}

/// Whether position `i` (at `r` or `b`) starts a raw/byte string or byte
/// char literal rather than an identifier.
fn is_raw_or_byte_literal(chars: &[char], i: usize) -> bool {
    // An identifier character right before means this `r`/`b` is part of a
    // longer identifier (e.g. `for`, `grab"..."` cannot happen lexically).
    if i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_') {
        return false;
    }
    match chars[i] {
        'r' => {
            matches!(chars.get(i + 1), Some('"') | Some('#') if raw_hashes_then_quote(chars, i + 1))
        }
        'b' => match chars.get(i + 1) {
            Some('"') | Some('\'') => true,
            Some('r') => raw_hashes_then_quote(chars, i + 2),
            _ => false,
        },
        _ => false,
    }
}

/// Whether `#`* followed by `"` starts at `i` (also true for a bare `"`).
fn raw_hashes_then_quote(chars: &[char], mut i: usize) -> bool {
    while chars.get(i) == Some(&'#') {
        i += 1;
    }
    chars.get(i) == Some(&'"')
}

/// Consumes a plain `"..."` string starting at the opening quote; returns
/// the index one past the closing quote.
fn consume_string(chars: &[char], mut i: usize, line: &mut u32) -> usize {
    i += 1;
    while i < chars.len() {
        match chars[i] {
            '\\' => i += 2,
            '"' => return i + 1,
            '\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Consumes an `r"..."`, `r#"..."#`, `b"..."`, `br#"..."#`, or `b'x'`
/// literal starting at the prefix; returns the index one past the end.
fn consume_prefixed_literal(chars: &[char], mut i: usize, line: &mut u32) -> usize {
    let mut raw = false;
    if chars[i] == 'b' {
        i += 1;
    }
    if chars.get(i) == Some(&'r') {
        raw = true;
        i += 1;
    }
    if chars.get(i) == Some(&'\'') {
        // byte char literal
        i += 1;
        while i < chars.len() && chars[i] != '\'' {
            if chars[i] == '\\' {
                i += 1;
            }
            i += 1;
        }
        return i + 1;
    }
    let mut hashes = 0usize;
    while chars.get(i) == Some(&'#') {
        hashes += 1;
        i += 1;
    }
    i += 1; // opening quote
    if !raw {
        // plain byte string: handles escapes
        while i < chars.len() {
            match chars[i] {
                '\\' => i += 2,
                '"' => return i + 1,
                '\n' => {
                    *line += 1;
                    i += 1;
                }
                _ => i += 1,
            }
        }
        return i;
    }
    while i < chars.len() {
        if chars[i] == '\n' {
            *line += 1;
            i += 1;
            continue;
        }
        if chars[i] == '"' {
            let mut ok = true;
            for k in 0..hashes {
                if chars.get(i + 1 + k) != Some(&'#') {
                    ok = false;
                    break;
                }
            }
            if ok {
                return i + 1 + hashes;
            }
        }
        i += 1;
    }
    i
}

/// Strips items annotated `#[cfg(test)]` (and any `cfg(all(test, ...))`
/// style attribute mentioning `test`) from the token stream: lint rules
/// apply to shipped code, not to tests, which use `unwrap` and friends
/// idiomatically.
pub fn strip_test_items(tokens: &[Token]) -> Vec<Token> {
    let mut out = Vec::with_capacity(tokens.len());
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].is_punct("#") && tokens.get(i + 1).is_some_and(|t| t.is_punct("[")) {
            // Parse the attribute to its closing bracket.
            let mut j = i + 2;
            let mut depth = 1usize;
            let mut mentions_cfg = false;
            let mut mentions_test = false;
            while j < tokens.len() && depth > 0 {
                let t = &tokens[j];
                if t.is_punct("[") {
                    depth += 1;
                } else if t.is_punct("]") {
                    depth -= 1;
                } else if t.is_ident("cfg") {
                    mentions_cfg = true;
                } else if t.is_ident("test") {
                    mentions_test = true;
                }
                j += 1;
            }
            if mentions_cfg && mentions_test {
                // Skip any further attributes and doc comments, then the
                // annotated item itself.
                i = skip_item(tokens, j);
                continue;
            }
            // Ordinary attribute: keep it.
            out.extend(tokens[i..j].iter().cloned());
            i = j;
            continue;
        }
        out.push(tokens[i].clone());
        i += 1;
    }
    out
}

/// Returns the index one past the item starting at `i` (skipping leading
/// attributes and doc comments): either the matching close of its first
/// top-level brace block or its terminating semicolon.
fn skip_item(tokens: &[Token], mut i: usize) -> usize {
    // Leading doc comments and further attributes.
    loop {
        if tokens
            .get(i)
            .is_some_and(|t| t.kind == TokenKind::DocComment)
        {
            i += 1;
            continue;
        }
        if tokens.get(i).is_some_and(|t| t.is_punct("#"))
            && tokens.get(i + 1).is_some_and(|t| t.is_punct("["))
        {
            let mut depth = 0usize;
            i += 1;
            while i < tokens.len() {
                if tokens[i].is_punct("[") {
                    depth += 1;
                } else if tokens[i].is_punct("]") {
                    depth -= 1;
                    if depth == 0 {
                        i += 1;
                        break;
                    }
                }
                i += 1;
            }
            continue;
        }
        break;
    }
    // The item body: everything up to the first `;` or brace block at
    // bracket/paren depth zero.
    let mut paren = 0isize;
    let mut bracket = 0isize;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_punct("(") {
            paren += 1;
        } else if t.is_punct(")") {
            paren -= 1;
        } else if t.is_punct("[") {
            bracket += 1;
        } else if t.is_punct("]") {
            bracket -= 1;
        } else if paren == 0 && bracket == 0 {
            if t.is_punct(";") {
                return i + 1;
            }
            if t.is_punct("{") {
                let mut depth = 0usize;
                while i < tokens.len() {
                    if tokens[i].is_punct("{") {
                        depth += 1;
                    } else if tokens[i].is_punct("}") {
                        depth -= 1;
                        if depth == 0 {
                            return i + 1;
                        }
                    }
                    i += 1;
                }
                return i;
            }
        }
        i += 1;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.clone())
            .collect()
    }

    #[test]
    fn comments_and_strings_are_not_tokens() {
        let src = "let x = \"unwrap()\"; // unwrap()\n/* panic! */ let y = 1;";
        let ids = idents(src);
        assert_eq!(ids, vec!["let", "x", "let", "y"]);
    }

    #[test]
    fn raw_strings_and_chars() {
        let src = "let s = r#\"[0] panic!\"#; let c = '\\''; let l: &'a str = b\"x[1]\";";
        let toks = lex(src);
        assert!(toks.tokens.iter().all(|t| !t.is_punct("[")));
        assert!(toks
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::Lifetime && t.text == "'a"));
    }

    #[test]
    fn float_vs_int_vs_range() {
        let toks = lex("a[0]; 1.5; 2e-3; 0x1f; 1..4; 3f64");
        let kinds: Vec<(TokenKind, String)> = toks
            .tokens
            .iter()
            .filter(|t| matches!(t.kind, TokenKind::Int | TokenKind::Float))
            .map(|t| (t.kind, t.text.clone()))
            .collect();
        assert_eq!(
            kinds,
            vec![
                (TokenKind::Int, "0".into()),
                (TokenKind::Float, "1.5".into()),
                (TokenKind::Float, "2e-3".into()),
                (TokenKind::Int, "0x1f".into()),
                (TokenKind::Int, "1".into()),
                (TokenKind::Int, "4".into()),
                (TokenKind::Float, "3f64".into()),
            ]
        );
    }

    #[test]
    fn multi_char_operators_stay_whole() {
        let toks = lex("a == b; c != d; e..=f; g::h");
        let ops: Vec<String> = toks
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Punct && t.text.len() > 1)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(ops, vec!["==", "!=", "..=", "::"]);
    }

    #[test]
    fn allow_annotations_are_collected() {
        let src =
            "let x = a[i]; // xtask: allow(no-index) audited access\nlet y = b[j];\nlet z = 1;";
        let toks = lex(src);
        assert!(toks.is_allowed("no-index", 1));
        // A standalone annotation line covers the line below it, but no
        // further.
        assert!(toks.is_allowed("no-index", 2));
        assert!(!toks.is_allowed("no-index", 3));
        assert!(!toks.is_allowed("no-panic", 1));
    }

    #[test]
    fn line_numbers_survive_multiline_strings() {
        let src = "let s = \"a\nb\nc\";\nlet t = 1;";
        let toks = lex(src);
        let t = toks.tokens.iter().find(|t| t.is_ident("t")).unwrap();
        assert_eq!(t.line, 4);
    }

    #[test]
    fn strip_test_items_removes_cfg_test_mod() {
        let src = "fn live() { x.unwrap(); }\n#[cfg(test)]\nmod tests { fn t() { y.unwrap(); } }\nfn after() {}";
        let toks = lex(src);
        let stripped = strip_test_items(&toks.tokens);
        let ids: Vec<&str> = stripped
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert!(ids.contains(&"live"));
        assert!(ids.contains(&"after"));
        assert!(!ids.contains(&"tests"));
        assert!(!ids.contains(&"y"));
    }

    #[test]
    fn strip_test_items_handles_annotated_fn_with_more_attrs() {
        let src = "#[cfg(test)]\n#[inline]\nfn helper() -> u32 { 3 }\npub fn kept() {}";
        let toks = lex(src);
        let stripped = strip_test_items(&toks.tokens);
        let ids: Vec<&str> = stripped
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert!(!ids.contains(&"helper"));
        assert!(ids.contains(&"kept"));
    }

    #[test]
    fn non_test_cfg_attributes_are_kept() {
        let src = "#[cfg(feature = \"checks\")]\nfn gated() {}";
        let toks = lex(src);
        let stripped = strip_test_items(&toks.tokens);
        let ids: Vec<&str> = stripped
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert!(ids.contains(&"gated"));
        assert!(ids.contains(&"cfg"));
    }
}
