//! The `telemetry-schema` rule: a golden manifest of the telemetry wire
//! format.
//!
//! Downstream tooling (dashboards, the paper's analysis notebooks) parses
//! the JSONL records emitted by the `telemetry` crate, whose contract is:
//! field *removals or renames* bump `SCHEMA_VERSION`, additions do not.
//! This module extracts the current shape of `RunRecord` and `Event` from
//! the telemetry sources and compares it against the checked-in manifest
//! `crates/xtask/telemetry.schema`. A drifted manifest fails `xtask lint`;
//! `cargo run -p xtask -- schema-update` regenerates it (after which a
//! missing version bump is still reported).

use crate::lexer::{lex, Token, TokenKind};
use crate::rules::Diagnostic;

/// The extracted telemetry wire-format shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    /// The declared `SCHEMA_VERSION`.
    pub version: u64,
    /// Field names of `RunRecord`, in declaration order.
    pub record_fields: Vec<String>,
    /// Field names of `RequestRecord` (the daemon-side per-request
    /// record), in declaration order.
    pub request_fields: Vec<String>,
    /// `Event` variants with their field names, in declaration order.
    pub events: Vec<(String, Vec<String>)>,
}

/// Extracts the schema from the telemetry crate's sources.
///
/// `lib_src`, `record_src`, and `sink_src` are the contents of
/// `crates/telemetry/src/{lib,record,sink}.rs`.
pub fn extract(lib_src: &str, record_src: &str, sink_src: &str) -> Result<Schema, String> {
    let version = find_version(&lex(lib_src).tokens)
        .ok_or("could not find `SCHEMA_VERSION: u32 = <n>` in telemetry/src/lib.rs")?;
    let record_tokens = lex(record_src).tokens;
    let record_fields = struct_fields(&record_tokens, "RunRecord")
        .ok_or("could not find `struct RunRecord` in telemetry/src/record.rs")?;
    let request_fields = struct_fields(&record_tokens, "RequestRecord")
        .ok_or("could not find `struct RequestRecord` in telemetry/src/record.rs")?;
    let events = enum_variants(&lex(sink_src).tokens, "Event")
        .ok_or("could not find `enum Event` in telemetry/src/sink.rs")?;
    Ok(Schema {
        version,
        record_fields,
        request_fields,
        events,
    })
}

fn find_version(tokens: &[Token]) -> Option<u64> {
    for (i, t) in tokens.iter().enumerate() {
        if t.is_ident("SCHEMA_VERSION") {
            // SCHEMA_VERSION : u32 = <int>
            let mut j = i + 1;
            while j < tokens.len() && !tokens[j].is_punct("=") && !tokens[j].is_punct(";") {
                j += 1;
            }
            if let Some(v) = tokens.get(j + 1) {
                if v.kind == TokenKind::Int {
                    return v.text.replace('_', "").parse().ok();
                }
            }
        }
    }
    None
}

/// Field names of `struct <name> { ... }` (named fields only).
fn struct_fields(tokens: &[Token], name: &str) -> Option<Vec<String>> {
    let mut i = 0usize;
    while i + 2 < tokens.len() {
        if tokens[i].is_ident("struct")
            && tokens[i + 1].is_ident(name)
            && tokens[i + 2].is_punct("{")
        {
            return Some(fields_in_braces(tokens, i + 2).0);
        }
        i += 1;
    }
    None
}

/// Variants of `enum <name> { Variant { fields } | Variant(...) | Variant }`.
fn enum_variants(tokens: &[Token], name: &str) -> Option<Vec<(String, Vec<String>)>> {
    let mut i = 0usize;
    while i + 2 < tokens.len() {
        if tokens[i].is_ident("enum") && tokens[i + 1].is_ident(name) && tokens[i + 2].is_punct("{")
        {
            let mut variants = Vec::new();
            let mut j = i + 3;
            while j < tokens.len() && !tokens[j].is_punct("}") {
                let t = &tokens[j];
                if t.is_punct("#") {
                    // Skip a variant attribute to its closing bracket.
                    let mut depth = 0usize;
                    while j < tokens.len() {
                        if tokens[j].is_punct("[") {
                            depth += 1;
                        } else if tokens[j].is_punct("]") {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        j += 1;
                    }
                    j += 1;
                    continue;
                }
                if t.kind == TokenKind::Ident {
                    let vname = t.text.clone();
                    match tokens.get(j + 1) {
                        Some(n) if n.is_punct("{") => {
                            let (fields, end) = fields_in_braces(tokens, j + 1);
                            variants.push((vname, fields));
                            j = end;
                        }
                        Some(n) if n.is_punct("(") => {
                            // Tuple variant: positional field placeholders.
                            let mut depth = 0usize;
                            let mut arity = 0usize;
                            let mut k = j + 1;
                            while k < tokens.len() {
                                if tokens[k].is_punct("(") {
                                    depth += 1;
                                } else if tokens[k].is_punct(")") {
                                    depth -= 1;
                                    if depth == 0 {
                                        break;
                                    }
                                } else if depth == 1 && tokens[k].is_punct(",") {
                                    arity += 1;
                                }
                                k += 1;
                            }
                            let fields = (0..=arity).map(|n| format!("_{n}")).collect();
                            variants.push((vname, fields));
                            j = k + 1;
                        }
                        _ => {
                            variants.push((vname, Vec::new()));
                            j += 1;
                        }
                    }
                } else {
                    j += 1;
                }
            }
            return Some(variants);
        }
        i += 1;
    }
    None
}

/// Collects `name :` field names inside the brace block opening at `open`;
/// returns them with the index one past the closing brace.
fn fields_in_braces(tokens: &[Token], open: usize) -> (Vec<String>, usize) {
    let mut fields = Vec::new();
    let mut depth = 0usize;
    let mut i = open;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_punct("{") {
            depth += 1;
        } else if t.is_punct("}") {
            depth -= 1;
            if depth == 0 {
                return (fields, i + 1);
            }
        } else if depth == 1
            && t.kind == TokenKind::Ident
            && tokens.get(i + 1).is_some_and(|n| n.is_punct(":"))
            && tokens.get(i + 2).is_none_or(|n| !n.is_punct(":"))
        {
            fields.push(t.text.clone());
            // Skip past the field type up to the comma at this depth, so
            // type arguments (`Option<f64>`) cannot fake a field.
            let mut inner = 0usize;
            while i < tokens.len() {
                let u = &tokens[i];
                if u.is_punct("{") || u.is_punct("(") || u.is_punct("[") {
                    inner += 1;
                } else if u.is_punct("}") || u.is_punct(")") || u.is_punct("]") {
                    if inner == 0 {
                        i -= 1; // let the outer loop see the closer
                        break;
                    }
                    inner -= 1;
                } else if inner == 0 && u.is_punct(",") {
                    break;
                }
                i += 1;
            }
        }
        i += 1;
    }
    (fields, i)
}

/// Serializes the schema in the manifest format (one line per shape).
pub fn to_manifest(schema: &Schema) -> String {
    let mut out = String::new();
    out.push_str("# Telemetry wire-format manifest. Regenerate with:\n");
    out.push_str("#   cargo run -p xtask -- schema-update\n");
    out.push_str("# Removing or renaming a field requires bumping telemetry::SCHEMA_VERSION.\n");
    out.push_str(&format!("version {}\n", schema.version));
    out.push_str(&format!(
        "record RunRecord {}\n",
        schema.record_fields.join(" ")
    ));
    out.push_str(&format!(
        "record RequestRecord {}\n",
        schema.request_fields.join(" ")
    ));
    for (name, fields) in &schema.events {
        out.push_str(&format!("event {} {}\n", name, fields.join(" ")));
    }
    out
}

/// Parses a manifest produced by [`to_manifest`].
pub fn parse_manifest(text: &str) -> Result<Schema, String> {
    let mut version = None;
    let mut record_fields = None;
    let mut request_fields = None;
    let mut events = Vec::new();
    for (no, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("version") => {
                let v = parts
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or(format!("telemetry.schema:{}: bad version line", no + 1))?;
                version = Some(v);
            }
            Some("record") => {
                let name = parts.next().ok_or(format!(
                    "telemetry.schema:{}: record without a name",
                    no + 1
                ))?;
                let fields = Some(parts.map(String::from).collect());
                match name {
                    "RunRecord" => record_fields = fields,
                    "RequestRecord" => request_fields = fields,
                    other => {
                        return Err(format!(
                            "telemetry.schema:{}: unknown record `{other}`",
                            no + 1
                        ))
                    }
                }
            }
            Some("event") => {
                let name = parts
                    .next()
                    .ok_or(format!("telemetry.schema:{}: event without a name", no + 1))?;
                events.push((name.to_string(), parts.map(String::from).collect()));
            }
            _ => {
                return Err(format!(
                    "telemetry.schema:{}: unrecognized line {raw:?}",
                    no + 1
                ))
            }
        }
    }
    Ok(Schema {
        version: version.ok_or("telemetry.schema: missing version line")?,
        record_fields: record_fields.ok_or("telemetry.schema: missing RunRecord line")?,
        request_fields: request_fields.ok_or("telemetry.schema: missing RequestRecord line")?,
        events,
    })
}

/// Compares the live schema against the manifest, appending diagnostics.
///
/// The contract: any drift means the manifest must be refreshed, and a
/// removal or rename with an unchanged version additionally demands a
/// `SCHEMA_VERSION` bump.
pub fn compare(current: &Schema, manifest: &Schema, out: &mut Vec<Diagnostic>) {
    if current == manifest {
        return;
    }
    let mut removed: Vec<String> = manifest
        .record_fields
        .iter()
        .filter(|f| !current.record_fields.contains(f))
        .map(|f| format!("RunRecord.{f}"))
        .collect();
    removed.extend(
        manifest
            .request_fields
            .iter()
            .filter(|f| !current.request_fields.contains(f))
            .map(|f| format!("RequestRecord.{f}")),
    );
    for (name, fields) in &manifest.events {
        match current.events.iter().find(|(n, _)| n == name) {
            None => removed.push(format!("Event::{name}")),
            Some((_, cur_fields)) => removed.extend(
                fields
                    .iter()
                    .filter(|f| !cur_fields.contains(f))
                    .map(|f| format!("Event::{name}.{f}")),
            ),
        }
    }
    if !removed.is_empty() && current.version == manifest.version {
        diag_schema(
            out,
            format!(
                "telemetry schema removed or renamed {} without bumping \
                 telemetry::SCHEMA_VERSION (still {})",
                removed.join(", "),
                current.version
            ),
        );
    }
    diag_schema(
        out,
        "telemetry schema drifted from crates/xtask/telemetry.schema; \
         run `cargo run -p xtask -- schema-update`"
            .to_string(),
    );
}

fn diag_schema(out: &mut Vec<Diagnostic>, message: String) {
    out.push(Diagnostic {
        rule: "telemetry-schema",
        path: "crates/telemetry/src".to_string(),
        line: 1,
        message,
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    const LIB: &str = "pub const SCHEMA_VERSION: u32 = 3;";
    const RECORD: &str = "pub struct RunRecord {\n    pub schema_version: u32,\n    pub extras: Option<Vec<(String, u64)>>,\n}\npub struct RequestRecord {\n    pub request_id: u64,\n    pub verdict: String,\n}";
    const SINK: &str =
        "pub enum Event {\n    Start { id: String, n: u64 },\n    End { record: RunRecord },\n}";

    fn schema() -> Schema {
        extract(LIB, RECORD, SINK).expect("extracts")
    }

    #[test]
    fn extraction_reads_fields_and_variants() {
        let s = schema();
        assert_eq!(s.version, 3);
        assert_eq!(s.record_fields, vec!["schema_version", "extras"]);
        assert_eq!(s.request_fields, vec!["request_id", "verdict"]);
        assert_eq!(
            s.events,
            vec![
                ("Start".into(), vec!["id".into(), "n".into()]),
                ("End".into(), vec!["record".into()]),
            ]
        );
    }

    #[test]
    fn manifest_round_trips() {
        let s = schema();
        let text = to_manifest(&s);
        assert_eq!(parse_manifest(&text).expect("parses"), s);
    }

    #[test]
    fn identical_schemas_produce_no_diagnostics() {
        let mut out = Vec::new();
        compare(&schema(), &schema(), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn field_removal_without_bump_is_flagged() {
        let mut current = schema();
        current.record_fields.retain(|f| f != "extras");
        let mut out = Vec::new();
        compare(&current, &schema(), &mut out);
        assert_eq!(out.len(), 2, "{out:?}");
        assert!(out[0].message.contains("RunRecord.extras"));
        assert!(out[0].message.contains("SCHEMA_VERSION"));
    }

    #[test]
    fn field_removal_with_bump_still_wants_manifest_refresh() {
        let mut current = schema();
        current.record_fields.retain(|f| f != "extras");
        current.version += 1;
        let mut out = Vec::new();
        compare(&current, &schema(), &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("schema-update"));
    }

    #[test]
    fn pure_addition_only_wants_manifest_refresh() {
        let mut current = schema();
        current.record_fields.push("new_field".into());
        current.events.push(("Restart".into(), vec!["no".into()]));
        let mut out = Vec::new();
        compare(&current, &schema(), &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("schema-update"));
    }

    #[test]
    fn request_record_removal_without_bump_is_flagged() {
        let mut current = schema();
        current.request_fields.retain(|f| f != "verdict");
        let mut out = Vec::new();
        compare(&current, &schema(), &mut out);
        assert_eq!(out.len(), 2, "{out:?}");
        assert!(out[0].message.contains("RequestRecord.verdict"));
    }

    #[test]
    fn event_field_removal_is_flagged() {
        let mut current = schema();
        current.events[0].1.retain(|f| f != "n");
        let mut out = Vec::new();
        compare(&current, &schema(), &mut out);
        assert!(out[0].message.contains("Event::Start.n"));
    }
}
