//! Repository automation tasks. `cargo run -p xtask -- lint` runs the
//! project-specific static checks over the workspace sources;
//! `cargo run -p xtask -- schema-update` refreshes the telemetry
//! wire-format manifest. See DESIGN.md for the rule catalogue.

mod lexer;
mod metrics_names;
mod rules;
mod schema;

use rules::Diagnostic;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = args.first().map(String::as_str).unwrap_or("lint");
    match command {
        "lint" => lint(),
        "schema-update" => schema_update(),
        "metrics-update" => metrics_update(),
        "--help" | "-h" | "help" => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("xtask: unknown command {other:?}\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "\
usage: cargo run -p xtask -- <command>

commands:
  lint           run the project lint rules over all workspace sources
  schema-update  regenerate crates/xtask/telemetry.schema from the
                 telemetry crate's sources
  metrics-update regenerate crates/xtask/metrics.names from the metric
                 name tables in crates/telemetry/src/metrics.rs
";

/// The workspace root, two levels above this crate's manifest.
fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/xtask sits two levels below the workspace root")
        .to_path_buf()
}

fn lint() -> ExitCode {
    let root = workspace_root();
    let mut diags: Vec<Diagnostic> = Vec::new();

    for file in collect_sources(&root) {
        let rel = relative(&root, &file);
        match std::fs::read_to_string(&file) {
            Ok(src) => rules::lint_file(&rel, &src, &mut diags),
            Err(e) => {
                eprintln!("xtask: cannot read {rel}: {e}");
                return ExitCode::from(2);
            }
        }
    }

    if let Err(e) = check_telemetry_schema(&root, &mut diags) {
        eprintln!("xtask: {e}");
        return ExitCode::from(2);
    }

    if let Err(e) = check_metrics_names(&root, &mut diags) {
        eprintln!("xtask: {e}");
        return ExitCode::from(2);
    }

    // File-level allowlist.
    let allow_path = root.join("crates/xtask/lint.allow");
    let stale = match std::fs::read_to_string(&allow_path) {
        Ok(text) => match rules::parse_allowlist(&text) {
            Ok(entries) => rules::apply_allowlist(&mut diags, &entries),
            Err(e) => {
                eprintln!("xtask: {e}");
                return ExitCode::from(2);
            }
        },
        Err(_) => Vec::new(), // no allowlist file: nothing suppressed
    };

    diags.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    for d in &diags {
        println!("{d}");
    }
    for e in &stale {
        println!(
            "crates/xtask/lint.allow: stale entry `{} {}{}` matches nothing; remove it",
            e.rule,
            e.path,
            e.line.map(|l| format!(":{l}")).unwrap_or_default()
        );
    }
    if diags.is_empty() && stale.is_empty() {
        println!("xtask lint: clean");
        ExitCode::SUCCESS
    } else {
        println!(
            "xtask lint: {} violation(s), {} stale allowlist entr(ies)",
            diags.len(),
            stale.len()
        );
        ExitCode::FAILURE
    }
}

/// All `.rs` files under `crates/*/src`, workspace-relative order.
/// `vendor/` (third-party shims) and `target/` are out of scope, as are
/// integration-test and bench directories: the rules govern shipped code.
fn collect_sources(root: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)
        .into_iter()
        .flatten()
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        walk(&dir.join("src"), &mut files);
    }
    files.sort();
    files
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            walk(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

fn relative(root: &Path, file: &Path) -> String {
    file.strip_prefix(root)
        .unwrap_or(file)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Runs the `telemetry-schema` golden-manifest comparison.
fn check_telemetry_schema(root: &Path, diags: &mut Vec<Diagnostic>) -> Result<(), String> {
    let current = extract_current_schema(root)?;
    let manifest_path = root.join("crates/xtask/telemetry.schema");
    let manifest_text = std::fs::read_to_string(&manifest_path).map_err(|_| {
        "crates/xtask/telemetry.schema is missing; run `cargo run -p xtask -- schema-update`"
            .to_string()
    })?;
    let manifest = schema::parse_manifest(&manifest_text)?;
    schema::compare(&current, &manifest, diags);
    Ok(())
}

fn extract_current_schema(root: &Path) -> Result<schema::Schema, String> {
    let read = |rel: &str| {
        std::fs::read_to_string(root.join(rel)).map_err(|e| format!("cannot read {rel}: {e}"))
    };
    schema::extract(
        &read("crates/telemetry/src/lib.rs")?,
        &read("crates/telemetry/src/record.rs")?,
        &read("crates/telemetry/src/sink.rs")?,
    )
    .map_err(|e| e.to_string())
}

/// Runs the `metrics-names` golden-manifest comparison.
fn check_metrics_names(root: &Path, diags: &mut Vec<Diagnostic>) -> Result<(), String> {
    let current = extract_current_metrics(root)?;
    let manifest_path = root.join("crates/xtask/metrics.names");
    let manifest_text = std::fs::read_to_string(&manifest_path).map_err(|_| {
        "crates/xtask/metrics.names is missing; run `cargo run -p xtask -- metrics-update`"
            .to_string()
    })?;
    let manifest = metrics_names::parse_manifest(&manifest_text)?;
    metrics_names::compare(&current, &manifest, diags);
    Ok(())
}

fn extract_current_metrics(root: &Path) -> Result<Vec<metrics_names::MetricName>, String> {
    let rel = "crates/telemetry/src/metrics.rs";
    let src =
        std::fs::read_to_string(root.join(rel)).map_err(|e| format!("cannot read {rel}: {e}"))?;
    metrics_names::extract(&src)
}

fn metrics_update() -> ExitCode {
    let root = workspace_root();
    let current = match extract_current_metrics(&root) {
        Ok(names) => names,
        Err(e) => {
            eprintln!("xtask: {e}");
            return ExitCode::from(2);
        }
    };
    let path = root.join("crates/xtask/metrics.names");
    match std::fs::write(&path, metrics_names::to_manifest(&current)) {
        Ok(()) => {
            println!("wrote {}", relative(&root, &path));
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("xtask: cannot write metrics.names: {e}");
            ExitCode::from(2)
        }
    }
}

fn schema_update() -> ExitCode {
    let root = workspace_root();
    let current = match extract_current_schema(&root) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("xtask: {e}");
            return ExitCode::from(2);
        }
    };
    let path = root.join("crates/xtask/telemetry.schema");
    match std::fs::write(&path, schema::to_manifest(&current)) {
        Ok(()) => {
            println!("wrote {}", relative(&root, &path));
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("xtask: cannot write telemetry.schema: {e}");
            ExitCode::from(2)
        }
    }
}
