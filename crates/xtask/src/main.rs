//! Repository automation tasks. `cargo run -p xtask -- lint` runs the
//! project-specific static checks over the workspace sources — per-file
//! token rules plus the interprocedural call-graph rules (transitive
//! hot-path purity, lock-order); `cargo run -p xtask -- schema-update`
//! refreshes the telemetry wire-format manifest. See DESIGN.md for the
//! rule catalogue and §14 for the call-graph model.

mod callgraph;
mod extract;
mod lexer;
mod lockorder;
mod metrics_names;
mod rules;
mod schema;

use rules::Diagnostic;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = args.first().map(String::as_str).unwrap_or("lint");
    match command {
        "lint" => lint(args.iter().any(|a| a == "--json")),
        "schema-update" => schema_update(),
        "metrics-update" => metrics_update(),
        "callgraph-update" => callgraph_update(),
        "callgraph" => callgraph_cmd(&args[1..]),
        "--help" | "-h" | "help" => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("xtask: unknown command {other:?}\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "\
usage: cargo run -p xtask -- <command>

commands:
  lint [--json]    run the project lint rules over all workspace sources
                   (per-file rules + transitive hot-path purity +
                   lock-order); --json emits one JSON object per finding
  schema-update    regenerate crates/xtask/telemetry.schema from the
                   telemetry crate's sources
  metrics-update   regenerate crates/xtask/metrics.names from the metric
                   name tables in crates/telemetry/src/metrics.rs
  callgraph-update regenerate the crates/xtask/callgraph.facts golden
                   manifest from the current sources
  callgraph --dot FN
                   print the Graphviz subgraph reachable from fns
                   matching FN (exact id, `::`-suffix, or bare name)
";

/// The workspace root, two levels above this crate's manifest.
fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/xtask sits two levels below the workspace root")
        .to_path_buf()
}

/// Per-file output of the parallel lex/lint/extract stage.
struct FileResult {
    rel: String,
    diags: Vec<Diagnostic>,
    facts: extract::FileFacts,
    allows: Vec<(u32, String)>,
}

/// Lexes, lints, and extracts one file (runs on a worker thread).
fn process_file(root: &Path, file: &Path) -> Result<FileResult, String> {
    let rel = relative(root, file);
    let src = std::fs::read_to_string(file).map_err(|e| format!("cannot read {rel}: {e}"))?;
    let lexed = lexer::lex(&src);
    let tokens = lexer::strip_test_items(&lexed.tokens);
    let mut diags = Vec::new();
    rules::lint_lexed(&rel, &src, &lexed, &tokens, &mut diags);
    let facts = extract::extract_file(&rel, &src, tokens);
    Ok(FileResult {
        rel,
        diags,
        facts,
        allows: lexed.allows,
    })
}

/// Runs the per-file stage across all sources with scoped threads. The
/// file list is split into contiguous chunks (one per worker), and the
/// chunk results are concatenated in spawn order, so the output is
/// deterministic regardless of scheduling.
fn process_all(root: &Path, files: &[PathBuf]) -> Result<Vec<FileResult>, String> {
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .clamp(1, 8);
    if workers == 1 || files.len() < 2 {
        return files.iter().map(|f| process_file(root, f)).collect();
    }
    let chunk = files.len().div_ceil(workers);
    std::thread::scope(|s| {
        let handles: Vec<_> = files
            .chunks(chunk)
            .map(|slice| s.spawn(move || slice.iter().map(|f| process_file(root, f)).collect()))
            .collect();
        let mut out = Vec::with_capacity(files.len());
        for h in handles {
            let chunk_results: Vec<Result<FileResult, String>> = h
                .join()
                .map_err(|_| "lint worker thread panicked".to_string())?;
            for r in chunk_results {
                out.push(r?);
            }
        }
        Ok(out)
    })
}

fn lint(json: bool) -> ExitCode {
    let root = workspace_root();
    let mut diags: Vec<Diagnostic> = Vec::new();

    let results = match process_all(&root, &collect_sources(&root)) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("xtask: {e}");
            return ExitCode::from(2);
        }
    };
    let mut allow_map = callgraph::AllowMap::new();
    let mut facts = Vec::with_capacity(results.len());
    for r in results {
        diags.extend(r.diags);
        if !r.allows.is_empty() {
            allow_map.insert(r.rel.clone(), r.allows);
        }
        facts.push(r.facts);
    }

    // Interprocedural rules over the assembled call graph.
    let graph = callgraph::Graph::build(facts);
    callgraph::hot_path_purity(&graph, &allow_map, &mut diags);
    lockorder::lock_analysis(&graph, &allow_map, &mut diags);

    // Golden manifests: call-graph facts, telemetry schema, metric names.
    let facts_path = root.join("crates/xtask/callgraph.facts");
    match std::fs::read_to_string(&facts_path) {
        Ok(text) => match callgraph::parse_manifest(&text) {
            Ok(manifest) => callgraph::compare(&graph, &manifest, &mut diags),
            Err(e) => {
                eprintln!("xtask: {e}");
                return ExitCode::from(2);
            }
        },
        Err(_) => {
            eprintln!(
                "xtask: crates/xtask/callgraph.facts is missing; run \
                 `cargo run -p xtask -- callgraph-update`"
            );
            return ExitCode::from(2);
        }
    }
    if let Err(e) = check_telemetry_schema(&root, &mut diags) {
        eprintln!("xtask: {e}");
        return ExitCode::from(2);
    }
    if let Err(e) = check_metrics_names(&root, &mut diags) {
        eprintln!("xtask: {e}");
        return ExitCode::from(2);
    }

    // File-level allowlist. Entries pointing at files that no longer
    // exist are hard errors (a dead suppression hides nothing today but
    // will silently re-arm if the path comes back), distinct from stale
    // entries whose file exists but whose diagnostic is gone.
    let allow_path = root.join("crates/xtask/lint.allow");
    let (stale, dead) = match std::fs::read_to_string(&allow_path) {
        Ok(text) => match rules::parse_allowlist(&text) {
            Ok(entries) => {
                let (live, dead): (Vec<_>, Vec<_>) = entries
                    .into_iter()
                    .partition(|e| root.join(&e.path).exists());
                (rules::apply_allowlist(&mut diags, &live), dead)
            }
            Err(e) => {
                eprintln!("xtask: {e}");
                return ExitCode::from(2);
            }
        },
        Err(_) => (Vec::new(), Vec::new()), // no allowlist file
    };

    diags.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    let println_or_json = |d: &Diagnostic| {
        if json {
            println!(
                "{{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"message\":\"{}\"}}",
                json_escape(d.rule),
                json_escape(&d.path),
                d.line,
                json_escape(&d.message)
            );
        } else {
            println!("{d}");
        }
    };
    for d in &diags {
        println_or_json(d);
    }
    for e in &dead {
        let msg = format!(
            "dead entry `{} {}{}`: the file does not exist; remove the entry",
            e.rule,
            e.path,
            e.line.map(|l| format!(":{l}")).unwrap_or_default()
        );
        println_or_json(&Diagnostic {
            rule: "dead-allow",
            path: "crates/xtask/lint.allow".to_string(),
            line: 1,
            message: msg,
        });
    }
    for e in &stale {
        let msg = format!(
            "stale entry `{} {}{}` matches nothing; remove it",
            e.rule,
            e.path,
            e.line.map(|l| format!(":{l}")).unwrap_or_default()
        );
        println_or_json(&Diagnostic {
            rule: "stale-allow",
            path: "crates/xtask/lint.allow".to_string(),
            line: 1,
            message: msg,
        });
    }
    let total = diags.len() + stale.len() + dead.len();
    if total == 0 {
        eprintln!("xtask lint: clean");
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "xtask lint: {} violation(s), {} stale / {} dead allowlist entr(ies)",
            diags.len(),
            stale.len(),
            dead.len()
        );
        ExitCode::FAILURE
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Builds the call graph from the current sources (no lint rules).
fn build_graph(root: &Path) -> Result<callgraph::Graph, String> {
    let results = process_all(root, &collect_sources(root))?;
    Ok(callgraph::Graph::build(
        results.into_iter().map(|r| r.facts).collect(),
    ))
}

fn callgraph_update() -> ExitCode {
    let root = workspace_root();
    let graph = match build_graph(&root) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("xtask: {e}");
            return ExitCode::from(2);
        }
    };
    let path = root.join("crates/xtask/callgraph.facts");
    match std::fs::write(&path, callgraph::to_manifest(&graph)) {
        Ok(()) => {
            println!("wrote {}", relative(&root, &path));
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("xtask: cannot write callgraph.facts: {e}");
            ExitCode::from(2)
        }
    }
}

fn callgraph_cmd(args: &[String]) -> ExitCode {
    let pattern = match args {
        [flag, fn_name] if flag == "--dot" => fn_name,
        _ => {
            eprintln!("xtask: usage: cargo run -p xtask -- callgraph --dot FN");
            return ExitCode::from(2);
        }
    };
    let root = workspace_root();
    let graph = match build_graph(&root) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("xtask: {e}");
            return ExitCode::from(2);
        }
    };
    match callgraph::dot(&graph, pattern) {
        Ok(out) => {
            print!("{out}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("xtask: {e}");
            ExitCode::from(2)
        }
    }
}

/// All `.rs` files under `crates/*/src`, workspace-relative order.
/// `vendor/` (third-party shims) and `target/` are out of scope, as are
/// integration-test and bench directories: the rules govern shipped code.
fn collect_sources(root: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)
        .into_iter()
        .flatten()
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        walk(&dir.join("src"), &mut files);
    }
    files.sort();
    files
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            walk(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

fn relative(root: &Path, file: &Path) -> String {
    file.strip_prefix(root)
        .unwrap_or(file)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Runs the `telemetry-schema` golden-manifest comparison.
fn check_telemetry_schema(root: &Path, diags: &mut Vec<Diagnostic>) -> Result<(), String> {
    let current = extract_current_schema(root)?;
    let manifest_path = root.join("crates/xtask/telemetry.schema");
    let manifest_text = std::fs::read_to_string(&manifest_path).map_err(|_| {
        "crates/xtask/telemetry.schema is missing; run `cargo run -p xtask -- schema-update`"
            .to_string()
    })?;
    let manifest = schema::parse_manifest(&manifest_text)?;
    schema::compare(&current, &manifest, diags);
    Ok(())
}

fn extract_current_schema(root: &Path) -> Result<schema::Schema, String> {
    let read = |rel: &str| {
        std::fs::read_to_string(root.join(rel)).map_err(|e| format!("cannot read {rel}: {e}"))
    };
    schema::extract(
        &read("crates/telemetry/src/lib.rs")?,
        &read("crates/telemetry/src/record.rs")?,
        &read("crates/telemetry/src/sink.rs")?,
    )
    .map_err(|e| e.to_string())
}

/// Runs the `metrics-names` golden-manifest comparison.
fn check_metrics_names(root: &Path, diags: &mut Vec<Diagnostic>) -> Result<(), String> {
    let current = extract_current_metrics(root)?;
    let manifest_path = root.join("crates/xtask/metrics.names");
    let manifest_text = std::fs::read_to_string(&manifest_path).map_err(|_| {
        "crates/xtask/metrics.names is missing; run `cargo run -p xtask -- metrics-update`"
            .to_string()
    })?;
    let manifest = metrics_names::parse_manifest(&manifest_text)?;
    metrics_names::compare(&current, &manifest, diags);
    Ok(())
}

fn extract_current_metrics(root: &Path) -> Result<Vec<metrics_names::MetricName>, String> {
    let rel = "crates/telemetry/src/metrics.rs";
    let src =
        std::fs::read_to_string(root.join(rel)).map_err(|e| format!("cannot read {rel}: {e}"))?;
    metrics_names::extract(&src)
}

fn metrics_update() -> ExitCode {
    let root = workspace_root();
    let current = match extract_current_metrics(&root) {
        Ok(names) => names,
        Err(e) => {
            eprintln!("xtask: {e}");
            return ExitCode::from(2);
        }
    };
    let path = root.join("crates/xtask/metrics.names");
    match std::fs::write(&path, metrics_names::to_manifest(&current)) {
        Ok(()) => {
            println!("wrote {}", relative(&root, &path));
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("xtask: cannot write metrics.names: {e}");
            ExitCode::from(2)
        }
    }
}

fn schema_update() -> ExitCode {
    let root = workspace_root();
    let current = match extract_current_schema(&root) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("xtask: {e}");
            return ExitCode::from(2);
        }
    };
    let path = root.join("crates/xtask/telemetry.schema");
    match std::fs::write(&path, schema::to_manifest(&current)) {
        Ok(()) => {
            println!("wrote {}", relative(&root, &path));
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("xtask: cannot write telemetry.schema: {e}");
            ExitCode::from(2)
        }
    }
}
