//! Recursive-descent item extraction over the lexed token stream.
//!
//! This is the front half of the interprocedural analysis layer: it walks
//! a file's tokens (test items already stripped) and produces, per `fn`
//! item, the facts the call-graph rules need — module path, `impl` owner,
//! `#[cfg]`/`#[inline]` attributes, every call site with its receiver
//! shape, every effect site (panic / raw index / allocation / lock / IO),
//! and parameter names and types. Closure bodies are attributed to their
//! enclosing `fn`; `macro_rules!` bodies are skipped and recorded as
//! explicit `macro-opaque` items rather than silently ignored.
//!
//! The extractor is token-level, not a real parser: it never fails, it
//! only degrades — an expression shape it does not recognize becomes an
//! `Opaque` receiver, which the resolution layer in `callgraph` treats
//! conservatively. See DESIGN.md §14 for the model.

use crate::lexer::{Token, TokenKind};

/// Effect categories the transitive purity rule tracks. Ordered so the
/// serialized facts are stable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EffectKind {
    /// `Vec::push`-class growth: `.push(` / `.insert(` / `.collect(` /
    /// `vec!` / `format!` / `with_capacity` / `Box::new` / ...
    Alloc,
    /// Raw slice/array indexing (`xs[i]`), same shape test as `no-index`.
    Index,
    /// Console or filesystem IO.
    Io,
    /// A `Mutex`/`RwLock` acquisition (`.lock(`).
    Lock,
    /// `panic!`-family macros, hard asserts, `.unwrap()` / `.expect(`.
    Panic,
}

impl EffectKind {
    /// Stable lowercase name used in facts and diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            EffectKind::Alloc => "alloc",
            EffectKind::Index => "index",
            EffectKind::Io => "io",
            EffectKind::Lock => "lock",
            EffectKind::Panic => "panic",
        }
    }
}

/// One effect occurrence inside a fn body.
#[derive(Debug, Clone)]
pub struct EffectSite {
    /// Category.
    pub kind: EffectKind,
    /// 1-based source line.
    pub line: u32,
    /// Index of the triggering token in the file's token stream.
    pub tok: usize,
    /// Short rendering of the trigger (`.push(`, `vec!`, `xs[...]`).
    pub what: String,
}

/// The receiver shape of a method call, as far back as the token stream
/// lets us walk.
#[derive(Debug, Clone)]
pub enum Receiver {
    /// `self.m(...)` (empty) or `self.a.b.m(...)` (the field chain).
    SelfChain(Vec<String>),
    /// `x.m(...)` / `x.f.m(...)` — head is a local, param, or static.
    VarChain(Vec<String>),
    /// `f(...).m(...)` — chained off another call's result.
    Call(Box<CallTarget>),
    /// Anything else (`xs[i].m()`, parenthesized expressions, ...).
    Opaque,
}

/// What a call site syntactically targets.
#[derive(Debug, Clone)]
pub enum CallTarget {
    /// `foo(...)` or `a::b::foo(...)` — the path segments.
    Path(Vec<String>),
    /// `recv.name(...)`.
    Method {
        /// Method name.
        name: String,
        /// Receiver shape.
        receiver: Receiver,
    },
    /// `name!(...)` — resolved against workspace `macro_rules!` defs.
    MacroUse(String),
}

/// One call site inside a fn body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Syntactic target.
    pub target: CallTarget,
    /// 1-based source line.
    pub line: u32,
    /// Index of the callee-name token in the file's token stream.
    pub tok: usize,
    /// `Some(feature)` when the site sits under a statement- or
    /// item-level `#[cfg(feature = "...")]` gate (and is therefore
    /// compiled out of default builds). `cfg(not(...))` does not gate.
    pub cfg_feature: Option<String>,
}

/// One extracted `fn` item.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Fully qualified id, e.g. `sat_solver::solver::Solver::propagate`.
    pub id: String,
    /// Bare name.
    pub name: String,
    /// `impl` (or `trait`) owner type name, if any.
    pub self_type: Option<String>,
    /// For `impl Trait for Type` methods, the trait name.
    pub trait_name: Option<String>,
    /// Whether this fn is declared inside a `trait { }` block (a
    /// signature or a default method).
    pub is_trait_decl: bool,
    /// Workspace-relative file path.
    pub path: String,
    /// Module id the fn lives in (for nested fns, the enclosing fn id).
    pub module: String,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// Item-level `#[cfg(feature = "...")]` gate, if any.
    pub cfg_feature: Option<String>,
    /// Carries `#[inline]` (any flavor).
    pub is_inline: bool,
    /// Parameter `(name, type-identifier tokens)` pairs, `self` omitted.
    pub params: Vec<(String, Vec<String>)>,
    /// Identifier tokens of the return type, in order.
    pub ret: Vec<String>,
    /// Token range of the body including braces, if the fn has one.
    pub body: Option<(usize, usize)>,
    /// Call sites in body order.
    pub calls: Vec<CallSite>,
    /// Effect sites in body order.
    pub effects: Vec<EffectSite>,
}

/// One struct field: name plus the identifier/keyword tokens of its type
/// (`dyn` is kept so trait-object fields are recognizable).
#[derive(Debug, Clone)]
pub struct FieldInfo {
    /// Field name.
    pub name: String,
    /// Type tokens (identifiers and the `dyn` keyword).
    pub tokens: Vec<String>,
}

/// One `struct` with named fields.
#[derive(Debug, Clone)]
pub struct StructInfo {
    /// Type name.
    pub name: String,
    /// Module id the struct is defined in.
    pub module: String,
    /// Named fields.
    pub fields: Vec<FieldInfo>,
}

/// A `static` or `const` item (lock-order analysis cares about the
/// `Mutex`-typed ones).
#[derive(Debug, Clone)]
pub struct StaticInfo {
    /// Item name.
    pub name: String,
    /// Module id.
    pub module: String,
    /// Whether the type mentions `Mutex`/`RwLock`/`OnceLock`.
    pub is_lock: bool,
}

/// Everything extracted from one source file.
#[derive(Debug, Default)]
pub struct FileFacts {
    /// Workspace-relative path.
    pub path: String,
    /// The stripped token stream all `tok` indices refer to.
    pub tokens: Vec<Token>,
    /// Extracted fns (including nested ones).
    pub fns: Vec<FnItem>,
    /// Structs with named fields.
    pub structs: Vec<StructInfo>,
    /// Statics and consts.
    pub statics: Vec<StaticInfo>,
    /// Ids of `macro_rules!` definitions (macro-opaque items).
    pub macros: Vec<String>,
}

/// Maps a workspace-relative path to a module id:
/// `crates/sat-solver/src/bin/rsat.rs` → `sat_solver::bin::rsat`.
pub fn module_id(path: &str) -> String {
    let rest = path.strip_prefix("crates/").unwrap_or(path);
    let (cr, tail) = rest.split_once('/').unwrap_or((rest, ""));
    let cr = cr.replace('-', "_");
    let tail = tail.strip_prefix("src/").unwrap_or(tail);
    let tail = tail.strip_suffix(".rs").unwrap_or(tail);
    let tail = tail.strip_suffix("/mod").unwrap_or(tail);
    if tail.is_empty() || tail == "lib" {
        cr
    } else {
        format!("{cr}::{}", tail.replace('/', "::"))
    }
}

/// Extracts all items from one file. `tokens` must already be
/// test-stripped; `src` is consulted only to recover `#[cfg]` feature
/// names (the lexer normalizes string literals).
pub fn extract_file(path: &str, src: &str, tokens: Vec<Token>) -> FileFacts {
    let lines: Vec<&str> = src.lines().collect();
    let module = module_id(path);
    let mut facts = FileFacts {
        path: path.to_string(),
        ..Default::default()
    };
    {
        let mut cx = Cx {
            toks: &tokens,
            lines: &lines,
            out: &mut facts,
        };
        cx.items(0, tokens.len(), &module, None);
    }
    facts.tokens = tokens;
    facts
}

/// Attributes accumulated in front of an item or statement.
#[derive(Debug, Default, Clone)]
struct Attrs {
    cfg_feature: Option<String>,
    inline: bool,
}

#[derive(Debug, Clone)]
struct Owner {
    type_name: String,
    trait_name: Option<String>,
    is_trait_decl: bool,
}

struct Cx<'a> {
    toks: &'a [Token],
    lines: &'a [&'a str],
    out: &'a mut FileFacts,
}

/// Keywords that can syntactically precede `(` without being a call.
const CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "in", "as", "move", "mut", "ref", "let",
    "else", "break", "continue", "await", "where", "unsafe", "dyn", "impl", "fn", "use", "pub",
    "box", "yield", "static", "const", "crate", "super",
];

/// Mirror of the `no-index` shape test: identifiers directly before `[`
/// that do not make it an index expression.
const NON_INDEX_KEYWORDS: &[&str] = &[
    "in", "return", "break", "continue", "else", "match", "mut", "ref", "move", "as", "if",
    "while", "loop", "yield",
];

const PANIC_MACROS: &[&str] = &[
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];
const ALLOC_MACROS: &[&str] = &["vec", "format"];
const IO_MACROS: &[&str] = &["print", "println", "eprint", "eprintln", "dbg"];
const PANIC_METHODS: &[&str] = &["unwrap", "expect"];
const ALLOC_METHODS: &[&str] = &[
    "push",
    "insert",
    "extend",
    "extend_from_slice",
    "append",
    "reserve",
    "reserve_exact",
    "resize",
    "split_off",
    "to_vec",
    "to_owned",
    "to_string",
    "collect",
];
const IO_METHODS: &[&str] = &[
    "flush",
    "write_all",
    "write_fmt",
    "read_to_string",
    "read_to_end",
    "read_line",
    "sync_all",
];

impl<'a> Cx<'a> {
    fn t(&self, i: usize) -> Option<&Token> {
        self.toks.get(i)
    }

    fn is_ident(&self, i: usize, s: &str) -> bool {
        self.t(i).is_some_and(|t| t.is_ident(s))
    }

    fn is_punct(&self, i: usize, s: &str) -> bool {
        self.t(i).is_some_and(|t| t.is_punct(s))
    }

    /// Parses an attribute starting at `#`; returns the index one past
    /// its closing `]` plus what the rules care about. Inner attributes
    /// (`#![...]`) are parsed but reported as `outer == false`.
    fn parse_attr(&self, i: usize) -> (usize, Attrs, bool) {
        let mut j = i + 1;
        let outer = !self.is_punct(j, "!");
        if !outer {
            j += 1;
        }
        if !self.is_punct(j, "[") {
            return (i + 1, Attrs::default(), outer);
        }
        let start_line = self.toks[i].line;
        let mut depth = 0usize;
        let mut saw_cfg = false;
        let mut saw_not = false;
        let mut saw_feature = false;
        let mut inline = false;
        let mut first = true;
        while j < self.toks.len() {
            let t = &self.toks[j];
            if t.is_punct("[") {
                depth += 1;
            } else if t.is_punct("]") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if t.kind == TokenKind::Ident {
                if first {
                    if t.text == "inline" {
                        inline = true;
                    }
                    first = false;
                }
                match t.text.as_str() {
                    "cfg" | "cfg_attr" => saw_cfg = true,
                    "not" => saw_not = true,
                    "feature"
                        if self.is_punct(j + 1, "=")
                            && self.t(j + 2).is_some_and(|n| n.kind == TokenKind::Str) =>
                    {
                        saw_feature = true;
                    }
                    _ => {}
                }
            }
            j += 1;
        }
        let end = j.min(self.toks.len().saturating_sub(1));
        let end_line = self.toks.get(end).map(|t| t.line).unwrap_or(start_line);
        let mut attrs = Attrs {
            inline,
            cfg_feature: None,
        };
        // `cfg(not(feature = "x"))` is compiled in *default* builds, so it
        // does not gate the item out of the default-build call graph.
        if saw_cfg && saw_feature && !saw_not {
            attrs.cfg_feature = feature_name(self.lines, start_line, end_line);
        }
        (j + 1, attrs, outer)
    }

    /// Index one past the matching `}` for the `{` at `open`.
    fn close_brace(&self, open: usize) -> usize {
        let mut depth = 0usize;
        let mut i = open;
        while i < self.toks.len() {
            if self.toks[i].is_punct("{") {
                depth += 1;
            } else if self.toks[i].is_punct("}") {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            i += 1;
        }
        self.toks.len().saturating_sub(1)
    }

    /// Index one past the `;` ending the item starting at `i` (depth
    /// aware for initializers containing `;`-free nesting).
    fn skip_to_semi(&self, mut i: usize, end: usize) -> usize {
        let mut paren = 0i32;
        let mut bracket = 0i32;
        let mut brace = 0i32;
        while i < end {
            let t = &self.toks[i];
            if t.is_punct("(") {
                paren += 1;
            } else if t.is_punct(")") {
                paren -= 1;
            } else if t.is_punct("[") {
                bracket += 1;
            } else if t.is_punct("]") {
                bracket -= 1;
            } else if t.is_punct("{") {
                brace += 1;
            } else if t.is_punct("}") {
                brace -= 1;
            } else if t.is_punct(";") && paren == 0 && bracket == 0 && brace == 0 {
                return i + 1;
            }
            i += 1;
        }
        end
    }

    /// Skips a generics list starting at `<`; returns the index one past
    /// the matching `>`. `>>` closes two levels.
    fn skip_angles(&self, mut i: usize, end: usize) -> usize {
        let mut depth = 0i32;
        while i < end {
            let t = &self.toks[i];
            if t.is_punct("<") || t.is_punct("<<") {
                depth += if t.text == "<<" { 2 } else { 1 };
            } else if t.is_punct(">") || t.is_punct(">>") {
                depth -= if t.text == ">>" { 2 } else { 1 };
                if depth <= 0 {
                    return i + 1;
                }
            } else if t.is_punct("(") || t.is_punct("{") || t.is_punct(";") {
                // Bail out: not a generics list after all.
                return i;
            }
            i += 1;
        }
        end
    }

    /// Walks items in `[i, end)`, attributing them to `module` (and
    /// `owner` inside `impl`/`trait` blocks).
    fn items(&mut self, mut i: usize, end: usize, module: &str, owner: Option<&Owner>) {
        let mut attrs = Attrs::default();
        while i < end {
            let Some(t) = self.t(i) else { break };
            if t.kind == TokenKind::DocComment {
                i += 1;
                continue;
            }
            if t.is_punct("#") {
                let (j, a, outer) = self.parse_attr(i);
                if outer {
                    if a.cfg_feature.is_some() {
                        attrs.cfg_feature = a.cfg_feature;
                    }
                    attrs.inline |= a.inline;
                }
                i = j;
                continue;
            }
            if t.kind != TokenKind::Ident {
                i += 1;
                continue;
            }
            match t.text.as_str() {
                // Qualifiers: keep accumulated attrs and continue.
                "pub" => {
                    i += 1;
                    if self.is_punct(i, "(") {
                        let mut depth = 0i32;
                        while i < end {
                            if self.is_punct(i, "(") {
                                depth += 1;
                            } else if self.is_punct(i, ")") {
                                depth -= 1;
                                if depth == 0 {
                                    i += 1;
                                    break;
                                }
                            }
                            i += 1;
                        }
                    }
                }
                "unsafe" | "async" | "default" => i += 1,
                "extern" => {
                    i += 1;
                    if self.t(i).is_some_and(|t| t.kind == TokenKind::Str) {
                        i += 1;
                    }
                }
                "const" if self.is_ident(i + 1, "fn") => i += 1,
                "mod" => {
                    let name = self
                        .t(i + 1)
                        .filter(|t| t.kind == TokenKind::Ident)
                        .map(|t| t.text.clone())
                        .unwrap_or_default();
                    if self.is_punct(i + 2, "{") {
                        let close = self.close_brace(i + 2);
                        let sub = format!("{module}::{name}");
                        self.items(i + 3, close, &sub, None);
                        i = close + 1;
                    } else {
                        i = self.skip_to_semi(i, end);
                    }
                    attrs = Attrs::default();
                }
                "impl" => {
                    i = self.parse_impl(i, end, module, &attrs);
                    attrs = Attrs::default();
                }
                "trait" => {
                    i = self.parse_trait(i, end, module, &attrs);
                    attrs = Attrs::default();
                }
                "fn" => {
                    i = self.parse_fn(i, end, module, owner, &attrs);
                    attrs = Attrs::default();
                }
                "struct" => {
                    i = self.parse_struct(i, end, module);
                    attrs = Attrs::default();
                }
                "enum" | "union" => {
                    let mut j = i + 2;
                    if self.is_punct(j, "<") {
                        j = self.skip_angles(j, end);
                    }
                    while j < end && !self.is_punct(j, "{") && !self.is_punct(j, ";") {
                        j += 1;
                    }
                    i = if self.is_punct(j, "{") {
                        self.close_brace(j) + 1
                    } else {
                        j + 1
                    };
                    attrs = Attrs::default();
                }
                "macro_rules" => {
                    i = self.parse_macro_rules(i, end, module);
                    attrs = Attrs::default();
                }
                "static" | "const" => {
                    i = self.parse_static(i, end, module);
                    attrs = Attrs::default();
                }
                "use" | "type" => {
                    i = self.skip_to_semi(i, end);
                    attrs = Attrs::default();
                }
                _ => i += 1,
            }
        }
    }

    /// `impl[<...>] [Trait for] Type[<...>] { ... }`.
    fn parse_impl(&mut self, i: usize, end: usize, module: &str, attrs: &Attrs) -> usize {
        let mut j = i + 1;
        if self.is_punct(j, "<") {
            j = self.skip_angles(j, end);
        }
        let header_start = j;
        let mut for_at = None;
        let mut angle = 0i32;
        while j < end {
            let t = &self.toks[j];
            if t.is_punct("<") || t.is_punct("<<") {
                angle += if t.text == "<<" { 2 } else { 1 };
            } else if t.is_punct(">") || t.is_punct(">>") {
                angle -= if t.text == ">>" { 2 } else { 1 };
            } else if angle <= 0 && t.is_ident("for") {
                for_at = Some(j);
            } else if angle <= 0 && (t.is_punct("{") || t.is_punct(";")) {
                break;
            }
            j += 1;
        }
        if !self.is_punct(j, "{") {
            return j + 1;
        }
        let type_start = for_at.map(|f| f + 1).unwrap_or(header_start);
        let type_name = self.path_last_ident(type_start, j);
        let trait_name = for_at.and_then(|f| self.path_last_ident(header_start, f));
        let close = self.close_brace(j);
        let owner = Owner {
            type_name: type_name.unwrap_or_default(),
            trait_name,
            is_trait_decl: false,
        };
        // Item-level cfg on the impl block gates everything inside it; we
        // approximate by letting the contained fns inherit it through the
        // recursion (passed via a synthetic leading attribute).
        self.items_with_inherited_cfg(j + 1, close, module, Some(&owner), attrs);
        close + 1
    }

    /// `trait Name[: Bounds] { ... }` — fns inside are trait decls.
    fn parse_trait(&mut self, i: usize, end: usize, module: &str, attrs: &Attrs) -> usize {
        let name = self
            .t(i + 1)
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.clone())
            .unwrap_or_default();
        let mut j = i + 2;
        if self.is_punct(j, "<") {
            j = self.skip_angles(j, end);
        }
        while j < end && !self.is_punct(j, "{") && !self.is_punct(j, ";") {
            j += 1;
        }
        if !self.is_punct(j, "{") {
            return j + 1;
        }
        let close = self.close_brace(j);
        let owner = Owner {
            type_name: name.clone(),
            trait_name: Some(name),
            is_trait_decl: true,
        };
        self.items_with_inherited_cfg(j + 1, close, module, Some(&owner), attrs);
        close + 1
    }

    /// Recurse into a block whose items inherit the block's cfg gate.
    fn items_with_inherited_cfg(
        &mut self,
        start: usize,
        end: usize,
        module: &str,
        owner: Option<&Owner>,
        attrs: &Attrs,
    ) {
        let before = self.out.fns.len();
        self.items(start, end, module, owner);
        if attrs.cfg_feature.is_some() {
            for f in &mut self.out.fns[before..] {
                if f.cfg_feature.is_none() {
                    f.cfg_feature = attrs.cfg_feature.clone();
                }
            }
        }
    }

    /// Last identifier of the leading path in `[start, end)`, skipping
    /// `&`, `mut`, `dyn` sigils: `fmt::Display` → `Display`.
    fn path_last_ident(&self, mut start: usize, end: usize) -> Option<String> {
        while start < end
            && (self.is_punct(start, "&")
                || self.is_ident(start, "mut")
                || self.is_ident(start, "dyn")
                || self.t(start).is_some_and(|t| t.kind == TokenKind::Lifetime))
        {
            start += 1;
        }
        let mut last = None;
        let mut i = start;
        while i < end {
            let t = self.t(i)?;
            if t.kind == TokenKind::Ident {
                last = Some(t.text.clone());
                if self.is_punct(i + 1, "::") {
                    i += 2;
                    continue;
                }
            }
            break;
        }
        last
    }

    /// `struct Name { field: Type, ... }` (tuple and unit structs are
    /// skipped — resolution only needs named fields).
    fn parse_struct(&mut self, i: usize, end: usize, module: &str) -> usize {
        let Some(name) = self
            .t(i + 1)
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.clone())
        else {
            return i + 1;
        };
        let mut j = i + 2;
        if self.is_punct(j, "<") {
            j = self.skip_angles(j, end);
        }
        while j < end && !self.is_punct(j, "{") && !self.is_punct(j, "(") && !self.is_punct(j, ";")
        {
            j += 1;
        }
        if self.is_punct(j, "(") || self.is_punct(j, ";") {
            return self.skip_to_semi(j, end);
        }
        if !self.is_punct(j, "{") {
            return j + 1;
        }
        let close = self.close_brace(j);
        let mut fields = Vec::new();
        let mut k = j + 1;
        while k < close {
            let t = &self.toks[k];
            if t.kind == TokenKind::DocComment {
                k += 1;
                continue;
            }
            if t.is_punct("#") {
                let (n, _, _) = self.parse_attr(k);
                k = n;
                continue;
            }
            if t.is_ident("pub") {
                k += 1;
                if self.is_punct(k, "(") {
                    while k < close && !self.is_punct(k, ")") {
                        k += 1;
                    }
                    k += 1;
                }
                continue;
            }
            if t.kind == TokenKind::Ident && self.is_punct(k + 1, ":") {
                let fname = t.text.clone();
                // Type runs to the `,` at depth 0 or the closing `}`.
                let mut depth = 0i32;
                let mut toks = Vec::new();
                let mut m = k + 2;
                while m < close {
                    let u = &self.toks[m];
                    if u.is_punct("<") || u.is_punct("(") || u.is_punct("[") {
                        depth += 1;
                    } else if u.is_punct("<<") {
                        depth += 2;
                    } else if u.is_punct(">") || u.is_punct(")") || u.is_punct("]") {
                        depth -= 1;
                    } else if u.is_punct(">>") {
                        depth -= 2;
                    } else if u.is_punct(",") && depth <= 0 {
                        break;
                    }
                    if u.kind == TokenKind::Ident {
                        toks.push(u.text.clone());
                    }
                    m += 1;
                }
                fields.push(FieldInfo {
                    name: fname,
                    tokens: toks,
                });
                k = m + 1;
                continue;
            }
            k += 1;
        }
        self.out.structs.push(StructInfo {
            name,
            module: module.to_string(),
            fields,
        });
        close + 1
    }

    /// `macro_rules! name { ... }` → a macro-opaque item.
    fn parse_macro_rules(&mut self, i: usize, end: usize, module: &str) -> usize {
        let name = self
            .t(i + 2)
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.clone())
            .unwrap_or_default();
        self.out.macros.push(format!("{module}::{name}"));
        let mut j = i + 3;
        while j < end && !self.is_punct(j, "{") && !self.is_punct(j, "(") && !self.is_punct(j, "[")
        {
            j += 1;
        }
        if self.is_punct(j, "{") {
            return self.close_brace(j) + 1;
        }
        // `macro_rules! m ( ... );` form: balance the delimiter, then `;`.
        self.skip_to_semi(j, end)
    }

    /// `static NAME: Type = init;` / `const NAME: Type = init;`.
    fn parse_static(&mut self, i: usize, end: usize, module: &str) -> usize {
        let mut j = i + 1;
        if self.is_ident(j, "mut") {
            j += 1;
        }
        let Some(name) = self
            .t(j)
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.clone())
        else {
            return self.skip_to_semi(i, end);
        };
        let mut is_lock = false;
        if self.is_punct(j + 1, ":") {
            let mut m = j + 2;
            let mut depth = 0i32;
            while m < end {
                let u = &self.toks[m];
                if u.is_punct("<") {
                    depth += 1;
                } else if u.is_punct(">") {
                    depth -= 1;
                } else if u.is_punct(">>") {
                    depth -= 2;
                } else if (u.is_punct("=") || u.is_punct(";")) && depth <= 0 {
                    break;
                } else if u.kind == TokenKind::Ident
                    && matches!(u.text.as_str(), "Mutex" | "RwLock" | "OnceLock")
                {
                    is_lock = true;
                }
                m += 1;
            }
        }
        self.out.statics.push(StaticInfo {
            name,
            module: module.to_string(),
            is_lock,
        });
        self.skip_to_semi(i, end)
    }

    /// `fn name(<params>) [-> Ret] { body }` (or `;` for trait decls).
    /// Returns the index one past the item. Nested fns recurse with the
    /// enclosing fn's id as their module, so a shadowed local fn resolves
    /// ahead of a same-named top-level one.
    fn parse_fn(
        &mut self,
        i: usize,
        end: usize,
        module: &str,
        owner: Option<&Owner>,
        attrs: &Attrs,
    ) -> usize {
        let Some(name_tok) = self.t(i + 1).filter(|t| t.kind == TokenKind::Ident) else {
            return i + 1;
        };
        let name = name_tok.text.clone();
        let line = self.toks[i].line;
        let mut j = i + 2;
        if self.is_punct(j, "<") {
            j = self.skip_angles(j, end);
        }
        // Parameters.
        let mut params = Vec::new();
        if self.is_punct(j, "(") {
            let mut depth = 0i32;
            let open = j;
            while j < end {
                let t = &self.toks[j];
                if t.is_punct("(") {
                    depth += 1;
                } else if t.is_punct(")") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                // `name :` at paren depth 1, preceded by `(`/`,`/`mut`.
                if depth == 1 && t.kind == TokenKind::Ident && self.is_punct(j + 1, ":") && j > open
                {
                    let prev = &self.toks[j - 1];
                    if prev.is_punct("(") || prev.is_punct(",") || prev.is_ident("mut") {
                        // Type idents up to the `,` at depth 1 / close.
                        let mut tdepth = 0i32;
                        let mut ttoks = Vec::new();
                        let mut m = j + 2;
                        while m < end {
                            let u = &self.toks[m];
                            if u.is_punct("<") || u.is_punct("(") || u.is_punct("[") {
                                tdepth += 1;
                            } else if u.is_punct(">") || u.is_punct("]") {
                                tdepth -= 1;
                            } else if u.is_punct(">>") {
                                tdepth -= 2;
                            } else if u.is_punct(")") {
                                if tdepth == 0 {
                                    break;
                                }
                                tdepth -= 1;
                            } else if u.is_punct(",") && tdepth <= 0 {
                                break;
                            }
                            if u.kind == TokenKind::Ident
                                && !u.is_ident("mut")
                                && !u.is_ident("ref")
                            {
                                ttoks.push(u.text.clone());
                            }
                            m += 1;
                        }
                        params.push((t.text.clone(), ttoks));
                    }
                }
                j += 1;
            }
            j += 1; // past `)`
        }
        // Return type + find body start.
        let mut ret = Vec::new();
        let mut in_where = false;
        while j < end {
            let t = &self.toks[j];
            if t.is_punct("{") || t.is_punct(";") {
                break;
            }
            if t.is_ident("where") {
                in_where = true;
            } else if !in_where && t.kind == TokenKind::Ident {
                ret.push(t.text.clone());
            }
            j += 1;
        }
        let id = match owner {
            Some(o) if !o.type_name.is_empty() => format!("{module}::{}::{name}", o.type_name),
            _ => format!("{module}::{name}"),
        };
        let mut item = FnItem {
            id: id.clone(),
            name,
            self_type: owner.map(|o| o.type_name.clone()).filter(|t| !t.is_empty()),
            trait_name: owner.and_then(|o| o.trait_name.clone()),
            is_trait_decl: owner.is_some_and(|o| o.is_trait_decl),
            path: self.out.path.clone(),
            module: module.to_string(),
            line,
            cfg_feature: attrs.cfg_feature.clone(),
            is_inline: attrs.inline,
            params,
            ret,
            body: None,
            calls: Vec::new(),
            effects: Vec::new(),
        };
        if self.is_punct(j, ";") {
            self.out.fns.push(item);
            return j + 1;
        }
        if !self.is_punct(j, "{") {
            self.out.fns.push(item);
            return j + 1;
        }
        let close = self.close_brace(j);
        item.body = Some((j, close));
        self.scan_body(j + 1, close, &mut item, owner);
        let next = close + 1;
        self.out.fns.push(item);
        next
    }

    /// Scans a fn body for calls, effects, and nested items. Closure
    /// bodies are plain body tokens here, so they are attributed to the
    /// enclosing fn by construction.
    fn scan_body(&mut self, start: usize, end: usize, item: &mut FnItem, owner: Option<&Owner>) {
        // Statement-level cfg gates: (range start, range end, feature).
        let mut gated: Vec<(usize, usize, String)> = Vec::new();
        let mut k = start;
        while k < end {
            let t = &self.toks[k];
            if t.kind == TokenKind::DocComment {
                k += 1;
                continue;
            }
            if t.is_punct("#") && self.is_punct(k + 1, "[") {
                let (j, a, _) = self.parse_attr(k);
                if let Some(feat) = a.cfg_feature {
                    // The gated statement ends at `;` outside braces or at
                    // the `}` closing its first brace.
                    let mut brace = 0i32;
                    let mut m = j;
                    let mut stmt_end = end;
                    while m < end {
                        let u = &self.toks[m];
                        if u.is_punct("{") {
                            brace += 1;
                        } else if u.is_punct("}") {
                            brace -= 1;
                            if brace == 0 {
                                stmt_end = m;
                                break;
                            }
                        } else if u.is_punct(";") && brace == 0 {
                            stmt_end = m;
                            break;
                        }
                        m += 1;
                    }
                    gated.push((j, stmt_end, feat));
                }
                k = j;
                continue;
            }
            if t.kind == TokenKind::Ident {
                match t.text.as_str() {
                    // Nested fn item: extract separately (its id nests
                    // under this fn), skip its tokens here.
                    "fn" if self.t(k + 1).is_some_and(|n| n.kind == TokenKind::Ident) => {
                        k = self.parse_fn(k, end, &item.id.clone(), None, &Attrs::default());
                        continue;
                    }
                    "macro_rules" if self.is_punct(k + 1, "!") => {
                        k = self.parse_macro_rules(k, end, &item.id.clone());
                        continue;
                    }
                    _ => {}
                }
                let cfg = gated
                    .iter()
                    .find(|(s, e, _)| k >= *s && k <= *e)
                    .map(|(_, _, f)| f.clone());
                // Macro use: `name!(` / `name![` / `name!{`.
                if self.is_punct(k + 1, "!")
                    && (self.is_punct(k + 2, "(")
                        || self.is_punct(k + 2, "[")
                        || self.is_punct(k + 2, "{"))
                {
                    let name = t.text.as_str();
                    let (line, tok) = (t.line, k);
                    if PANIC_MACROS.contains(&name) {
                        self.effect(item, EffectKind::Panic, line, tok, format!("`{name}!`"));
                    } else if ALLOC_MACROS.contains(&name) {
                        self.effect(item, EffectKind::Alloc, line, tok, format!("`{name}!`"));
                    } else if IO_MACROS.contains(&name) {
                        self.effect(item, EffectKind::Io, line, tok, format!("`{name}!`"));
                    }
                    item.calls.push(CallSite {
                        target: CallTarget::MacroUse(t.text.clone()),
                        line,
                        tok: k,
                        cfg_feature: cfg,
                    });
                    k += 2;
                    continue;
                }
                // Call: `name(`.
                if self.is_punct(k + 1, "(") && !CALL_KEYWORDS.contains(&t.text.as_str()) {
                    let (line, tok) = (t.line, k);
                    let target = if k > start && self.toks[k - 1].is_punct(".") {
                        let receiver = self.receiver(k - 1, start);
                        let name = t.text.as_str();
                        if PANIC_METHODS.contains(&name) {
                            self.effect(item, EffectKind::Panic, line, tok, format!("`.{name}(`"));
                        } else if ALLOC_METHODS.contains(&name) {
                            self.effect(item, EffectKind::Alloc, line, tok, format!("`.{name}(`"));
                        } else if IO_METHODS.contains(&name) {
                            self.effect(item, EffectKind::Io, line, tok, format!("`.{name}(`"));
                        } else if name == "lock" {
                            self.effect(item, EffectKind::Lock, line, tok, "`.lock(`".into());
                        }
                        CallTarget::Method {
                            name: t.text.clone(),
                            receiver,
                        }
                    } else if k > start && self.toks[k - 1].is_punct("::") {
                        let segs = self.path_back(k);
                        let last_two: Vec<&str> = segs
                            .iter()
                            .rev()
                            .take(2)
                            .rev()
                            .map(String::as_str)
                            .collect();
                        if segs.last().is_some_and(|s| s == "with_capacity")
                            || last_two == ["Box", "new"]
                        {
                            let what = format!("`{}(`", segs.join("::"));
                            self.effect(item, EffectKind::Alloc, line, tok, what);
                        } else if segs.iter().any(|s| s == "fs")
                            || matches!(last_two.first(), Some(&"File"))
                            || segs.last().is_some_and(|s| {
                                matches!(s.as_str(), "stdout" | "stderr" | "stdin")
                            })
                        {
                            let what = format!("`{}(`", segs.join("::"));
                            self.effect(item, EffectKind::Io, line, tok, what);
                        }
                        CallTarget::Path(segs)
                    } else {
                        if matches!(t.text.as_str(), "stdout" | "stderr" | "stdin") {
                            self.effect(item, EffectKind::Io, line, tok, format!("`{}(`", t.text));
                        }
                        CallTarget::Path(vec![t.text.clone()])
                    };
                    item.calls.push(CallSite {
                        target,
                        line,
                        tok,
                        cfg_feature: cfg,
                    });
                    k += 1;
                    continue;
                }
                k += 1;
                continue;
            }
            // Raw index expression, same shape test as `no-index`.
            if t.is_punct("[") && k > start {
                let prev = &self.toks[k - 1];
                let indexable = match prev.kind {
                    TokenKind::Ident => !NON_INDEX_KEYWORDS.contains(&prev.text.as_str()),
                    TokenKind::Punct => matches!(prev.text.as_str(), ")" | "]" | "?"),
                    _ => false,
                };
                if indexable {
                    let what = format!("`{}[...]`", prev.text);
                    self.effect(item, EffectKind::Index, t.line, k, what);
                }
            }
            k += 1;
        }
        // Re-stamp statement-level gates onto effect sites too.
        for e in &mut item.effects {
            if item.cfg_feature.is_none() {
                if let Some((_, _, _f)) =
                    gated.iter().find(|(s, en, _)| e.tok >= *s && e.tok <= *en)
                {
                    // An effect under a feature gate is not part of the
                    // default build; record it with the gate by demoting
                    // nothing — the purity walk checks gates on the fn and
                    // the call edges, and effect sites inherit via this
                    // marker in `what`.
                    e.what = format!("{} [cfg-gated]", e.what);
                }
            }
        }
        let _ = owner;
    }

    fn effect(&self, item: &mut FnItem, kind: EffectKind, line: u32, tok: usize, what: String) {
        item.effects.push(EffectSite {
            kind,
            line,
            tok,
            what,
        });
    }

    /// Path segments ending with the identifier at `k`, walking back over
    /// `::`-separated segments.
    fn path_back(&self, k: usize) -> Vec<String> {
        let mut segs = vec![self.toks[k].text.clone()];
        let mut p = k;
        while p >= 2 && self.toks[p - 1].is_punct("::") && self.toks[p - 2].kind == TokenKind::Ident
        {
            segs.insert(0, self.toks[p - 2].text.clone());
            p -= 2;
        }
        segs
    }

    /// Receiver shape for the method call whose `.` sits at `dot`.
    fn receiver(&self, dot: usize, start: usize) -> Receiver {
        if dot == 0 || dot <= start {
            return Receiver::Opaque;
        }
        let prev = &self.toks[dot - 1];
        if prev.is_punct(")") {
            // Chained off a call: find the matching `(`, then its callee.
            let mut depth = 0i32;
            let mut q = dot - 1;
            loop {
                let t = &self.toks[q];
                if t.is_punct(")") {
                    depth += 1;
                } else if t.is_punct("(") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                if q == start || q == 0 {
                    return Receiver::Opaque;
                }
                q -= 1;
            }
            if q == 0 || q <= start {
                return Receiver::Opaque;
            }
            let c = &self.toks[q - 1];
            if c.kind != TokenKind::Ident || CALL_KEYWORDS.contains(&c.text.as_str()) {
                return Receiver::Opaque;
            }
            let target = if q >= 2 && self.toks[q - 2].is_punct(".") {
                CallTarget::Method {
                    name: c.text.clone(),
                    receiver: self.receiver(q - 2, start),
                }
            } else if q >= 2 && self.toks[q - 2].is_punct("::") {
                CallTarget::Path(self.path_back(q - 1))
            } else {
                CallTarget::Path(vec![c.text.clone()])
            };
            return Receiver::Call(Box::new(target));
        }
        if prev.kind == TokenKind::Ident {
            let mut segs = vec![prev.text.clone()];
            let mut q = dot - 1;
            while q >= 2
                && self.toks[q - 1].is_punct(".")
                && self.toks[q - 2].kind == TokenKind::Ident
                && q - 2 >= start
            {
                segs.insert(0, self.toks[q - 2].text.clone());
                q -= 2;
            }
            if segs[0] == "self" {
                segs.remove(0);
                return Receiver::SelfChain(segs);
            }
            if segs[0] == "Self" {
                return Receiver::SelfChain(segs.split_off(1));
            }
            return Receiver::VarChain(segs);
        }
        Receiver::Opaque
    }
}

/// Recovers a `feature = "<name>"` string from the raw source lines
/// spanning an attribute (the lexer blanks string literals).
fn feature_name(lines: &[&str], start_line: u32, end_line: u32) -> Option<String> {
    for l in start_line..=end_line {
        let raw = lines.get(l as usize - 1)?;
        if let Some(p) = raw.find("feature") {
            let after = &raw[p + "feature".len()..];
            let open = after.find('"')?;
            let rest = &after[open + 1..];
            let close = rest.find('"')?;
            return Some(rest[..close].to_string());
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{lex, strip_test_items};

    fn extract(path: &str, src: &str) -> FileFacts {
        let lexed = lex(src);
        let tokens = strip_test_items(&lexed.tokens);
        extract_file(path, src, tokens)
    }

    fn fn_ids(f: &FileFacts) -> Vec<&str> {
        f.fns.iter().map(|x| x.id.as_str()).collect()
    }

    #[test]
    fn module_ids_from_paths() {
        assert_eq!(module_id("crates/sat-solver/src/lib.rs"), "sat_solver");
        assert_eq!(
            module_id("crates/sat-solver/src/solver.rs"),
            "sat_solver::solver"
        );
        assert_eq!(
            module_id("crates/sat-solver/src/bin/rsat.rs"),
            "sat_solver::bin::rsat"
        );
        assert_eq!(module_id("crates/core/src/metrics.rs"), "core::metrics");
    }

    #[test]
    fn extracts_fns_with_impl_owner_and_module_path() {
        let src = "pub struct Solver { db: ClauseDb }\n\
                   impl Solver {\n    pub fn propagate(&mut self) -> Option<u32> { self.db.tick() }\n}\n\
                   fn free_helper() {}\n\
                   mod inner { pub fn nested_mod_fn() {} }";
        let f = extract("crates/sat-solver/src/solver.rs", src);
        assert_eq!(
            fn_ids(&f),
            vec![
                "sat_solver::solver::Solver::propagate",
                "sat_solver::solver::free_helper",
                "sat_solver::solver::inner::nested_mod_fn",
            ]
        );
        let prop = &f.fns[0];
        assert_eq!(prop.self_type.as_deref(), Some("Solver"));
        assert_eq!(prop.ret, vec!["Option", "u32"]);
        assert_eq!(f.structs.len(), 1);
        assert_eq!(f.structs[0].fields[0].name, "db");
        assert_eq!(f.structs[0].fields[0].tokens, vec!["ClauseDb"]);
    }

    #[test]
    fn nested_closures_attribute_to_enclosing_fn() {
        let src = "fn outer(xs: &[u32]) -> u32 {\n\
                   let f = |a: u32| xs.iter().map(|b| helper(a, *b)).sum::<u32>();\n\
                   f(1)\n}";
        let f = extract("crates/core/src/lib.rs", src);
        assert_eq!(fn_ids(&f), vec!["core::outer"]);
        let calls: Vec<String> = f.fns[0]
            .calls
            .iter()
            .filter_map(|c| match &c.target {
                CallTarget::Path(p) => Some(p.join("::")),
                _ => None,
            })
            .collect();
        // `helper` from inside the nested closure lands on `outer`; the
        // call of the closure variable `f` is also a bare path call.
        assert!(calls.contains(&"helper".to_string()), "{calls:?}");
        assert!(calls.contains(&"f".to_string()), "{calls:?}");
    }

    #[test]
    fn same_name_trait_impl_methods_get_distinct_ids() {
        let src = "struct A; struct B;\n\
                   impl std::fmt::Display for A {\n    fn fmt(&self) -> u32 { 1 }\n}\n\
                   impl std::fmt::Display for B {\n    fn fmt(&self) -> u32 { 2 }\n}";
        let f = extract("crates/core/src/lib.rs", src);
        assert_eq!(fn_ids(&f), vec!["core::A::fmt", "core::B::fmt"]);
        assert_eq!(f.fns[0].trait_name.as_deref(), Some("Display"));
        assert!(!f.fns[0].is_trait_decl);
    }

    #[test]
    fn cfg_feature_gated_duplicate_fns_both_extracted() {
        let src = "#[cfg(feature = \"fast\")]\nfn pick() -> u32 { 1 }\n\
                   #[cfg(not(feature = \"fast\"))]\nfn pick() -> u32 { 2 }";
        let f = extract("crates/core/src/lib.rs", src);
        assert_eq!(fn_ids(&f), vec!["core::pick", "core::pick"]);
        assert_eq!(f.fns[0].cfg_feature.as_deref(), Some("fast"));
        // `cfg(not(feature))` is the default-build variant: no gate.
        assert_eq!(f.fns[1].cfg_feature, None);
    }

    #[test]
    fn macro_rules_bodies_are_macro_opaque() {
        let src = "macro_rules! boom {\n    () => { panic!(\"never scanned\") };\n}\n\
                   fn clean() { boom!(); }";
        let f = extract("crates/core/src/lib.rs", src);
        assert_eq!(f.macros, vec!["core::boom"]);
        let clean = &f.fns[0];
        // The macro body's `panic!` must not leak into `clean`'s effects;
        // the use site is recorded as a MacroUse call instead.
        assert!(clean.effects.is_empty(), "{:?}", clean.effects);
        assert!(clean
            .calls
            .iter()
            .any(|c| matches!(&c.target, CallTarget::MacroUse(m) if m == "boom")));
    }

    #[test]
    fn shadowed_local_fns_nest_under_the_enclosing_fn() {
        let src = "fn helper() {}\n\
                   fn outer() {\n    fn helper() { x.push(1); }\n    helper();\n}";
        let f = extract("crates/core/src/lib.rs", src);
        assert_eq!(
            fn_ids(&f),
            vec!["core::helper", "core::outer::helper", "core::outer"]
        );
        // The nested fn's alloc effect belongs to it, not to `outer`.
        assert!(f.fns[1].effects.iter().any(|e| e.kind == EffectKind::Alloc));
        assert!(f.fns[2].effects.is_empty());
    }

    #[test]
    fn effects_panic_index_alloc_lock_io() {
        let src = "fn f(xs: &[u32], m: &std::sync::Mutex<u32>, o: Option<u32>) {\n\
                   let a = xs[0];\n\
                   let b = o.unwrap();\n\
                   let mut v = Vec::with_capacity(4); v.push(a + b);\n\
                   let g = m.lock();\n\
                   println!(\"{:?}\", g);\n}";
        let f = extract("crates/core/src/lib.rs", src);
        let mut kinds: Vec<EffectKind> = f.fns[0].effects.iter().map(|e| e.kind).collect();
        kinds.sort();
        kinds.dedup();
        use EffectKind::*;
        assert_eq!(kinds, vec![Alloc, Index, Io, Lock, Panic]);
    }

    #[test]
    fn receivers_self_chain_var_chain_and_call_chain() {
        let src = "impl S {\n  fn f(&mut self, ws: &mut Vec<u32>) {\n\
                   self.db.bump(1);\n\
                   ws.swap_remove(0);\n\
                   self.db.clause(3).lit(0);\n  }\n}";
        let f = extract("crates/core/src/lib.rs", src);
        let calls = &f.fns[0].calls;
        let m = |n: &str| {
            calls
                .iter()
                .find_map(|c| match &c.target {
                    CallTarget::Method { name, receiver } if name == n => Some(receiver.clone()),
                    _ => None,
                })
                .unwrap()
        };
        assert!(matches!(m("bump"), Receiver::SelfChain(ref v) if v == &["db"]));
        assert!(matches!(m("swap_remove"), Receiver::VarChain(ref v) if v == &["ws"]));
        match m("lit") {
            Receiver::Call(target) => match *target {
                CallTarget::Method { ref name, .. } => assert_eq!(name, "clause"),
                other => panic!("unexpected inner target {other:?}"),
            },
            other => panic!("unexpected receiver {other:?}"),
        }
    }

    #[test]
    fn statement_level_cfg_gates_call_sites() {
        let src = "fn f() {\n\
                   #[cfg(feature = \"trace\")]\n\
                   telemetry::trace::instant(\"x\");\n\
                   telemetry::trace::instant(\"y\");\n}";
        let f = extract("crates/sat-solver/src/solver.rs", src);
        let gates: Vec<Option<&str>> = f.fns[0]
            .calls
            .iter()
            .map(|c| c.cfg_feature.as_deref())
            .collect();
        assert_eq!(gates, vec![Some("trace"), None]);
    }

    #[test]
    fn params_carry_type_idents_and_statics_flag_locks() {
        let src = "static POOL: Mutex<Vec<u32>> = Mutex::new(Vec::new());\n\
                   const N: usize = 4;\n\
                   fn f(s: &mut Solver, n: usize) {}";
        let f = extract("crates/core/src/lib.rs", src);
        assert_eq!(f.statics.len(), 2);
        assert!(f.statics[0].is_lock);
        assert!(!f.statics[1].is_lock);
        assert_eq!(
            f.fns[0].params,
            vec![
                ("s".to_string(), vec!["Solver".to_string()]),
                ("n".to_string(), vec!["usize".to_string()]),
            ]
        );
    }
}
