//! Circuit-equivalence miter instances (the "industrial" family).

use cnf::Cnf;
use logic_circuit::{encode, inject_fault, miter, random_circuit, rewrite, RandomCircuitSpec};

/// Generates an equivalence-checking CNF: a random circuit mitered against
/// a heavily rewritten but functionally identical twin.
///
/// The resulting formula is **unsatisfiable** (the circuits are equivalent),
/// and exhibits the deep, structured propagation chains typical of
/// industrial verification instances.
///
/// # Examples
///
/// ```
/// use logic_circuit::RandomCircuitSpec;
/// use sat_gen::equivalence_miter_cnf;
/// use sat_solver::Solver;
/// let spec = RandomCircuitSpec { num_inputs: 5, num_gates: 20, num_outputs: 2 };
/// let f = equivalence_miter_cnf(spec, 11);
/// assert!(Solver::from_cnf(&f).solve().is_unsat());
/// ```
pub fn equivalence_miter_cnf(spec: RandomCircuitSpec, seed: u64) -> Cnf {
    let original = random_circuit(spec, seed);
    let twin = rewrite(
        &original,
        0.85,
        seed.wrapping_mul(0x9E37_79B9).wrapping_add(1),
    );
    let m = miter(&original, &twin);
    let mut enc = encode(&m);
    enc.assert_node(m.outputs()[0], true);
    enc.cnf
}

/// Generates a fault-detection CNF: a random circuit mitered against a
/// rewritten copy with one injected gate fault.
///
/// The formula is **satisfiable** whenever the fault is observable at an
/// output (almost always, since faults are injected inside output cones);
/// each model is a test vector exposing the fault — this is CNF-based
/// automatic test pattern generation (ATPG).
///
/// # Examples
///
/// ```
/// use logic_circuit::RandomCircuitSpec;
/// use sat_gen::fault_miter_cnf;
/// let spec = RandomCircuitSpec { num_inputs: 5, num_gates: 20, num_outputs: 2 };
/// let f = fault_miter_cnf(spec, 11);
/// assert!(f.num_clauses() > 0);
/// ```
pub fn fault_miter_cnf(spec: RandomCircuitSpec, seed: u64) -> Cnf {
    let original = random_circuit(spec, seed);
    let twin = rewrite(
        &original,
        0.6,
        seed.wrapping_mul(0x85EB_CA6B).wrapping_add(2),
    );
    let faulty = inject_fault(&twin, seed.wrapping_add(3)).unwrap_or(twin);
    let m = miter(&original, &faulty);
    let mut enc = encode(&m);
    enc.assert_node(m.outputs()[0], true);
    enc.cnf
}

#[cfg(test)]
mod tests {
    use super::*;
    use sat_solver::Solver;

    fn spec() -> RandomCircuitSpec {
        RandomCircuitSpec {
            num_inputs: 6,
            num_gates: 30,
            num_outputs: 3,
        }
    }

    #[test]
    fn equivalence_miters_are_unsat() {
        for seed in 0..4 {
            let f = equivalence_miter_cnf(spec(), seed);
            assert!(
                Solver::from_cnf(&f).solve().is_unsat(),
                "equivalence miter seed {seed} must be UNSAT"
            );
        }
    }

    #[test]
    fn fault_miters_are_usually_sat() {
        let mut sat = 0;
        for seed in 0..6 {
            if Solver::from_cnf(&fault_miter_cnf(spec(), seed))
                .solve()
                .is_sat()
            {
                sat += 1;
            }
        }
        assert!(sat >= 4, "most fault miters should be SAT, got {sat}/6");
    }

    #[test]
    fn miters_are_deterministic() {
        assert_eq!(
            equivalence_miter_cnf(spec(), 9),
            equivalence_miter_cnf(spec(), 9)
        );
        assert_eq!(fault_miter_cnf(spec(), 9), fault_miter_cnf(spec(), 9));
    }
}
