//! Pigeonhole-principle formulas.

use cnf::{Clause, Cnf, Var};

/// Generates the pigeonhole formula `PHP(pigeons, holes)`: every pigeon is
/// placed in some hole, and no two pigeons share a hole.
///
/// Variable `p * holes + h` means "pigeon `p` sits in hole `h`".
/// The formula is unsatisfiable iff `pigeons > holes`; `PHP(n+1, n)` is the
/// classic family requiring exponential-size resolution proofs, a worst case
/// for clause learning.
///
/// # Panics
///
/// Panics if `pigeons` or `holes` is zero.
///
/// # Examples
///
/// ```
/// use sat_gen::pigeonhole;
/// use sat_solver::Solver;
/// assert!(Solver::from_cnf(&pigeonhole(4, 4)).solve().is_sat());
/// assert!(Solver::from_cnf(&pigeonhole(5, 4)).solve().is_unsat());
/// ```
pub fn pigeonhole(pigeons: u32, holes: u32) -> Cnf {
    assert!(
        pigeons > 0 && holes > 0,
        "need at least one pigeon and hole"
    );
    let var = |p: u32, h: u32| Var::new(p * holes + h);
    let mut f = Cnf::new(pigeons * holes);
    // Each pigeon sits somewhere.
    for p in 0..pigeons {
        let clause: Clause = (0..holes).map(|h| var(p, h).positive()).collect();
        f.add_clause(clause);
    }
    // No hole hosts two pigeons.
    for h in 0..holes {
        for p1 in 0..pigeons {
            for p2 in p1 + 1..pigeons {
                f.add_clause(Clause::from_lits(vec![
                    var(p1, h).negative(),
                    var(p2, h).negative(),
                ]));
            }
        }
    }
    f
}

/// The number of clauses `PHP(p, h)` contains: `p + h·C(p,2)`.
pub fn pigeonhole_num_clauses(pigeons: u32, holes: u32) -> usize {
    pigeons as usize + holes as usize * (pigeons as usize * (pigeons as usize - 1) / 2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnf::verify_model;
    use sat_solver::Solver;

    #[test]
    fn clause_count_formula() {
        for (p, h) in [(3, 3), (5, 4), (6, 6)] {
            assert_eq!(pigeonhole(p, h).num_clauses(), pigeonhole_num_clauses(p, h));
        }
    }

    #[test]
    fn equal_sizes_sat_with_valid_model() {
        let f = pigeonhole(5, 5);
        let mut s = Solver::from_cnf(&f);
        let r = s.solve();
        assert!(verify_model(&f, r.model().expect("sat")).is_ok());
    }

    #[test]
    fn one_extra_pigeon_unsat() {
        for n in 2..6 {
            assert!(
                Solver::from_cnf(&pigeonhole(n + 1, n)).solve().is_unsat(),
                "PHP({}, {n}) must be UNSAT",
                n + 1
            );
        }
    }

    #[test]
    fn fewer_pigeons_than_holes_sat() {
        assert!(Solver::from_cnf(&pigeonhole(3, 7)).solve().is_sat());
    }
}
