//! Graph-colouring CNF encodings.

use cnf::{Clause, Cnf, Var};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A simple undirected graph given by an edge list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    /// Number of vertices, named `0..num_vertices`.
    pub num_vertices: u32,
    /// Undirected edges as vertex pairs.
    pub edges: Vec<(u32, u32)>,
}

impl Graph {
    /// Generates a random graph with `num_edges` distinct edges
    /// (Erdős–Rényi G(n, m)).
    ///
    /// # Panics
    ///
    /// Panics if `num_edges` exceeds the number of possible edges or
    /// `num_vertices < 2`.
    pub fn random(num_vertices: u32, num_edges: usize, seed: u64) -> Self {
        assert!(num_vertices >= 2, "need at least two vertices");
        let max_edges = num_vertices as usize * (num_vertices as usize - 1) / 2;
        assert!(num_edges <= max_edges, "too many edges requested");
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut edges = Vec::with_capacity(num_edges);
        while edges.len() < num_edges {
            let a = rng.gen_range(0..num_vertices);
            let b = rng.gen_range(0..num_vertices);
            if a == b {
                continue;
            }
            let e = (a.min(b), a.max(b));
            if !edges.contains(&e) {
                edges.push(e);
            }
        }
        Graph {
            num_vertices,
            edges,
        }
    }

    /// A cycle graph `v0 - v1 - … - v(n-1) - v0`.
    pub fn cycle(num_vertices: u32) -> Self {
        assert!(num_vertices >= 3, "cycles need at least three vertices");
        Graph {
            num_vertices,
            edges: (0..num_vertices)
                .map(|v| (v, (v + 1) % num_vertices))
                .collect(),
        }
    }

    /// The complete graph on `num_vertices` vertices.
    pub fn complete(num_vertices: u32) -> Self {
        let mut edges = Vec::new();
        for a in 0..num_vertices {
            for b in a + 1..num_vertices {
                edges.push((a, b));
            }
        }
        Graph {
            num_vertices,
            edges,
        }
    }
}

/// Encodes "is `graph` properly `colors`-colourable?" as CNF.
///
/// Variable `v * colors + c` means "vertex `v` takes colour `c`". Clauses:
/// each vertex takes at least one colour, no vertex takes two colours, and
/// adjacent vertices differ.
///
/// # Panics
///
/// Panics if `colors == 0`.
///
/// # Examples
///
/// ```
/// use sat_gen::{coloring_cnf, Graph};
/// use sat_solver::Solver;
/// // An odd cycle is not 2-colourable but is 3-colourable.
/// let c5 = Graph::cycle(5);
/// assert!(Solver::from_cnf(&coloring_cnf(&c5, 2)).solve().is_unsat());
/// assert!(Solver::from_cnf(&coloring_cnf(&c5, 3)).solve().is_sat());
/// ```
pub fn coloring_cnf(graph: &Graph, colors: u32) -> Cnf {
    assert!(colors > 0, "need at least one colour");
    let var = |v: u32, c: u32| Var::new(v * colors + c);
    let mut f = Cnf::new(graph.num_vertices * colors);
    for v in 0..graph.num_vertices {
        f.add_clause((0..colors).map(|c| var(v, c).positive()).collect());
        for c1 in 0..colors {
            for c2 in c1 + 1..colors {
                f.add_clause(Clause::from_lits(vec![
                    var(v, c1).negative(),
                    var(v, c2).negative(),
                ]));
            }
        }
    }
    for &(a, b) in &graph.edges {
        for c in 0..colors {
            f.add_clause(Clause::from_lits(vec![
                var(a, c).negative(),
                var(b, c).negative(),
            ]));
        }
    }
    f
}

/// Decodes a CNF model into a colour per vertex.
///
/// # Panics
///
/// Panics if the model assigns a vertex no colour (which cannot happen for
/// models of [`coloring_cnf`] output).
pub fn decode_coloring(graph: &Graph, colors: u32, model: &[bool]) -> Vec<u32> {
    (0..graph.num_vertices)
        .map(|v| {
            (0..colors)
                .find(|&c| model[(v * colors + c) as usize])
                .expect("model must assign every vertex a colour")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sat_solver::Solver;

    #[test]
    fn complete_graph_needs_n_colors() {
        let k4 = Graph::complete(4);
        assert!(Solver::from_cnf(&coloring_cnf(&k4, 3)).solve().is_unsat());
        assert!(Solver::from_cnf(&coloring_cnf(&k4, 4)).solve().is_sat());
    }

    #[test]
    fn even_cycle_is_2_colorable() {
        let c6 = Graph::cycle(6);
        let f = coloring_cnf(&c6, 2);
        let mut s = Solver::from_cnf(&f);
        let r = s.solve();
        let coloring = decode_coloring(&c6, 2, r.model().expect("sat"));
        for &(a, b) in &c6.edges {
            assert_ne!(coloring[a as usize], coloring[b as usize]);
        }
    }

    #[test]
    fn random_graph_deterministic() {
        let a = Graph::random(10, 20, 3);
        let b = Graph::random(10, 20, 3);
        assert_eq!(a, b);
        assert_eq!(a.edges.len(), 20);
        assert!(a.edges.iter().all(|&(x, y)| x < y && y < 10));
    }

    #[test]
    fn decoded_coloring_is_proper() {
        let g = Graph::random(12, 25, 9);
        let f = coloring_cnf(&g, 4);
        let mut s = Solver::from_cnf(&f);
        if let Some(model) = s.solve().model() {
            let coloring = decode_coloring(&g, 4, model);
            for &(a, b) in &g.edges {
                assert_ne!(coloring[a as usize], coloring[b as usize]);
            }
        }
    }
}
