//! Bounded-model-checking instance generation.
//!
//! BMC unrollings are the second canonical industrial SAT workload next to
//! equivalence miters. Two generators are provided: a gated counter with a
//! *known* reachability depth (deterministically SAT or UNSAT — ideal for
//! calibration and tests) and a random sequential machine whose monitor
//! reachability is genuinely unknown.

use cnf::Cnf;
use logic_circuit::{
    encode, random_circuit, unroll, Circuit, NodeId, RandomCircuitSpec, SequentialCircuit,
};

/// Builds the gated-counter machine: `bits` state bits increment whenever
/// the single primary input is high, and the monitor fires when all bits
/// are 1.
fn gated_counter(bits: usize) -> SequentialCircuit {
    let mut c = Circuit::new();
    let state: Vec<NodeId> = (0..bits).map(|_| c.input()).collect();
    let enable = c.input();
    let mut carry = enable;
    let mut next = Vec::with_capacity(bits);
    for &s in &state {
        let sum = c.xor(s, carry);
        let new_carry = c.and_gate(s, carry);
        next.push(sum);
        carry = new_carry;
    }
    let all_ones = c.and_many(&state);
    let mut outputs = next;
    outputs.push(all_ones);
    c.set_outputs(outputs);
    SequentialCircuit::new(c, bits)
}

/// BMC query for the `bits`-wide gated counter from the all-zero state:
/// "can the counter reach all-ones within `steps` frames?"
///
/// The formula is **satisfiable iff `steps > 2^bits − 1`** (the counter
/// needs `2^bits − 1` enabled increments before the monitor's frame), so
/// both polarities are available on demand.
///
/// # Panics
///
/// Panics if `bits == 0` or `steps == 0`.
///
/// # Examples
///
/// ```
/// use sat_gen::bmc_counter_cnf;
/// use sat_solver::Solver;
/// assert!(Solver::from_cnf(&bmc_counter_cnf(3, 8)).solve().is_sat());
/// assert!(Solver::from_cnf(&bmc_counter_cnf(3, 7)).solve().is_unsat());
/// ```
pub fn bmc_counter_cnf(bits: usize, steps: usize) -> Cnf {
    assert!(bits > 0, "need at least one counter bit");
    let seq = gated_counter(bits);
    let unrolled = unroll(&seq, steps, &vec![false; bits]);
    let mut enc = encode(&unrolled);
    enc.assert_node(unrolled.outputs()[0], true);
    enc.cnf
}

/// BMC query on a random sequential machine: `state_bits` of state, a
/// random combinational transition function of `gates` gates, and a random
/// monitor output, unrolled `steps` frames from the all-zero state.
///
/// Whether the monitor is reachable is not known a priori — these mix SAT
/// and UNSAT like real model-checking runs.
///
/// # Examples
///
/// ```
/// use sat_gen::random_bmc_cnf;
/// let f = random_bmc_cnf(4, 30, 6, 9);
/// assert!(f.num_clauses() > 0);
/// ```
pub fn random_bmc_cnf(state_bits: usize, gates: usize, steps: usize, seed: u64) -> Cnf {
    let spec = RandomCircuitSpec {
        num_inputs: state_bits + 2, // state + two primary inputs
        num_gates: gates,
        num_outputs: state_bits + 1, // next state + one monitor
    };
    let transition = random_circuit(spec, seed);
    let seq = SequentialCircuit::new(transition, state_bits);
    let unrolled = unroll(&seq, steps, &vec![false; state_bits]);
    let mut enc = encode(&unrolled);
    enc.assert_node(unrolled.outputs()[0], true);
    enc.cnf
}

#[cfg(test)]
mod tests {
    use super::*;
    use sat_solver::Solver;

    #[test]
    fn counter_threshold_is_exact() {
        for bits in 1..=3usize {
            let threshold = (1 << bits) - 1;
            assert!(
                Solver::from_cnf(&bmc_counter_cnf(bits, threshold + 1))
                    .solve()
                    .is_sat(),
                "{bits} bits, {} steps must be SAT",
                threshold + 1
            );
            assert!(
                Solver::from_cnf(&bmc_counter_cnf(bits, threshold))
                    .solve()
                    .is_unsat(),
                "{bits} bits, {threshold} steps must be UNSAT"
            );
        }
    }

    #[test]
    fn random_bmc_is_deterministic_and_well_formed() {
        let a = random_bmc_cnf(3, 20, 4, 1);
        let b = random_bmc_cnf(3, 20, 4, 1);
        assert_eq!(a, b);
        // solvable either way, just must terminate
        assert!(!Solver::from_cnf(&a).solve().is_unknown());
    }

    #[test]
    fn deeper_unrollings_monotonically_extend_reachability() {
        // if reachable within k steps, also within k+1
        for seed in 0..4 {
            let shallow = Solver::from_cnf(&random_bmc_cnf(3, 25, 3, seed))
                .solve()
                .is_sat();
            let deep = Solver::from_cnf(&random_bmc_cnf(3, 25, 4, seed))
                .solve()
                .is_sat();
            assert!(
                !shallow || deep,
                "seed {seed}: reachability must be monotone"
            );
        }
    }
}
