//! SAT instance generators and dataset assembly for the NeuroSelect
//! reproduction.
//!
//! Six instance families span the random↔industrial axis that SAT
//! competition benchmarks cover:
//!
//! | family | generator | typical verdict |
//! |---|---|---|
//! | random 3-SAT @ phase transition | [`phase_transition_3sat`] | mixed |
//! | random XOR-3 systems | [`random_xorsat`] | mixed |
//! | pigeonhole | [`pigeonhole`] | UNSAT |
//! | graph 3-colouring | [`coloring_cnf`] | mixed |
//! | circuit equivalence miters | [`equivalence_miter_cnf`] | UNSAT |
//! | circuit fault miters (ATPG) | [`fault_miter_cnf`] | SAT |
//!
//! [`training_batches`] and [`test_batch`] assemble them into the
//! 2016–2021 / 2022 split of the paper's Table 1.
//!
//! # Examples
//!
//! ```
//! use sat_gen::{test_batch, DatasetConfig};
//! let batch = test_batch(&DatasetConfig::tiny());
//! let stats = batch.stats();
//! assert_eq!(stats.num_cnfs, batch.instances.len());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod bmc;
mod coloring;
mod dataset;
mod ksat;
mod miters;
mod parity;
mod pigeonhole;

pub use bmc::{bmc_counter_cnf, random_bmc_cnf};
pub use coloring::{coloring_cnf, decode_coloring, Graph};
pub use dataset::{
    competition_batch, generate_instance, load_dimacs_dir, test_batch, training_batches, Batch,
    BatchStats, DatasetConfig, Family, Instance,
};
pub use ksat::{phase_transition_3sat, planted_ksat, random_ksat, PHASE_TRANSITION_RATIO_3SAT};
pub use miters::{equivalence_miter_cnf, fault_miter_cnf};
pub use parity::{parity_chain_unsat, random_xorsat, tseitin_expander_unsat};
pub use pigeonhole::{pigeonhole, pigeonhole_num_clauses};
