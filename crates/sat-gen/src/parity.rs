//! Random XOR (parity) systems — Tseitin-style hard instances.
//!
//! A random system of parity constraints over GF(2) is easy for Gaussian
//! elimination but notoriously hard for resolution-based CDCL solvers,
//! making it a qualitatively different instance family from random k-SAT.

use cnf::{Clause, Cnf, Var};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Encodes the constraint `x_a ⊕ x_b ⊕ x_c = parity` as four clauses.
fn add_xor3(f: &mut Cnf, a: Var, b: Var, c: Var, parity: bool) {
    // The clause (l1 ∨ l2 ∨ l3), with l_i negated iff bit i of `signs` is
    // set, forbids exactly the assignment x_i = s_i. We emit a clause for
    // every assignment whose XOR differs from the required parity.
    for signs in 0..8u32 {
        let forbidden_parity = signs.count_ones() % 2 == 1;
        if forbidden_parity != parity {
            f.add_clause(Clause::from_lits(vec![
                a.lit(signs & 1 != 0),
                b.lit(signs & 2 != 0),
                c.lit(signs & 4 != 0),
            ]));
        }
    }
}

/// Generates a random system of `num_constraints` parity constraints, each
/// over three distinct variables, CNF-encoded (4 clauses per constraint).
///
/// Near `num_constraints ≈ num_vars` the system is at its satisfiability
/// threshold and maximally hard for CDCL.
///
/// # Panics
///
/// Panics if `num_vars < 3`.
///
/// # Examples
///
/// ```
/// use sat_gen::random_xorsat;
/// let f = random_xorsat(30, 28, 5);
/// assert_eq!(f.num_clauses(), 4 * 28);
/// ```
pub fn random_xorsat(num_vars: u32, num_constraints: usize, seed: u64) -> Cnf {
    assert!(num_vars >= 3, "XOR-3 constraints need at least 3 variables");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut f = Cnf::new(num_vars);
    for _ in 0..num_constraints {
        let mut vars: Vec<u32> = Vec::with_capacity(3);
        while vars.len() < 3 {
            let v = rng.gen_range(0..num_vars);
            if !vars.contains(&v) {
                vars.push(v);
            }
        }
        add_xor3(
            &mut f,
            Var::new(vars[0]),
            Var::new(vars[1]),
            Var::new(vars[2]),
            rng.gen_bool(0.5),
        );
    }
    f
}

/// Adds the constraint `⊕ vars = parity` as `2^(k-1)` clauses.
///
/// # Panics
///
/// Panics if `vars` is empty or longer than 16 (the CNF expansion is
/// exponential in the constraint width).
fn add_xor(f: &mut Cnf, vars: &[Var], parity: bool) {
    assert!(
        !vars.is_empty() && vars.len() <= 16,
        "XOR width out of range"
    );
    for signs in 0..1u32 << vars.len() {
        let forbidden_parity = signs.count_ones() % 2 == 1;
        if forbidden_parity != parity {
            f.add_clause(
                vars.iter()
                    .enumerate()
                    .map(|(i, v)| v.lit(signs >> i & 1 != 0))
                    .collect(),
            );
        }
    }
}

/// Generates an **unsatisfiable** Tseitin formula on a random 4-regular
/// multigraph (the union of two random Hamiltonian cycles on
/// `num_vertices` vertices).
///
/// Each edge is a variable; each vertex contributes the parity constraint
/// "the XOR of my incident edges equals my charge", with exactly one vertex
/// charged odd. Since the charge sum is odd the system is unsatisfiable,
/// and random 4-regular graphs are expanders with high probability, making
/// these formulas require exponentially long resolution refutations —
/// a qualitatively different hardness source from pigeonhole counting.
///
/// # Panics
///
/// Panics if `num_vertices < 3`.
///
/// # Examples
///
/// ```
/// use sat_gen::tseitin_expander_unsat;
/// use sat_solver::Solver;
/// let f = tseitin_expander_unsat(8, 3);
/// assert_eq!(f.num_vars(), 16); // 2 cycles × 8 edges
/// assert!(Solver::from_cnf(&f).solve().is_unsat());
/// ```
pub fn tseitin_expander_unsat(num_vertices: u32, seed: u64) -> Cnf {
    assert!(num_vertices >= 3, "need at least three vertices");
    let mut rng = SmallRng::seed_from_u64(seed);
    let n = num_vertices as usize;
    // incident[v] collects the edge variables touching vertex v.
    let mut incident: Vec<Vec<Var>> = vec![Vec::new(); n];
    let mut next_edge = 0u32;
    for _ in 0..2 {
        // a random Hamiltonian cycle
        let mut order: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = rng.gen_range(0..=i);
            order.swap(i, j);
        }
        for i in 0..n {
            let a = order[i];
            let b = order[(i + 1) % n];
            let e = Var::new(next_edge);
            next_edge += 1;
            incident[a].push(e);
            incident[b].push(e);
        }
    }
    let mut f = Cnf::new(next_edge);
    let charged = rng.gen_range(0..n);
    for (v, edges) in incident.iter().enumerate() {
        add_xor(&mut f, edges, v == charged);
    }
    f
}

/// Generates an **unsatisfiable** parity chain of length `n`:
/// `x_1 ⊕ x_2 = 0, x_2 ⊕ x_3 = 0, …, x_{n-1} ⊕ x_n = 0, x_1 ⊕ x_n = 1`.
///
/// The chain forces all variables equal and then demands the endpoints
/// differ. Structure-blind CDCL must refute it clause by clause.
///
/// # Panics
///
/// Panics if `n < 2`.
///
/// # Examples
///
/// ```
/// use sat_gen::parity_chain_unsat;
/// use sat_solver::Solver;
/// assert!(Solver::from_cnf(&parity_chain_unsat(16)).solve().is_unsat());
/// ```
pub fn parity_chain_unsat(n: u32) -> Cnf {
    assert!(n >= 2, "a chain needs at least two variables");
    let mut f = Cnf::new(n);
    let eq = |f: &mut Cnf, a: u32, b: u32| {
        // x_a ⊕ x_b = 0 (equality): (¬a ∨ b)(a ∨ ¬b)
        f.add_clause(Clause::from_lits(vec![
            Var::new(a).negative(),
            Var::new(b).positive(),
        ]));
        f.add_clause(Clause::from_lits(vec![
            Var::new(a).positive(),
            Var::new(b).negative(),
        ]));
    };
    for i in 0..n - 1 {
        eq(&mut f, i, i + 1);
    }
    // x_0 ⊕ x_{n-1} = 1 (difference): (a ∨ b)(¬a ∨ ¬b)
    f.add_clause(Clause::from_lits(vec![
        Var::new(0).positive(),
        Var::new(n - 1).positive(),
    ]));
    f.add_clause(Clause::from_lits(vec![
        Var::new(0).negative(),
        Var::new(n - 1).negative(),
    ]));
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use sat_solver::Solver;

    /// Reference evaluation of an XOR-3 system by brute force.
    fn xor3_brute(num_vars: u32, constraints: &[(u32, u32, u32, bool)]) -> bool {
        (0..1u32 << num_vars).any(|bits| {
            constraints
                .iter()
                .all(|&(a, b, c, p)| (bits >> a & 1 ^ bits >> b & 1 ^ bits >> c & 1 == 1) == p)
        })
    }

    #[test]
    fn xor3_encoding_matches_semantics() {
        // enumerate all sign/parity combinations on a 3-var constraint
        for parity in [false, true] {
            let mut f = Cnf::new(3);
            add_xor3(&mut f, Var::new(0), Var::new(1), Var::new(2), parity);
            assert_eq!(f.num_clauses(), 4);
            for bits in 0..8u32 {
                let assignment: Vec<bool> = (0..3).map(|i| bits >> i & 1 == 1).collect();
                let xor = assignment.iter().filter(|&&b| b).count() % 2 == 1;
                assert_eq!(
                    f.eval(&assignment),
                    Some(xor == parity),
                    "bits={bits:03b} parity={parity}"
                );
            }
        }
    }

    #[test]
    fn random_xorsat_agrees_with_brute_force() {
        use rand::{Rng, SeedableRng};
        for seed in 0..5 {
            let num_vars = 8u32;
            let f = random_xorsat(num_vars, 9, seed);
            // reconstruct the constraints with the same RNG stream
            let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
            let mut constraints = Vec::new();
            for _ in 0..9 {
                let mut vars: Vec<u32> = Vec::new();
                while vars.len() < 3 {
                    let v = rng.gen_range(0..num_vars);
                    if !vars.contains(&v) {
                        vars.push(v);
                    }
                }
                constraints.push((vars[0], vars[1], vars[2], rng.gen_bool(0.5)));
            }
            let expected = xor3_brute(num_vars, &constraints);
            assert_eq!(
                Solver::from_cnf(&f).solve().is_sat(),
                expected,
                "seed {seed}"
            );
        }
    }

    #[test]
    fn parity_chain_is_unsat_for_all_lengths() {
        for n in 2..20 {
            assert!(
                Solver::from_cnf(&parity_chain_unsat(n)).solve().is_unsat(),
                "chain of length {n}"
            );
        }
    }

    #[test]
    fn parity_chain_clause_count() {
        let f = parity_chain_unsat(10);
        assert_eq!(f.num_clauses(), 2 * 9 + 2);
    }
}
