//! Dataset assembly: batches of mixed-family instances mirroring the
//! paper's Table 1 (per-year SAT-competition batches).
//!
//! The paper trains on the 2016–2021 main tracks and tests on 2022. We
//! reproduce the *structure* — six training batches plus one held-out test
//! batch — over synthetic families spanning the random↔industrial axis
//! (see DESIGN.md §2 for the substitution argument).

use crate::{
    coloring_cnf, equivalence_miter_cnf, fault_miter_cnf, phase_transition_3sat, pigeonhole,
    tseitin_expander_unsat, Graph,
};
use cnf::Cnf;
use logic_circuit::RandomCircuitSpec;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// The synthetic instance families.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Family {
    /// Random 3-SAT at the phase transition.
    RandomKSat,
    /// Tseitin expander formulas (XOR systems on random 4-regular
    /// multigraphs, UNSAT and provably hard for resolution).
    XorSat,
    /// Pigeonhole principle (UNSAT).
    Pigeonhole,
    /// Random-graph 3-colouring.
    Coloring,
    /// Circuit equivalence miters (UNSAT, industrial-style).
    CircuitEquiv,
    /// Circuit fault miters (usually SAT, industrial-style).
    CircuitFault,
    /// Loaded from an external DIMACS file (see [`load_dimacs_dir`]).
    External,
}

impl Family {
    /// All families, in generation order.
    pub const ALL: [Family; 6] = [
        Family::RandomKSat,
        Family::XorSat,
        Family::Pigeonhole,
        Family::Coloring,
        Family::CircuitEquiv,
        Family::CircuitFault,
    ];

    /// The batch composition cycle. Families where the two deletion
    /// policies genuinely diverge (random 3-SAT, Tseitin expanders,
    /// pigeonhole) are over-represented so labels are not degenerate —
    /// mirroring how competition main tracks over-represent hard
    /// search-bound instances.
    pub const MIX: [Family; 12] = [
        Family::RandomKSat,
        Family::XorSat,
        Family::Pigeonhole,
        Family::Coloring,
        Family::RandomKSat,
        Family::XorSat,
        Family::CircuitEquiv,
        Family::Pigeonhole,
        Family::RandomKSat,
        Family::XorSat,
        Family::CircuitFault,
        Family::XorSat,
    ];
}

impl fmt::Display for Family {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Family::RandomKSat => "random-3sat",
            Family::XorSat => "xorsat",
            Family::Pigeonhole => "pigeonhole",
            Family::Coloring => "coloring",
            Family::CircuitEquiv => "circuit-equiv",
            Family::CircuitFault => "circuit-fault",
            Family::External => "external",
        };
        write!(f, "{name}")
    }
}

/// One benchmark instance: a formula plus provenance.
#[derive(Debug, Clone)]
pub struct Instance {
    /// Unique name within its batch, e.g. `2022/random-3sat-04`.
    pub name: String,
    /// Generating family.
    pub family: Family,
    /// The formula.
    pub cnf: Cnf,
}

/// A named batch of instances (one "competition year").
#[derive(Debug, Clone)]
pub struct Batch {
    /// Batch label, e.g. `"2016"`.
    pub name: String,
    /// The instances.
    pub instances: Vec<Instance>,
}

/// Summary statistics of a batch — one row of Table 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchStats {
    /// Number of CNFs in the batch.
    pub num_cnfs: usize,
    /// Mean variable count.
    pub mean_vars: f64,
    /// Mean clause count.
    pub mean_clauses: f64,
}

impl Batch {
    /// Computes the batch's Table 1 row.
    pub fn stats(&self) -> BatchStats {
        let n = self.instances.len().max(1);
        BatchStats {
            num_cnfs: self.instances.len(),
            mean_vars: self
                .instances
                .iter()
                .map(|i| i.cnf.num_vars() as f64)
                .sum::<f64>()
                / n as f64,
            mean_clauses: self
                .instances
                .iter()
                .map(|i| i.cnf.num_clauses() as f64)
                .sum::<f64>()
                / n as f64,
        }
    }
}

/// Sizing knobs for dataset generation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatasetConfig {
    /// Instances per batch (the paper's batches hold 74–148).
    pub instances_per_batch: usize,
    /// Global size multiplier: `1.0` gives instances that label in well
    /// under a second each; larger values grow variable counts linearly.
    pub scale: f64,
    /// Base RNG seed; batches derive their own sub-seeds.
    pub seed: u64,
}

impl Default for DatasetConfig {
    fn default() -> Self {
        DatasetConfig {
            instances_per_batch: 24,
            scale: 1.0,
            seed: 2024,
        }
    }
}

impl DatasetConfig {
    /// A tiny configuration for unit tests (fast to generate and label).
    pub fn tiny() -> Self {
        DatasetConfig {
            instances_per_batch: 6,
            scale: 0.5,
            seed: 7,
        }
    }
}

fn scaled(base: f64, scale: f64, min: u32) -> u32 {
    ((base * scale).round() as u32).max(min)
}

/// Generates one instance of `family` with sizes jittered by `rng`.
pub fn generate_instance(
    family: Family,
    config: &DatasetConfig,
    index: usize,
    rng: &mut SmallRng,
) -> Instance {
    let scale = config.scale;
    let seed = rng.gen::<u64>();
    let cnf = match family {
        Family::RandomKSat => {
            let n = scaled(rng.gen_range(120.0..180.0), scale, 20);
            phase_transition_3sat(n, seed)
        }
        Family::XorSat => {
            let v = scaled(rng.gen_range(12.0..24.0), scale.sqrt(), 5);
            tseitin_expander_unsat(v, seed)
        }
        Family::Pigeonhole => {
            // Capped at 8 holes: PHP(10, 9) already needs minutes of
            // exponential resolution and would dominate labelling time.
            let holes = scaled(rng.gen_range(6.0..8.4), scale.sqrt(), 4).min(8);
            pigeonhole(holes + 1, holes)
        }
        Family::Coloring => {
            let v = scaled(rng.gen_range(40.0..70.0), scale, 8);
            let e = (v as f64 * rng.gen_range(2.2..2.5)).round() as usize;
            coloring_cnf(&Graph::random(v, e, seed), 3)
        }
        Family::CircuitEquiv => {
            let spec = RandomCircuitSpec {
                num_inputs: scaled(rng.gen_range(8.0..12.0), scale.sqrt(), 4) as usize,
                num_gates: scaled(rng.gen_range(250.0..450.0), scale, 10) as usize,
                num_outputs: 3,
            };
            equivalence_miter_cnf(spec, seed)
        }
        Family::CircuitFault => {
            let spec = RandomCircuitSpec {
                num_inputs: scaled(rng.gen_range(8.0..12.0), scale.sqrt(), 4) as usize,
                num_gates: scaled(rng.gen_range(250.0..450.0), scale, 10) as usize,
                num_outputs: 3,
            };
            fault_miter_cnf(spec, seed)
        }
        Family::External => {
            panic!("external instances are loaded with `load_dimacs_dir`, not generated")
        }
    };
    Instance {
        name: format!("{family}-{index:03}"),
        family,
        cnf,
    }
}

/// Generates one named batch with a round-robin family mix.
pub fn competition_batch(name: &str, config: &DatasetConfig, batch_seed: u64) -> Batch {
    let mut rng = SmallRng::seed_from_u64(config.seed.wrapping_add(batch_seed));
    let instances = (0..config.instances_per_batch)
        .map(|i| {
            let family = Family::MIX[i % Family::MIX.len()];
            let mut inst = generate_instance(family, config, i, &mut rng);
            inst.name = format!("{name}/{}", inst.name);
            inst
        })
        .collect();
    Batch {
        name: name.to_string(),
        instances,
    }
}

/// Loads every `.cnf`/`.dimacs` file in a directory as a [`Batch`] —
/// the bridge to real SAT-competition benchmarks. Files are sorted by
/// name for reproducibility.
///
/// # Errors
///
/// Returns an error when the directory cannot be read or a file fails to
/// parse.
///
/// # Examples
///
/// ```no_run
/// let batch = sat_gen::load_dimacs_dir("benchmarks/2022")?;
/// println!("{} instances", batch.instances.len());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn load_dimacs_dir(
    path: impl AsRef<std::path::Path>,
) -> Result<Batch, Box<dyn std::error::Error>> {
    let path = path.as_ref();
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "external".to_string());
    let mut files: Vec<std::path::PathBuf> = std::fs::read_dir(path)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            matches!(
                p.extension().and_then(|e| e.to_str()),
                Some("cnf") | Some("dimacs")
            )
        })
        .collect();
    files.sort();
    let mut instances = Vec::with_capacity(files.len());
    for file in files {
        let reader = std::io::BufReader::new(std::fs::File::open(&file)?);
        let cnf = cnf::parse_dimacs(reader).map_err(|e| format!("{}: {e}", file.display()))?;
        instances.push(Instance {
            name: format!(
                "{name}/{}",
                file.file_stem().unwrap_or_default().to_string_lossy()
            ),
            family: Family::External,
            cnf,
        });
    }
    Ok(Batch { name, instances })
}

/// The six training batches ("2016"–"2021"), mirroring Table 1.
pub fn training_batches(config: &DatasetConfig) -> Vec<Batch> {
    (2016..=2021)
        .map(|year| competition_batch(&year.to_string(), config, year))
        .collect()
}

/// The held-out test batch ("2022").
pub fn test_batch(config: &DatasetConfig) -> Batch {
    competition_batch("2022", config, 2022)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_has_requested_size_and_mix() {
        let config = DatasetConfig::tiny();
        let b = competition_batch("x", &config, 1);
        assert_eq!(b.instances.len(), 6);
        // the first six MIX entries, in order
        for (inst, fam) in b.instances.iter().zip(Family::MIX) {
            assert_eq!(inst.family, fam);
        }
    }

    #[test]
    fn batches_are_deterministic_and_distinct() {
        let config = DatasetConfig::tiny();
        let a1 = competition_batch("a", &config, 1);
        let a2 = competition_batch("a", &config, 1);
        let b = competition_batch("b", &config, 2);
        for (x, y) in a1.instances.iter().zip(&a2.instances) {
            assert_eq!(x.cnf, y.cnf);
        }
        assert!(a1
            .instances
            .iter()
            .zip(&b.instances)
            .any(|(x, y)| x.cnf != y.cnf));
    }

    #[test]
    fn training_and_test_shape() {
        let config = DatasetConfig::tiny();
        let train = training_batches(&config);
        assert_eq!(train.len(), 6);
        assert_eq!(train[0].name, "2016");
        let test = test_batch(&config);
        assert_eq!(test.name, "2022");
        assert_eq!(test.instances.len(), 6);
    }

    #[test]
    fn stats_are_positive() {
        let config = DatasetConfig::tiny();
        let s = test_batch(&config).stats();
        assert_eq!(s.num_cnfs, 6);
        assert!(s.mean_vars > 0.0);
        assert!(
            s.mean_clauses > s.mean_vars,
            "CNFs should have more clauses than vars"
        );
    }

    #[test]
    fn instance_names_carry_batch_prefix() {
        let config = DatasetConfig::tiny();
        let b = competition_batch("2020", &config, 9);
        assert!(b.instances.iter().all(|i| i.name.starts_with("2020/")));
    }
}
