//! Uniform random k-SAT generation.

use cnf::{Clause, Cnf, Lit, Var};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Generates a uniform random k-SAT formula: `num_clauses` clauses, each
/// with `k` distinct variables and independent random signs.
///
/// # Panics
///
/// Panics if `k == 0` or `k > num_vars`.
///
/// # Examples
///
/// ```
/// use sat_gen::random_ksat;
/// let f = random_ksat(50, 210, 3, 1);
/// assert_eq!(f.num_vars(), 50);
/// assert_eq!(f.num_clauses(), 210);
/// assert!(f.clauses().iter().all(|c| c.len() == 3));
/// ```
pub fn random_ksat(num_vars: u32, num_clauses: usize, k: usize, seed: u64) -> Cnf {
    assert!(k >= 1, "clause width must be positive");
    assert!(k as u32 <= num_vars, "clause width exceeds variable count");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut f = Cnf::new(num_vars);
    for _ in 0..num_clauses {
        let mut vars: Vec<u32> = Vec::with_capacity(k);
        while vars.len() < k {
            let v = rng.gen_range(0..num_vars);
            if !vars.contains(&v) {
                vars.push(v);
            }
        }
        let clause: Clause = vars
            .into_iter()
            .map(|v| Lit::new(Var::new(v), rng.gen_bool(0.5)))
            .collect();
        f.add_clause(clause);
    }
    f
}

/// The clause/variable ratio of the (empirical) random 3-SAT phase
/// transition, where instances are hardest on average.
pub const PHASE_TRANSITION_RATIO_3SAT: f64 = 4.26;

/// Generates random 3-SAT at the satisfiability phase transition
/// (clause/variable ratio ≈ 4.26), the classic hard random distribution.
///
/// # Examples
///
/// ```
/// use sat_gen::phase_transition_3sat;
/// let f = phase_transition_3sat(100, 7);
/// assert_eq!(f.num_clauses(), 426);
/// ```
pub fn phase_transition_3sat(num_vars: u32, seed: u64) -> Cnf {
    let num_clauses = (num_vars as f64 * PHASE_TRANSITION_RATIO_3SAT).round() as usize;
    random_ksat(num_vars, num_clauses, 3, seed)
}

/// Generates a **guaranteed-satisfiable** random k-SAT formula by planting
/// a hidden assignment: every clause is checked to be satisfied by the
/// hidden model before being emitted (rejection sampling).
///
/// Planted instances let SAT-side behaviour be studied at clause/variable
/// ratios where uniform random formulas would be UNSAT.
///
/// Returns the formula and the hidden model.
///
/// # Panics
///
/// Panics if `k == 0` or `k > num_vars`.
///
/// # Examples
///
/// ```
/// use sat_gen::planted_ksat;
/// let (f, model) = planted_ksat(40, 300, 3, 1); // ratio 7.5: uniform would be UNSAT
/// assert_eq!(cnf::verify_model(&f, &model), Ok(()));
/// ```
pub fn planted_ksat(num_vars: u32, num_clauses: usize, k: usize, seed: u64) -> (Cnf, Vec<bool>) {
    assert!(k >= 1, "clause width must be positive");
    assert!(k as u32 <= num_vars, "clause width exceeds variable count");
    let mut rng = SmallRng::seed_from_u64(seed);
    let hidden: Vec<bool> = (0..num_vars).map(|_| rng.gen_bool(0.5)).collect();
    let mut f = Cnf::new(num_vars);
    while f.num_clauses() < num_clauses {
        let mut vars: Vec<u32> = Vec::with_capacity(k);
        while vars.len() < k {
            let v = rng.gen_range(0..num_vars);
            if !vars.contains(&v) {
                vars.push(v);
            }
        }
        let clause: Clause = vars
            .iter()
            .map(|&v| Lit::new(Var::new(v), rng.gen_bool(0.5)))
            .collect();
        // keep only clauses the hidden model satisfies
        if clause
            .lits()
            .iter()
            .any(|l| l.eval(hidden[l.var().index() as usize]))
        {
            f.add_clause(clause);
        }
    }
    (f, hidden)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        assert_eq!(random_ksat(20, 80, 3, 5), random_ksat(20, 80, 3, 5));
        assert_ne!(random_ksat(20, 80, 3, 5), random_ksat(20, 80, 3, 6));
    }

    #[test]
    fn clauses_have_distinct_vars() {
        let f = random_ksat(10, 200, 4, 2);
        for c in f.clauses() {
            let mut vars: Vec<u32> = c.lits().iter().map(|l| l.var().index()).collect();
            vars.sort_unstable();
            vars.dedup();
            assert_eq!(vars.len(), 4);
        }
    }

    #[test]
    fn low_ratio_instances_are_sat() {
        use sat_solver::Solver;
        // ratio 2.0 is far below the transition: virtually always SAT
        let f = random_ksat(60, 120, 3, 3);
        assert!(Solver::from_cnf(&f).solve().is_sat());
    }

    #[test]
    fn high_ratio_instances_are_unsat() {
        use sat_solver::Solver;
        // ratio 8 is far above the transition: virtually always UNSAT
        let f = random_ksat(40, 320, 3, 4);
        assert!(Solver::from_cnf(&f).solve().is_unsat());
    }

    #[test]
    fn planted_instances_are_sat_and_verified() {
        use sat_solver::Solver;
        // ratio 7 — uniformly random would be UNSAT with high probability
        let (f, model) = planted_ksat(30, 210, 3, 6);
        assert_eq!(cnf::verify_model(&f, &model), Ok(()));
        let mut s = Solver::from_cnf(&f);
        assert!(s.solve().is_sat());
    }

    #[test]
    fn planted_is_deterministic() {
        assert_eq!(planted_ksat(20, 60, 3, 9).0, planted_ksat(20, 60, 3, 9).0);
    }

    #[test]
    #[should_panic(expected = "width")]
    fn zero_width_rejected() {
        let _ = random_ksat(5, 5, 0, 0);
    }
}
