//! Integration test for the external-benchmark loader.

use sat_gen::{load_dimacs_dir, Family};
use std::fs;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("sat-gen-test-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

#[test]
fn loads_cnf_files_sorted_by_name() {
    let dir = temp_dir("load");
    fs::write(dir.join("b.cnf"), "p cnf 2 1\n1 2 0\n").unwrap();
    fs::write(dir.join("a.cnf"), "p cnf 1 1\n-1 0\n").unwrap();
    fs::write(dir.join("c.dimacs"), "p cnf 3 1\n1 -2 3 0\n").unwrap();
    fs::write(dir.join("ignored.txt"), "not a cnf").unwrap();

    let batch = load_dimacs_dir(&dir).expect("load");
    assert_eq!(batch.instances.len(), 3);
    let names: Vec<&str> = batch
        .instances
        .iter()
        .map(|i| i.name.rsplit('/').next().unwrap())
        .collect();
    assert_eq!(names, vec!["a", "b", "c"]);
    assert!(batch.instances.iter().all(|i| i.family == Family::External));
    assert_eq!(batch.instances[0].cnf.num_vars(), 1);
    assert_eq!(batch.instances[2].cnf.num_clauses(), 1);

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn malformed_file_is_an_error() {
    let dir = temp_dir("bad");
    fs::write(dir.join("bad.cnf"), "p cnf x y\n").unwrap();
    let err = load_dimacs_dir(&dir).unwrap_err();
    assert!(err.to_string().contains("bad.cnf"));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn missing_directory_is_an_error() {
    assert!(load_dimacs_dir("/nonexistent/surely/absent").is_err());
}

#[test]
fn empty_directory_gives_empty_batch() {
    let dir = temp_dir("empty");
    let batch = load_dimacs_dir(&dir).expect("load");
    assert!(batch.instances.is_empty());
    let _ = fs::remove_dir_all(&dir);
}
