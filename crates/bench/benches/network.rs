//! Criterion benchmarks of the neural pipeline: HGT forward (inference,
//! the cost Figure 7(b) reports), forward+backward (training step), and the
//! graph-conversion preprocessing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use neuro::{Adam, GraphTensors, NeuroSelectConfig, NeuroSelectModel, ParamStore, Session, Tape};
use neuroselect::sat_gen::phase_transition_3sat;
use sat_graph::BipartiteGraph;
use std::hint::black_box;

fn model_and_store(dim: usize) -> (NeuroSelectModel, ParamStore) {
    let mut store = ParamStore::new();
    let model = NeuroSelectModel::new(
        &mut store,
        NeuroSelectConfig {
            hidden_dim: dim,
            hgt_layers: 2,
            mpnn_per_hgt: 3,
            use_attention: true,
            seed: 1,
        },
    );
    (model, store)
}

/// One-time inference cost vs. instance size (Figure 7(b)'s x-axis).
fn inference(c: &mut Criterion) {
    let (model, store) = model_and_store(32);
    let mut group = c.benchmark_group("hgt_inference");
    group.sample_size(10);
    for vars in [50u32, 150, 400] {
        let f = phase_transition_3sat(vars, 7);
        let tensors = GraphTensors::new(&BipartiteGraph::from_cnf(&f));
        group.bench_with_input(BenchmarkId::from_parameter(vars), &tensors, |b, g| {
            b.iter(|| black_box(model.predict(&store, g)));
        });
    }
    group.finish();
}

/// Training-step cost (forward + backward + Adam).
fn train_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("hgt_train_step");
    group.sample_size(10);
    let f = phase_transition_3sat(120, 3);
    let tensors = GraphTensors::new(&BipartiteGraph::from_cnf(&f));
    let (model, mut store) = model_and_store(16);
    let mut adam = Adam::new(1e-3);
    group.bench_function("dim16_vars120", |b| {
        b.iter(|| black_box(model.train_step(&mut store, &mut adam, &tensors, 1)));
    });
    group.finish();
}

/// Graph conversion + tensor preparation (part of the inference time the
/// paper charges to NeuroSelect-Kissat).
fn graph_conversion(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph_conversion");
    for vars in [100u32, 400] {
        let f = phase_transition_3sat(vars, 5);
        group.bench_with_input(BenchmarkId::from_parameter(vars), &f, |b, f| {
            b.iter(|| {
                let g = BipartiteGraph::from_cnf(black_box(f));
                black_box(GraphTensors::new(&g).num_vars)
            });
        });
    }
    group.finish();
}

/// Forward-only tape construction vs. forward+backward, to expose the
/// autodiff overhead factor.
fn forward_vs_backward(c: &mut Criterion) {
    let f = phase_transition_3sat(80, 11);
    let tensors = GraphTensors::new(&BipartiteGraph::from_cnf(&f));
    let (model, store) = model_and_store(16);
    let mut group = c.benchmark_group("autodiff_overhead");
    group.sample_size(10);
    group.bench_function("forward_only", |b| {
        b.iter(|| {
            let mut tape = Tape::new();
            let mut sess = Session::new(&store);
            let logit = model.forward(&mut tape, &mut sess, &store, &tensors);
            black_box(tape.value(logit).get(0, 0))
        });
    });
    group.bench_function("forward_backward", |b| {
        b.iter(|| {
            let mut tape = Tape::new();
            let mut sess = Session::new(&store);
            let logit = model.forward(&mut tape, &mut sess, &store, &tensors);
            let loss = tape.bce_with_logits(logit, 1.0);
            let grads = tape.backward(loss);
            black_box(grads.get(logit, &tape).get(0, 0))
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    inference,
    train_step,
    graph_conversion,
    forward_vs_backward
);
criterion_main!(benches);
