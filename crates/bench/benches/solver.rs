//! Criterion micro-benchmarks of the CDCL solver substrate: BCP throughput,
//! per-family solve cost under each deletion policy, and the scoring
//! overhead of the reduce step itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use neuroselect::sat_gen::{
    equivalence_miter_cnf, phase_transition_3sat, pigeonhole, random_xorsat,
};
use neuroselect::sat_solver::{solve_with_policy, Budget, PolicyKind};
use std::hint::black_box;

/// Propagation-dominated workload: a long implication-chain formula that
/// solves with a single decision cascade, isolating watched-literal BCP.
fn bcp_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("bcp_throughput");
    for n in [1_000u32, 10_000] {
        let mut f = cnf::Cnf::new(n);
        f.add_dimacs(&[1]);
        for i in 1..n as i32 {
            f.add_dimacs(&[-i, i + 1]);
        }
        group.bench_with_input(BenchmarkId::from_parameter(n), &f, |b, f| {
            b.iter(|| {
                let (r, s) =
                    solve_with_policy(black_box(f), PolicyKind::Default, Budget::unlimited());
                assert!(r.is_sat());
                black_box(s.propagations)
            });
        });
    }
    group.finish();
}

/// Full solves per instance family and deletion policy — the raw material
/// of Figure 4's comparison.
fn solve_families(c: &mut Criterion) {
    let mut group = c.benchmark_group("solve_family");
    group.sample_size(10);
    let instances: Vec<(&str, cnf::Cnf)> = vec![
        ("random3sat", phase_transition_3sat(90, 3)),
        ("pigeonhole", pigeonhole(7, 6)),
        ("xorsat", random_xorsat(50, 47, 5)),
        (
            "circuit_miter",
            equivalence_miter_cnf(
                logic_circuit::RandomCircuitSpec {
                    num_inputs: 8,
                    num_gates: 100,
                    num_outputs: 3,
                },
                9,
            ),
        ),
    ];
    for (name, f) in &instances {
        for policy in [PolicyKind::Default, PolicyKind::PropFreq] {
            group.bench_with_input(
                BenchmarkId::new(*name, policy),
                &(f, policy),
                |b, (f, policy)| {
                    b.iter(|| {
                        let (r, s) = solve_with_policy(black_box(f), *policy, Budget::unlimited());
                        assert!(!r.is_unknown());
                        black_box(s.conflicts)
                    });
                },
            );
        }
    }
    group.finish();
}

/// Isolates the per-reduction scoring overhead of the two policies by
/// running a conflict-heavy instance whose reductions dominate.
fn policy_scoring_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("policy_scoring");
    group.sample_size(10);
    let f = pigeonhole(8, 7);
    for policy in [PolicyKind::Default, PolicyKind::PropFreq] {
        group.bench_with_input(
            BenchmarkId::from_parameter(policy),
            &policy,
            |b, &policy| {
                b.iter(|| {
                    let (r, s) = solve_with_policy(black_box(&f), policy, Budget::unlimited());
                    assert!(r.is_unsat());
                    black_box(s.reductions)
                });
            },
        );
    }
    group.finish();
}

/// Preprocessing cost and effectiveness on a structured instance.
fn preprocessing(c: &mut Criterion) {
    use neuroselect::sat_solver::{preprocess, PreprocessConfig};
    let mut group = c.benchmark_group("preprocess");
    group.sample_size(10);
    let miter = equivalence_miter_cnf(
        logic_circuit::RandomCircuitSpec {
            num_inputs: 10,
            num_gates: 200,
            num_outputs: 3,
        },
        5,
    );
    group.bench_function("circuit_miter", |b| {
        b.iter(|| black_box(preprocess(&miter, &PreprocessConfig::default())));
    });
    let threesat = phase_transition_3sat(150, 3);
    group.bench_function("random_3sat", |b| {
        b.iter(|| black_box(preprocess(&threesat, &PreprocessConfig::default())));
    });
    group.finish();
}

/// BMC unrolling + solving at increasing bounds.
fn bmc(c: &mut Criterion) {
    use neuroselect::sat_gen::bmc_counter_cnf;
    let mut group = c.benchmark_group("bmc_counter");
    group.sample_size(10);
    for steps in [8usize, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(steps), &steps, |b, &steps| {
            b.iter(|| {
                let f = bmc_counter_cnf(3, steps);
                let (r, s) = solve_with_policy(&f, PolicyKind::Default, Budget::unlimited());
                assert_eq!(r.is_sat(), steps > 7);
                black_box(s.propagations)
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bcp_throughput,
    solve_families,
    policy_scoring_overhead,
    preprocessing,
    bmc
);
criterion_main!(benches);
