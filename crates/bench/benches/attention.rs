//! **Ablation D5**: linear attention must scale linearly in the node count
//! while the naive quadratic formulation scales quadratically — the
//! complexity claim of Section 4.3.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use neuro::{init_rng, LinearAttention, Matrix, ParamStore, Session, Tape};
use rand::Rng;
use std::hint::black_box;

fn random_features(n: usize, d: usize, seed: u64) -> Matrix {
    let mut rng = init_rng(seed);
    Matrix::from_vec(n, d, (0..n * d).map(|_| rng.gen_range(-1.0..1.0)).collect())
}

fn attention_scaling(c: &mut Criterion) {
    const DIM: usize = 32;
    let mut store = ParamStore::new();
    let mut rng = init_rng(1);
    let attn = LinearAttention::new(&mut store, DIM, &mut rng);

    let mut group = c.benchmark_group("attention_scaling");
    for n in [64usize, 256, 1024, 4096] {
        let z_val = random_features(n, DIM, n as u64);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("linear", n), &z_val, |b, z_val| {
            b.iter(|| {
                let mut tape = Tape::new();
                let mut sess = Session::new(&store);
                let z = tape.leaf(z_val.clone());
                let out = attn.forward(&mut tape, &mut sess, &store, z);
                black_box(tape.value(out).get(0, 0))
            });
        });
        // The quadratic reference becomes prohibitive beyond ~4k nodes —
        // which is precisely the point of the ablation.
        if n <= 1024 {
            group.bench_with_input(BenchmarkId::new("quadratic", n), &z_val, |b, z_val| {
                b.iter(|| {
                    let mut tape = Tape::new();
                    let mut sess = Session::new(&store);
                    let z = tape.leaf(z_val.clone());
                    let out = attn.forward_quadratic(&mut tape, &mut sess, &store, z);
                    black_box(tape.value(out).get(0, 0))
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, attention_scaling);
criterion_main!(benches);
