//! Cold-start amortization benchmark for `rsatd` incremental sessions.
//!
//! Drives the same bounded-model-checking sweep (a gated counter checked
//! at every bound up to saturation) two ways through the daemon:
//!
//! - **fresh**: every bound opens a new session, ships the full unrolling,
//!   solves once, and closes — the cold-start baseline a stateless client
//!   pays.
//! - **session**: one session lives across the whole sweep; each bound
//!   ships only the delta clauses of the new time frame and re-solves
//!   under an assumption, reusing all learned state.
//!
//! The report feeds `exp_amortize` and the CI assertion that incremental
//! sessions amortize at least 2× over cold starts.

use neuroselect::logic_circuit::{
    Circuit, IncrementalEncoder, IncrementalUnroll, NodeId, SequentialCircuit,
};
use neuroselect::rsatd::{Daemon, DaemonConfig, Verdict};
use std::time::Instant;

/// Wall-clock and work totals for one sweep in both modes.
#[derive(Debug, Clone)]
pub struct AmortizeReport {
    /// Counter width; the sweep runs `2^bits` bounds.
    pub bits: usize,
    /// Number of bounds solved (the last one is SAT, the rest UNSAT).
    pub bounds: usize,
    /// Total wall-clock for the fresh-session-per-bound sweep, in ms.
    pub fresh_ms: f64,
    /// Total wall-clock for the single-session sweep, in ms.
    pub session_ms: f64,
    /// Summed solver propagations across the fresh sweep.
    pub fresh_propagations: u64,
    /// Summed solver propagations across the session sweep.
    pub session_propagations: u64,
    /// Per-bound wall-clock of each fresh solve, in ms (one per bound).
    pub fresh_latency_ms: Vec<f64>,
    /// Per-bound wall-clock of each session solve, in ms (one per bound).
    pub session_latency_ms: Vec<f64>,
}

impl AmortizeReport {
    /// Wall-clock speedup of the persistent session over cold starts.
    pub fn speedup_wall(&self) -> f64 {
        self.fresh_ms / self.session_ms.max(1e-9)
    }

    /// Propagation-count speedup (noise-free work measure).
    pub fn speedup_props(&self) -> f64 {
        self.fresh_propagations as f64 / (self.session_propagations.max(1)) as f64
    }

    /// The one-line summary printed by `exp_amortize` and quoted in docs.
    pub fn comparison_line(&self) -> String {
        format!(
            "amortize[{}-bit counter, {} bounds]: fresh {:.1} ms / {} props \
             vs session {:.1} ms / {} props — {:.1}x wall, {:.1}x props",
            self.bits,
            self.bounds,
            self.fresh_ms,
            self.fresh_propagations,
            self.session_ms,
            self.session_propagations,
            self.speedup_wall(),
            self.speedup_props(),
        )
    }

    /// Per-bound latency percentile lines for both modes, in the
    /// workspace's standard `p50 … | p90 … | p99 …` format.
    ///
    /// Tail latency is the whole point of the comparison: the fresh
    /// sweep's worst bounds re-pay the entire unrolling, while the
    /// session's worst bound only pays its delta.
    pub fn percentile_lines(&self) -> Vec<String> {
        [
            ("fresh", &self.fresh_latency_ms),
            ("session", &self.session_latency_ms),
        ]
        .into_iter()
        .filter_map(|(mode, lat)| {
            crate::percentile_line(lat.iter().copied())
                .map(|line| format!("  {mode:>7} per-bound latency: {line}"))
        })
        .collect()
    }
}

/// The gated-counter machine used across the BMC examples: `bits` state
/// bits, one enable input, monitor = "all bits 1".
fn gated_counter(bits: usize) -> SequentialCircuit {
    let mut c = Circuit::new();
    let state: Vec<NodeId> = (0..bits).map(|_| c.input()).collect();
    let enable = c.input();
    let mut carry = enable;
    let mut next = Vec::with_capacity(bits);
    for &s in &state {
        let sum = c.xor(s, carry);
        let new_carry = c.and_gate(s, carry);
        next.push(sum);
        carry = new_carry;
    }
    let all_ones = c.and_many(&state);
    let mut outputs = next;
    outputs.push(all_ones);
    c.set_outputs(outputs);
    SequentialCircuit::new(c, bits)
}

fn dimacs_clauses(delta: &neuroselect::cnf::Cnf) -> Vec<Vec<i64>> {
    delta
        .clauses()
        .iter()
        .map(|c| c.lits().iter().map(|l| i64::from(l.to_dimacs())).collect())
        .collect()
}

/// Solves bound `k` cold: a brand-new session carrying the whole
/// `k`-frame unrolling. Returns (is_sat, propagations).
fn solve_fresh(
    daemon: &Daemon,
    seq: &SequentialCircuit,
    initial: &[bool],
    bound: usize,
) -> (bool, u64) {
    let mut unrolling = IncrementalUnroll::new(seq, initial);
    let mut bad = None;
    for _ in 0..bound {
        bad = Some(unrolling.push_frame());
    }
    let bad = bad.expect("bound >= 1");
    let mut enc = IncrementalEncoder::new();
    let cnf = enc.encode_new(unrolling.circuit());
    let probe = i64::from(enc.lit(bad, true).to_dimacs());

    let session = daemon.open_session(enc.num_vars(), false).expect("open");
    session.add_clauses(&dimacs_clauses(&cnf)).expect("seed");
    session.freeze(&[probe]).expect("freeze");
    let reply = session.solve(&[probe], None).expect("solve");
    session.close().expect("close");
    (matches!(reply.verdict, Verdict::Sat), reply.propagations)
}

/// Runs the full sweep in both modes and cross-checks their verdicts.
///
/// # Panics
///
/// Panics if the daemon degrades a solve or the two modes disagree on
/// any bound's verdict (they must both find SAT exactly at `2^bits`).
pub fn run(bits: usize) -> AmortizeReport {
    let seq = gated_counter(bits);
    let initial = vec![false; bits];
    let max_bound = 1usize << bits;
    let daemon = Daemon::start(DaemonConfig {
        // the fresh sweep holds at most one live session at a time, but
        // give headroom so admission never interferes with timing
        max_sessions: 8,
        ..DaemonConfig::default()
    });

    // -- fresh: cold start per bound ------------------------------------
    let started = Instant::now();
    let mut fresh_propagations = 0;
    let mut fresh_verdicts = Vec::with_capacity(max_bound);
    let mut fresh_latency_ms = Vec::with_capacity(max_bound);
    for bound in 1..=max_bound {
        let bound_started = Instant::now();
        let (sat, props) = solve_fresh(&daemon, &seq, &initial, bound);
        fresh_latency_ms.push(bound_started.elapsed().as_secs_f64() * 1e3);
        fresh_propagations += props;
        fresh_verdicts.push(sat);
    }
    let fresh_ms = started.elapsed().as_secs_f64() * 1e3;

    // -- session: one incremental session across the sweep --------------
    let mut scratch = IncrementalUnroll::new(&seq, &initial);
    for _ in 0..max_bound {
        scratch.push_frame();
    }
    let total_vars = scratch.circuit().len() as u32;

    let started = Instant::now();
    let mut session_propagations = 0;
    let mut session_verdicts = Vec::with_capacity(max_bound);
    let mut session_latency_ms = Vec::with_capacity(max_bound);
    let session = daemon.open_session(total_vars, false).expect("open");
    let mut unrolling = IncrementalUnroll::new(&seq, &initial);
    let mut enc = IncrementalEncoder::new();
    for _bound in 1..=max_bound {
        let bound_started = Instant::now();
        let bad = unrolling.push_frame();
        let delta = enc.encode_new(unrolling.circuit());
        session.add_clauses(&dimacs_clauses(&delta)).expect("delta");
        let probe = i64::from(enc.lit(bad, true).to_dimacs());
        session.freeze(&[probe]).expect("freeze");
        let reply = session.solve(&[probe], None).expect("solve");
        session_propagations += reply.propagations;
        session_verdicts.push(match reply.verdict {
            Verdict::Sat => true,
            Verdict::Unsat => false,
            Verdict::Unknown(cause) => panic!("session solve degraded: {cause}"),
        });
        session_latency_ms.push(bound_started.elapsed().as_secs_f64() * 1e3);
    }
    session.close().expect("close");
    let session_ms = started.elapsed().as_secs_f64() * 1e3;
    daemon.shutdown();

    assert_eq!(
        fresh_verdicts, session_verdicts,
        "both modes must agree on every bound"
    );
    assert!(
        session_verdicts.iter().rev().skip(1).all(|&sat| !sat),
        "every bound below saturation is UNSAT"
    );
    assert_eq!(
        session_verdicts.last(),
        Some(&true),
        "the counter saturates at bound 2^bits"
    );

    AmortizeReport {
        bits,
        bounds: max_bound,
        fresh_ms,
        session_ms,
        fresh_propagations,
        session_propagations,
        fresh_latency_ms,
        session_latency_ms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_mode_amortizes_at_least_2x() {
        // 2^6 = 64 bounds: enough sweep depth that the quadratic
        // re-shipping and re-solving of cold starts dominates noise.
        let report = run(6);
        println!("{}", report.comparison_line());
        assert_eq!(report.fresh_latency_ms.len(), report.bounds);
        assert_eq!(report.session_latency_ms.len(), report.bounds);
        let lines = report.percentile_lines();
        assert_eq!(lines.len(), 2, "{lines:?}");
        assert!(
            lines[0].contains("p50") && lines[0].contains("p99"),
            "{lines:?}"
        );
        assert!(
            report.speedup_wall() >= 2.0,
            "incremental session must amortize >= 2x over cold starts: {}",
            report.comparison_line()
        );
        assert!(
            report.speedup_props() >= 2.0,
            "propagation work must also amortize >= 2x: {}",
            report.comparison_line()
        );
    }
}
