//! `trace-report`: offline analyzer for Chrome trace-event files written
//! by `rsat --trace-out` (and any other `telemetry::trace` producer).
//!
//! Turns the raw event stream into the three summaries every perf
//! discussion needs: per-phase/per-worker time breakdowns, import-to-use
//! latency for shared clauses, and the inference-vs-solve overlap.
//!
//! A second analyzer, [`analyze_daemon`], reads the traces `rsatd
//! --trace-out` exports — per-worker lanes of `queue-wait`/`solve`/`reply`
//! spans plus `daemon-admit`/`daemon-reject` instants — and reports the
//! admission-outcome breakdown and how much queue-wait accrued while the
//! workers were actually solving (saturation) rather than idle.

use std::collections::BTreeMap;
use std::fmt;
use telemetry::json::Json;

/// Span names treated as NeuroSelect pipeline inference work.
const INFERENCE_SPANS: [&str; 2] = ["feature-extract", "gnn-forward"];
/// Span name treated as solver search work.
const SOLVE_SPAN: &str = "solve";
/// Daemon span: time a request sat in the admission queue.
const QUEUE_WAIT_SPAN: &str = "queue-wait";
/// Daemon span: time a worker spent delivering the reply callback.
const REPLY_SPAN: &str = "reply";
/// Daemon instant: a request was admitted and queued.
const ADMIT_INSTANT: &str = "daemon-admit";
/// Daemon instant: a request was rejected before admission.
const REJECT_INSTANT: &str = "daemon-reject";

/// Aggregate of one span name within one lane.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanSummary {
    /// Span (phase) name.
    pub name: String,
    /// Number of completed occurrences.
    pub count: u64,
    /// Total duration across occurrences, in microseconds.
    pub total_us: f64,
}

/// Everything observed on one Chrome `pid` lane (one worker, or the
/// coordinating/pipeline thread on pid 0).
#[derive(Debug, Clone, PartialEq)]
pub struct LaneSummary {
    /// Chrome process id of the lane.
    pub pid: u64,
    /// Lane label from the `process_name` metadata (empty if absent).
    pub label: String,
    /// Span totals, largest first.
    pub spans: Vec<SpanSummary>,
    /// Instant-event counts by name, most frequent first.
    pub instants: Vec<(String, u64)>,
    /// Events lost to ring wrap-around (from the `trace-dropped` marker).
    pub dropped: u64,
}

impl LaneSummary {
    /// Wall-clock span of the lane's events, in microseconds.
    fn busy_us(&self) -> f64 {
        self.spans.iter().map(|s| s.total_us).sum()
    }
}

/// Import-to-use latency for shared clauses, paired per lane: each
/// `import-use` instant is matched with the latest preceding
/// `clause-import` on the same lane. The pairing is approximate — events
/// carry no clause identity — so it reports how quickly *recently
/// imported* clauses start resolving conflicts, a lower bound on the true
/// per-clause latency.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ImportUseSummary {
    /// Total `clause-import` instants.
    pub imports: u64,
    /// Total `import-use` instants.
    pub uses: u64,
    /// Uses that had a preceding import on their lane.
    pub matched: u64,
    /// Mean matched latency in microseconds.
    pub mean_us: f64,
    /// Largest matched latency in microseconds.
    pub max_us: f64,
}

/// How much GNN inference ran concurrently with solver search.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OverlapSummary {
    /// Total inference time (feature-extract + gnn-forward), microseconds.
    pub inference_us: f64,
    /// Total union of solver `solve` spans, microseconds.
    pub solve_us: f64,
    /// Inference time that overlapped some `solve` span, microseconds.
    pub overlap_us: f64,
}

/// The full analysis of one trace file.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceReport {
    /// Per-lane breakdowns, ordered by pid.
    pub lanes: Vec<LaneSummary>,
    /// Shared-clause import-to-use latency.
    pub import_use: ImportUseSummary,
    /// Inference-vs-solve concurrency.
    pub overlap: OverlapSummary,
}

/// Phase totals of one daemon worker lane.
#[derive(Debug, Clone, PartialEq)]
pub struct DaemonWorkerSummary {
    /// Chrome process id of the lane (`worker_id + 1`).
    pub pid: u64,
    /// Lane label (`daemon-worker-N`).
    pub label: String,
    /// Requests this worker executed (one `queue-wait` span each).
    pub requests: u64,
    /// Summed queue wait of those requests, microseconds.
    pub queue_wait_us: f64,
    /// Summed solve wall of those requests, microseconds.
    pub solve_us: f64,
    /// Summed reply-callback wall, microseconds.
    pub reply_us: f64,
}

/// The daemon-mode analysis of one `rsatd --trace-out` file.
#[derive(Debug, Clone, PartialEq)]
pub struct DaemonReport {
    /// Per-worker phase breakdowns, ordered by pid.
    pub workers: Vec<DaemonWorkerSummary>,
    /// `daemon-admit` instants: requests that entered the queue.
    pub admitted: u64,
    /// `daemon-reject` instants: requests refused before admission.
    pub rejected: u64,
    /// Requests executed by a worker (total `queue-wait` spans).
    pub executed: u64,
    /// Union of all queue-wait spans, microseconds.
    pub queue_wait_us: f64,
    /// Union of all solve spans, microseconds.
    pub solve_us: f64,
    /// Queue-wait time that overlapped some solve span, microseconds.
    /// High overlap means queueing came from saturated workers; low
    /// overlap under a long queue-wait union means the daemon sat idle
    /// while work waited (a scheduling bug).
    pub overlap_us: f64,
}

/// One `"ph":"X"` interval: `[start, start + dur)` in microseconds.
#[derive(Debug, Clone, Copy)]
struct Interval {
    start: f64,
    end: f64,
}

/// Merges intervals into a disjoint union and returns it sorted.
fn union(mut intervals: Vec<Interval>) -> Vec<Interval> {
    intervals.sort_by(|a, b| a.start.total_cmp(&b.start));
    let mut merged: Vec<Interval> = Vec::new();
    for iv in intervals {
        match merged.last_mut() {
            Some(last) if iv.start <= last.end => last.end = last.end.max(iv.end),
            _ => merged.push(iv),
        }
    }
    merged
}

/// Total length of the intersection between two disjoint sorted unions.
fn intersection_us(a: &[Interval], b: &[Interval]) -> f64 {
    let (mut i, mut j, mut total) = (0, 0, 0.0);
    while i < a.len() && j < b.len() {
        let lo = a[i].start.max(b[j].start);
        let hi = a[i].end.min(b[j].end);
        if hi > lo {
            total += hi - lo;
        }
        if a[i].end < b[j].end {
            i += 1;
        } else {
            j += 1;
        }
    }
    total
}

#[derive(Default)]
struct LaneAccum {
    label: String,
    spans: BTreeMap<String, (u64, f64)>,
    instants: BTreeMap<String, u64>,
    dropped: u64,
    import_ts: Vec<f64>,
    use_ts: Vec<f64>,
}

/// Analyzes a parsed Chrome trace-event document.
///
/// # Errors
///
/// Returns a message when the document is not an object with a
/// `traceEvents` array, or an event is missing a required field.
pub fn analyze(doc: &Json) -> Result<TraceReport, String> {
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_array)
        .ok_or("not a Chrome trace: missing `traceEvents` array")?;

    let mut lanes: BTreeMap<u64, LaneAccum> = BTreeMap::new();
    let mut inference: Vec<Interval> = Vec::new();
    let mut solve: Vec<Interval> = Vec::new();

    for (idx, ev) in events.iter().enumerate() {
        let field = |key: &str| {
            ev.get(key)
                .ok_or_else(|| format!("event {idx}: missing `{key}`"))
        };
        let ph = field("ph")?
            .as_str()
            .ok_or_else(|| format!("event {idx}: `ph` is not a string"))?;
        let pid = field("pid")?
            .as_u64()
            .ok_or_else(|| format!("event {idx}: `pid` is not an integer"))?;
        let name = field("name")?
            .as_str()
            .ok_or_else(|| format!("event {idx}: `name` is not a string"))?
            .to_string();
        let lane = lanes.entry(pid).or_default();
        match ph {
            "M" if name == "process_name" => {
                if let Some(label) = ev
                    .get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Json::as_str)
                {
                    lane.label = label.to_string();
                }
            }
            "X" => {
                let ts = field("ts")?
                    .as_f64()
                    .ok_or_else(|| format!("event {idx}: `ts` is not a number"))?;
                let dur = field("dur")?
                    .as_f64()
                    .ok_or_else(|| format!("event {idx}: `dur` is not a number"))?;
                let slot = lane.spans.entry(name.clone()).or_insert((0, 0.0));
                slot.0 += 1;
                slot.1 += dur;
                let interval = Interval {
                    start: ts,
                    end: ts + dur,
                };
                if INFERENCE_SPANS.contains(&name.as_str()) {
                    inference.push(interval);
                } else if name == SOLVE_SPAN {
                    solve.push(interval);
                }
            }
            "i" | "I" => {
                let ts = field("ts")?
                    .as_f64()
                    .ok_or_else(|| format!("event {idx}: `ts` is not a number"))?;
                match name.as_str() {
                    "clause-import" => lane.import_ts.push(ts),
                    "import-use" => lane.use_ts.push(ts),
                    "trace-dropped" => {
                        lane.dropped += ev
                            .get("args")
                            .and_then(|a| a.get("count"))
                            .and_then(Json::as_u64)
                            .unwrap_or(0);
                    }
                    _ => {}
                }
                *lane.instants.entry(name).or_insert(0) += 1;
            }
            _ => {} // B/E or other phases are not produced by our exporter
        }
    }

    let mut import_use = ImportUseSummary::default();
    let mut latency_sum = 0.0;
    for lane in lanes.values_mut() {
        lane.import_ts.sort_by(f64::total_cmp);
        lane.use_ts.sort_by(f64::total_cmp);
        import_use.imports += lane.import_ts.len() as u64;
        import_use.uses += lane.use_ts.len() as u64;
        for &use_ts in &lane.use_ts {
            // Latest import at or before the use on the same lane.
            let n = lane.import_ts.partition_point(|&t| t <= use_ts);
            if n > 0 {
                let latency = use_ts - lane.import_ts[n - 1];
                import_use.matched += 1;
                latency_sum += latency;
                import_use.max_us = import_use.max_us.max(latency);
            }
        }
    }
    if import_use.matched > 0 {
        import_use.mean_us = latency_sum / import_use.matched as f64;
    }

    let (inference, solve) = (union(inference), union(solve));
    // `+ 0.0` normalizes the empty sum, which is IEEE `-0.0` and would
    // print as "-0.00 ms". (`.max(0.0)` is not reliable here: LLVM's maxnum
    // leaves the sign of a zero result unspecified, while `-0.0 + 0.0` is
    // `+0.0` in every IEEE rounding mode Rust uses.)
    let overlap = OverlapSummary {
        inference_us: inference.iter().map(|iv| iv.end - iv.start).sum::<f64>() + 0.0,
        solve_us: solve.iter().map(|iv| iv.end - iv.start).sum::<f64>() + 0.0,
        overlap_us: intersection_us(&inference, &solve),
    };

    let lanes = lanes
        .into_iter()
        .map(|(pid, accum)| {
            let mut spans: Vec<SpanSummary> = accum
                .spans
                .into_iter()
                .map(|(name, (count, total_us))| SpanSummary {
                    name,
                    count,
                    total_us,
                })
                .collect();
            spans.sort_by(|a, b| b.total_us.total_cmp(&a.total_us).then(a.name.cmp(&b.name)));
            let mut instants: Vec<(String, u64)> = accum.instants.into_iter().collect();
            instants.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            LaneSummary {
                pid,
                label: accum.label,
                spans,
                instants,
                dropped: accum.dropped,
            }
        })
        .collect();

    Ok(TraceReport {
        lanes,
        import_use,
        overlap,
    })
}

/// Parses the trace text and analyzes it in one step.
///
/// # Errors
///
/// Returns a message on malformed JSON or a non-trace document.
pub fn analyze_str(text: &str) -> Result<TraceReport, String> {
    let doc = Json::parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
    analyze(&doc)
}

/// Analyzes a Chrome trace exported by `rsatd --trace-out`: per-worker
/// queue-wait/solve/reply breakdowns, the admission-outcome split, and
/// the queue-wait-vs-solve overlap.
///
/// # Errors
///
/// Returns a message when the document is not an object with a
/// `traceEvents` array, or an event is missing a required field.
pub fn analyze_daemon(doc: &Json) -> Result<DaemonReport, String> {
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_array)
        .ok_or("not a Chrome trace: missing `traceEvents` array")?;

    #[derive(Default)]
    struct WorkerAccum {
        requests: u64,
        queue_wait_us: f64,
        solve_us: f64,
        reply_us: f64,
    }

    let mut workers: BTreeMap<u64, WorkerAccum> = BTreeMap::new();
    let mut labels: BTreeMap<u64, String> = BTreeMap::new();
    let mut queue_wait: Vec<Interval> = Vec::new();
    let mut solve: Vec<Interval> = Vec::new();
    let (mut admitted, mut rejected) = (0u64, 0u64);

    for (idx, ev) in events.iter().enumerate() {
        let field = |key: &str| {
            ev.get(key)
                .ok_or_else(|| format!("event {idx}: missing `{key}`"))
        };
        let ph = field("ph")?
            .as_str()
            .ok_or_else(|| format!("event {idx}: `ph` is not a string"))?;
        let pid = field("pid")?
            .as_u64()
            .ok_or_else(|| format!("event {idx}: `pid` is not an integer"))?;
        let name = field("name")?
            .as_str()
            .ok_or_else(|| format!("event {idx}: `name` is not a string"))?;
        match ph {
            "M" if name == "process_name" => {
                if let Some(label) = ev
                    .get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Json::as_str)
                {
                    labels.insert(pid, label.to_string());
                }
            }
            "X" => {
                let ts = field("ts")?
                    .as_f64()
                    .ok_or_else(|| format!("event {idx}: `ts` is not a number"))?;
                let dur = field("dur")?
                    .as_f64()
                    .ok_or_else(|| format!("event {idx}: `dur` is not a number"))?;
                let interval = Interval {
                    start: ts,
                    end: ts + dur,
                };
                let worker = workers.entry(pid).or_default();
                match name {
                    QUEUE_WAIT_SPAN => {
                        worker.requests += 1;
                        worker.queue_wait_us += dur;
                        queue_wait.push(interval);
                    }
                    SOLVE_SPAN => {
                        worker.solve_us += dur;
                        solve.push(interval);
                    }
                    REPLY_SPAN => worker.reply_us += dur,
                    _ => {}
                }
            }
            "i" | "I" => match name {
                ADMIT_INSTANT => admitted += 1,
                REJECT_INSTANT => rejected += 1,
                _ => {}
            },
            _ => {}
        }
    }

    // Only lanes that did daemon work become worker rows; the client
    // threads that emitted the admit/reject instants do not.
    let workers: Vec<DaemonWorkerSummary> = workers
        .into_iter()
        .filter(|(_, w)| w.requests > 0 || w.solve_us > 0.0 || w.reply_us > 0.0)
        .map(|(pid, w)| DaemonWorkerSummary {
            pid,
            label: labels.get(&pid).cloned().unwrap_or_default(),
            requests: w.requests,
            queue_wait_us: w.queue_wait_us,
            solve_us: w.solve_us,
            reply_us: w.reply_us,
        })
        .collect();

    let executed = workers.iter().map(|w| w.requests).sum();
    let (queue_wait, solve) = (union(queue_wait), union(solve));
    // `+ 0.0` normalizes the IEEE `-0.0` of an empty sum (see analyze()).
    Ok(DaemonReport {
        workers,
        admitted,
        rejected,
        executed,
        queue_wait_us: queue_wait.iter().map(|iv| iv.end - iv.start).sum::<f64>() + 0.0,
        solve_us: solve.iter().map(|iv| iv.end - iv.start).sum::<f64>() + 0.0,
        overlap_us: intersection_us(&queue_wait, &solve),
    })
}

/// Parses the trace text and runs the daemon analysis in one step.
///
/// # Errors
///
/// Returns a message on malformed JSON or a non-trace document.
pub fn analyze_daemon_str(text: &str) -> Result<DaemonReport, String> {
    let doc = Json::parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
    analyze_daemon(&doc)
}

fn ms(us: f64) -> f64 {
    us / 1000.0
}

impl fmt::Display for TraceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "trace report ({} lanes)", self.lanes.len())?;
        for lane in &self.lanes {
            let label = if lane.label.is_empty() {
                "unnamed".to_string()
            } else {
                lane.label.clone()
            };
            writeln!(
                f,
                "\nlane pid {} — {} ({:.2} ms in spans)",
                lane.pid,
                label,
                ms(lane.busy_us())
            )?;
            if lane.dropped > 0 {
                writeln!(
                    f,
                    "  WARNING: ring buffer wrapped, {} oldest events lost",
                    lane.dropped
                )?;
            }
            for span in &lane.spans {
                writeln!(
                    f,
                    "  {:<15} {:>10.2} ms  ({} calls)",
                    span.name,
                    ms(span.total_us),
                    span.count
                )?;
            }
            for (name, count) in &lane.instants {
                writeln!(f, "  {name:<15} {count:>10} instants")?;
            }
        }
        writeln!(
            f,
            "\nshared clauses: {} imported, {} used in conflict analysis",
            self.import_use.imports, self.import_use.uses
        )?;
        if self.import_use.matched > 0 {
            writeln!(
                f,
                "  import-to-use latency (approx, per lane): mean {:.2} ms, max {:.2} ms \
                 over {} uses",
                ms(self.import_use.mean_us),
                ms(self.import_use.max_us),
                self.import_use.matched
            )?;
        }
        writeln!(
            f,
            "\ninference vs solve: inference {:.2} ms, solve {:.2} ms, overlap {:.2} ms",
            ms(self.overlap.inference_us),
            ms(self.overlap.solve_us),
            ms(self.overlap.overlap_us)
        )?;
        if self.overlap.inference_us > 0.0 {
            writeln!(
                f,
                "  {:.1}% of inference ran concurrently with solving",
                100.0 * self.overlap.overlap_us / self.overlap.inference_us
            )?;
        }
        Ok(())
    }
}

impl fmt::Display for DaemonReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "daemon trace report ({} worker lanes)",
            self.workers.len()
        )?;
        writeln!(
            f,
            "admission: {} admitted, {} rejected, {} executed by workers",
            self.admitted, self.rejected, self.executed
        )?;
        for w in &self.workers {
            let label = if w.label.is_empty() {
                "unnamed".to_string()
            } else {
                w.label.clone()
            };
            writeln!(
                f,
                "  lane pid {} — {}: {} requests, queue-wait {:.2} ms, \
                 solve {:.2} ms, reply {:.2} ms",
                w.pid,
                label,
                w.requests,
                ms(w.queue_wait_us),
                ms(w.solve_us),
                ms(w.reply_us)
            )?;
        }
        writeln!(
            f,
            "\nqueue-wait vs solve: queued {:.2} ms, solving {:.2} ms, overlap {:.2} ms",
            ms(self.queue_wait_us),
            ms(self.solve_us),
            ms(self.overlap_us)
        )?;
        if self.queue_wait_us > 0.0 {
            writeln!(
                f,
                "  {:.1}% of queue-wait accrued while a worker was solving",
                100.0 * self.overlap_us / self.queue_wait_us
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use telemetry::trace::{chrome_trace, ThreadLog, TraceEvent, TraceKind};

    fn ev(kind: TraceKind, name: &'static str, t_us: u64) -> TraceEvent {
        TraceEvent {
            kind,
            name,
            t_ns: t_us * 1000,
            args: [("", 0); 2],
        }
    }

    fn sample_trace() -> Json {
        let pipeline = ThreadLog {
            pid: 0,
            label: "main".to_string(),
            dropped: 0,
            events: vec![
                ev(TraceKind::Begin, "feature-extract", 0),
                ev(TraceKind::End, "feature-extract", 100),
                ev(TraceKind::Begin, "gnn-forward", 100),
                ev(TraceKind::End, "gnn-forward", 250),
            ],
        };
        let worker = ThreadLog {
            pid: 1,
            label: "worker 0 (default)".to_string(),
            dropped: 3,
            events: vec![
                ev(TraceKind::Begin, "solve", 200),
                ev(TraceKind::Instant, "clause-import", 300),
                ev(TraceKind::Instant, "import-use", 450),
                ev(TraceKind::Instant, "clause-import", 500),
                ev(TraceKind::Instant, "import-use", 520),
                ev(TraceKind::End, "solve", 1200),
            ],
        };
        chrome_trace(&[pipeline, worker])
    }

    #[test]
    fn per_lane_breakdown_and_latency() {
        let report = analyze(&sample_trace()).unwrap();
        assert_eq!(report.lanes.len(), 2);

        let main = &report.lanes[0];
        assert_eq!(main.pid, 0);
        assert_eq!(main.spans.len(), 2);
        let gnn = main.spans.iter().find(|s| s.name == "gnn-forward").unwrap();
        assert!((gnn.total_us - 150.0).abs() < 1e-6);

        let worker = &report.lanes[1];
        assert_eq!(worker.label, "worker 0 (default)");
        assert_eq!(worker.dropped, 3);
        let solve = &worker.spans[0];
        assert_eq!((solve.name.as_str(), solve.count), ("solve", 1));
        assert!((solve.total_us - 1000.0).abs() < 1e-6);

        // use@450 pairs with import@300 (150µs); use@520 with import@500
        // (20µs): mean 85µs, max 150µs.
        assert_eq!(report.import_use.imports, 2);
        assert_eq!(report.import_use.matched, 2);
        assert!((report.import_use.mean_us - 85.0).abs() < 1e-6);
        assert!((report.import_use.max_us - 150.0).abs() < 1e-6);

        // Inference [0, 250) vs solve [200, 1200): 50µs overlap.
        assert!((report.overlap.inference_us - 250.0).abs() < 1e-6);
        assert!((report.overlap.solve_us - 1000.0).abs() < 1e-6);
        assert!((report.overlap.overlap_us - 50.0).abs() < 1e-6);

        let text = report.to_string();
        assert!(text.contains("lane pid 1"));
        assert!(text.contains("import-to-use latency"));
        assert!(text.contains("ring buffer wrapped, 3"));
    }

    #[test]
    fn round_trips_through_serialized_json() {
        let text = sample_trace().to_string();
        let report = analyze_str(&text).unwrap();
        assert_eq!(report, analyze(&sample_trace()).unwrap());
    }

    #[test]
    fn rejects_non_trace_documents() {
        assert!(analyze_str("{}").is_err());
        assert!(analyze_str("not json at all").is_err());
        assert!(analyze_str("{\"traceEvents\": [{}]}").is_err());
        // Empty input: a one-line error, not a panic.
        let err = analyze_str("").expect_err("empty input");
        assert!(!err.contains('\n'), "{err}");
        assert!(err.starts_with("invalid JSON: "), "{err}");
        // Pathologically deep nesting must fail the same way (the parser
        // bounds recursion rather than overflowing the stack).
        let err = analyze_str(&"[".repeat(100_000)).expect_err("deep nesting");
        assert!(err.contains("nesting too deep"), "{err}");
        assert!(!err.contains('\n'), "{err}");
    }

    fn sample_daemon_trace() -> Json {
        // A client lane that admitted three requests and rejected one,
        // plus two worker lanes. Worker 1 executes two requests
        // back-to-back; worker 2 executes one whose queue wait overlaps
        // worker 1's first solve.
        let client = ThreadLog {
            pid: 0,
            label: "client".to_string(),
            dropped: 0,
            events: vec![
                ev(TraceKind::Instant, "daemon-admit", 0),
                ev(TraceKind::Instant, "daemon-admit", 10),
                ev(TraceKind::Instant, "daemon-reject", 15),
                ev(TraceKind::Instant, "daemon-admit", 20),
            ],
        };
        let worker1 = ThreadLog {
            pid: 1,
            label: "daemon-worker-0".to_string(),
            dropped: 0,
            events: vec![
                ev(TraceKind::Begin, "queue-wait", 0),
                ev(TraceKind::End, "queue-wait", 50),
                ev(TraceKind::Begin, "solve", 50),
                ev(TraceKind::End, "solve", 250),
                ev(TraceKind::Begin, "reply", 250),
                ev(TraceKind::End, "reply", 260),
                ev(TraceKind::Begin, "queue-wait", 260),
                ev(TraceKind::End, "queue-wait", 270),
                ev(TraceKind::Begin, "solve", 270),
                ev(TraceKind::End, "solve", 370),
                ev(TraceKind::Begin, "reply", 370),
                ev(TraceKind::End, "reply", 375),
            ],
        };
        let worker2 = ThreadLog {
            pid: 2,
            label: "daemon-worker-1".to_string(),
            dropped: 0,
            events: vec![
                ev(TraceKind::Begin, "queue-wait", 20),
                ev(TraceKind::End, "queue-wait", 120),
                ev(TraceKind::Begin, "solve", 120),
                ev(TraceKind::End, "solve", 200),
                ev(TraceKind::Begin, "reply", 200),
                ev(TraceKind::End, "reply", 204),
            ],
        };
        chrome_trace(&[client, worker1, worker2])
    }

    #[test]
    fn daemon_report_breaks_down_admission_and_overlap() {
        let report = analyze_daemon(&sample_daemon_trace()).unwrap();
        assert_eq!(report.admitted, 3);
        assert_eq!(report.rejected, 1);
        assert_eq!(report.executed, 3);

        // The client lane emitted only instants, so it is not a worker.
        assert_eq!(report.workers.len(), 2);
        let w1 = &report.workers[0];
        assert_eq!((w1.pid, w1.requests), (1, 2));
        assert_eq!(w1.label, "daemon-worker-0");
        assert!((w1.queue_wait_us - 60.0).abs() < 1e-6);
        assert!((w1.solve_us - 300.0).abs() < 1e-6);
        assert!((w1.reply_us - 15.0).abs() < 1e-6);
        let w2 = &report.workers[1];
        assert_eq!((w2.pid, w2.requests), (2, 1));

        // Queue-wait union: [0,50) ∪ [260,270) ∪ [20,120) = [0,120) ∪
        // [260,270) = 130µs. Solve union: [50,250) ∪ [270,370) ∪
        // [120,200) = [50,250) ∪ [270,370) = 300µs. Overlap: [50,120) ∪
        // [260,270)∩∅ … = [50,120) = 70µs.
        assert!((report.queue_wait_us - 130.0).abs() < 1e-6);
        assert!((report.solve_us - 300.0).abs() < 1e-6);
        assert!((report.overlap_us - 70.0).abs() < 1e-6);

        let text = report.to_string();
        assert!(
            text.contains("3 admitted, 1 rejected, 3 executed"),
            "{text}"
        );
        assert!(text.contains("daemon-worker-0"), "{text}");
        assert!(text.contains("% of queue-wait"), "{text}");
    }

    #[test]
    fn daemon_report_rejects_non_trace_documents() {
        assert!(analyze_daemon_str("{}").is_err());
        assert!(analyze_daemon_str("nope").is_err());
        // An empty trace is a valid, all-zero report, not an error.
        let report = analyze_daemon_str("{\"traceEvents\":[]}").unwrap();
        assert_eq!((report.admitted, report.executed), (0, 0));
        assert_eq!(report.queue_wait_us, 0.0);
        assert!(!report.to_string().contains("-0.00"));
    }

    #[test]
    fn interval_union_and_intersection() {
        let a = union(vec![
            Interval {
                start: 0.0,
                end: 10.0,
            },
            Interval {
                start: 5.0,
                end: 20.0,
            },
            Interval {
                start: 30.0,
                end: 40.0,
            },
        ]);
        assert_eq!(a.len(), 2);
        let b = union(vec![Interval {
            start: 15.0,
            end: 35.0,
        }]);
        assert!((intersection_us(&a, &b) - 10.0).abs() < 1e-9);
    }
}
