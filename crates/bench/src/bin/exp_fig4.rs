//! **Experiment F4 — Figure 4**: default vs. new clause-deletion policy,
//! one point per instance.
//!
//! The paper plots Kissat runtime (x) against Kissat-new runtime (y) with a
//! 5 000 s timeout; points below the diagonal favour the new policy. This
//! reproduction uses deterministic propagation counts and a propagation
//! budget as the timeout, printing the scatter series plus the win/loss
//! shape summary.
//!
//! ```text
//! cargo run --release -p bench --bin exp_fig4 \
//!     [-- --instances N --budget P --records FILE.jsonl]
//! ```
//!
//! With `--records`, every solver run additionally emits one telemetry
//! `RunRecord` JSON line (phase times, glue/length/trail distributions).

use bench::{dataset_config, mixed_batch, print_table, ExpArgs, RecordLog};
use neuroselect::sat_solver::{solve_with_policy_recorded, Budget, PolicyKind};

fn main() {
    let args = ExpArgs::from_env();
    let config = dataset_config(&args);
    let budget = Budget::propagations(args.get("budget", 20_000_000u64));
    let batch = mixed_batch("fig4", &config, 4);
    let mut records = RecordLog::from_args(&args);

    println!("# Figure 4 series: instance default-props propfreq-props verdict");
    let mut rows = Vec::new();
    let mut below = 0; // new policy strictly better (> 2%)
    let mut above = 0; // new policy worse (> 2%)
    let mut on = 0;
    let mut timeouts = 0;
    for inst in &batch.instances {
        let (r_def, s_def, rec_def) =
            solve_with_policy_recorded(&inst.cnf, PolicyKind::Default, budget, &inst.name, None);
        let (r_new, s_new, rec_new) =
            solve_with_policy_recorded(&inst.cnf, PolicyKind::PropFreq, budget, &inst.name, None);
        if let Some(log) = records.as_mut() {
            log.push(&rec_def);
            log.push(&rec_new);
        }
        if r_def.is_unknown() && r_new.is_unknown() {
            timeouts += 1;
            continue; // the paper excludes instances unsolved by both
        }
        assert_eq!(
            r_def.is_unsat(),
            r_new.is_unsat(),
            "policy runs must agree on {}",
            inst.name
        );
        let (d, n) = (s_def.propagations as f64, s_new.propagations as f64);
        if n < d * 0.98 {
            below += 1;
        } else if n > d * 1.02 {
            above += 1;
        } else {
            on += 1;
        }
        rows.push(vec![
            inst.name.clone(),
            format!("{}", s_def.propagations),
            format!("{}", s_new.propagations),
            if r_def.is_sat() { "SAT" } else { "UNSAT" }.to_string(),
        ]);
    }
    print_table(
        &["instance", "props(default)", "props(prop-freq)", "verdict"],
        &rows,
    );
    println!(
        "\nshape summary (cf. Figure 4): {below} instances below the diagonal \
         (new policy wins), {above} above (default wins), {on} on it (±2%), \
         {timeouts} unsolved by both and excluded."
    );
    println!(
        "both sides are populated — no policy dominates, motivating per-instance \
         selection (Section 3.2)."
    );
}
