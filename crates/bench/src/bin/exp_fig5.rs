//! **Experiment F5 — Figure 5**: the clause scoring bit layouts of the
//! default and the propagation-frequency-guided policies, shown on worked
//! examples.
//!
//! ```text
//! cargo run -p bench --bin exp_fig5
//! ```

use cnf::{Lit, Var};
use neuroselect::sat_solver::{
    ClauseScoreCtx, DefaultPolicy, DeletionPolicy, FrequencyTable, PropFreqPolicy,
};

fn lits(ds: &[i32]) -> Vec<Lit> {
    ds.iter().map(|&d| Lit::from_dimacs(d)).collect()
}

fn show(policy: &dyn DeletionPolicy, name: &str, ctx: &ClauseScoreCtx<'_>) {
    let score = policy.score(ctx);
    println!(
        "{name:<26} glue={:<3} size={:<3} score={score:#018x} ({score})",
        ctx.glue,
        ctx.lits.len()
    );
}

fn main() {
    println!("Figure 5: clause scoring bit layouts\n");
    println!("default   : [ ~glue (32 bits) | ~size (32 bits) ]");
    println!("prop-freq : [ frequency (20 bits) | ~glue (20 bits) | ~size (24 bits) ]");
    println!("(lower glue/size ⇒ higher score; more hot variables ⇒ higher score)\n");

    // Build a frequency table where variables 1 and 2 are hot (f_v > 0.8·f_max).
    let mut freq = FrequencyTable::new(8);
    for _ in 0..100 {
        freq.bump(Var::new(0));
        freq.bump(Var::new(1));
    }
    for _ in 0..10 {
        freq.bump(Var::new(2));
    }
    println!(
        "frequency table: f(x1)=100 f(x2)=100 f(x3)=10, f_max=100, α=0.8 \
         ⇒ hot = {{x1, x2}}\n"
    );

    let examples: Vec<(&str, Vec<Lit>, u32)> = vec![
        ("hot clause, bad glue", lits(&[1, 2, 5]), 30),
        ("cold clause, good glue", lits(&[3, 4]), 3),
        ("cold clause, bad glue", lits(&[4, 5, 6, 7]), 30),
        ("half-hot clause", lits(&[1, 4]), 8),
    ];

    println!("--- default policy (Kissat) ---");
    for (name, ls, glue) in &examples {
        show(
            &DefaultPolicy,
            name,
            &ClauseScoreCtx {
                lits: ls,
                glue: *glue,
                activity: 0.0,
                freq: &freq,
            },
        );
    }

    println!("\n--- propagation-frequency policy (Equation 2, α = 4/5) ---");
    let p = PropFreqPolicy::new();
    for (name, ls, glue) in &examples {
        show(
            &p,
            name,
            &ClauseScoreCtx {
                lits: ls,
                glue: *glue,
                activity: 0.0,
                freq: &freq,
            },
        );
    }

    println!(
        "\nnote the rank reversal: under the default policy the low-glue cold \
         clause outranks the hot clause, while the frequency-guided policy \
         protects the hot clause despite its glue of 30."
    );
}
