//! **Experiment T2 — Table 2**: precision / recall / F1 / accuracy of the
//! four SAT-instance classifiers on the held-out test batch:
//! NeuroSAT, G4SATBench (GIN), NeuroSelect without attention, NeuroSelect.
//!
//! ```text
//! cargo run --release -p bench --bin exp_table2 \
//!     [-- --instances N --scale S --epochs E --batches B --dim D --lr L]
//! ```

use bench::{dataset_config, labeled_test_set, labeled_training_set, print_table, ExpArgs};
use neuro::{BaselineConfig, NeuroSelectConfig};
use neuroselect::{
    evaluate, positive_rate, train, Classifier, ClassifierMetrics, GinClassifier, LabelingConfig,
    NeuroSatClassifier, NeuroSelectClassifier, TrainConfig,
};

fn row(name: &str, m: &ClassifierMetrics, train: &ClassifierMetrics) -> Vec<String> {
    vec![
        name.to_string(),
        format!("{:.2}%", 100.0 * m.precision()),
        format!("{:.2}%", 100.0 * m.recall()),
        format!("{:.2}%", 100.0 * m.f1()),
        format!("{:.2}%", 100.0 * m.accuracy()),
        format!(
            "{:.0}%/{:.0}%",
            100.0 * train.f1(),
            100.0 * train.accuracy()
        ),
    ]
}

fn main() {
    let args = ExpArgs::from_env();
    let config = dataset_config(&args);
    let label_cfg = LabelingConfig::default();
    let epochs: usize = args.get("epochs", 30);
    let batches: usize = args.get("batches", 3);
    let dim: usize = args.get("dim", 16);
    let lr: f32 = args.get("lr", 3e-3);
    let train_cfg = TrainConfig {
        epochs,
        seed: 7,
        balance: true,
    };

    eprintln!("generating + labelling dataset (dual-policy solving)…");
    let train_set = labeled_training_set(&config, &label_cfg, batches);
    let test_set = labeled_test_set(&config, &label_cfg);
    println!(
        "train {} instances ({:.0}% label-1) | test {} instances ({:.0}% label-1)\n",
        train_set.len(),
        100.0 * positive_rate(&train_set),
        test_set.len(),
        100.0 * positive_rate(&test_set)
    );

    let base_cfg = BaselineConfig {
        hidden_dim: dim,
        rounds: 4,
        seed: 3,
    };
    let ns_cfg = NeuroSelectConfig {
        hidden_dim: dim,
        hgt_layers: 2,
        mpnn_per_hgt: 3,
        use_attention: true,
        seed: 3,
    };

    let mut rows = Vec::new();

    eprintln!("training NeuroSAT baseline…");
    let mut neurosat = NeuroSatClassifier::new(base_cfg, lr);
    train(&mut neurosat, &train_set, &train_cfg);
    rows.push(row(
        neurosat.name(),
        &evaluate(&neurosat, &test_set),
        &evaluate(&neurosat, &train_set),
    ));

    eprintln!("training GIN baseline…");
    let mut gin = GinClassifier::new(base_cfg, lr);
    train(&mut gin, &train_set, &train_cfg);
    rows.push(row(
        gin.name(),
        &evaluate(&gin, &test_set),
        &evaluate(&gin, &train_set),
    ));

    eprintln!("training NeuroSelect w/o attention…");
    let mut ns_noattn = NeuroSelectClassifier::new(
        NeuroSelectConfig {
            use_attention: false,
            ..ns_cfg
        },
        lr,
    );
    train(&mut ns_noattn, &train_set, &train_cfg);
    rows.push(row(
        ns_noattn.name(),
        &evaluate(&ns_noattn, &test_set),
        &evaluate(&ns_noattn, &train_set),
    ));

    eprintln!("training NeuroSelect…");
    let mut ns = NeuroSelectClassifier::new(ns_cfg, lr);
    train(&mut ns, &train_set, &train_cfg);
    rows.push(row(
        ns.name(),
        &evaluate(&ns, &test_set),
        &evaluate(&ns, &train_set),
    ));

    println!("Table 2: Performance of different SAT classification models\n");
    print_table(
        &[
            "model",
            "precision",
            "recall",
            "F1",
            "accuracy",
            "train F1/acc",
        ],
        &rows,
    );
    println!(
        "\n(paper: NeuroSAT 45.61% F1 / 56.94% acc; G4SATBench 38.10% / 54.86%; \
         NeuroSelect w/o attention 57.38% / 63.89%; NeuroSelect 60.50% / 69.44%)"
    );
}
