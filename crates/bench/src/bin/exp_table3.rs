//! **Experiment T3 — Table 3**: runtime statistics of the plain solver vs.
//! NeuroSelect-guided solving on the held-out test batch: solved count,
//! median, and average cost (propagations as the deterministic cost, plus
//! wall-clock seconds including model inference for the NeuroSelect row).
//!
//! ```text
//! cargo run --release -p bench --bin exp_table3 \
//!     [-- --instances N --scale S --epochs E --batches B --records FILE.jsonl]
//! ```
//!
//! With `--records`, the default-policy baseline and the calibrated
//! NeuroSelect run each emit one telemetry `RunRecord` JSON line per
//! instance (the NeuroSelect records carry `inference_time_s` and the
//! pipeline phases).
//!
//! The run ends with an **inprocessing ablation** on structured UNSAT
//! families (Tseitin expanders and equivalence miters): the same
//! instances solved with in-search inprocessing off and on, reporting
//! wall-clock and propagation totals. `--inprocess-ablation-only 1`
//! skips the training pipeline and prints just that table.

use bench::{
    dataset_config, labeled_test_set, labeled_training_set, percentile_line, print_table, ExpArgs,
    RecordLog,
};
use neuro::NeuroSelectConfig;
use neuroselect::sat_solver::{
    solve_with_policy, solve_with_policy_recorded, PolicyKind, Solver, SolverConfig,
};
use neuroselect::{
    calibrate_threshold, train, Budget, LabelingConfig, NeuroSelectClassifier, NeuroSelectSolver,
    RuntimeSummary, TrainConfig,
};
use std::time::Instant;

/// One timed solve for the inprocessing ablation.
struct AblationRun {
    solved: bool,
    seconds: f64,
    propagations: u64,
}

fn ablation_solve(f: &cnf::Cnf, inprocess: bool, interval: u64, budget: Budget) -> AblationRun {
    let mut s = Solver::new(
        f,
        SolverConfig {
            inprocess,
            inprocess_interval: interval,
            ..SolverConfig::default()
        },
    );
    let t = Instant::now();
    let r = s.solve_with_budget(budget);
    AblationRun {
        solved: !r.is_unknown(),
        seconds: t.elapsed().as_secs_f64(),
        propagations: s.stats().propagations,
    }
}

/// Inprocessing on/off comparison over the structured UNSAT families the
/// engine targets: Tseitin expander parities (subsumption/vivification
/// shorten the long parity-derived learned clauses) and equivalence
/// miters (BVE eliminates low-occurrence gate variables).
fn inprocessing_ablation(args: &ExpArgs) {
    let budget = Budget::propagations(args.get("budget", 200_000_000u64));
    let interval: u64 = args.get("inprocess-every", 10);
    let miter_seeds: u64 = args.get("miter-seeds", 3);
    let miter_inputs: usize = args.get("miter-inputs", 16);
    let miter_gates: usize = args.get("miter-gates", 1500);
    let tseitin_sizes: Vec<(u32, u64)> = vec![(26, 3), (30, 1), (32, 2)];
    let mut families: Vec<(String, cnf::Cnf)> = Vec::new();
    for (vertices, seed) in tseitin_sizes {
        families.push((
            format!("tseitin-exp-{vertices}-{seed}"),
            neuroselect::sat_gen::tseitin_expander_unsat(vertices, seed),
        ));
    }
    for seed in 1..=miter_seeds {
        let spec = logic_circuit::RandomCircuitSpec {
            num_inputs: miter_inputs,
            num_gates: miter_gates,
            num_outputs: 4,
        };
        families.push((
            format!("miter-{miter_inputs}-{miter_gates}-{seed}"),
            neuroselect::sat_gen::equivalence_miter_cnf(spec, seed),
        ));
    }

    println!(
        "\nInprocessing ablation (off vs. on, interval {interval}) on structured UNSAT families\n"
    );
    let mut rows = Vec::new();
    let (mut off_total, mut on_total) = (0.0f64, 0.0f64);
    let (mut off_solved, mut on_solved) = (0usize, 0usize);
    for (name, f) in &families {
        let off = ablation_solve(f, false, interval, budget);
        let on = ablation_solve(f, true, interval, budget);
        off_total += off.seconds;
        on_total += on.seconds;
        off_solved += usize::from(off.solved);
        on_solved += usize::from(on.solved);
        rows.push(vec![
            name.clone(),
            format!("{}/{}", u8::from(off.solved), u8::from(on.solved)),
            format!("{}", off.propagations),
            format!("{}", on.propagations),
            format!("{:.3}", off.seconds),
            format!("{:.3}", on.seconds),
            format!("{:+.1}%", 100.0 * (off.seconds - on.seconds) / off.seconds),
        ]);
    }
    print_table(
        &[
            "instance",
            "solved off/on",
            "props off",
            "props on",
            "wall off s",
            "wall on s",
            "wall win",
        ],
        &rows,
    );
    println!(
        "\ninprocessing totals: {off_solved} solved in {off_total:.3}s off, \
         {on_solved} solved in {on_total:.3}s on ({:+.1}% wall-clock)",
        100.0 * (off_total - on_total) / off_total
    );
}

fn main() {
    let args = ExpArgs::from_env();
    if args.get("inprocess-ablation-only", 0u64) == 1 {
        inprocessing_ablation(&args);
        return;
    }
    let config = dataset_config(&args);
    let label_cfg = LabelingConfig::default();
    let budget = Budget::propagations(args.get("budget", 20_000_000u64));
    let epochs: usize = args.get("epochs", 30);
    let batches: usize = args.get("batches", 3);

    eprintln!("generating + labelling dataset…");
    let train_set = labeled_training_set(&config, &label_cfg, batches);
    let test_set = labeled_test_set(&config, &label_cfg);

    eprintln!("training NeuroSelect…");
    let ns_cfg = NeuroSelectConfig {
        hidden_dim: args.get("dim", 16),
        hgt_layers: 2,
        mpnn_per_hgt: 3,
        use_attention: true,
        seed: 3,
    };
    let mut classifier = NeuroSelectClassifier::new(ns_cfg, args.get("lr", 3e-3));
    train(
        &mut classifier,
        &train_set,
        &TrainConfig {
            epochs,
            seed: 7,
            balance: true,
        },
    );
    // Extension: calibrate the decision threshold on the training labels'
    // measured costs (cost-sensitive selection; see EXPERIMENTS.md).
    let calibration = calibrate_threshold(&classifier, &train_set);
    let mut calibrated = NeuroSelectSolver::new(classifier);
    calibrated.threshold = calibration.threshold;
    let solver = calibrated;

    eprintln!("running the Table 3 comparison…");
    let mut records = RecordLog::from_args(&args);
    let mut base_props = Vec::new();
    let mut base_secs = Vec::new();
    let mut ns_props = Vec::new();
    let mut ns_secs = Vec::new();
    let mut fixed_props = Vec::new();
    let mut switched = 0;
    for inst in &test_set {
        let t = Instant::now();
        let (r, s, rec) = solve_with_policy_recorded(
            &inst.instance.cnf,
            PolicyKind::Default,
            budget,
            &inst.instance.name,
            None,
        );
        let solved = !r.is_unknown();
        base_props.push(solved.then_some(s.propagations as f64));
        base_secs.push(solved.then_some(t.elapsed().as_secs_f64()));

        let out = solver.solve_recorded(&inst.instance.cnf, budget, &inst.instance.name, None);
        if let Some(log) = records.as_mut() {
            log.push(&rec);
            log.push(&out.record);
        }
        let solved = !out.result.is_unknown();
        if out.chosen == PolicyKind::PropFreq {
            switched += 1;
        }
        ns_props.push(solved.then_some(out.stats.propagations as f64));
        ns_secs.push(solved.then_some(out.total_time().as_secs_f64()));
        // fixed 0.5 threshold (the paper's protocol), for comparison
        let fixed_choice = if out.probability > 0.5 {
            PolicyKind::PropFreq
        } else {
            PolicyKind::Default
        };
        let (fr, fs) = solve_with_policy(&inst.instance.cnf, fixed_choice, budget);
        fixed_props.push((!fr.is_unknown()).then_some(fs.propagations as f64));
    }

    // Captured before `RuntimeSummary::from_costs` consumes the series.
    let pct_lines: Vec<(&str, Option<String>)> = [
        ("default", &base_props),
        ("NeuroSelect (thr 0.5)", &fixed_props),
        ("NeuroSelect calibrated", &ns_props),
    ]
    .map(|(name, props)| (name, percentile_line(props.iter().flatten().copied())))
    .into();

    let rows = |name: &str, p: RuntimeSummary, s: RuntimeSummary| -> Vec<String> {
        vec![
            name.to_string(),
            format!("{}/{}", p.solved, p.attempted),
            format!("{:.0}", p.median),
            format!("{:.0}", p.mean),
            format!("{:.4}", s.median),
            format!("{:.4}", s.mean),
        ]
    };
    let bp = RuntimeSummary::from_costs(base_props);
    let bs = RuntimeSummary::from_costs(base_secs);
    let np = RuntimeSummary::from_costs(ns_props);
    let ns = RuntimeSummary::from_costs(ns_secs);
    let fp = RuntimeSummary::from_costs(fixed_props);

    println!("\nTable 3: Runtime statistics on the held-out test batch\n");
    print_table(
        &[
            "solver",
            "solved",
            "median props",
            "avg props",
            "median s",
            "avg s",
        ],
        &[
            rows("default (Kissat-like)", bp, bs),
            {
                // the fixed-threshold comparison re-solves without timing
                let mut row = rows("NeuroSelect (thr 0.5)", fp, fp);
                row[4] = "—".into();
                row[5] = "—".into();
                row
            },
            rows("NeuroSelect calibrated", np, ns),
        ],
    );
    println!("\npropagation percentiles over solved instances (bucket-interpolated):");
    for (name, line) in &pct_lines {
        match line {
            Some(line) => println!("  {name:<22} {line}"),
            None => println!("  {name:<22} (nothing solved)"),
        }
    }
    println!(
        "calibrated threshold {:.3} (train-set costs: calibrated {} vs fixed-0.5 {} vs          never-switch {}, oracle {}, efficiency {:.0}%)",
        calibration.threshold,
        calibration.calibrated_cost,
        calibration.default_cost,
        calibration.never_switch_cost,
        calibration.oracle_cost,
        100.0 * calibration.oracle_efficiency()
    );
    println!(
        "\nNeuroSelect chose the propagation-frequency policy on {switched}/{} \
         instances; its wall-clock column includes model inference.",
        test_set.len()
    );
    let improvement = if bp.median > 0.0 {
        100.0 * (bp.median - np.median) / bp.median
    } else {
        0.0
    };
    println!(
        "median-propagation change vs. default: {improvement:+.1}% \
         (paper reports a 5.8% median-runtime reduction for NeuroSelect-Kissat)"
    );
    inprocessing_ablation(&args);
}
