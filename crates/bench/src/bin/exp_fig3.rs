//! **Experiment F3 — Figure 3**: the distribution of variable propagation
//! frequency while solving one structured instance.
//!
//! Prints a `variable-id  frequency` series (normalized, like the paper's
//! y-axis) plus a coarse ASCII histogram demonstrating the paper's
//! observation that *some variables are propagated far more often than
//! others*.
//!
//! ```text
//! cargo run --release -p bench --bin exp_fig3 [-- --vars N --seed K]
//! ```

use bench::ExpArgs;
use neuroselect::sat_solver::{Budget, Solver, SolverConfig};

fn main() {
    let args = ExpArgs::from_env();
    let vars: u32 = args.get("vars", 150);
    let seed: u64 = args.get("seed", 22);
    // A hard search-dominated instance; VSIDS focuses the search on a
    // subset of variables, producing the skew the paper's Figure 3 shows.
    let formula = neuroselect::sat_gen::phase_transition_3sat(vars, seed);
    println!(
        "instance: random 3-SAT at the phase transition, {} vars, {} clauses",
        formula.num_vars(),
        formula.num_clauses()
    );
    let mut solver = Solver::new(&formula, SolverConfig::default());
    let result = solver.solve_with_budget(Budget::propagations(5_000_000));
    println!(
        "verdict: {:?} after {} propagations\n",
        match result {
            neuroselect::SolveResult::Sat(_) => "SAT",
            neuroselect::SolveResult::Unsat => "UNSAT",
            neuroselect::SolveResult::Unknown => "UNKNOWN",
        },
        solver.stats().propagations
    );

    let freq = solver.cumulative_frequencies();
    let normalized = freq.normalized();
    println!("# Figure 3 series: variable-id normalized-frequency");
    for (v, f) in normalized.iter().enumerate() {
        println!("{v}\t{f:.6}");
    }

    // Summary statistics showing the skew the paper highlights.
    let mut sorted = normalized.clone();
    sorted.sort_by(|a, b| b.partial_cmp(a).expect("finite"));
    let top10: f64 = sorted.iter().take(sorted.len() / 10 + 1).sum();
    println!("\n# skew summary");
    println!(
        "max normalized frequency : {:.5} (uniform would be {:.5})",
        sorted.first().copied().unwrap_or(0.0),
        1.0 / normalized.len().max(1) as f64
    );
    println!("mass in the top 10% vars : {:.1}%", 100.0 * top10);

    // ASCII histogram of the frequency distribution (log-ish buckets).
    println!("\n# histogram of per-variable counts");
    let counts = freq.counts();
    let max = counts.iter().copied().max().unwrap_or(0).max(1);
    let buckets = 10usize;
    let mut hist = vec![0usize; buckets];
    for &c in counts {
        let b = ((c * buckets as u64) / (max + 1)) as usize;
        hist[b.min(buckets - 1)] += 1;
    }
    for (i, h) in hist.iter().enumerate() {
        let lo = i as u64 * max / buckets as u64;
        let hi = (i as u64 + 1) * max / buckets as u64;
        println!("{lo:>8}–{hi:<8} {}", "█".repeat((*h).min(80)));
    }
}
