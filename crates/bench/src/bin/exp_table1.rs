//! **Experiment T1 — Table 1**: statistics of the training and test
//! datasets (per-batch CNF count, mean variables, mean clauses).
//!
//! ```text
//! cargo run --release -p bench --bin exp_table1 [-- --instances N --scale S]
//! ```

use bench::{dataset_config, print_table, ExpArgs};
use neuroselect::sat_gen::{test_batch, training_batches};

fn main() {
    let args = ExpArgs::from_env();
    let config = dataset_config(&args);
    println!("Table 1: Statistics of the Training and Test Datasets\n");
    let mut rows = Vec::new();
    for batch in training_batches(&config) {
        let s = batch.stats();
        rows.push(vec![
            "Training".to_string(),
            batch.name.clone(),
            s.num_cnfs.to_string(),
            format!("{:.0}", s.mean_vars),
            format!("{:.0}", s.mean_clauses),
        ]);
    }
    let test = test_batch(&config);
    let s = test.stats();
    rows.push(vec![
        "Test".to_string(),
        test.name.clone(),
        s.num_cnfs.to_string(),
        format!("{:.0}", s.mean_vars),
        format!("{:.0}", s.mean_clauses),
    ]);
    print_table(
        &["Data Type", "Year", "# CNFs", "# Variables", "# Clauses"],
        &rows,
    );
    println!(
        "\n(The paper's batches hold 74–148 competition CNFs averaging\n\
         12k–20k variables; this reproduction generates {} synthetic\n\
         instances per batch at scale {} — see DESIGN.md §2.)",
        config.instances_per_batch, config.scale
    );
}
