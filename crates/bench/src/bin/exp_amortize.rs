//! **Experiment — session amortization**: cold-start vs incremental
//! sessions on a BMC sweep through the `rsatd` daemon.
//!
//! Prints one comparison line per counter width: total wall-clock and
//! propagation work for the fresh-session-per-bound sweep against the
//! single persistent session shipping only delta clauses.
//!
//! ```text
//! cargo run --release -p bench --bin exp_amortize [-- --bits N]
//! ```

use bench::amortize;
use bench::ExpArgs;

fn main() {
    let args = ExpArgs::from_env();
    let max_bits: usize = args.get("bits", 6);
    println!("# rsatd session amortization: fresh-per-bound vs one incremental session");
    for bits in 3..=max_bits {
        let report = amortize::run(bits);
        println!("{}", report.comparison_line());
        for line in report.percentile_lines() {
            println!("{line}");
        }
    }
}
