//! `trace-report` — summarizes a Chrome trace-event file produced by
//! `rsat --trace-out` (or any `telemetry::trace` exporter):
//!
//! ```text
//! trace-report TRACE.json
//! ```
//!
//! Prints per-phase/per-worker time breakdowns, the import-to-use latency
//! of shared clauses, and the inference-vs-solve overlap.

use bench::trace_report::analyze_str;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let (Some(path), None) = (args.next(), args.next()) else {
        eprintln!("usage: trace-report TRACE.json");
        return ExitCode::from(1);
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("trace-report: {path}: {e}");
            return ExitCode::from(1);
        }
    };
    match analyze_str(&text) {
        Ok(report) => {
            print!("{report}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("trace-report: {path}: {e}");
            ExitCode::from(1)
        }
    }
}
