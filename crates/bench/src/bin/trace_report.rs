//! `trace-report` — summarizes a Chrome trace-event file produced by
//! `rsat --trace-out` (or any `telemetry::trace` exporter):
//!
//! ```text
//! trace-report TRACE.json            # pipeline view
//! trace-report --daemon TRACE.json   # rsatd worker-lane view
//! ```
//!
//! The default view prints per-phase/per-worker time breakdowns, the
//! import-to-use latency of shared clauses, and the inference-vs-solve
//! overlap. `--daemon` reads an `rsatd --trace-out` export instead:
//! per-worker queue-wait/solve/reply breakdowns, the admission-outcome
//! split, and how much queue-wait accrued while workers were solving.

use bench::trace_report::{analyze_daemon_str, analyze_str};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut daemon = false;
    let mut positional = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--daemon" => daemon = true,
            _ => positional.push(arg),
        }
    }
    let [path] = positional.as_slice() else {
        eprintln!("usage: trace-report [--daemon] TRACE.json");
        return ExitCode::from(1);
    };
    let path = path.clone();
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("trace-report: {path}: {e}");
            return ExitCode::from(1);
        }
    };
    let rendered = if daemon {
        analyze_daemon_str(&text).map(|report| report.to_string())
    } else {
        analyze_str(&text).map(|report| report.to_string())
    };
    match rendered {
        Ok(report) => {
            print!("{report}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("trace-report: {path}: {e}");
            ExitCode::from(1)
        }
    }
}
