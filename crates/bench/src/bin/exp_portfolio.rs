//! **Experiment P1 — portfolio vs. single-policy solving** (DESIGN.md §10):
//! on a mixed hard batch under a fixed per-instance budget, a clause-sharing
//! portfolio must solve at least as many instances as the better of the two
//! single policies — the acceptance bar for the portfolio subsystem.
//!
//! ```text
//! cargo run --release -p bench --bin exp_portfolio \
//!     [-- --instances N --budget B --workers W --records out.jsonl]
//! ```

use bench::{dataset_config, mixed_batch, percentile_line, print_table, ExpArgs, RecordLog};
use neuroselect::mean;
use neuroselect::sat_gen::Batch;
use neuroselect::sat_solver::{
    solve_portfolio, solve_with_policy, Budget, PolicyKind, PortfolioConfig,
};

/// One strategy's budget-censored outcome over the batch.
struct Outcome {
    name: String,
    solved: usize,
    props: Vec<f64>,
    exported: u64,
    imported: u64,
}

fn run_sequential(batch: &Batch, policy: PolicyKind, budget: Budget) -> Outcome {
    let mut solved = 0;
    let mut props = Vec::new();
    for inst in &batch.instances {
        let (result, stats) = solve_with_policy(&inst.cnf, policy, budget);
        if !result.is_unknown() {
            solved += 1;
        }
        props.push(stats.propagations as f64);
    }
    Outcome {
        name: format!("{policy} (sequential)"),
        solved,
        props,
        exported: 0,
        imported: 0,
    }
}

fn run_portfolio(
    batch: &Batch,
    workers: usize,
    budget: Budget,
    log: &mut Option<RecordLog>,
) -> Outcome {
    let mut solved = 0;
    let mut props = Vec::new();
    let mut exported = 0;
    let mut imported = 0;
    for inst in &batch.instances {
        let mut cfg = PortfolioConfig::new(workers);
        cfg.budget = budget;
        cfg.instance_id = inst.name.clone();
        let out = solve_portfolio(&inst.cnf, &cfg).expect("portfolio verification failed");
        if !out.result.is_unknown() {
            solved += 1;
        }
        // Sum across workers: the portfolio's cost is all the work it did,
        // not just the winner's share.
        props.push(
            out.workers
                .iter()
                .map(|w| w.stats.propagations as f64)
                .sum(),
        );
        exported += out.pool.exported;
        imported += out.pool.imported;
        if let Some(log) = log {
            for report in &out.workers {
                if let Some(record) = &report.record {
                    log.push(record);
                }
            }
        }
    }
    Outcome {
        name: format!("portfolio x{workers}"),
        solved,
        props,
        exported,
        imported,
    }
}

fn main() {
    let args = ExpArgs::from_env();
    let mut config = dataset_config(&args);
    config.instances_per_batch = args.get("instances", 10);
    let budget = Budget::propagations(args.get("budget", 5_000_000u64));
    let workers = args.get("workers", 4usize);
    let batch = mixed_batch("portfolio", &config, 41);
    let total = batch.instances.len();
    let mut log = RecordLog::from_args(&args);

    println!("P1: {total} mixed instances, budget {budget:?}, portfolio width {workers}\n");

    let outcomes = [
        run_sequential(&batch, PolicyKind::Default, budget),
        run_sequential(&batch, PolicyKind::PropFreq, budget),
        run_portfolio(&batch, workers, budget, &mut log),
    ];

    let best_single = outcomes[0].solved.max(outcomes[1].solved);
    let rows: Vec<Vec<String>> = outcomes
        .iter()
        .map(|o| {
            vec![
                o.name.clone(),
                format!("{}/{total}", o.solved),
                format!("{:.0}", mean(&o.props)),
                if o.exported > 0 || o.imported > 0 {
                    format!("{} / {}", o.exported, o.imported)
                } else {
                    "—".into()
                },
            ]
        })
        .collect();
    print_table(&["strategy", "solved", "mean props", "pool exp/imp"], &rows);

    println!("\npropagation percentiles over all attempts (bucket-interpolated):");
    for o in &outcomes {
        match percentile_line(o.props.iter().copied()) {
            Some(line) => println!("  {:<24} {line}", o.name),
            None => println!("  {:<24} (no runs)", o.name),
        }
    }

    let portfolio_solved = outcomes[2].solved;
    println!(
        "\nportfolio x{workers} solved {portfolio_solved}/{total}; better single policy solved \
         {best_single}/{total}: {}",
        if portfolio_solved >= best_single {
            "acceptance bar MET"
        } else {
            "acceptance bar MISSED"
        }
    );
}
