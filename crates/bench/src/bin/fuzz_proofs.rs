//! Fuzzer: generates random small CNFs, solves them with aggressive clause
//! reduction and proof logging, and verifies every verdict — SAT models are
//! replayed against the formula, UNSAT proofs through the built-in forward
//! RUP checker — plus a full invariant audit of the final solver state on
//! every case. Prints the offending formula and DRAT proof on failure.
//! (This harness caught a real duplicate-literal bug in the checker's unit
//! detection.)
//!
//! ```text
//! cargo run --release -p bench --bin fuzz_proofs [-- --cases N]
//! ```

use bench::ExpArgs;
use neuroselect::sat_solver::{
    check_proof, Checkpoint, PolicyKind, RestartStrategy, SolveResult, Solver, SolverConfig,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn main() {
    let args = ExpArgs::from_env();
    let cases: u64 = args.get("cases", 50_000);
    let mut unsat = 0u64;
    for seed in 0..cases {
        let mut rng = SmallRng::seed_from_u64(seed);
        let n = rng.gen_range(1..=7u32);
        let m = rng.gen_range(1..=40usize);
        let mut f = cnf::Cnf::new(n);
        for _ in 0..m {
            let len = rng.gen_range(1..=4usize);
            let c: Vec<i32> = (0..len)
                .map(|_| {
                    let v = rng.gen_range(1..=n as i32);
                    if rng.gen_bool(0.5) {
                        v
                    } else {
                        -v
                    }
                })
                .collect();
            f.add_dimacs(&c);
        }
        let mut s = Solver::new(
            &f,
            SolverConfig {
                policy: if seed % 2 == 0 {
                    PolicyKind::Default
                } else {
                    PolicyKind::PropFreq
                },
                tier1_glue: 0,
                reduce_init: 2,
                reduce_inc: 1,
                restart: RestartStrategy::Luby { scale: 4 },
                ..SolverConfig::default()
            },
        );
        s.enable_proof();
        let result = s.solve();
        if let Err(e) = s.audit_invariants(Checkpoint::PostPropagate) {
            println!("FAILURE at seed {seed}: invariant audit: {e}");
            println!("{}", cnf::to_dimacs_string(&f));
            std::process::exit(1);
        }
        match result {
            SolveResult::Sat(model) => {
                if let Err(e) = cnf::verify_model(&f, &model) {
                    println!("FAILURE at seed {seed}: model verification: {e}");
                    println!("{}", cnf::to_dimacs_string(&f));
                    std::process::exit(1);
                }
            }
            SolveResult::Unsat => {
                unsat += 1;
                let proof = s.take_proof().expect("proof enabled");
                if let Err(e) = check_proof(&f, &proof) {
                    println!("FAILURE at seed {seed}: {e}");
                    println!("{}", cnf::to_dimacs_string(&f));
                    let mut out = Vec::new();
                    proof.write_drat(&mut out).expect("in-memory write");
                    println!("proof:\n{}", String::from_utf8(out).expect("ascii"));
                    std::process::exit(1);
                }
            }
            SolveResult::Unknown => {}
        }
        if seed % 10_000 == 0 && seed > 0 {
            eprintln!("…{seed} cases ({unsat} UNSAT, all proofs valid)");
        }
    }
    println!("{cases} cases fuzzed; {unsat} UNSAT verdicts, every proof checked valid");
}
