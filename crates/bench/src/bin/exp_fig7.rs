//! **Experiment F7 — Figure 7**: (a) per-instance scatter of plain-solver
//! cost vs. NeuroSelect-guided cost; (b) box-and-whisker summaries of the
//! model inference times and of the per-instance improvements.
//!
//! ```text
//! cargo run --release -p bench --bin exp_fig7 \
//!     [-- --instances N --scale S --epochs E --batches B]
//! ```

use bench::{dataset_config, labeled_test_set, labeled_training_set, print_table, ExpArgs};
use neuro::NeuroSelectConfig;
use neuroselect::sat_solver::{solve_with_policy, PolicyKind};
use neuroselect::{
    train, BoxPlot, Budget, LabelingConfig, NeuroSelectClassifier, NeuroSelectSolver, TrainConfig,
};

fn boxplot_row(name: &str, b: Option<BoxPlot>) -> Vec<String> {
    match b {
        Some(b) => vec![
            name.to_string(),
            format!("{:.4}", b.min),
            format!("{:.4}", b.q1),
            format!("{:.4}", b.median),
            format!("{:.4}", b.q3),
            format!("{:.4}", b.max),
        ],
        None => vec![name.to_string(); 6],
    }
}

fn main() {
    let args = ExpArgs::from_env();
    let config = dataset_config(&args);
    let label_cfg = LabelingConfig::default();
    let budget = Budget::propagations(args.get("budget", 20_000_000u64));

    eprintln!("generating + labelling dataset…");
    let train_set = labeled_training_set(&config, &label_cfg, args.get("batches", 3));
    let test_set = labeled_test_set(&config, &label_cfg);

    eprintln!("training NeuroSelect…");
    let ns_cfg = NeuroSelectConfig {
        hidden_dim: args.get("dim", 16),
        hgt_layers: 2,
        mpnn_per_hgt: 3,
        use_attention: true,
        seed: 3,
    };
    let mut classifier = NeuroSelectClassifier::new(ns_cfg, args.get("lr", 3e-3));
    train(
        &mut classifier,
        &train_set,
        &TrainConfig {
            epochs: args.get("epochs", 30),
            seed: 7,
            balance: true,
        },
    );
    let solver = NeuroSelectSolver::new(classifier);

    println!("# Figure 7(a) series: instance default-props neuroselect-props chosen");
    let mut inference_times = Vec::new();
    let mut improvements = Vec::new();
    let mut below = 0;
    let mut above = 0;
    for inst in &test_set {
        let (_, s_def) = solve_with_policy(&inst.instance.cnf, PolicyKind::Default, budget);
        let out = solver.solve(&inst.instance.cnf, budget);
        let d = s_def.propagations as f64;
        let n = out.stats.propagations as f64;
        if n < d * 0.98 {
            below += 1;
        } else if n > d * 1.02 {
            above += 1;
        }
        inference_times.push(out.inference_time.as_secs_f64());
        improvements.push(d - n);
        println!(
            "{}\t{}\t{}\t{}",
            inst.instance.name, s_def.propagations, out.stats.propagations, out.chosen
        );
    }

    println!(
        "\nscatter shape: {below} instances below the diagonal (NeuroSelect \
         faster), {above} above; the paper's Figure 7(a) shows the same \
         below-diagonal bias with few, near-diagonal regressions."
    );

    println!("\n# Figure 7(b): box-and-whisker summaries");
    print_table(
        &["series", "min", "q1", "median", "q3", "max"],
        &[
            boxplot_row("inference time (s)", BoxPlot::from_values(&inference_times)),
            boxplot_row(
                "improvement (props saved)",
                BoxPlot::from_values(&improvements),
            ),
        ],
    );
    println!(
        "\n(paper: inference 0.01–2.22 s, improvements up to 4 425 s; here \
         inference is CPU-only on instances ~100× smaller, and improvement is \
         measured in propagations.)"
    );
}
