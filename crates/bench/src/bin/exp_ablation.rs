//! **Experiment A1/A3/A4 — design-choice ablations** (DESIGN.md §4):
//!
//! * **D1** — the hotness threshold α of Equation (2) (paper: 4/5);
//! * **D3** — the fraction of reducible clauses deleted per reduction;
//! * **D4** — the labelling threshold (paper: 2% propagation reduction).
//!
//! ```text
//! cargo run --release -p bench --bin exp_ablation [-- --instances N]
//! ```

use bench::{dataset_config, mixed_batch, print_table, ExpArgs};
use neuroselect::sat_gen::Batch;
use neuroselect::sat_solver::{
    preprocess, solve_with_policy, Branching, Budget, PolicyKind, PreprocessConfig, Preprocessed,
    Solver, SolverConfig,
};
use neuroselect::{label_cnf, mean, LabelingConfig};

/// Mean propagations of a policy over a batch (budget-censored).
fn mean_props(batch: &Batch, policy: PolicyKind, budget: Budget) -> f64 {
    let costs: Vec<f64> = batch
        .instances
        .iter()
        .map(|i| solve_with_policy(&i.cnf, policy, budget).1.propagations as f64)
        .collect();
    mean(&costs)
}

fn main() {
    let args = ExpArgs::from_env();
    let mut config = dataset_config(&args);
    config.instances_per_batch = args.get("instances", 12);
    let budget = Budget::propagations(args.get("budget", 20_000_000u64));
    let batch = mixed_batch("ablation", &config, 77);

    // --- D1: α sweep ------------------------------------------------------
    println!("D1: hotness threshold α in Equation (2) (paper default 0.8)\n");
    let mut rows = Vec::new();
    let baseline = mean_props(&batch, PolicyKind::Default, budget);
    rows.push(vec![
        "default policy".to_string(),
        format!("{baseline:.0}"),
        "—".into(),
    ]);
    let act = mean_props(&batch, PolicyKind::Activity, budget);
    rows.push(vec![
        "activity policy (MiniSat)".to_string(),
        format!("{act:.0}"),
        format!("{:+.1}%", 100.0 * (act - baseline) / baseline),
    ]);
    for alpha in [0.5, 0.6, 0.7, 0.8, 0.9] {
        let m = mean_props(&batch, PolicyKind::PropFreqAlpha(alpha), budget);
        rows.push(vec![
            format!("prop-freq α={alpha}"),
            format!("{m:.0}"),
            format!("{:+.1}%", 100.0 * (m - baseline) / baseline),
        ]);
    }
    print_table(&["policy", "mean props", "vs default"], &rows);

    // --- D3: reduce-fraction sweep ----------------------------------------
    println!("\nD3: fraction of reducible clauses deleted per reduction\n");
    let mut rows = Vec::new();
    for fraction in [0.25, 0.5, 0.75, 1.0] {
        let mut costs = Vec::new();
        for inst in &batch.instances {
            let mut s = Solver::new(
                &inst.cnf,
                SolverConfig {
                    reduce_fraction: fraction,
                    ..SolverConfig::default()
                },
            );
            let _ = s.solve_with_budget(budget);
            costs.push(s.stats().propagations as f64);
        }
        rows.push(vec![
            format!("{fraction:.2}"),
            format!("{:.0}", mean(&costs)),
        ]);
    }
    print_table(&["delete fraction", "mean props"], &rows);

    // --- D4: labelling-threshold sweep --------------------------------------
    println!("\nD4: label-1 rate vs. labelling threshold (paper uses 2%)\n");
    let mut rows = Vec::new();
    for threshold in [0.0, 0.01, 0.02, 0.05, 0.10] {
        let cfg = LabelingConfig {
            improvement_threshold: threshold,
            budget,
        };
        let positives = batch
            .instances
            .iter()
            .filter(|i| label_cnf(&i.cnf, &cfg).label == 1)
            .count();
        rows.push(vec![
            format!("{:.0}%", 100.0 * threshold),
            format!("{positives}/{}", batch.instances.len()),
        ]);
    }
    print_table(&["threshold", "label-1 instances"], &rows);
    println!(
        "\nlower thresholds admit noisy wins; the paper's 2% keeps only \
         meaningful improvements while retaining enough positives to learn."
    );

    // --- extension: branching heuristics ------------------------------------
    println!("\nExtension: branching heuristics (Kissat alternates EVSIDS/VMTF)\n");
    let mut rows = Vec::new();
    for (name, branching) in [
        ("EVSIDS", Branching::Evsids),
        ("VMTF", Branching::Vmtf),
        ("random", Branching::Random),
    ] {
        let mut costs = Vec::new();
        for inst in &batch.instances {
            let mut s = Solver::new(
                &inst.cnf,
                SolverConfig {
                    branching,
                    ..SolverConfig::default()
                },
            );
            let _ = s.solve_with_budget(budget);
            costs.push(s.stats().propagations as f64);
        }
        rows.push(vec![name.to_string(), format!("{:.0}", mean(&costs))]);
    }
    print_table(&["branching", "mean props"], &rows);

    // --- extension: preprocessing effectiveness ------------------------------
    println!("\nExtension: SatELite-style preprocessing (clause reduction)\n");
    let mut rows = Vec::new();
    for inst in &batch.instances {
        match preprocess(&inst.cnf, &PreprocessConfig::default()) {
            Preprocessed::Unsat => {
                rows.push(vec![
                    inst.name.clone(),
                    inst.cnf.num_clauses().to_string(),
                    "refuted".into(),
                    "—".into(),
                ]);
            }
            Preprocessed::Simplified {
                cnf,
                reconstruction,
            } => {
                rows.push(vec![
                    inst.name.clone(),
                    inst.cnf.num_clauses().to_string(),
                    cnf.num_clauses().to_string(),
                    format!(
                        "{} elim, {} fixed",
                        reconstruction.num_eliminated(),
                        reconstruction.num_fixed()
                    ),
                ]);
            }
        }
    }
    print_table(
        &["instance", "clauses", "after preprocess", "detail"],
        &rows,
    );
}
