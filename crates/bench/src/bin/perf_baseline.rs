//! `perf_baseline` — run the pinned solver suite and write or check the
//! committed perf-trajectory baseline (`BENCH_solver.json`).
//!
//! ```text
//! perf_baseline --write BENCH_solver.json          # (re)generate the baseline
//! perf_baseline --compare BENCH_solver.json        # CI regression gate
//! perf_baseline --compare B.json --tolerance 0.25  # tighter gate
//! perf_baseline --repeats 9 --arm-metrics          # metrics-overhead run
//! ```
//!
//! Exit codes: `0` pass, `1` regression or trajectory change, `2` usage or
//! I/O error.

use bench::perf;
use std::process::ExitCode;

struct Args {
    repeats: u32,
    write: Option<String>,
    compare: Option<String>,
    tolerance: f64,
    arm_metrics: bool,
}

const USAGE: &str = "usage: perf_baseline [--repeats N] [--write FILE | --compare FILE] \
     [--tolerance FRACTION] [--arm-metrics]";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        repeats: 5,
        write: None,
        compare: None,
        tolerance: perf::DEFAULT_TOLERANCE,
        arm_metrics: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let (flag, inline) = match arg.split_once('=') {
            Some((f, v)) => (f.to_string(), Some(v.to_string())),
            None => (arg, None),
        };
        let value = |it: &mut dyn Iterator<Item = String>| {
            inline
                .clone()
                .or_else(|| it.next())
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match flag.as_str() {
            "--repeats" => {
                args.repeats = value(&mut it)?
                    .parse()
                    .map_err(|_| "--repeats expects a positive integer".to_string())?;
                if args.repeats == 0 {
                    return Err("--repeats expects a positive integer".to_string());
                }
            }
            "--write" => args.write = Some(value(&mut it)?),
            "--compare" => args.compare = Some(value(&mut it)?),
            "--tolerance" => {
                args.tolerance = value(&mut it)?
                    .parse()
                    .map_err(|_| "--tolerance expects a number".to_string())?;
                if !args.tolerance.is_finite() || args.tolerance < 0.0 {
                    return Err("--tolerance expects a finite non-negative number".to_string());
                }
            }
            "--arm-metrics" => args.arm_metrics = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}`\n{USAGE}")),
        }
    }
    if args.write.is_some() && args.compare.is_some() {
        return Err("--write and --compare are mutually exclusive".to_string());
    }
    Ok(args)
}

fn run() -> Result<bool, String> {
    let args = parse_args()?;
    eprintln!(
        "running {} ({} repeats{})...",
        perf::SUITE_NAME,
        args.repeats,
        if args.arm_metrics {
            ", metrics armed"
        } else {
            ""
        }
    );
    let fresh = perf::run_suite(args.repeats, args.arm_metrics)?;
    for inst in &fresh.instances {
        eprintln!(
            "  {}: {} in {:.1} ms ({:.0} kprops/s)",
            inst.name,
            inst.result,
            inst.median_wall_s * 1e3,
            inst.props_per_sec / 1e3
        );
    }
    eprintln!(
        "  total {:.1} ms, calibration {:.1} ms, normalized {:.3}",
        fresh.total_median_wall_s * 1e3,
        fresh.calibration_s * 1e3,
        fresh.normalized_total
    );
    if let Some(path) = &args.write {
        let mut text = fresh.to_json_pretty();
        text.push('\n');
        std::fs::write(path, text).map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("baseline written to {path}");
        return Ok(true);
    }
    if let Some(path) = &args.compare {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let baseline = perf::parse_report(&text).map_err(|e| format!("{path}: {e}"))?;
        let outcome = perf::compare(&baseline, &fresh, args.tolerance);
        for note in &outcome.notes {
            println!("  {note}");
        }
        for failure in &outcome.failures {
            println!("FAIL: {failure}");
        }
        if outcome.passed() {
            println!(
                "perf trajectory OK (within +{:.0}%)",
                args.tolerance * 100.0
            );
        }
        return Ok(outcome.passed());
    }
    // Neither --write nor --compare: print the report to stdout.
    println!("{}", fresh.to_json_pretty());
    Ok(true)
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
    }
}
