//! Diagnostic: per-family hardness vs. size — conflicts, propagations,
//! reductions, and wall time for representative instances of every
//! generator family. Used to calibrate `sat-gen`'s dataset sizing so that
//! each instance reaches several clause-database reductions (otherwise the
//! two deletion policies cannot diverge and labels degenerate).
//!
//! ```text
//! cargo run --release -p bench --bin probe_hardness
//! ```

use bench::print_table;
use neuroselect::sat_gen::{
    coloring_cnf, equivalence_miter_cnf, phase_transition_3sat, pigeonhole, tseitin_expander_unsat,
    Graph,
};
use neuroselect::sat_solver::{solve_with_policy, Budget, PolicyKind};
use std::time::Instant;

fn main() {
    let budget = Budget::propagations(30_000_000);
    let mut rows = Vec::new();
    let mut run = |name: String, f: cnf::Cnf| {
        let t = Instant::now();
        let (r, s) = solve_with_policy(&f, PolicyKind::Default, budget);
        rows.push(vec![
            name,
            f.num_vars().to_string(),
            f.num_clauses().to_string(),
            s.conflicts.to_string(),
            s.propagations.to_string(),
            s.reductions.to_string(),
            if r.is_unknown() {
                "TIMEOUT".into()
            } else if r.is_sat() {
                "SAT".into()
            } else {
                "UNSAT".into()
            },
            format!("{:.2}", t.elapsed().as_secs_f64()),
        ]);
    };

    for n in [120u32, 150, 180] {
        run(format!("3sat n={n}"), phase_transition_3sat(n, 9));
    }
    for v in [12u32, 18, 24] {
        run(format!("tseitin v={v}"), tseitin_expander_unsat(v, 3));
    }
    for h in [6u32, 7, 8] {
        run(format!("php holes={h}"), pigeonhole(h + 1, h));
    }
    for v in [40u32, 70] {
        let e = (v as f64 * 2.35) as usize;
        run(
            format!("coloring v={v}"),
            coloring_cnf(&Graph::random(v, e, 5), 3),
        );
    }
    for gates in [250usize, 450] {
        let spec = logic_circuit::RandomCircuitSpec {
            num_inputs: 10,
            num_gates: gates,
            num_outputs: 3,
        };
        run(
            format!("miter gates={gates}"),
            equivalence_miter_cnf(spec, 7),
        );
    }

    print_table(
        &[
            "instance",
            "vars",
            "clauses",
            "conflicts",
            "props",
            "reduces",
            "verdict",
            "secs",
        ],
        &rows,
    );
}
