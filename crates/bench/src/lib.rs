//! Shared infrastructure for the experiment binaries (`exp_*`) and
//! Criterion benches that regenerate every table and figure of the paper.
//!
//! Each experiment binary is self-contained: it generates the synthetic
//! dataset, labels it by dual-policy solving, trains whatever models it
//! needs, and prints the table/series in a plain-text layout mirroring the
//! paper. See DESIGN.md §5 for the experiment index and EXPERIMENTS.md for
//! recorded paper-vs-measured results.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod amortize;
pub mod perf;
pub mod trace_report;

use neuroselect::sat_gen::{competition_batch, test_batch, Batch, DatasetConfig};
use neuroselect::{label_batch, LabeledInstance, LabelingConfig};
use std::collections::HashMap;
use std::time::Instant;
use telemetry::json::ToJson;
use telemetry::RunRecord;

/// Command-line options shared by the experiment binaries:
/// `--key value` pairs, all optional.
#[derive(Debug, Clone, Default)]
pub struct ExpArgs {
    values: HashMap<String, String>,
}

impl ExpArgs {
    /// Parses `--key value` pairs from `std::env::args`.
    ///
    /// # Panics
    ///
    /// Panics (with a usage message) on malformed arguments.
    pub fn from_env() -> Self {
        Self::parse_from(std::env::args().skip(1))
    }

    /// Parses `--key value` pairs from an iterator (testable entry point).
    ///
    /// # Panics
    ///
    /// Panics on a key without a value or a bare token.
    pub fn parse_from(args: impl IntoIterator<Item = String>) -> Self {
        let mut values = HashMap::new();
        let mut iter = args.into_iter();
        while let Some(key) = iter.next() {
            let key = key
                .strip_prefix("--")
                .unwrap_or_else(|| panic!("expected --key, found `{key}`"))
                .to_string();
            let value = iter
                .next()
                .unwrap_or_else(|| panic!("missing value for --{key}"));
            values.insert(key, value);
        }
        ExpArgs { values }
    }

    /// Reads a parsed value with a default.
    ///
    /// # Panics
    ///
    /// Panics if the value does not parse as `T`.
    pub fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> T
    where
        T::Err: std::fmt::Debug,
    {
        match self.values.get(key) {
            Some(v) => v.parse().unwrap_or_else(|e| panic!("--{key} {v}: {e:?}")),
            None => default,
        }
    }
}

/// Standard experiment dataset sizing, overridable from the command line
/// with `--instances N --scale S --seed K`.
pub fn dataset_config(args: &ExpArgs) -> DatasetConfig {
    DatasetConfig {
        instances_per_batch: args.get("instances", 24),
        scale: args.get("scale", 1.0),
        seed: args.get("seed", 2024),
    }
}

/// Generates and labels up to `num_batches` training batches
/// ("2016"–"2021").
pub fn labeled_training_set(
    config: &DatasetConfig,
    label_cfg: &LabelingConfig,
    num_batches: usize,
) -> Vec<LabeledInstance> {
    let mut out = Vec::new();
    for batch in neuroselect::sat_gen::training_batches(config)
        .into_iter()
        .take(num_batches)
    {
        let t = Instant::now();
        let labeled = label_batch(&batch, label_cfg);
        eprintln!(
            "labelled batch {} ({} instances) in {:.1}s",
            batch.name,
            labeled.len(),
            t.elapsed().as_secs_f64()
        );
        out.extend(labeled);
    }
    out
}

/// Generates and labels the held-out "2022" test batch.
pub fn labeled_test_set(
    config: &DatasetConfig,
    label_cfg: &LabelingConfig,
) -> Vec<LabeledInstance> {
    let batch = test_batch(config);
    let t = Instant::now();
    let labeled = label_batch(&batch, label_cfg);
    eprintln!(
        "labelled test batch ({} instances) in {:.1}s",
        labeled.len(),
        t.elapsed().as_secs_f64()
    );
    labeled
}

/// One extra mixed batch (used by figure experiments that do not need the
/// train/test split).
pub fn mixed_batch(name: &str, config: &DatasetConfig, seed: u64) -> Batch {
    competition_batch(name, config, seed)
}

/// Machine-readable experiment output: one [`RunRecord`] JSON line per
/// solver run, opened from the shared `--records FILE.jsonl` option.
///
/// Lets the `exp_*` binaries double as data producers — the printed table
/// stays the human-facing summary while the JSONL stream carries the full
/// per-run telemetry (phase times, histograms, stats) for offline analysis.
pub struct RecordLog {
    writer: std::io::BufWriter<std::fs::File>,
    path: String,
    written: usize,
}

impl RecordLog {
    /// Opens the log when `--records PATH` was given; `None` otherwise.
    ///
    /// # Panics
    ///
    /// Panics if the file cannot be created.
    pub fn from_args(args: &ExpArgs) -> Option<RecordLog> {
        let path: String = args.get("records", String::new());
        if path.is_empty() {
            return None;
        }
        let file = std::fs::File::create(&path).unwrap_or_else(|e| panic!("--records {path}: {e}"));
        Some(RecordLog {
            writer: std::io::BufWriter::new(file),
            path,
            written: 0,
        })
    }

    /// Appends one record as a single JSON line.
    pub fn push(&mut self, record: &RunRecord) {
        use std::io::Write;
        if writeln!(self.writer, "{}", record.to_json()).is_ok() {
            self.written += 1;
        }
    }
}

impl Drop for RecordLog {
    fn drop(&mut self) {
        use std::io::Write;
        let _ = self.writer.flush();
        eprintln!("{} run records written to {}", self.written, self.path);
    }
}

/// Formats interpolated p50/p90/p99/p999 of a cost distribution, routing
/// the values through a [`telemetry::Histogram`] with exponential buckets
/// (the same quantile machinery the solver's in-flight histograms use).
/// Values are clamped at zero; returns `None` when the iterator is empty.
pub fn percentile_line(values: impl IntoIterator<Item = f64>) -> Option<String> {
    let mut h = telemetry::Histogram::exponential(1, 2, 48);
    for v in values {
        h.record(v.max(0.0) as u64);
    }
    match (h.p50(), h.p90(), h.p99(), h.p999()) {
        (Some(p50), Some(p90), Some(p99), Some(p999)) => Some(format!(
            "p50 {p50:.0} | p90 {p90:.0} | p99 {p99:.0} | p999 {p999:.0}"
        )),
        _ => None,
    }
}

/// Prints a plain-text table: a header row and aligned columns.
///
/// # Panics
///
/// Panics if a row's length differs from the header's.
pub fn print_table(header: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), header.len(), "ragged table row");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let line = |cells: Vec<String>| {
        let parts: Vec<String> = cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect();
        println!("{}", parts.join("  "));
    };
    line(header.iter().map(|s| s.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_parse_and_default() {
        let a = ExpArgs::parse_from(["--epochs".to_string(), "7".to_string()]);
        assert_eq!(a.get("epochs", 3usize), 7);
        assert_eq!(a.get("scale", 1.5f64), 1.5);
    }

    #[test]
    #[should_panic(expected = "missing value")]
    fn args_reject_dangling_key() {
        let _ = ExpArgs::parse_from(["--oops".to_string()]);
    }

    #[test]
    #[should_panic(expected = "expected --key")]
    fn args_reject_bare_token() {
        let _ = ExpArgs::parse_from(["oops".to_string()]);
    }

    #[test]
    fn dataset_config_defaults() {
        let c = dataset_config(&ExpArgs::default());
        assert_eq!(c.instances_per_batch, 24);
        assert_eq!(c.scale, 1.0);
    }

    #[test]
    fn percentile_line_reports_interpolated_quantiles() {
        assert_eq!(percentile_line(std::iter::empty()), None);
        let line = percentile_line((1..=100).map(f64::from)).expect("non-empty");
        assert!(line.starts_with("p50 "), "{line}");
        assert!(line.contains("| p90 ") && line.contains("| p99 "), "{line}");
        assert!(line.contains("| p999 "), "{line}");
        // Uniform 1..=100 should place p50 near the middle of the range.
        let p50: f64 = line
            .split_whitespace()
            .nth(1)
            .and_then(|v| v.parse().ok())
            .expect("p50 value");
        assert!((30.0..=70.0).contains(&p50), "{line}");
    }

    #[test]
    fn table_printer_is_total() {
        print_table(
            &["a", "bb"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
    }
}
