//! The perf-trajectory harness: a pinned, deterministic solver suite whose
//! timing baseline is committed as `BENCH_solver.json` and re-checked by
//! CI (the `bench-regression` job) before the ROADMAP's raw-speed work
//! lands.
//!
//! # How the gate works
//!
//! [`run_suite`] solves each pinned instance `repeats` times with the
//! stock solver (no telemetry installed, so the clock measures the real
//! hot path), takes the per-instance **median** wall time, and separately
//! runs one instrumented pass for the per-phase breakdown. Search
//! determinism is enforced: every repeat must reproduce identical
//! conflict/propagation/decision counts, or the report is rejected.
//!
//! Raw wall time is not comparable across machines, so the report also
//! times a fixed solver-independent [`calibration`] workload and records
//! `normalized_total` = total median wall / calibration seconds. The
//! [`compare`] gate diffs normalized totals with a generous
//! [`DEFAULT_TOLERANCE`] — it is a trajectory alarm for step-change
//! regressions (an accidental `O(n²)`, a lost inline), not a microbenchmark.
//!
//! Deterministic counters are compared **exactly**: a changed search
//! trajectory invalidates the timing comparison and demands an intentional
//! baseline regeneration (`perf_baseline --write BENCH_solver.json`).

use sat_solver::{PolicyKind, Solver, SolverConfig, SolverStats, SolverTelemetry};
use std::time::Instant;
use telemetry::json::{Json, ToJson};
use telemetry::Phase;

/// Identity of the pinned suite. Bump the suffix when the instance list
/// changes so stale baselines are rejected instead of mis-compared.
pub const SUITE_NAME: &str = "perf-baseline-v1";

/// Default relative tolerance for the normalized-total regression gate:
/// fail only when the fresh run is this fraction slower than the
/// baseline. Generous by design — CI machines are noisy neighbours.
pub const DEFAULT_TOLERANCE: f64 = 0.5;

/// The pinned instance suite: small, deterministic, conflict-rich, and
/// diverse (pigeonhole, phase-transition 3-SAT, XOR-SAT, Tseitin
/// expander, graph coloring) so propagate/analyze/reduce all get
/// exercised. Everything is generated from fixed seeds — no files, no
/// model, no randomness at run time.
pub fn suite() -> Vec<(String, cnf::Cnf)> {
    vec![
        ("php-8-7".to_string(), sat_gen::pigeonhole(8, 7)),
        (
            "3sat-pt-180".to_string(),
            sat_gen::phase_transition_3sat(180, 5),
        ),
        (
            "xorsat-250".to_string(),
            sat_gen::random_xorsat(250, 252, 1),
        ),
        (
            "tseitin-22".to_string(),
            sat_gen::tseitin_expander_unsat(22, 3),
        ),
        (
            "color-120-4".to_string(),
            sat_gen::coloring_cnf(&sat_gen::Graph::random(120, 600, 11), 4),
        ),
    ]
}

/// Timed result for one pinned instance.
#[derive(Debug, Clone, PartialEq)]
pub struct InstancePerf {
    /// Instance name (stable across runs; part of the baseline identity).
    pub name: String,
    /// Solver verdict (`"SAT"` / `"UNSAT"`), compared exactly.
    pub result: String,
    /// Median wall time over the repeats, seconds.
    pub median_wall_s: f64,
    /// Propagations per second at the median wall time.
    pub props_per_sec: f64,
    /// Deterministic conflict count (identical across repeats).
    pub conflicts: u64,
    /// Deterministic propagation count.
    pub propagations: u64,
    /// Deterministic decision count.
    pub decisions: u64,
    /// Propagate-phase seconds from the instrumented pass.
    pub phase_propagate_s: f64,
    /// Analyze-phase seconds from the instrumented pass.
    pub phase_analyze_s: f64,
    /// Reduce-phase seconds from the instrumented pass.
    pub phase_reduce_s: f64,
}

/// One full suite run — the content of `BENCH_solver.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfReport {
    /// Suite identity ([`SUITE_NAME`] at generation time).
    pub suite: String,
    /// Repeats per instance behind each median.
    pub repeats: u32,
    /// Whether the metrics registry was armed during the timed runs
    /// (the overhead-measurement mode; off for the committed baseline).
    pub metrics_armed: bool,
    /// Median seconds of the machine-speed [`calibration`] workload.
    pub calibration_s: f64,
    /// Per-instance measurements, in suite order.
    pub instances: Vec<InstancePerf>,
    /// Sum of per-instance median wall times, seconds.
    pub total_median_wall_s: f64,
    /// `total_median_wall_s / calibration_s` — the machine-independent
    /// number the regression gate compares.
    pub normalized_total: f64,
}

/// Times a fixed, solver-independent workload (an xorshift pointer-chase
/// over an 8 MiB buffer — the same mix of ALU and cache-miss work a CDCL
/// solver does) and returns the **minimum** of five timed passes, in
/// seconds, after one untimed warm-up pass that pages the buffer in and
/// spins the CPU up. The minimum — not the median — is the estimator:
/// interference only ever adds time, so the fastest pass is the most
/// stable reading of machine capability.
pub fn calibration() -> f64 {
    fn one_pass(buf: &mut [u64]) -> f64 {
        let mask = buf.len() - 1;
        let mut x = 0x9e37_79b9_7f4a_7c15u64;
        let start = Instant::now();
        for i in 0..(1u64 << 23) {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let idx = (x as usize) & mask;
            buf[idx] = buf[idx].wrapping_add(x ^ i);
        }
        let elapsed = start.elapsed().as_secs_f64();
        std::hint::black_box(&buf);
        elapsed
    }
    let mut buf = vec![0u64; 1 << 20];
    let _ = one_pass(&mut buf);
    (0..5)
        .map(|_| one_pass(&mut buf))
        .fold(f64::INFINITY, f64::min)
}

fn median(values: &mut [f64]) -> f64 {
    values.sort_by(f64::total_cmp);
    let n = values.len();
    if n == 0 {
        return 0.0;
    }
    if n % 2 == 1 {
        values[n / 2]
    } else {
        (values[n / 2 - 1] + values[n / 2]) / 2.0
    }
}

fn verdict(result: &sat_solver::SolveResult) -> String {
    match result {
        sat_solver::SolveResult::Sat(_) => "SAT".to_string(),
        sat_solver::SolveResult::Unsat => "UNSAT".to_string(),
        sat_solver::SolveResult::Unknown => "UNKNOWN".to_string(),
    }
}

/// Runs the pinned suite. With `arm_metrics`, the live registry records
/// throughout the timed repeats — the mode used to measure the metrics
/// overhead against a disarmed run; it requires a build with the `metrics`
/// feature. Fails if any instance turns out nondeterministic across
/// repeats (the baseline would be meaningless).
pub fn run_suite(repeats: u32, arm_metrics: bool) -> Result<PerfReport, String> {
    let repeats = repeats.max(1);
    if arm_metrics && !telemetry::metrics::arm() {
        return Err(String::from(
            "--arm-metrics requested, but this binary was built without the \
             `metrics` feature (rebuild with `--features metrics`)",
        ));
    }
    let calibration_s = calibration();
    let mut instances = Vec::new();
    for (name, formula) in suite() {
        let config = SolverConfig::with_policy(PolicyKind::Default);
        let mut walls = Vec::with_capacity(repeats as usize);
        let mut fingerprint: Option<(String, SolverStats)> = None;
        for _ in 0..repeats {
            let mut solver = Solver::new(&formula, config.clone());
            let start = Instant::now();
            let result = solver.solve();
            walls.push(start.elapsed().as_secs_f64());
            let run = (verdict(&result), *solver.stats());
            match &fingerprint {
                None => fingerprint = Some(run),
                Some(prev) => {
                    if prev.0 != run.0
                        || prev.1.conflicts != run.1.conflicts
                        || prev.1.propagations != run.1.propagations
                        || prev.1.decisions != run.1.decisions
                    {
                        if arm_metrics {
                            telemetry::metrics::disarm();
                        }
                        return Err(format!(
                            "instance {name} is nondeterministic across repeats \
                             (the pinned suite must replay exactly)"
                        ));
                    }
                }
            }
        }
        let (result, stats) =
            fingerprint.unwrap_or_else(|| ("UNKNOWN".to_string(), SolverStats::default()));
        // A separate instrumented pass for the phase breakdown, so the
        // timed repeats above never pay for the per-phase clocks.
        let mut instrumented = Solver::new(&formula, config);
        instrumented.set_telemetry(SolverTelemetry::new(name.clone()));
        let _ = instrumented.solve();
        let phases = instrumented
            .take_telemetry()
            .map(|t| *t.phases())
            .unwrap_or_default();
        let median_wall_s = median(&mut walls);
        instances.push(InstancePerf {
            name,
            result,
            median_wall_s,
            props_per_sec: if median_wall_s > 0.0 {
                stats.propagations as f64 / median_wall_s
            } else {
                0.0
            },
            conflicts: stats.conflicts,
            propagations: stats.propagations,
            decisions: stats.decisions,
            phase_propagate_s: phases.elapsed(Phase::Propagate).as_secs_f64(),
            phase_analyze_s: phases.elapsed(Phase::Analyze).as_secs_f64(),
            phase_reduce_s: phases.elapsed(Phase::Reduce).as_secs_f64(),
        });
    }
    if arm_metrics {
        telemetry::metrics::disarm();
    }
    let total_median_wall_s: f64 = instances.iter().map(|i| i.median_wall_s).sum();
    Ok(PerfReport {
        suite: SUITE_NAME.to_string(),
        repeats,
        metrics_armed: arm_metrics,
        calibration_s,
        normalized_total: if calibration_s > 0.0 {
            total_median_wall_s / calibration_s
        } else {
            0.0
        },
        total_median_wall_s,
        instances,
    })
}

impl ToJson for InstancePerf {
    fn to_json(&self) -> Json {
        Json::object()
            .with("name", Json::from(self.name.as_str()))
            .with("result", Json::from(self.result.as_str()))
            .with("median_wall_s", Json::from(self.median_wall_s))
            .with("props_per_sec", Json::from(self.props_per_sec))
            .with("conflicts", Json::from(self.conflicts))
            .with("propagations", Json::from(self.propagations))
            .with("decisions", Json::from(self.decisions))
            .with(
                "phases",
                Json::object()
                    .with("propagate_s", Json::from(self.phase_propagate_s))
                    .with("analyze_s", Json::from(self.phase_analyze_s))
                    .with("reduce_s", Json::from(self.phase_reduce_s)),
            )
    }
}

impl ToJson for PerfReport {
    fn to_json(&self) -> Json {
        Json::object()
            .with("schema_version", Json::from(telemetry::SCHEMA_VERSION))
            .with("suite", Json::from(self.suite.as_str()))
            .with("repeats", Json::from(self.repeats))
            .with("metrics_armed", Json::from(self.metrics_armed))
            .with("calibration_s", Json::from(self.calibration_s))
            .with(
                "instances",
                Json::Array(self.instances.iter().map(ToJson::to_json).collect()),
            )
            .with("total_median_wall_s", Json::from(self.total_median_wall_s))
            .with("normalized_total", Json::from(self.normalized_total))
    }
}

impl PerfReport {
    /// Serializes the report as human-diffable multi-line JSON — the
    /// format of the committed `BENCH_solver.json`.
    pub fn to_json_pretty(&self) -> String {
        let mut out = String::new();
        pretty(&self.to_json(), 0, &mut out);
        out
    }
}

fn pretty(v: &Json, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent + 1);
    match v {
        Json::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                out.push_str(&pad);
                pretty(item, indent + 1, out);
                out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
            }
            out.push_str(&"  ".repeat(indent));
            out.push(']');
        }
        Json::Object(fields) if !fields.is_empty() => {
            out.push_str("{\n");
            for (i, (key, value)) in fields.iter().enumerate() {
                out.push_str(&pad);
                out.push_str(&Json::from(key.as_str()).to_string());
                out.push_str(": ");
                pretty(value, indent + 1, out);
                out.push_str(if i + 1 < fields.len() { ",\n" } else { "\n" });
            }
            out.push_str(&"  ".repeat(indent));
            out.push('}');
        }
        scalar => out.push_str(&scalar.to_string()),
    }
}

fn field<'a>(v: &'a Json, key: &str, ctx: &str) -> Result<&'a Json, String> {
    v.get(key).ok_or_else(|| format!("{ctx}: missing `{key}`"))
}

fn f64_field(v: &Json, key: &str, ctx: &str) -> Result<f64, String> {
    field(v, key, ctx)?
        .as_f64()
        .ok_or_else(|| format!("{ctx}: `{key}` is not a number"))
}

fn u64_field(v: &Json, key: &str, ctx: &str) -> Result<u64, String> {
    field(v, key, ctx)?
        .as_u64()
        .ok_or_else(|| format!("{ctx}: `{key}` is not an unsigned integer"))
}

fn str_field(v: &Json, key: &str, ctx: &str) -> Result<String, String> {
    Ok(field(v, key, ctx)?
        .as_str()
        .ok_or_else(|| format!("{ctx}: `{key}` is not a string"))?
        .to_string())
}

/// Parses a `BENCH_solver.json` document back into a [`PerfReport`].
pub fn parse_report(text: &str) -> Result<PerfReport, String> {
    let doc = Json::parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
    let ctx = "baseline";
    let mut instances = Vec::new();
    for (i, inst) in field(&doc, "instances", ctx)?
        .as_array()
        .ok_or_else(|| format!("{ctx}: `instances` is not an array"))?
        .iter()
        .enumerate()
    {
        let ictx = format!("instances[{i}]");
        let phases = field(inst, "phases", &ictx)?;
        instances.push(InstancePerf {
            name: str_field(inst, "name", &ictx)?,
            result: str_field(inst, "result", &ictx)?,
            median_wall_s: f64_field(inst, "median_wall_s", &ictx)?,
            props_per_sec: f64_field(inst, "props_per_sec", &ictx)?,
            conflicts: u64_field(inst, "conflicts", &ictx)?,
            propagations: u64_field(inst, "propagations", &ictx)?,
            decisions: u64_field(inst, "decisions", &ictx)?,
            phase_propagate_s: f64_field(phases, "propagate_s", &ictx)?,
            phase_analyze_s: f64_field(phases, "analyze_s", &ictx)?,
            phase_reduce_s: f64_field(phases, "reduce_s", &ictx)?,
        });
    }
    Ok(PerfReport {
        suite: str_field(&doc, "suite", ctx)?,
        repeats: u64_field(&doc, "repeats", ctx)? as u32,
        metrics_armed: field(&doc, "metrics_armed", ctx)?
            .as_bool()
            .ok_or_else(|| format!("{ctx}: `metrics_armed` is not a bool"))?,
        calibration_s: f64_field(&doc, "calibration_s", ctx)?,
        instances,
        total_median_wall_s: f64_field(&doc, "total_median_wall_s", ctx)?,
        normalized_total: f64_field(&doc, "normalized_total", ctx)?,
    })
}

/// Outcome of a baseline comparison: human-readable notes plus the
/// failures that should gate CI.
#[derive(Debug, Default)]
pub struct CompareOutcome {
    /// Informational lines (per-instance deltas, totals).
    pub notes: Vec<String>,
    /// Hard failures: identity mismatches or a tolerance breach.
    pub failures: Vec<String>,
}

impl CompareOutcome {
    /// `true` when nothing gates.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Diffs a fresh run against the committed baseline.
///
/// Identity first: suite name, instance list, verdicts, and the
/// deterministic counters must match exactly — a trajectory change makes
/// timing deltas meaningless and requires an intentional `--write`.
/// Then the regression gate: fresh `normalized_total` may exceed the
/// baseline's by at most `tolerance` (relative).
pub fn compare(baseline: &PerfReport, fresh: &PerfReport, tolerance: f64) -> CompareOutcome {
    let mut out = CompareOutcome::default();
    if baseline.suite != fresh.suite {
        out.failures.push(format!(
            "suite mismatch: baseline `{}` vs fresh `{}` (regenerate with --write)",
            baseline.suite, fresh.suite
        ));
        return out;
    }
    if baseline.metrics_armed != fresh.metrics_armed {
        out.failures.push(format!(
            "metrics_armed mismatch: baseline {} vs fresh {} — overhead runs \
             must not be compared against the stock baseline",
            baseline.metrics_armed, fresh.metrics_armed
        ));
    }
    let base_names: Vec<&str> = baseline.instances.iter().map(|i| i.name.as_str()).collect();
    let fresh_names: Vec<&str> = fresh.instances.iter().map(|i| i.name.as_str()).collect();
    if base_names != fresh_names {
        out.failures.push(format!(
            "instance list changed: baseline {base_names:?} vs fresh {fresh_names:?} \
             (regenerate with --write)"
        ));
        return out;
    }
    for (b, f) in baseline.instances.iter().zip(&fresh.instances) {
        if b.result != f.result
            || b.conflicts != f.conflicts
            || b.propagations != f.propagations
            || b.decisions != f.decisions
        {
            out.failures.push(format!(
                "{}: search trajectory changed (baseline {}/{} conflicts/propagations, \
                 fresh {}/{}) — if intentional, regenerate the baseline with --write",
                b.name, b.conflicts, b.propagations, f.conflicts, f.propagations
            ));
        } else {
            out.notes.push(format!(
                "{}: {:.1} ms vs baseline {:.1} ms ({:.0} kprops/s)",
                b.name,
                f.median_wall_s * 1e3,
                b.median_wall_s * 1e3,
                f.props_per_sec / 1e3
            ));
        }
    }
    if !out.failures.is_empty() {
        return out;
    }
    let ratio = if baseline.normalized_total > 0.0 {
        fresh.normalized_total / baseline.normalized_total
    } else {
        1.0
    };
    out.notes.push(format!(
        "normalized total: {:.3} vs baseline {:.3} (ratio {ratio:.2}, tolerance +{:.0}%)",
        fresh.normalized_total,
        baseline.normalized_total,
        tolerance * 100.0
    ));
    if ratio > 1.0 + tolerance {
        out.failures.push(format!(
            "perf regression: normalized total is {:.0}% over the committed baseline \
             (ratio {ratio:.2} > {:.2})",
            (ratio - 1.0) * 100.0,
            1.0 + tolerance
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_report() -> PerfReport {
        PerfReport {
            suite: SUITE_NAME.to_string(),
            repeats: 3,
            metrics_armed: false,
            calibration_s: 0.05,
            instances: vec![InstancePerf {
                name: "php-8-7".to_string(),
                result: "UNSAT".to_string(),
                median_wall_s: 0.1,
                props_per_sec: 1e6,
                conflicts: 1000,
                propagations: 100_000,
                decisions: 2000,
                phase_propagate_s: 0.06,
                phase_analyze_s: 0.02,
                phase_reduce_s: 0.005,
            }],
            total_median_wall_s: 0.1,
            normalized_total: 2.0,
        }
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = tiny_report();
        let text = report.to_json().to_string();
        let parsed = parse_report(&text).expect("round-trips");
        assert_eq!(parsed, report);
        let pretty = report.to_json_pretty();
        assert!(pretty.contains("\n  \"instances\": [\n"));
        assert_eq!(parse_report(&pretty).expect("pretty round-trips"), report);
        assert!(parse_report("{}").is_err());
        assert!(parse_report("not json").is_err());
    }

    #[test]
    fn compare_passes_identical_reports() {
        let r = tiny_report();
        let out = compare(&r, &r.clone(), DEFAULT_TOLERANCE);
        assert!(out.passed(), "{:?}", out.failures);
        assert!(!out.notes.is_empty());
    }

    #[test]
    fn compare_gates_on_regression_and_trajectory_changes() {
        let base = tiny_report();
        let mut slow = base.clone();
        slow.normalized_total = base.normalized_total * 2.0;
        let out = compare(&base, &slow, DEFAULT_TOLERANCE);
        assert!(!out.passed());
        assert!(out.failures[0].contains("perf regression"), "{out:?}");

        let mut drifted = base.clone();
        drifted.instances[0].conflicts += 1;
        let out = compare(&base, &drifted, DEFAULT_TOLERANCE);
        assert!(!out.passed());
        assert!(out.failures[0].contains("trajectory"), "{out:?}");

        let mut renamed = base.clone();
        renamed.instances[0].name = "other".to_string();
        assert!(!compare(&base, &renamed, DEFAULT_TOLERANCE).passed());

        let mut armed = base.clone();
        armed.metrics_armed = true;
        assert!(!compare(&base, &armed, DEFAULT_TOLERANCE).passed());
    }

    #[test]
    fn suite_is_deterministic_and_pinned() {
        let a = suite();
        let b = suite();
        assert_eq!(a.len(), 5);
        for ((name_a, cnf_a), (name_b, cnf_b)) in a.iter().zip(&b) {
            assert_eq!(name_a, name_b);
            assert_eq!(cnf_a.num_clauses(), cnf_b.num_clauses());
            assert_eq!(cnf_a.num_vars(), cnf_b.num_vars());
        }
    }

    #[test]
    fn median_of_odd_and_even_sets() {
        assert!((median(&mut [3.0, 1.0, 2.0]) - 2.0).abs() < 1e-12);
        assert!((median(&mut [4.0, 1.0, 2.0, 3.0]) - 2.5).abs() < 1e-12);
        assert!(median(&mut []).abs() < 1e-12);
    }
}
