//! Property tests for circuits, rewriting, Tseitin encoding, and miters.

use logic_circuit::{
    encode, inject_fault, miter, random_circuit, rewrite, Circuit, RandomCircuitSpec,
};
use proptest::prelude::*;
use sat_solver::Solver;

fn arb_spec() -> impl Strategy<Value = RandomCircuitSpec> {
    (2usize..7, 3usize..40, 1usize..4).prop_map(|(num_inputs, num_gates, num_outputs)| {
        RandomCircuitSpec {
            num_inputs,
            num_gates,
            num_outputs,
        }
    })
}

fn eval_all_inputs(c: &Circuit) -> Vec<Vec<bool>> {
    let n = c.inputs().len();
    (0..1u32 << n)
        .map(|bits| {
            let ins: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
            c.evaluate(&ins)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn rewrite_preserves_truth_tables(spec in arb_spec(), seed in 0u64..1000, intensity in 0.0f64..1.0) {
        let original = random_circuit(spec, seed);
        let rewritten = rewrite(&original, intensity, seed ^ 0xABCD);
        prop_assert_eq!(eval_all_inputs(&original), eval_all_inputs(&rewritten));
    }

    #[test]
    fn tseitin_models_project_to_circuit_inputs(spec in arb_spec(), seed in 0u64..1000) {
        // Assert the first output high; if SAT, the decoded inputs must
        // actually produce a high first output in simulation.
        let c = random_circuit(spec, seed);
        let mut enc = encode(&c);
        enc.assert_node(c.outputs()[0], true);
        let mut solver = Solver::from_cnf(&enc.cnf);
        match solver.solve() {
            sat_solver::SolveResult::Sat(model) => {
                let ins = enc.input_values(&c, &model);
                prop_assert!(c.evaluate(&ins)[0], "decoded witness must drive output high");
            }
            sat_solver::SolveResult::Unsat => {
                // then no input drives the output high
                prop_assert!(eval_all_inputs(&c).iter().all(|outs| !outs[0]));
            }
            sat_solver::SolveResult::Unknown => prop_assert!(false, "unbudgeted solve"),
        }
    }

    #[test]
    fn miter_unsat_iff_equivalent(spec in arb_spec(), seed in 0u64..500) {
        let a = random_circuit(spec, seed);
        // 50/50: an equivalent rewrite or a faulty copy
        let b = if seed % 2 == 0 {
            rewrite(&a, 0.7, seed + 1)
        } else {
            inject_fault(&a, seed + 2).unwrap_or_else(|| rewrite(&a, 0.5, seed + 3))
        };
        let m = miter(&a, &b);
        let mut enc = encode(&m);
        enc.assert_node(m.outputs()[0], true);
        let result = Solver::from_cnf(&enc.cnf).solve();
        let equivalent = eval_all_inputs(&a) == eval_all_inputs(&b);
        prop_assert_eq!(result.is_unsat(), equivalent);
    }

    #[test]
    fn fault_injection_keeps_interface(spec in arb_spec(), seed in 0u64..500) {
        let c = random_circuit(spec, seed);
        if let Some(faulty) = inject_fault(&c, seed) {
            prop_assert_eq!(faulty.inputs().len(), c.inputs().len());
            prop_assert_eq!(faulty.outputs().len(), c.outputs().len());
            prop_assert_eq!(faulty.len(), c.len(), "fault is a gate substitution");
        }
    }
}
