//! Gate-level combinational circuits.

use std::fmt;

/// A node (wire) in a [`Circuit`], identified by a dense index.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(u32);

impl NodeId {
    /// The dense index of this node.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Crate-internal: reconstructs a `NodeId` from an index into
    /// [`Circuit::gates`].
    pub(crate) fn from_index(i: usize) -> Self {
        NodeId(i as u32)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// The function computed by a circuit node.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Gate {
    /// A primary input.
    Input,
    /// A constant value.
    Const(bool),
    /// Logical negation of one node.
    Not(NodeId),
    /// Conjunction of two nodes.
    And(NodeId, NodeId),
    /// Disjunction of two nodes.
    Or(NodeId, NodeId),
    /// Exclusive or of two nodes.
    Xor(NodeId, NodeId),
    /// Negated conjunction.
    Nand(NodeId, NodeId),
    /// Negated disjunction.
    Nor(NodeId, NodeId),
    /// Negated exclusive or (equivalence).
    Xnor(NodeId, NodeId),
    /// Multiplexer: `if sel { hi } else { lo }`.
    Mux {
        /// Select line.
        sel: NodeId,
        /// Output when `sel` is true.
        hi: NodeId,
        /// Output when `sel` is false.
        lo: NodeId,
    },
}

impl Gate {
    /// The fan-in nodes of this gate.
    pub fn fanin(&self) -> Vec<NodeId> {
        match *self {
            Gate::Input | Gate::Const(_) => vec![],
            Gate::Not(a) => vec![a],
            Gate::And(a, b)
            | Gate::Or(a, b)
            | Gate::Xor(a, b)
            | Gate::Nand(a, b)
            | Gate::Nor(a, b)
            | Gate::Xnor(a, b) => vec![a, b],
            Gate::Mux { sel, hi, lo } => vec![sel, hi, lo],
        }
    }
}

/// A combinational circuit: a DAG of gates over primary inputs.
///
/// Nodes are created through builder methods and may only reference
/// already-existing nodes, so the node list is always topologically ordered.
///
/// # Examples
///
/// Build a 1-bit full adder and evaluate it:
///
/// ```
/// use logic_circuit::Circuit;
/// let mut c = Circuit::new();
/// let a = c.input();
/// let b = c.input();
/// let cin = c.input();
/// let ab = c.xor(a, b);
/// let sum = c.xor(ab, cin);
/// let t1 = c.and_gate(a, b);
/// let t2 = c.and_gate(ab, cin);
/// let carry = c.or(t1, t2);
/// c.set_outputs([sum, carry]);
/// assert_eq!(c.evaluate(&[true, true, false]), vec![false, true]);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Circuit {
    gates: Vec<Gate>,
    inputs: Vec<NodeId>,
    outputs: Vec<NodeId>,
}

impl Circuit {
    /// Creates an empty circuit.
    pub fn new() -> Self {
        Self::default()
    }

    fn push(&mut self, gate: Gate) -> NodeId {
        for dep in gate.fanin() {
            assert!(
                dep.index() < self.gates.len(),
                "gate references a node that does not exist yet"
            );
        }
        let id = NodeId(self.gates.len() as u32);
        self.gates.push(gate);
        id
    }

    /// Adds a primary input.
    pub fn input(&mut self) -> NodeId {
        let id = self.push(Gate::Input);
        self.inputs.push(id);
        id
    }

    /// Adds a constant node.
    pub fn constant(&mut self, value: bool) -> NodeId {
        self.push(Gate::Const(value))
    }

    /// Adds a NOT gate.
    pub fn not_gate(&mut self, a: NodeId) -> NodeId {
        self.push(Gate::Not(a))
    }

    /// Adds an AND gate.
    pub fn and_gate(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.push(Gate::And(a, b))
    }

    /// Adds an OR gate.
    pub fn or(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.push(Gate::Or(a, b))
    }

    /// Adds an XOR gate.
    pub fn xor(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.push(Gate::Xor(a, b))
    }

    /// Adds a NAND gate.
    pub fn nand(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.push(Gate::Nand(a, b))
    }

    /// Adds a NOR gate.
    pub fn nor(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.push(Gate::Nor(a, b))
    }

    /// Adds an XNOR gate.
    pub fn xnor(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.push(Gate::Xnor(a, b))
    }

    /// Adds a 2:1 multiplexer `sel ? hi : lo`.
    pub fn mux(&mut self, sel: NodeId, hi: NodeId, lo: NodeId) -> NodeId {
        self.push(Gate::Mux { sel, hi, lo })
    }

    /// Adds a balanced AND tree over the given nodes.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is empty.
    pub fn and_many(&mut self, nodes: &[NodeId]) -> NodeId {
        assert!(!nodes.is_empty(), "and_many needs at least one node");
        let mut layer = nodes.to_vec();
        while layer.len() > 1 {
            let mut next = Vec::with_capacity(layer.len().div_ceil(2));
            for pair in layer.chunks(2) {
                next.push(match pair {
                    [a, b] => self.and_gate(*a, *b),
                    [a] => *a,
                    _ => unreachable!(),
                });
            }
            layer = next;
        }
        layer[0]
    }

    /// Adds a balanced OR tree over the given nodes.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is empty.
    pub fn or_many(&mut self, nodes: &[NodeId]) -> NodeId {
        assert!(!nodes.is_empty(), "or_many needs at least one node");
        let mut layer = nodes.to_vec();
        while layer.len() > 1 {
            let mut next = Vec::with_capacity(layer.len().div_ceil(2));
            for pair in layer.chunks(2) {
                next.push(match pair {
                    [a, b] => self.or(*a, *b),
                    [a] => *a,
                    _ => unreachable!(),
                });
            }
            layer = next;
        }
        layer[0]
    }

    /// Declares the circuit's outputs (replacing any previous set).
    pub fn set_outputs(&mut self, outputs: impl IntoIterator<Item = NodeId>) {
        self.outputs = outputs.into_iter().collect();
        for &o in &self.outputs {
            assert!(o.index() < self.gates.len(), "output node does not exist");
        }
    }

    /// Primary inputs in creation order.
    pub fn inputs(&self) -> &[NodeId] {
        &self.inputs
    }

    /// Declared outputs.
    pub fn outputs(&self) -> &[NodeId] {
        &self.outputs
    }

    /// All gates, topologically ordered.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Number of nodes (inputs + gates + constants).
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// Whether the circuit has no nodes.
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// Number of non-input, non-constant gates.
    pub fn num_gates(&self) -> usize {
        self.gates
            .iter()
            .filter(|g| !matches!(g, Gate::Input | Gate::Const(_)))
            .count()
    }

    /// Evaluates the circuit, returning output values in declaration order.
    ///
    /// # Panics
    ///
    /// Panics if `input_values.len()` differs from the number of inputs.
    pub fn evaluate(&self, input_values: &[bool]) -> Vec<bool> {
        let values = self.evaluate_all(input_values);
        self.outputs.iter().map(|o| values[o.index()]).collect()
    }

    /// Evaluates the circuit, returning the value of every node.
    ///
    /// # Panics
    ///
    /// Panics if `input_values.len()` differs from the number of inputs.
    pub fn evaluate_all(&self, input_values: &[bool]) -> Vec<bool> {
        assert_eq!(
            input_values.len(),
            self.inputs.len(),
            "wrong number of input values"
        );
        let mut values = vec![false; self.gates.len()];
        let mut next_input = 0;
        for (i, gate) in self.gates.iter().enumerate() {
            values[i] = match *gate {
                Gate::Input => {
                    let v = input_values[next_input];
                    next_input += 1;
                    v
                }
                Gate::Const(b) => b,
                Gate::Not(a) => !values[a.index()],
                Gate::And(a, b) => values[a.index()] & values[b.index()],
                Gate::Or(a, b) => values[a.index()] | values[b.index()],
                Gate::Xor(a, b) => values[a.index()] ^ values[b.index()],
                Gate::Nand(a, b) => !(values[a.index()] & values[b.index()]),
                Gate::Nor(a, b) => !(values[a.index()] | values[b.index()]),
                Gate::Xnor(a, b) => !(values[a.index()] ^ values[b.index()]),
                Gate::Mux { sel, hi, lo } => {
                    if values[sel.index()] {
                        values[hi.index()]
                    } else {
                        values[lo.index()]
                    }
                }
            };
        }
        values
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_adder_truth_table() {
        let mut c = Circuit::new();
        let a = c.input();
        let b = c.input();
        let cin = c.input();
        let ab = c.xor(a, b);
        let sum = c.xor(ab, cin);
        let t1 = c.and_gate(a, b);
        let t2 = c.and_gate(ab, cin);
        let carry = c.or(t1, t2);
        c.set_outputs([sum, carry]);
        for bits in 0..8u32 {
            let ins: Vec<bool> = (0..3).map(|i| bits >> i & 1 == 1).collect();
            let expected_sum = ins.iter().filter(|&&x| x).count();
            let out = c.evaluate(&ins);
            assert_eq!(out[0], expected_sum % 2 == 1);
            assert_eq!(out[1], expected_sum >= 2);
        }
    }

    #[test]
    fn all_gate_kinds() {
        let mut c = Circuit::new();
        let a = c.input();
        let b = c.input();
        let s = c.input();
        let gates = [
            c.not_gate(a),
            c.and_gate(a, b),
            c.or(a, b),
            c.xor(a, b),
            c.nand(a, b),
            c.nor(a, b),
            c.xnor(a, b),
            c.mux(s, a, b),
            c.constant(true),
            c.constant(false),
        ];
        c.set_outputs(gates);
        let out = c.evaluate(&[true, false, true]);
        assert_eq!(
            out,
            vec![false, false, true, true, true, false, false, true, true, false]
        );
        let out = c.evaluate(&[false, true, false]);
        assert_eq!(
            out,
            vec![true, false, true, true, true, false, false, true, true, false]
        );
    }

    #[test]
    fn and_or_many_match_folds() {
        let mut c = Circuit::new();
        let ins: Vec<NodeId> = (0..5).map(|_| c.input()).collect();
        let all = c.and_many(&ins);
        let any = c.or_many(&ins);
        c.set_outputs([all, any]);
        for bits in 0..32u32 {
            let vals: Vec<bool> = (0..5).map(|i| bits >> i & 1 == 1).collect();
            let out = c.evaluate(&vals);
            assert_eq!(out[0], vals.iter().all(|&v| v));
            assert_eq!(out[1], vals.iter().any(|&v| v));
        }
    }

    #[test]
    #[should_panic(expected = "does not exist")]
    fn forward_reference_rejected() {
        let mut c = Circuit::new();
        let a = c.input();
        let _g = c.and_gate(a, a);
        c.set_outputs([NodeId(99)]);
    }

    #[test]
    #[should_panic(expected = "wrong number")]
    fn wrong_input_arity_rejected() {
        let mut c = Circuit::new();
        c.input();
        c.evaluate(&[]);
    }

    #[test]
    fn gate_counts() {
        let mut c = Circuit::new();
        let a = c.input();
        let t = c.constant(true);
        let g = c.and_gate(a, t);
        c.set_outputs([g]);
        assert_eq!(c.len(), 3);
        assert_eq!(c.num_gates(), 1);
        assert_eq!(c.inputs().len(), 1);
    }
}
