//! Bounded model checking: time-frame expansion of sequential circuits.
//!
//! A sequential circuit is modelled as a combinational *transition
//! function*: the first `num_state` inputs are the current state, the rest
//! are primary inputs; the first `num_state` outputs are the next state,
//! the remaining outputs are *bad-state* monitors. [`unroll`] expands `k`
//! time frames into one combinational circuit whose single output asserts
//! "some monitor fires within `k` steps" — exactly the SAT query bounded
//! model checkers pose. These unrollings are the canonical *industrial*
//! SAT workload alongside equivalence miters.

use crate::{Circuit, Gate, NodeId};

/// A sequential circuit encoded by its combinational transition function.
#[derive(Debug, Clone)]
pub struct SequentialCircuit {
    /// The transition function. Inputs: `num_state` state bits then primary
    /// inputs; outputs: `num_state` next-state bits then bad-state monitors.
    pub transition: Circuit,
    /// Width of the state register.
    pub num_state: usize,
}

impl SequentialCircuit {
    /// Creates the wrapper, validating the interface shape.
    ///
    /// # Panics
    ///
    /// Panics unless the transition circuit has at least `num_state` inputs
    /// and more than `num_state` outputs (≥ 1 monitor).
    pub fn new(transition: Circuit, num_state: usize) -> Self {
        assert!(
            transition.inputs().len() >= num_state,
            "transition needs {num_state} state inputs"
        );
        assert!(
            transition.outputs().len() > num_state,
            "transition needs next-state outputs plus at least one monitor"
        );
        SequentialCircuit {
            transition,
            num_state,
        }
    }

    /// Number of primary (non-state) inputs per time frame.
    pub fn num_primary_inputs(&self) -> usize {
        self.transition.inputs().len() - self.num_state
    }

    /// Number of bad-state monitors.
    pub fn num_monitors(&self) -> usize {
        self.transition.outputs().len() - self.num_state
    }

    /// Simulates `steps` frames from `initial`, returning `true` if any
    /// monitor fires (reference semantics for the unrolling).
    ///
    /// # Panics
    ///
    /// Panics if `initial` or any frame's inputs have the wrong width.
    pub fn simulate(&self, initial: &[bool], frame_inputs: &[Vec<bool>]) -> bool {
        assert_eq!(initial.len(), self.num_state, "bad initial state width");
        let mut state = initial.to_vec();
        for inputs in frame_inputs {
            assert_eq!(inputs.len(), self.num_primary_inputs(), "bad frame width");
            let mut all: Vec<bool> = state.clone();
            all.extend_from_slice(inputs);
            let outs = self.transition.evaluate(&all);
            if outs[self.num_state..].iter().any(|&b| b) {
                return true;
            }
            state = outs[..self.num_state].to_vec();
        }
        false
    }
}

/// Copies `source` into `target`, wiring `input_nodes` as its inputs;
/// returns the mapped outputs.
fn instantiate(target: &mut Circuit, source: &Circuit, input_nodes: &[NodeId]) -> Vec<NodeId> {
    assert_eq!(input_nodes.len(), source.inputs().len());
    let mut map: Vec<NodeId> = Vec::with_capacity(source.len());
    let mut next_input = 0;
    for gate in source.gates() {
        let id = match *gate {
            Gate::Input => {
                let n = input_nodes[next_input];
                next_input += 1;
                n
            }
            Gate::Const(v) => target.constant(v),
            Gate::Not(x) => target.not_gate(map[x.index()]),
            Gate::And(x, y) => target.and_gate(map[x.index()], map[y.index()]),
            Gate::Or(x, y) => target.or(map[x.index()], map[y.index()]),
            Gate::Xor(x, y) => target.xor(map[x.index()], map[y.index()]),
            Gate::Nand(x, y) => target.nand(map[x.index()], map[y.index()]),
            Gate::Nor(x, y) => target.nor(map[x.index()], map[y.index()]),
            Gate::Xnor(x, y) => target.xnor(map[x.index()], map[y.index()]),
            Gate::Mux { sel, hi, lo } => {
                target.mux(map[sel.index()], map[hi.index()], map[lo.index()])
            }
        };
        map.push(id);
    }
    source.outputs().iter().map(|o| map[o.index()]).collect()
}

/// Unrolls `steps` time frames from the constant `initial` state.
///
/// The result is a combinational circuit whose inputs are the primary
/// inputs of every frame (frame 0 first) and whose single output is
/// "some bad-state monitor fires in some frame". Bounded model checking
/// asserts that output true and asks SAT.
///
/// # Panics
///
/// Panics if `initial` has the wrong width or `steps == 0`.
///
/// # Examples
///
/// ```
/// use logic_circuit::{encode, unroll, Circuit, SequentialCircuit};
/// use sat_solver::Solver;
///
/// // 1-bit toggle: state' = ¬state, bad = state
/// let mut t = Circuit::new();
/// let s = t.input();
/// let ns = t.not_gate(s);
/// t.set_outputs([ns, s]);
/// // note: zero primary inputs is fine — add a dummy monitor-only machine
/// let seq = SequentialCircuit::new(t, 1);
///
/// // from state 0 the monitor (state == 1) fires at frame 1, not frame 0
/// let k1 = unroll(&seq, 1, &[false]);
/// let mut e1 = encode(&k1);
/// e1.assert_node(k1.outputs()[0], true);
/// assert!(Solver::from_cnf(&e1.cnf).solve().is_unsat());
///
/// let k2 = unroll(&seq, 2, &[false]);
/// let mut e2 = encode(&k2);
/// e2.assert_node(k2.outputs()[0], true);
/// assert!(Solver::from_cnf(&e2.cnf).solve().is_sat());
/// ```
pub fn unroll(seq: &SequentialCircuit, steps: usize, initial: &[bool]) -> Circuit {
    assert!(steps > 0, "need at least one time frame");
    assert_eq!(initial.len(), seq.num_state, "bad initial state width");
    let mut out = Circuit::new();
    let mut state: Vec<NodeId> = initial.iter().map(|&b| out.constant(b)).collect();
    let mut bads: Vec<NodeId> = Vec::new();
    for _ in 0..steps {
        let mut frame_inputs = state.clone();
        for _ in 0..seq.num_primary_inputs() {
            frame_inputs.push(out.input());
        }
        let outs = instantiate(&mut out, &seq.transition, &frame_inputs);
        bads.extend_from_slice(&outs[seq.num_state..]);
        state = outs[..seq.num_state].to_vec();
    }
    let any_bad = out.or_many(&bads);
    out.set_outputs([any_bad]);
    out
}

/// Frame-at-a-time unrolling for incremental bounded model checking.
///
/// Where [`unroll`] rebuilds the whole expansion for every bound `k`
/// (total work quadratic in the final bound), `IncrementalUnroll` keeps
/// one growing circuit and appends a single time frame per
/// [`push_frame`](IncrementalUnroll::push_frame) call, returning that
/// frame's "some monitor fires here" node. Paired with
/// [`IncrementalEncoder`](crate::IncrementalEncoder) and an incremental
/// solver session, checking bounds `1..=k` costs one frame of encoding
/// per bound and reuses everything the solver learned at shallower
/// bounds.
///
/// # Examples
///
/// ```
/// use logic_circuit::{encode, Circuit, IncrementalUnroll, SequentialCircuit};
/// use sat_solver::{Budget, Solver};
///
/// // 1-bit toggle: state' = ¬state, bad = state
/// let mut t = Circuit::new();
/// let s = t.input();
/// let ns = t.not_gate(s);
/// t.set_outputs([ns, s]);
/// let seq = SequentialCircuit::new(t, 1);
///
/// let mut unroll = IncrementalUnroll::new(&seq, &[false]);
/// let bad1 = unroll.push_frame();
/// let bad2 = unroll.push_frame();
/// let enc = encode(unroll.circuit());
/// let mut solver = Solver::from_cnf(&enc.cnf);
/// // from state 0 the monitor first fires in the second frame
/// assert!(solver
///     .solve_with_assumptions(&[enc.lit(bad1, true)], Budget::unlimited())
///     .is_unsat());
/// assert!(solver
///     .solve_with_assumptions(&[enc.lit(bad2, true)], Budget::unlimited())
///     .is_sat());
/// ```
#[derive(Debug, Clone)]
pub struct IncrementalUnroll {
    seq: SequentialCircuit,
    circuit: Circuit,
    state: Vec<NodeId>,
    frames: usize,
}

impl IncrementalUnroll {
    /// Starts an unrolling from the constant `initial` state.
    ///
    /// # Panics
    ///
    /// Panics if `initial` has the wrong width.
    pub fn new(seq: &SequentialCircuit, initial: &[bool]) -> Self {
        assert_eq!(initial.len(), seq.num_state, "bad initial state width");
        let mut circuit = Circuit::new();
        let state = initial.iter().map(|&b| circuit.constant(b)).collect();
        IncrementalUnroll {
            seq: seq.clone(),
            circuit,
            state,
            frames: 0,
        }
    }

    /// Appends one time frame and returns the node asserting "some
    /// monitor fires in this frame". The node also becomes the
    /// circuit's output, so [`circuit`](IncrementalUnroll::circuit)
    /// stays evaluable after every push.
    pub fn push_frame(&mut self) -> NodeId {
        let mut frame_inputs = self.state.clone();
        for _ in 0..self.seq.num_primary_inputs() {
            frame_inputs.push(self.circuit.input());
        }
        let outs = instantiate(&mut self.circuit, &self.seq.transition, &frame_inputs);
        let bad = self.circuit.or_many(&outs[self.seq.num_state..]);
        self.state = outs[..self.seq.num_state].to_vec();
        self.circuit.set_outputs([bad]);
        self.frames += 1;
        bad
    }

    /// The unrolled circuit so far.
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// Time frames pushed so far.
    pub fn frames(&self) -> usize {
        self.frames
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode;
    use sat_solver::Solver;

    /// An n-bit counter that increments when its single primary input is
    /// high; the monitor fires when all bits are 1.
    fn gated_counter(bits: usize) -> SequentialCircuit {
        let mut c = Circuit::new();
        let state: Vec<NodeId> = (0..bits).map(|_| c.input()).collect();
        let enable = c.input();
        // ripple increment gated by `enable`
        let mut carry = enable;
        let mut next = Vec::with_capacity(bits);
        for &s in &state {
            let sum = c.xor(s, carry);
            let new_carry = c.and_gate(s, carry);
            next.push(sum);
            carry = new_carry;
        }
        let all_ones = c.and_many(&state);
        let mut outputs = next;
        outputs.push(all_ones);
        c.set_outputs(outputs);
        SequentialCircuit::new(c, bits)
    }

    fn bmc_sat(seq: &SequentialCircuit, steps: usize, initial: &[bool]) -> bool {
        let u = unroll(seq, steps, initial);
        let mut enc = encode(&u);
        enc.assert_node(u.outputs()[0], true);
        Solver::from_cnf(&enc.cnf).solve().is_sat()
    }

    #[test]
    fn counter_reaches_all_ones_at_exact_depth() {
        let seq = gated_counter(3);
        let zero = [false; 3];
        // all-ones (7) needs 7 increments; it is *observed* at the frame
        // whose entry state is 7, i.e. frame index 7 ⇒ 8 frames.
        assert!(!bmc_sat(&seq, 7, &zero), "depth 7: monitor cannot fire yet");
        assert!(bmc_sat(&seq, 8, &zero), "depth 8: exactly reachable");
        assert!(bmc_sat(&seq, 12, &zero), "deeper bounds stay SAT");
    }

    #[test]
    fn counter_from_nonzero_start_is_faster() {
        let seq = gated_counter(3);
        let six = [false, true, true]; // LSB first: 6
        assert!(!bmc_sat(&seq, 1, &six));
        assert!(bmc_sat(&seq, 2, &six), "one increment reaches 7");
    }

    #[test]
    fn simulate_matches_bmc_witness_semantics() {
        let seq = gated_counter(2);
        // enable every frame: states 0,1,2,3 → monitor at frame with state 3
        let frames: Vec<Vec<bool>> = vec![vec![true]; 4];
        assert!(seq.simulate(&[false, false], &frames));
        let frames: Vec<Vec<bool>> = vec![vec![true]; 3];
        assert!(!seq.simulate(&[false, false], &frames));
        // never enabled: never fires
        let frames: Vec<Vec<bool>> = vec![vec![false]; 10];
        assert!(!seq.simulate(&[false, false], &frames));
    }

    #[test]
    fn interface_accessors() {
        let seq = gated_counter(4);
        assert_eq!(seq.num_primary_inputs(), 1);
        assert_eq!(seq.num_monitors(), 1);
    }

    #[test]
    fn incremental_unroll_agrees_with_monolithic_unroll() {
        use crate::IncrementalEncoder;
        use sat_solver::Budget;

        let seq = gated_counter(3);
        let zero = [false; 3];
        let mut unrolling = IncrementalUnroll::new(&seq, &zero);
        let mut enc = IncrementalEncoder::new();
        // One growing solver would be the production shape; a fresh
        // solver per bound keeps this test about *encoding* equality.
        for depth in 1..=10 {
            let bad = unrolling.push_frame();
            let _ = enc.encode_new(unrolling.circuit());
            assert_eq!(unrolling.frames(), depth);
            let full = encode(unrolling.circuit());
            let mut s = Solver::from_cnf(&full.cnf);
            let inc_sat = s
                .solve_with_assumptions(&[enc.lit(bad, true)], Budget::unlimited())
                .is_sat();
            // `unroll` asks "any frame ≤ depth"; the incremental bad
            // node asks "exactly this frame". For the counter the first
            // firing frame is 8, so both agree on every prefix bound.
            assert_eq!(
                inc_sat,
                bmc_sat(&seq, depth, &zero),
                "depth {depth}: incremental and monolithic unrollings disagree"
            );
        }
    }

    #[test]
    fn incremental_encoder_deltas_cover_the_full_encoding() {
        use crate::IncrementalEncoder;

        let seq = gated_counter(2);
        let mut unrolling = IncrementalUnroll::new(&seq, &[false, false]);
        let mut enc = IncrementalEncoder::new();
        let mut delta_clauses = 0;
        for _ in 0..5 {
            unrolling.push_frame();
            delta_clauses += enc.encode_new(unrolling.circuit()).num_clauses();
        }
        let full = encode(unrolling.circuit());
        assert_eq!(delta_clauses, full.cnf.num_clauses());
        assert_eq!(enc.num_vars(), full.cnf.num_vars());
    }

    #[test]
    #[should_panic(expected = "at least one time frame")]
    fn zero_steps_rejected() {
        let seq = gated_counter(2);
        let _ = unroll(&seq, 0, &[false, false]);
    }

    #[test]
    #[should_panic(expected = "monitor")]
    fn monitorless_transition_rejected() {
        let mut c = Circuit::new();
        let s = c.input();
        let ns = c.not_gate(s);
        c.set_outputs([ns]);
        let _ = SequentialCircuit::new(c, 1);
    }
}
