//! Random circuit synthesis and semantics-preserving rewriting.
//!
//! Together these produce realistic combinational-equivalence-checking
//! workloads: generate a random circuit, rewrite it into a structurally
//! different but functionally identical twin (or inject a fault), and miter
//! the pair. This mimics the industrial verification CNFs that dominate SAT
//! competition benchmarks.

use crate::{Circuit, Gate, NodeId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Parameters for [`random_circuit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RandomCircuitSpec {
    /// Number of primary inputs.
    pub num_inputs: usize,
    /// Number of gates to synthesize on top of the inputs.
    pub num_gates: usize,
    /// Number of outputs (drawn from the last gates created).
    pub num_outputs: usize,
}

impl Default for RandomCircuitSpec {
    fn default() -> Self {
        RandomCircuitSpec {
            num_inputs: 8,
            num_gates: 40,
            num_outputs: 4,
        }
    }
}

/// Generates a random combinational circuit.
///
/// Gates prefer recent nodes as fan-in (locality bias), producing deep,
/// narrow circuits similar to synthesized logic rather than shallow random
/// DAGs.
///
/// # Panics
///
/// Panics if the spec has zero inputs, gates, or outputs.
///
/// # Examples
///
/// ```
/// use logic_circuit::{random_circuit, RandomCircuitSpec};
/// let c = random_circuit(RandomCircuitSpec::default(), 42);
/// assert_eq!(c.inputs().len(), 8);
/// assert_eq!(c.outputs().len(), 4);
/// // deterministic in the seed
/// assert_eq!(c, random_circuit(RandomCircuitSpec::default(), 42));
/// ```
pub fn random_circuit(spec: RandomCircuitSpec, seed: u64) -> Circuit {
    assert!(spec.num_inputs > 0, "need at least one input");
    assert!(spec.num_gates > 0, "need at least one gate");
    assert!(spec.num_outputs > 0, "need at least one output");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut c = Circuit::new();
    let mut nodes: Vec<NodeId> = (0..spec.num_inputs).map(|_| c.input()).collect();

    for _ in 0..spec.num_gates {
        let pick = |rng: &mut SmallRng, nodes: &[NodeId]| -> NodeId {
            // Locality bias: geometric-ish preference for recent nodes.
            let n = nodes.len();
            let back = rng.gen_range(0..n.min(1 + n / 2)) + rng.gen_range(0..n.div_ceil(2));
            nodes[n - 1 - back.min(n - 1)]
        };
        let a = pick(&mut rng, &nodes);
        let b = pick(&mut rng, &nodes);
        let g = match rng.gen_range(0..8) {
            0 => c.not_gate(a),
            1 => c.and_gate(a, b),
            2 => c.or(a, b),
            3 => c.xor(a, b),
            4 => c.nand(a, b),
            5 => c.nor(a, b),
            6 => c.xnor(a, b),
            _ => {
                let s = pick(&mut rng, &nodes);
                c.mux(s, a, b)
            }
        };
        nodes.push(g);
    }
    let outs: Vec<NodeId> = nodes[nodes.len() - spec.num_outputs.min(nodes.len())..].to_vec();
    c.set_outputs(outs);
    c
}

/// Rewrites `circuit` into a functionally equivalent, structurally different
/// circuit by applying randomized local identities:
///
/// * De Morgan: `a ∧ b → ¬(¬a ∨ ¬b)`, `a ∨ b → ¬(¬a ∧ ¬b)`
/// * XOR expansion: `a ⊕ b → (a ∧ ¬b) ∨ (¬a ∧ b)`
/// * NAND/NOR/XNOR unfolding into a negated base gate
/// * MUX expansion: `s ? h : l → (s ∧ h) ∨ (¬s ∧ l)`
/// * operand swaps and occasional double negation
///
/// The probability `intensity ∈ [0, 1]` controls how often a rewrite fires
/// at each gate; `0.0` yields a plain structural copy.
///
/// # Examples
///
/// ```
/// use logic_circuit::{random_circuit, rewrite, RandomCircuitSpec};
/// let c = random_circuit(RandomCircuitSpec::default(), 1);
/// let r = rewrite(&c, 0.8, 99);
/// // same interface, same function (checked exhaustively in tests),
/// // different structure
/// assert_eq!(r.inputs().len(), c.inputs().len());
/// assert_ne!(r.gates().len(), c.gates().len());
/// ```
pub fn rewrite(circuit: &Circuit, intensity: f64, seed: u64) -> Circuit {
    assert!(
        (0.0..=1.0).contains(&intensity),
        "intensity must be in [0,1]"
    );
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut out = Circuit::new();
    let mut map: Vec<NodeId> = Vec::with_capacity(circuit.len());

    for gate in circuit.gates() {
        let fire = |rng: &mut SmallRng| rng.gen_bool(intensity);
        let new_id = match *gate {
            Gate::Input => out.input(),
            Gate::Const(v) => out.constant(v),
            Gate::Not(x) => {
                let x = map[x.index()];
                if fire(&mut rng) {
                    // triple negation
                    let n1 = out.not_gate(x);
                    let n2 = out.not_gate(n1);
                    out.not_gate(n2)
                } else {
                    out.not_gate(x)
                }
            }
            Gate::And(x, y) => {
                let (mut x, mut y) = (map[x.index()], map[y.index()]);
                if rng.gen_bool(0.5) {
                    std::mem::swap(&mut x, &mut y);
                }
                if fire(&mut rng) {
                    let nx = out.not_gate(x);
                    let ny = out.not_gate(y);
                    let o = out.or(nx, ny);
                    out.not_gate(o)
                } else {
                    out.and_gate(x, y)
                }
            }
            Gate::Or(x, y) => {
                let (mut x, mut y) = (map[x.index()], map[y.index()]);
                if rng.gen_bool(0.5) {
                    std::mem::swap(&mut x, &mut y);
                }
                if fire(&mut rng) {
                    let nx = out.not_gate(x);
                    let ny = out.not_gate(y);
                    let a = out.and_gate(nx, ny);
                    out.not_gate(a)
                } else {
                    out.or(x, y)
                }
            }
            Gate::Xor(x, y) => {
                let (x, y) = (map[x.index()], map[y.index()]);
                if fire(&mut rng) {
                    let nx = out.not_gate(x);
                    let ny = out.not_gate(y);
                    let t1 = out.and_gate(x, ny);
                    let t2 = out.and_gate(nx, y);
                    out.or(t1, t2)
                } else {
                    out.xor(x, y)
                }
            }
            Gate::Nand(x, y) => {
                let (x, y) = (map[x.index()], map[y.index()]);
                if fire(&mut rng) {
                    let a = out.and_gate(x, y);
                    out.not_gate(a)
                } else {
                    out.nand(x, y)
                }
            }
            Gate::Nor(x, y) => {
                let (x, y) = (map[x.index()], map[y.index()]);
                if fire(&mut rng) {
                    let o = out.or(x, y);
                    out.not_gate(o)
                } else {
                    out.nor(x, y)
                }
            }
            Gate::Xnor(x, y) => {
                let (x, y) = (map[x.index()], map[y.index()]);
                if fire(&mut rng) {
                    let o = out.xor(x, y);
                    out.not_gate(o)
                } else {
                    out.xnor(x, y)
                }
            }
            Gate::Mux { sel, hi, lo } => {
                let (s, h, l) = (map[sel.index()], map[hi.index()], map[lo.index()]);
                if fire(&mut rng) {
                    let ns = out.not_gate(s);
                    let t1 = out.and_gate(s, h);
                    let t2 = out.and_gate(ns, l);
                    out.or(t1, t2)
                } else {
                    out.mux(s, h, l)
                }
            }
        };
        map.push(new_id);
    }
    out.set_outputs(circuit.outputs().iter().map(|o| map[o.index()]));
    out
}

/// Injects a single fault into `circuit`: one randomly chosen two-input gate
/// is replaced by a different gate kind. Returns the faulty circuit, or
/// `None` if the circuit has no two-input gates to corrupt.
///
/// The result is *usually* inequivalent to the original (the fault may be
/// masked by downstream logic — callers wanting a guaranteed-SAT miter
/// should check).
pub fn inject_fault(circuit: &Circuit, seed: u64) -> Option<Circuit> {
    let mut rng = SmallRng::seed_from_u64(seed);
    // Only gates in the transitive fan-in cone of an output can affect
    // behaviour; restrict the victim to that cone.
    let mut in_cone = vec![false; circuit.len()];
    for &o in circuit.outputs() {
        in_cone[o.index()] = true;
    }
    for (i, gate) in circuit.gates().iter().enumerate().rev() {
        if in_cone[i] {
            for dep in gate.fanin() {
                in_cone[dep.index()] = true;
            }
        }
    }
    let candidates: Vec<usize> = circuit
        .gates()
        .iter()
        .enumerate()
        .filter(|&(i, g)| {
            in_cone[i]
                && matches!(
                    g,
                    Gate::And(..) | Gate::Or(..) | Gate::Xor(..) | Gate::Nand(..) | Gate::Nor(..)
                )
        })
        .map(|(i, _)| i)
        .collect();
    let &victim = candidates.get(rng.gen_range(0..candidates.len().max(1)))?;

    let mut out = Circuit::new();
    let mut map: Vec<NodeId> = Vec::with_capacity(circuit.len());
    for (i, gate) in circuit.gates().iter().enumerate() {
        let new_id = if i == victim {
            let (a, b) = match *gate {
                Gate::And(a, b)
                | Gate::Or(a, b)
                | Gate::Xor(a, b)
                | Gate::Nand(a, b)
                | Gate::Nor(a, b) => (map[a.index()], map[b.index()]),
                _ => unreachable!("victim is a two-input gate"),
            };
            match *gate {
                Gate::And(..) => out.or(a, b),
                Gate::Or(..) => out.and_gate(a, b),
                Gate::Xor(..) => out.xnor(a, b),
                Gate::Nand(..) => out.nor(a, b),
                _ => out.nand(a, b),
            }
        } else {
            match *gate {
                Gate::Input => out.input(),
                Gate::Const(v) => out.constant(v),
                Gate::Not(x) => out.not_gate(map[x.index()]),
                Gate::And(x, y) => out.and_gate(map[x.index()], map[y.index()]),
                Gate::Or(x, y) => out.or(map[x.index()], map[y.index()]),
                Gate::Xor(x, y) => out.xor(map[x.index()], map[y.index()]),
                Gate::Nand(x, y) => out.nand(map[x.index()], map[y.index()]),
                Gate::Nor(x, y) => out.nor(map[x.index()], map[y.index()]),
                Gate::Xnor(x, y) => out.xnor(map[x.index()], map[y.index()]),
                Gate::Mux { sel, hi, lo } => {
                    out.mux(map[sel.index()], map[hi.index()], map[lo.index()])
                }
            }
        };
        map.push(new_id);
    }
    out.set_outputs(circuit.outputs().iter().map(|o| map[o.index()]));
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn equivalent_exhaustive(a: &Circuit, b: &Circuit) -> bool {
        let n = a.inputs().len();
        assert!(n <= 10);
        (0..1u32 << n).all(|bits| {
            let ins: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
            a.evaluate(&ins) == b.evaluate(&ins)
        })
    }

    #[test]
    fn random_circuit_is_deterministic() {
        let spec = RandomCircuitSpec {
            num_inputs: 5,
            num_gates: 20,
            num_outputs: 2,
        };
        assert_eq!(random_circuit(spec, 3), random_circuit(spec, 3));
        assert_ne!(random_circuit(spec, 3), random_circuit(spec, 4));
    }

    #[test]
    fn rewrite_preserves_function() {
        let spec = RandomCircuitSpec {
            num_inputs: 6,
            num_gates: 30,
            num_outputs: 3,
        };
        for seed in 0..5 {
            let c = random_circuit(spec, seed);
            let r = rewrite(&c, 0.9, seed + 100);
            assert!(
                equivalent_exhaustive(&c, &r),
                "rewrite changed function (seed {seed})"
            );
        }
    }

    #[test]
    fn rewrite_zero_intensity_is_copy_function() {
        let c = random_circuit(RandomCircuitSpec::default(), 7);
        let r = rewrite(&c, 0.0, 0);
        assert!(equivalent_exhaustive(&c, &r));
    }

    #[test]
    fn fault_changes_function_usually() {
        let spec = RandomCircuitSpec {
            num_inputs: 6,
            num_gates: 25,
            num_outputs: 3,
        };
        let mut changed = 0;
        for seed in 0..10 {
            let c = random_circuit(spec, seed);
            if let Some(faulty) = inject_fault(&c, seed * 7 + 1) {
                if !equivalent_exhaustive(&c, &faulty) {
                    changed += 1;
                }
            }
        }
        assert!(changed >= 5, "faults should usually change behaviour");
    }

    #[test]
    fn fault_on_gateless_circuit_is_none() {
        let mut c = Circuit::new();
        let x = c.input();
        c.set_outputs([x]);
        assert!(inject_fault(&c, 0).is_none());
    }
}
