//! Miter construction for combinational equivalence checking.

use crate::{Circuit, Gate, NodeId};

/// Builds the miter of two circuits with identical interfaces.
///
/// The miter shares one set of primary inputs, instantiates both circuits on
/// them, XORs each output pair and ORs the XORs into a single output. The
/// miter output is `1` for some input iff the circuits differ on that input,
/// so **the circuits are equivalent iff the miter is unsatisfiable** when
/// its output is asserted high.
///
/// # Panics
///
/// Panics if the circuits disagree on input or output arity, or declare no
/// outputs.
///
/// # Examples
///
/// ```
/// use logic_circuit::{encode, miter, Circuit};
/// use sat_solver::Solver;
///
/// // x AND y, built two different ways.
/// let mut a = Circuit::new();
/// let (x, y) = (a.input(), a.input());
/// let g = a.and_gate(x, y);
/// a.set_outputs([g]);
///
/// let mut b = Circuit::new();
/// let (x, y) = (b.input(), b.input());
/// let nx = b.not_gate(x);
/// let ny = b.not_gate(y);
/// let nor = b.nor(nx, ny); // ¬(¬x ∨ ¬y) = x ∧ y
/// b.set_outputs([nor]);
///
/// let m = miter(&a, &b);
/// let mut enc = encode(&m);
/// enc.assert_node(m.outputs()[0], true);
/// assert!(Solver::from_cnf(&enc.cnf).solve().is_unsat()); // equivalent
/// ```
pub fn miter(a: &Circuit, b: &Circuit) -> Circuit {
    assert_eq!(
        a.inputs().len(),
        b.inputs().len(),
        "miter requires equal input arity"
    );
    assert_eq!(
        a.outputs().len(),
        b.outputs().len(),
        "miter requires equal output arity"
    );
    assert!(
        !a.outputs().is_empty(),
        "miter requires at least one output"
    );

    let mut m = Circuit::new();
    let shared: Vec<NodeId> = (0..a.inputs().len()).map(|_| m.input()).collect();
    let a_map = instantiate(&mut m, a, &shared);
    let b_map = instantiate(&mut m, b, &shared);
    let diffs: Vec<NodeId> = a
        .outputs()
        .iter()
        .zip(b.outputs())
        .map(|(&oa, &ob)| m.xor(a_map[oa.index()], b_map[ob.index()]))
        .collect();
    let out = m.or_many(&diffs);
    m.set_outputs([out]);
    m
}

/// Copies `source` into `target`, substituting `shared_inputs` for the
/// source's primary inputs. Returns the node mapping.
fn instantiate(target: &mut Circuit, source: &Circuit, shared_inputs: &[NodeId]) -> Vec<NodeId> {
    let mut map: Vec<NodeId> = Vec::with_capacity(source.len());
    let mut next_input = 0;
    for gate in source.gates() {
        let new_id = match *gate {
            Gate::Input => {
                let id = shared_inputs[next_input];
                next_input += 1;
                id
            }
            Gate::Const(v) => target.constant(v),
            Gate::Not(x) => target.not_gate(map[x.index()]),
            Gate::And(x, y) => target.and_gate(map[x.index()], map[y.index()]),
            Gate::Or(x, y) => target.or(map[x.index()], map[y.index()]),
            Gate::Xor(x, y) => target.xor(map[x.index()], map[y.index()]),
            Gate::Nand(x, y) => target.nand(map[x.index()], map[y.index()]),
            Gate::Nor(x, y) => target.nor(map[x.index()], map[y.index()]),
            Gate::Xnor(x, y) => target.xnor(map[x.index()], map[y.index()]),
            Gate::Mux { sel, hi, lo } => {
                target.mux(map[sel.index()], map[hi.index()], map[lo.index()])
            }
        };
        map.push(new_id);
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode;
    use sat_solver::Solver;

    fn xor_circuit() -> Circuit {
        let mut c = Circuit::new();
        let a = c.input();
        let b = c.input();
        let g = c.xor(a, b);
        c.set_outputs([g]);
        c
    }

    fn xor_via_andor() -> Circuit {
        // a ⊕ b = (a ∧ ¬b) ∨ (¬a ∧ b)
        let mut c = Circuit::new();
        let a = c.input();
        let b = c.input();
        let na = c.not_gate(a);
        let nb = c.not_gate(b);
        let t1 = c.and_gate(a, nb);
        let t2 = c.and_gate(na, b);
        let g = c.or(t1, t2);
        c.set_outputs([g]);
        c
    }

    fn broken_xor() -> Circuit {
        // like xor_via_andor but one AND is an OR: not equivalent
        let mut c = Circuit::new();
        let a = c.input();
        let b = c.input();
        let na = c.not_gate(a);
        let nb = c.not_gate(b);
        let t1 = c.or(a, nb);
        let t2 = c.and_gate(na, b);
        let g = c.or(t1, t2);
        c.set_outputs([g]);
        c
    }

    fn miter_unsat(a: &Circuit, b: &Circuit) -> bool {
        let m = miter(a, b);
        let mut enc = encode(&m);
        enc.assert_node(m.outputs()[0], true);
        Solver::from_cnf(&enc.cnf).solve().is_unsat()
    }

    #[test]
    fn equivalent_circuits_give_unsat_miter() {
        assert!(miter_unsat(&xor_circuit(), &xor_via_andor()));
    }

    #[test]
    fn inequivalent_circuits_give_sat_miter_with_witness() {
        let a = xor_circuit();
        let b = broken_xor();
        let m = miter(&a, &b);
        let mut enc = encode(&m);
        enc.assert_node(m.outputs()[0], true);
        let mut s = Solver::from_cnf(&enc.cnf);
        let r = s.solve();
        let model = r.model().expect("must be satisfiable");
        let ins = enc.input_values(&m, model);
        // The witness must actually distinguish the circuits.
        assert_ne!(a.evaluate(&ins), b.evaluate(&ins));
    }

    #[test]
    fn multi_output_miter() {
        // identity vs swapped outputs: inequivalent
        let mut a = Circuit::new();
        let (x, y) = (a.input(), a.input());
        a.set_outputs([x, y]);
        let mut b = Circuit::new();
        let (x, y) = (b.input(), b.input());
        b.set_outputs([y, x]);
        assert!(!miter_unsat(&a, &b));
        assert!(miter_unsat(&a, &a.clone()));
    }

    #[test]
    #[should_panic(expected = "equal input arity")]
    fn arity_mismatch_rejected() {
        let mut a = Circuit::new();
        let x = a.input();
        a.set_outputs([x]);
        let mut b = Circuit::new();
        let x = b.input();
        let _ = b.input();
        b.set_outputs([x]);
        let _ = miter(&a, &b);
    }
}
