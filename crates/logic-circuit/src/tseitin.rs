//! Tseitin transformation: circuits to equisatisfiable CNF.

use crate::{Circuit, Gate, NodeId};
use cnf::{Cnf, Lit, Var};

/// The result of Tseitin-encoding a circuit: the CNF plus the mapping from
/// circuit nodes to CNF variables.
#[derive(Clone, Debug)]
pub struct Encoded {
    /// The generated clauses.
    pub cnf: Cnf,
    /// `node_var[n]` is the CNF variable representing node `n`.
    pub node_var: Vec<Var>,
}

impl Encoded {
    /// The literal asserting that `node` carries `value`.
    pub fn lit(&self, node: NodeId, value: bool) -> Lit {
        self.node_var[node.index()].lit(!value)
    }

    /// Adds a unit clause constraining `node` to `value`.
    pub fn assert_node(&mut self, node: NodeId, value: bool) {
        let l = self.lit(node, value);
        self.cnf.add_clause(cnf::Clause::from_lits(vec![l]));
    }

    /// Extracts the circuit-input values from a CNF model.
    pub fn input_values(&self, circuit: &Circuit, model: &[bool]) -> Vec<bool> {
        circuit
            .inputs()
            .iter()
            .map(|&n| model[self.node_var[n.index()].index() as usize])
            .collect()
    }
}

/// Tseitin-encodes `circuit` into CNF.
///
/// Every node `n` gets a fresh variable `x_n`; each gate contributes the
/// clauses asserting `x_n ↔ gate(fanin)`. The encoding is equisatisfiable
/// and, because every gate is functionally constrained, every CNF model
/// restricted to input variables reproduces the circuit's behaviour.
///
/// # Examples
///
/// ```
/// use logic_circuit::{encode, Circuit};
/// let mut c = Circuit::new();
/// let a = c.input();
/// let b = c.input();
/// let g = c.and_gate(a, b);
/// c.set_outputs([g]);
/// let mut enc = encode(&c);
/// enc.assert_node(g, true); // force the AND output high
/// // the only model sets both inputs true
/// # let f = enc.cnf.clone();
/// assert_eq!(f.num_vars(), 3);
/// ```
pub fn encode(circuit: &Circuit) -> Encoded {
    let mut inc = IncrementalEncoder::new();
    let cnf = inc.encode_new(circuit);
    Encoded {
        cnf,
        node_var: inc.node_var,
    }
}

/// Tseitin encoding in slices: each [`IncrementalEncoder::encode_new`]
/// call emits clauses only for the gates appended to the circuit since
/// the previous call, while variable numbering stays globally
/// consistent across calls.
///
/// This is the encoder side of incremental SAT workloads (BMC
/// unrollings, growing miters): grow the circuit, feed only the delta
/// clauses to an incremental solver session, and keep every literal
/// from earlier slices valid.
///
/// # Examples
///
/// ```
/// use logic_circuit::{Circuit, IncrementalEncoder};
///
/// let mut c = Circuit::new();
/// let a = c.input();
/// let b = c.input();
/// let mut enc = IncrementalEncoder::new();
/// let first = enc.encode_new(&c); // two input nodes: vars, no clauses
/// assert_eq!(first.num_clauses(), 0);
///
/// let g = c.and_gate(a, b);
/// let delta = enc.encode_new(&c); // only the AND gate's clauses
/// assert_eq!(delta.num_clauses(), 3);
/// assert_eq!(enc.lit(g, true).var().index(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct IncrementalEncoder {
    node_var: Vec<Var>,
    encoded_gates: usize,
}

impl IncrementalEncoder {
    /// An encoder that has seen no gates yet.
    pub fn new() -> Self {
        IncrementalEncoder::default()
    }

    /// Assigns variables to nodes added since the last call and returns
    /// the clauses of exactly those gates. The returned formula's
    /// variable count is the running total, so it can be handed to an
    /// incremental solver that was sized for the final circuit.
    pub fn encode_new(&mut self, circuit: &Circuit) -> Cnf {
        for index in self.node_var.len()..circuit.len() {
            self.node_var.push(Var::new(index as u32));
        }
        let mut delta = Cnf::new(self.node_var.len() as u32);
        for (i, gate) in circuit.gates().iter().enumerate().skip(self.encoded_gates) {
            encode_gate(&mut delta, &self.node_var, i, gate);
        }
        self.encoded_gates = circuit.len();
        delta
    }

    /// The literal asserting that `node` carries `value`.
    ///
    /// # Panics
    ///
    /// Panics if `node` has not been through [`encode_new`] yet.
    ///
    /// [`encode_new`]: IncrementalEncoder::encode_new
    pub fn lit(&self, node: NodeId, value: bool) -> Lit {
        self.node_var[node.index()].lit(!value)
    }

    /// Variables assigned so far (the solver-side variable count this
    /// encoder's clauses require).
    pub fn num_vars(&self) -> u32 {
        self.node_var.len() as u32
    }

    /// Extracts the circuit-input values from a model over this
    /// encoder's variables.
    pub fn input_values(&self, circuit: &Circuit, model: &[bool]) -> Vec<bool> {
        circuit
            .inputs()
            .iter()
            .map(|&n| model[self.node_var[n.index()].index() as usize])
            .collect()
    }
}

/// Emits the functional-consistency clauses of one gate, with node `i`
/// represented by `node_var[i]`.
fn encode_gate(cnf: &mut Cnf, node_var: &[Var], i: usize, gate: &Gate) {
    let lit = |n: NodeId, value: bool| node_var[n.index()].lit(!value);
    let y = NodeId::from_index(i);
    match *gate {
        Gate::Input => {}
        Gate::Const(b) => {
            cnf.add_clause(cnf::Clause::from_lits(vec![lit(y, b)]));
        }
        Gate::Not(a) => {
            // y ↔ ¬a
            cnf.add_clause(cnf::Clause::from_lits(vec![lit(y, true), lit(a, true)]));
            cnf.add_clause(cnf::Clause::from_lits(vec![lit(y, false), lit(a, false)]));
        }
        Gate::And(a, b) => encode_and(cnf, lit(y, true), lit(a, true), lit(b, true)),
        Gate::Nand(a, b) => encode_and(cnf, lit(y, false), lit(a, true), lit(b, true)),
        Gate::Or(a, b) => {
            // y ↔ a ∨ b  ≡  ¬y ↔ ¬a ∧ ¬b
            encode_and(cnf, lit(y, false), lit(a, false), lit(b, false))
        }
        Gate::Nor(a, b) => encode_and(cnf, lit(y, true), lit(a, false), lit(b, false)),
        Gate::Xor(a, b) => encode_xor(cnf, lit(y, true), lit(a, true), lit(b, true)),
        Gate::Xnor(a, b) => encode_xor(cnf, lit(y, false), lit(a, true), lit(b, true)),
        Gate::Mux { sel, hi, lo } => {
            let (s, h, l, yy) = (lit(sel, true), lit(hi, true), lit(lo, true), lit(y, true));
            // s → (y ↔ hi)
            cnf.add_clause(cnf::Clause::from_lits(vec![!s, !h, yy]));
            cnf.add_clause(cnf::Clause::from_lits(vec![!s, h, !yy]));
            // ¬s → (y ↔ lo)
            cnf.add_clause(cnf::Clause::from_lits(vec![s, !l, yy]));
            cnf.add_clause(cnf::Clause::from_lits(vec![s, l, !yy]));
        }
    }
}

/// Clauses for `y ↔ a ∧ b`.
fn encode_and(cnf: &mut Cnf, y: Lit, a: Lit, b: Lit) {
    cnf.add_clause(cnf::Clause::from_lits(vec![!y, a]));
    cnf.add_clause(cnf::Clause::from_lits(vec![!y, b]));
    cnf.add_clause(cnf::Clause::from_lits(vec![y, !a, !b]));
}

/// Clauses for `y ↔ a ⊕ b`.
fn encode_xor(cnf: &mut Cnf, y: Lit, a: Lit, b: Lit) {
    cnf.add_clause(cnf::Clause::from_lits(vec![!y, a, b]));
    cnf.add_clause(cnf::Clause::from_lits(vec![!y, !a, !b]));
    cnf.add_clause(cnf::Clause::from_lits(vec![y, !a, b]));
    cnf.add_clause(cnf::Clause::from_lits(vec![y, a, !b]));
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exhaustively checks that the encoding's models match the circuit:
    /// for every input combination, forcing inputs in the CNF yields a
    /// formula whose models all agree with the circuit's node values.
    fn check_encoding(circuit: &Circuit) {
        let enc = encode(circuit);
        let n_inputs = circuit.inputs().len();
        assert!(n_inputs <= 8);
        for bits in 0..1u32 << n_inputs {
            let ins: Vec<bool> = (0..n_inputs).map(|i| bits >> i & 1 == 1).collect();
            let node_values = circuit.evaluate_all(&ins);
            // The assignment mapping each node var to its simulated value
            // must satisfy the CNF.
            let mut assignment = vec![false; enc.cnf.num_vars() as usize];
            for (n, v) in enc.node_var.iter().zip(&node_values) {
                assignment[n.index() as usize] = *v;
            }
            assert_eq!(
                enc.cnf.eval(&assignment),
                Some(true),
                "simulation model must satisfy encoding (inputs {ins:?})"
            );
            // Flipping any single gate output must falsify the CNF
            // (functional consistency).
            for (i, gate) in circuit.gates().iter().enumerate() {
                if matches!(gate, Gate::Input) {
                    continue;
                }
                let var = enc.node_var[i].index() as usize;
                assignment[var] = !assignment[var];
                assert_eq!(
                    enc.cnf.eval(&assignment),
                    Some(false),
                    "flipped gate {i} should violate encoding"
                );
                assignment[var] = !assignment[var];
            }
        }
    }

    #[test]
    fn encode_every_gate_kind() {
        let mut c = Circuit::new();
        let a = c.input();
        let b = c.input();
        let s = c.input();
        let n = c.not_gate(a);
        let g1 = c.and_gate(a, b);
        let g2 = c.or(n, b);
        let g3 = c.xor(g1, g2);
        let g4 = c.nand(g3, s);
        let g5 = c.nor(g4, a);
        let g6 = c.xnor(g5, b);
        let g7 = c.mux(s, g6, g1);
        let t = c.constant(true);
        let f = c.constant(false);
        let g8 = c.and_gate(t, f);
        c.set_outputs([g7, g8]);
        check_encoding(&c);
    }

    #[test]
    fn assert_node_forces_inputs() {
        use sat_solver::Solver;
        let mut c = Circuit::new();
        let a = c.input();
        let b = c.input();
        let g = c.and_gate(a, b);
        c.set_outputs([g]);
        let mut enc = encode(&c);
        enc.assert_node(g, true);
        let mut s = Solver::from_cnf(&enc.cnf);
        let r = s.solve();
        let model = r.model().expect("satisfiable");
        assert_eq!(enc.input_values(&c, model), vec![true, true]);
    }

    #[test]
    fn contradiction_is_unsat() {
        use sat_solver::Solver;
        let mut c = Circuit::new();
        let a = c.input();
        let n = c.not_gate(a);
        let g = c.and_gate(a, n);
        c.set_outputs([g]);
        let mut enc = encode(&c);
        enc.assert_node(g, true);
        assert!(Solver::from_cnf(&enc.cnf).solve().is_unsat());
    }
}
