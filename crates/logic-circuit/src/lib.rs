//! Gate-level combinational circuits, Tseitin CNF encoding, and miter
//! construction for equivalence checking.
//!
//! This crate is the EDA substrate of the NeuroSelect reproduction: it
//! manufactures the *structured, industrial-style* SAT instances (circuit
//! equivalence miters) that complement the random instance families in
//! `sat-gen`, standing in for the verification workloads that dominate SAT
//! competition benchmarks.
//!
//! # Examples
//!
//! Prove that a random circuit is equivalent to its rewritten twin by
//! showing the miter unsatisfiable:
//!
//! ```
//! use logic_circuit::{encode, miter, random_circuit, rewrite, RandomCircuitSpec};
//! use sat_solver::Solver;
//!
//! let spec = RandomCircuitSpec { num_inputs: 6, num_gates: 25, num_outputs: 2 };
//! let original = random_circuit(spec, 7);
//! let optimized = rewrite(&original, 0.8, 8);
//! let m = miter(&original, &optimized);
//! let mut enc = encode(&m);
//! enc.assert_node(m.outputs()[0], true);
//! assert!(Solver::from_cnf(&enc.cnf).solve().is_unsat());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod aig;
mod bmc;
mod circuit;
mod miter;
mod random;
mod tseitin;

pub use aig::{parse_aiger, strash, to_aig, write_aiger, ParseAigerError};
pub use bmc::{unroll, IncrementalUnroll, SequentialCircuit};
pub use circuit::{Circuit, Gate, NodeId};
pub use miter::miter;
pub use random::{inject_fault, random_circuit, rewrite, RandomCircuitSpec};
pub use tseitin::{encode, Encoded, IncrementalEncoder};
