//! And-Inverter Graphs: structural lowering and AIGER ASCII I/O.
//!
//! AIGs are the lingua franca of logic synthesis and verification tools
//! (ABC, aigsim, model checkers). [`to_aig`] lowers any [`Circuit`] to
//! two-input ANDs plus inverters; [`write_aiger`]/[`parse_aiger`] exchange
//! combinational circuits in the ASCII AIGER 1.9 format (`aag`).

use crate::{Circuit, Gate, NodeId};
use std::error::Error;
use std::fmt;
use std::io::{self, BufRead, Write};

/// Lowers a circuit to AND/NOT/constant form (an and-inverter graph),
/// preserving the input/output interface and the function.
///
/// # Examples
///
/// ```
/// use logic_circuit::{to_aig, Circuit, Gate};
/// let mut c = Circuit::new();
/// let a = c.input();
/// let b = c.input();
/// let x = c.xor(a, b);
/// c.set_outputs([x]);
/// let aig = to_aig(&c);
/// assert!(aig.gates().iter().all(|g| matches!(
///     g,
///     Gate::Input | Gate::Const(_) | Gate::Not(_) | Gate::And(..)
/// )));
/// assert_eq!(aig.evaluate(&[true, false]), vec![true]);
/// ```
pub fn to_aig(circuit: &Circuit) -> Circuit {
    let mut out = Circuit::new();
    let mut map: Vec<NodeId> = Vec::with_capacity(circuit.len());
    for gate in circuit.gates() {
        let id = match *gate {
            Gate::Input => out.input(),
            Gate::Const(v) => out.constant(v),
            Gate::Not(x) => out.not_gate(map[x.index()]),
            Gate::And(x, y) => out.and_gate(map[x.index()], map[y.index()]),
            Gate::Nand(x, y) => {
                let a = out.and_gate(map[x.index()], map[y.index()]);
                out.not_gate(a)
            }
            Gate::Or(x, y) => {
                // x ∨ y = ¬(¬x ∧ ¬y)
                let nx = out.not_gate(map[x.index()]);
                let ny = out.not_gate(map[y.index()]);
                let a = out.and_gate(nx, ny);
                out.not_gate(a)
            }
            Gate::Nor(x, y) => {
                let nx = out.not_gate(map[x.index()]);
                let ny = out.not_gate(map[y.index()]);
                out.and_gate(nx, ny)
            }
            Gate::Xor(x, y) => {
                // x ⊕ y = ¬(x∧y) ∧ ¬(¬x∧¬y)
                let (x, y) = (map[x.index()], map[y.index()]);
                let both = out.and_gate(x, y);
                let nboth = out.not_gate(both);
                let nx = out.not_gate(x);
                let ny = out.not_gate(y);
                let neither = out.and_gate(nx, ny);
                let nneither = out.not_gate(neither);
                out.and_gate(nboth, nneither)
            }
            Gate::Xnor(x, y) => {
                let (x, y) = (map[x.index()], map[y.index()]);
                let both = out.and_gate(x, y);
                let nboth = out.not_gate(both);
                let nx = out.not_gate(x);
                let ny = out.not_gate(y);
                let neither = out.and_gate(nx, ny);
                let nneither = out.not_gate(neither);
                let a = out.and_gate(nboth, nneither);
                out.not_gate(a)
            }
            Gate::Mux { sel, hi, lo } => {
                // (s ∧ hi) ∨ (¬s ∧ lo) = ¬(¬(s∧hi) ∧ ¬(¬s∧lo))
                let (s, h, l) = (map[sel.index()], map[hi.index()], map[lo.index()]);
                let sh = out.and_gate(s, h);
                let ns = out.not_gate(s);
                let nsl = out.and_gate(ns, l);
                let a = out.not_gate(sh);
                let b = out.not_gate(nsl);
                let both = out.and_gate(a, b);
                out.not_gate(both)
            }
        };
        map.push(id);
    }
    out.set_outputs(circuit.outputs().iter().map(|o| map[o.index()]));
    out
}

/// Structurally hashes an AIG: lowers to AND/NOT form, then merges
/// identical gates (hash-consing with commutativity, constant folding,
/// `x∧x = x`, `x∧¬x = 0`, and double-negation elimination) — the classic
/// "strash" pass of logic synthesis tools.
///
/// The result computes the same function with at most as many gates,
/// usually far fewer on rewritten/unrolled netlists.
///
/// # Examples
///
/// ```
/// use logic_circuit::{rewrite, random_circuit, strash, RandomCircuitSpec};
/// let spec = RandomCircuitSpec { num_inputs: 6, num_gates: 30, num_outputs: 2 };
/// let c = random_circuit(spec, 1);
/// let bloated = rewrite(&c, 0.9, 2); // redundant structure everywhere
/// let hashed = strash(&bloated);
/// assert!(hashed.len() <= bloated.len());
/// ```
pub fn strash(circuit: &Circuit) -> Circuit {
    use std::collections::HashMap;
    let aig = to_aig(circuit);
    let mut out = Circuit::new();
    // Literal representation during reconstruction: (node, negated).
    type SLit = (NodeId, bool);
    let mut map: Vec<SLit> = Vec::with_capacity(aig.len());
    let mut and_cache: HashMap<(usize, bool, usize, bool), SLit> = HashMap::new();
    let zero = out.constant(false);

    for gate in aig.gates() {
        let slit: SLit = match *gate {
            Gate::Input => (out.input(), false),
            Gate::Const(v) => (zero, v),
            Gate::Not(x) => {
                let (n, neg) = map[x.index()];
                (n, !neg) // double negation vanishes structurally
            }
            Gate::And(x, y) => {
                let (mut a, mut b) = (map[x.index()], map[y.index()]);
                // canonical operand order (commutativity)
                if (a.0.index(), a.1) > (b.0.index(), b.1) {
                    std::mem::swap(&mut a, &mut b);
                }
                // constant folding and idempotence
                if a.0 == zero {
                    if a.1 {
                        b // true ∧ b = b
                    } else {
                        (zero, false) // false ∧ b = false
                    }
                } else if a == b {
                    a // x ∧ x = x
                } else if a.0 == b.0 && a.1 != b.1 {
                    (zero, false) // x ∧ ¬x = false
                } else {
                    let key = (a.0.index(), a.1, b.0.index(), b.1);
                    *and_cache.entry(key).or_insert_with(|| {
                        let an = if a.1 { out.not_gate(a.0) } else { a.0 };
                        let bn = if b.1 { out.not_gate(b.0) } else { b.0 };
                        (out.and_gate(an, bn), false)
                    })
                }
            }
            _ => unreachable!("to_aig output is AND/NOT/const/input only"),
        };
        map.push(slit);
    }
    let outputs: Vec<NodeId> = aig
        .outputs()
        .iter()
        .map(|o| {
            let (n, neg) = map[o.index()];
            if neg {
                out.not_gate(n)
            } else {
                n
            }
        })
        .collect();
    out.set_outputs(outputs);
    out
}

/// An error produced while parsing AIGER input.
#[derive(Debug)]
pub enum ParseAigerError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Malformed content.
    Syntax(String),
}

impl fmt::Display for ParseAigerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseAigerError::Io(e) => write!(f, "i/o error reading AIGER: {e}"),
            ParseAigerError::Syntax(m) => write!(f, "AIGER syntax error: {m}"),
        }
    }
}

impl Error for ParseAigerError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ParseAigerError::Io(e) => Some(e),
            ParseAigerError::Syntax(_) => None,
        }
    }
}

impl From<io::Error> for ParseAigerError {
    fn from(e: io::Error) -> Self {
        ParseAigerError::Io(e)
    }
}

fn syntax(m: impl Into<String>) -> ParseAigerError {
    ParseAigerError::Syntax(m.into())
}

/// Writes a circuit in ASCII AIGER (`aag`) format.
///
/// The circuit is lowered to AIG form first, so any gate mix is accepted;
/// sequential elements (latches) are not supported by [`Circuit`] and the
/// latch count is always zero.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_aiger<W: Write>(mut writer: W, circuit: &Circuit) -> io::Result<()> {
    let aig = to_aig(circuit);
    // AIGER variable indices: 0 = constant false, 1.. = inputs then ANDs.
    // literal = 2*var + negation. NOT gates become literal negations.
    let mut lit_of: Vec<u32> = vec![0; aig.len()];
    let mut next_var = 1u32;
    // first pass: number inputs
    for (i, gate) in aig.gates().iter().enumerate() {
        if matches!(gate, Gate::Input) {
            lit_of[i] = 2 * next_var;
            next_var += 1;
        }
    }
    let num_inputs = next_var - 1;
    // second pass: number AND gates, resolve NOT/const to literals
    let mut ands: Vec<(u32, u32, u32)> = Vec::new();
    for (i, gate) in aig.gates().iter().enumerate() {
        match *gate {
            Gate::Input => {}
            Gate::Const(v) => lit_of[i] = u32::from(v),
            Gate::Not(x) => lit_of[i] = lit_of[x.index()] ^ 1,
            Gate::And(x, y) => {
                let lhs = 2 * next_var;
                next_var += 1;
                lit_of[i] = lhs;
                ands.push((lhs, lit_of[x.index()], lit_of[y.index()]));
            }
            _ => unreachable!("to_aig produces only inputs, consts, NOT, AND"),
        }
    }
    writeln!(
        writer,
        "aag {} {} 0 {} {}",
        next_var - 1,
        num_inputs,
        aig.outputs().len(),
        ands.len()
    )?;
    for v in 1..=num_inputs {
        writeln!(writer, "{}", 2 * v)?;
    }
    for &o in aig.outputs() {
        writeln!(writer, "{}", lit_of[o.index()])?;
    }
    for (lhs, a, b) in ands {
        writeln!(writer, "{lhs} {a} {b}")?;
    }
    Ok(())
}

/// Parses an ASCII AIGER (`aag`) file into a [`Circuit`].
///
/// Latches are rejected ([`Circuit`] is combinational); the symbol table
/// and comments are ignored.
///
/// # Errors
///
/// Returns [`ParseAigerError`] on I/O failure or malformed content.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), logic_circuit::ParseAigerError> {
/// // single AND gate: out = in1 ∧ ¬in2
/// let text = "aag 3 2 0 1 1\n2\n4\n6\n6 2 5\n";
/// let c = logic_circuit::parse_aiger(text.as_bytes())?;
/// assert_eq!(c.inputs().len(), 2);
/// assert_eq!(c.evaluate(&[true, false]), vec![true]);
/// assert_eq!(c.evaluate(&[true, true]), vec![false]);
/// # Ok(())
/// # }
/// ```
pub fn parse_aiger<R: BufRead>(reader: R) -> Result<Circuit, ParseAigerError> {
    let mut lines = reader.lines();
    let header = lines.next().ok_or_else(|| syntax("empty input"))??;
    let parts: Vec<&str> = header.split_whitespace().collect();
    if parts.len() != 6 || parts[0] != "aag" {
        return Err(syntax(format!("bad header `{header}`")));
    }
    let nums: Vec<u32> = parts[1..]
        .iter()
        .map(|t| t.parse().map_err(|_| syntax(format!("bad number `{t}`"))))
        .collect::<Result<_, _>>()?;
    let (max_var, num_in, num_latch, num_out, num_and) =
        (nums[0], nums[1], nums[2], nums[3], nums[4]);
    if num_latch != 0 {
        return Err(syntax("latches are not supported (combinational only)"));
    }

    let mut next_line = || -> Result<String, ParseAigerError> {
        lines
            .next()
            .ok_or_else(|| syntax("unexpected end of file"))?
            .map_err(ParseAigerError::from)
    };

    let mut circuit = Circuit::new();
    let false_node = circuit.constant(false);
    // node_of_var[v] = circuit node computing AIGER variable v (positive).
    let mut node_of_var: Vec<Option<NodeId>> = vec![None; max_var as usize + 1];
    node_of_var[0] = Some(false_node);

    let mut input_literals = Vec::with_capacity(num_in as usize);
    for _ in 0..num_in {
        let line = next_line()?;
        let lit: u32 = line
            .trim()
            .parse()
            .map_err(|_| syntax(format!("bad input literal `{line}`")))?;
        if !lit.is_multiple_of(2) || lit == 0 {
            return Err(syntax(format!("input literal {lit} must be positive")));
        }
        let node = circuit.input();
        let var = (lit / 2) as usize;
        if var >= node_of_var.len() || node_of_var[var].is_some() {
            return Err(syntax(format!(
                "input variable {var} out of range or redefined"
            )));
        }
        node_of_var[var] = Some(node);
        input_literals.push(lit);
    }

    let output_literals: Vec<u32> = (0..num_out)
        .map(|_| {
            let line = next_line()?;
            line.trim()
                .parse()
                .map_err(|_| syntax(format!("bad output literal `{line}`")))
        })
        .collect::<Result<_, _>>()?;

    let and_defs: Vec<(u32, u32, u32)> = (0..num_and)
        .map(|_| {
            let line = next_line()?;
            let nums: Vec<u32> = line
                .split_whitespace()
                .map(|t| {
                    t.parse()
                        .map_err(|_| syntax(format!("bad AND line `{line}`")))
                })
                .collect::<Result<_, _>>()?;
            if nums.len() != 3 {
                return Err(syntax(format!("AND line needs 3 literals: `{line}`")));
            }
            if !nums[0].is_multiple_of(2) || nums[0] == 0 {
                return Err(syntax(format!("AND lhs {} must be positive", nums[0])));
            }
            Ok((nums[0], nums[1], nums[2]))
        })
        .collect::<Result<_, _>>()?;

    // AIGER files list ANDs in topological order (aag allows any order, but
    // tools emit topological; we require it for single-pass construction).
    let lit_node = |circuit: &mut Circuit,
                    node_of_var: &[Option<NodeId>],
                    lit: u32|
     -> Result<NodeId, ParseAigerError> {
        let var = (lit / 2) as usize;
        let node = node_of_var
            .get(var)
            .copied()
            .flatten()
            .ok_or_else(|| syntax(format!("literal {lit} references undefined variable")))?;
        Ok(if lit % 2 == 1 {
            circuit.not_gate(node)
        } else {
            node
        })
    };

    for (lhs, a, b) in and_defs {
        let an = lit_node(&mut circuit, &node_of_var, a)?;
        let bn = lit_node(&mut circuit, &node_of_var, b)?;
        let g = circuit.and_gate(an, bn);
        let var = (lhs / 2) as usize;
        if var >= node_of_var.len() || node_of_var[var].is_some() {
            return Err(syntax(format!(
                "AND variable {var} out of range or redefined"
            )));
        }
        node_of_var[var] = Some(g);
    }

    let outputs: Vec<NodeId> = output_literals
        .into_iter()
        .map(|lit| lit_node(&mut circuit, &node_of_var, lit))
        .collect::<Result<_, _>>()?;
    circuit.set_outputs(outputs);
    Ok(circuit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{random_circuit, RandomCircuitSpec};

    fn equivalent_exhaustive(a: &Circuit, b: &Circuit) -> bool {
        let n = a.inputs().len();
        assert!(n <= 10);
        assert_eq!(n, b.inputs().len());
        (0..1u32 << n).all(|bits| {
            let ins: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
            a.evaluate(&ins) == b.evaluate(&ins)
        })
    }

    #[test]
    fn aig_lowering_preserves_function() {
        for seed in 0..6 {
            let spec = RandomCircuitSpec {
                num_inputs: 6,
                num_gates: 30,
                num_outputs: 3,
            };
            let c = random_circuit(spec, seed);
            let aig = to_aig(&c);
            assert!(equivalent_exhaustive(&c, &aig), "seed {seed}");
            assert!(aig.gates().iter().all(|g| matches!(
                g,
                Gate::Input | Gate::Const(_) | Gate::Not(_) | Gate::And(..)
            )));
        }
    }

    #[test]
    fn strash_preserves_function_and_shrinks() {
        use crate::rewrite;
        for seed in 0..6 {
            let spec = RandomCircuitSpec {
                num_inputs: 6,
                num_gates: 30,
                num_outputs: 3,
            };
            let c = random_circuit(spec, seed);
            let bloated = rewrite(&c, 0.9, seed + 50);
            let hashed = strash(&bloated);
            assert!(
                equivalent_exhaustive(&bloated, &hashed),
                "strash changed function (seed {seed})"
            );
            // compare on the same gate basis: plain AIG lowering vs strash
            let plain = to_aig(&bloated);
            assert!(
                hashed.num_gates() < plain.num_gates(),
                "strash should shrink the AIG ({} vs {}, seed {seed})",
                hashed.num_gates(),
                plain.num_gates()
            );
        }
    }

    #[test]
    fn strash_folds_constants_and_contradictions() {
        let mut c = Circuit::new();
        let a = c.input();
        let na = c.not_gate(a);
        let contradiction = c.and_gate(a, na); // always false
        let nn = c.not_gate(na); // double negation of a
        let idem = c.and_gate(a, a); // = a
        let o = c.or(contradiction, idem);
        c.set_outputs([o, nn]);
        let hashed = strash(&c);
        assert!(equivalent_exhaustive(&c, &hashed));
        // x∧¬x and x∧x need no AND gates at all; the OR needs one
        assert!(hashed.num_gates() <= 4);
    }

    #[test]
    fn aiger_roundtrip_preserves_function() {
        for seed in 0..6 {
            let spec = RandomCircuitSpec {
                num_inputs: 5,
                num_gates: 25,
                num_outputs: 2,
            };
            let c = random_circuit(spec, seed);
            let mut text = Vec::new();
            write_aiger(&mut text, &c).unwrap();
            let parsed = parse_aiger(text.as_slice()).unwrap();
            assert!(equivalent_exhaustive(&c, &parsed), "seed {seed}");
        }
    }

    #[test]
    fn parse_reference_example() {
        // out = ¬(in1 ∧ in2)  (NAND via negated output literal)
        let text = "aag 3 2 0 1 1\n2\n4\n7\n6 2 4\n";
        let c = parse_aiger(text.as_bytes()).unwrap();
        assert_eq!(c.evaluate(&[true, true]), vec![false]);
        assert_eq!(c.evaluate(&[true, false]), vec![true]);
    }

    #[test]
    fn constants_roundtrip() {
        let mut c = Circuit::new();
        let a = c.input();
        let t = c.constant(true);
        let g = c.and_gate(a, t);
        let f = c.constant(false);
        let h = c.or(g, f);
        c.set_outputs([h]);
        let mut text = Vec::new();
        write_aiger(&mut text, &c).unwrap();
        let parsed = parse_aiger(text.as_slice()).unwrap();
        assert!(equivalent_exhaustive(&c, &parsed));
    }

    #[test]
    fn parse_errors() {
        assert!(parse_aiger("".as_bytes()).is_err());
        assert!(parse_aiger("aig 1 1 0 1 0\n2\n2\n".as_bytes()).is_err());
        assert!(parse_aiger("aag 1 0 1 0 0\n".as_bytes()).is_err()); // latch
        assert!(parse_aiger("aag 1 1 0 1 0\n3\n2\n".as_bytes()).is_err()); // odd input
        assert!(parse_aiger("aag 2 1 0 1 1\n2\n4\n4 6 2\n".as_bytes()).is_err());
        // undefined var
    }

    #[test]
    fn error_display() {
        let e = parse_aiger("bogus".as_bytes()).unwrap_err();
        assert!(e.to_string().contains("AIGER"));
    }
}
