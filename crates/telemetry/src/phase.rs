//! Scoped phase timers: per-phase wall time and call counts.

use crate::json::{FromJson, FromJsonError, Json, ToJson};
use std::time::{Duration, Instant};

/// An instrumented phase of the solver or the NeuroSelect pipeline.
///
/// Solver phases time the CDCL inner loop; pipeline phases time the
/// per-instance selection front end (graph build, GNN inference, policy
/// choice). The set is closed so [`PhaseTimes`] can be a fixed array with
/// no allocation or hashing on the hot path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Phase {
    /// Boolean constraint propagation (the solver's dominant cost).
    Propagate,
    /// First-UIP conflict analysis.
    Analyze,
    /// Recursive learned-clause minimization (inside analysis).
    Minimize,
    /// Clause-database reduction (the step the paper's policies govern).
    Reduce,
    /// Restart bookkeeping (backjump to the root level).
    Restart,
    /// In-search inprocessing rounds (subsumption, self-subsuming
    /// resolution, bounded variable elimination, vivification).
    Inprocess,
    /// Formula → graph feature extraction (pipeline).
    FeatureExtract,
    /// GNN forward pass (pipeline).
    GnnForward,
    /// Policy decision from the model output (pipeline).
    PolicySelect,
}

impl Phase {
    /// All phases, in serialization order.
    pub const ALL: [Phase; 9] = [
        Phase::Propagate,
        Phase::Analyze,
        Phase::Minimize,
        Phase::Reduce,
        Phase::Restart,
        Phase::Inprocess,
        Phase::FeatureExtract,
        Phase::GnnForward,
        Phase::PolicySelect,
    ];

    /// The stable snake_case name used in JSON records.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Propagate => "propagate",
            Phase::Analyze => "analyze",
            Phase::Minimize => "minimize",
            Phase::Reduce => "reduce",
            Phase::Restart => "restart",
            Phase::Inprocess => "inprocess",
            Phase::FeatureExtract => "feature_extract",
            Phase::GnnForward => "gnn_forward",
            Phase::PolicySelect => "policy_select",
        }
    }

    /// Inverse of [`name`](Self::name).
    pub fn from_name(name: &str) -> Option<Phase> {
        Phase::ALL.into_iter().find(|p| p.name() == name)
    }
}

/// Accumulated wall time and call count per [`Phase`].
///
/// # Examples
///
/// ```
/// use telemetry::{Phase, PhaseTimes};
/// use std::time::Duration;
///
/// let mut times = PhaseTimes::default();
/// times.add(Phase::Propagate, Duration::from_micros(3));
/// {
///     let _guard = times.scope(Phase::Analyze); // records on drop
/// }
/// assert_eq!(times.calls(Phase::Propagate), 1);
/// assert_eq!(times.calls(Phase::Analyze), 1);
/// assert!(times.total() >= times.elapsed(Phase::Analyze));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTimes {
    nanos: [u64; Phase::ALL.len()],
    calls: [u64; Phase::ALL.len()],
}

impl PhaseTimes {
    /// Adds one timed call to `phase`.
    #[inline]
    pub fn add(&mut self, phase: Phase, elapsed: Duration) {
        let i = phase as usize;
        // xtask: allow(hot-path-purity) enum-indexed fixed arrays: `phase as usize` < `Phase::ALL.len()` by construction
        self.nanos[i] += elapsed.as_nanos() as u64;
        // xtask: allow(hot-path-purity) enum-indexed fixed arrays: `phase as usize` < `Phase::ALL.len()` by construction
        self.calls[i] += 1;
    }

    /// Starts a scoped timer that records into `self` when dropped.
    #[inline]
    pub fn scope(&mut self, phase: Phase) -> PhaseGuard<'_> {
        PhaseGuard {
            times: self,
            phase,
            start: Instant::now(),
        }
    }

    /// Total wall time attributed to `phase`.
    pub fn elapsed(&self, phase: Phase) -> Duration {
        // xtask: allow(hot-path-purity) enum-indexed fixed arrays: `phase as usize` < `Phase::ALL.len()` by construction
        Duration::from_nanos(self.nanos[phase as usize])
    }

    /// Number of timed calls to `phase`.
    pub fn calls(&self, phase: Phase) -> u64 {
        self.calls[phase as usize]
    }

    /// Sum of all phase times.
    pub fn total(&self) -> Duration {
        Duration::from_nanos(self.nanos.iter().sum())
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &PhaseTimes) {
        for i in 0..Phase::ALL.len() {
            self.nanos[i] += other.nanos[i];
            self.calls[i] += other.calls[i];
        }
    }
}

impl ToJson for PhaseTimes {
    /// Serializes as `{phase: {"nanos": n, "calls": c}, …}`, omitting
    /// phases that were never entered.
    fn to_json(&self) -> Json {
        let mut obj = Json::object();
        for phase in Phase::ALL {
            let i = phase as usize;
            if self.calls[i] > 0 || self.nanos[i] > 0 {
                obj.set(
                    phase.name(),
                    Json::object()
                        .with("nanos", Json::from(self.nanos[i]))
                        .with("calls", Json::from(self.calls[i])),
                );
            }
        }
        obj
    }
}

impl FromJson for PhaseTimes {
    fn from_json(value: &Json) -> Result<Self, FromJsonError> {
        let fields = value
            .as_object()
            .ok_or(FromJsonError::new("phases must be an object"))?;
        let mut times = PhaseTimes::default();
        for (name, entry) in fields {
            let phase = Phase::from_name(name)
                .ok_or_else(|| FromJsonError::new(format!("unknown phase `{name}`")))?;
            let i = phase as usize;
            times.nanos[i] = entry
                .get("nanos")
                .and_then(Json::as_u64)
                .ok_or(FromJsonError::field("nanos"))?;
            times.calls[i] = entry
                .get("calls")
                .and_then(Json::as_u64)
                .ok_or(FromJsonError::field("calls"))?;
        }
        Ok(times)
    }
}

/// Scoped timer returned by [`PhaseTimes::scope`]; records on drop.
pub struct PhaseGuard<'a> {
    times: &'a mut PhaseTimes,
    phase: Phase,
    start: Instant,
}

impl Drop for PhaseGuard<'_> {
    fn drop(&mut self) {
        self.times.add(self.phase, self.start.elapsed());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_scope_accumulate() {
        let mut t = PhaseTimes::default();
        t.add(Phase::Reduce, Duration::from_nanos(10));
        t.add(Phase::Reduce, Duration::from_nanos(5));
        assert_eq!(t.calls(Phase::Reduce), 2);
        assert_eq!(t.elapsed(Phase::Reduce), Duration::from_nanos(15));
        {
            let _g = t.scope(Phase::Restart);
        }
        assert_eq!(t.calls(Phase::Restart), 1);
        assert_eq!(
            t.total(),
            t.elapsed(Phase::Reduce) + t.elapsed(Phase::Restart)
        );
    }

    #[test]
    fn names_roundtrip() {
        for p in Phase::ALL {
            assert_eq!(Phase::from_name(p.name()), Some(p));
        }
        assert_eq!(Phase::from_name("nonsense"), None);
    }

    #[test]
    fn merge_sums_componentwise() {
        let mut a = PhaseTimes::default();
        let mut b = PhaseTimes::default();
        a.add(Phase::Propagate, Duration::from_nanos(7));
        b.add(Phase::Propagate, Duration::from_nanos(3));
        b.add(Phase::Analyze, Duration::from_nanos(2));
        a.merge(&b);
        assert_eq!(a.elapsed(Phase::Propagate), Duration::from_nanos(10));
        assert_eq!(a.calls(Phase::Propagate), 2);
        assert_eq!(a.calls(Phase::Analyze), 1);
    }

    #[test]
    fn json_roundtrip_skips_idle_phases() {
        let mut t = PhaseTimes::default();
        t.add(Phase::GnnForward, Duration::from_micros(123));
        let j = t.to_json();
        assert_eq!(j.as_object().unwrap().len(), 1);
        assert_eq!(PhaseTimes::from_json(&j).unwrap(), t);
        assert_eq!(
            PhaseTimes::from_json(&PhaseTimes::default().to_json()).unwrap(),
            PhaseTimes::default()
        );
    }
}
