//! A lightweight named-metrics registry.

use crate::histogram::Histogram;
use crate::json::{Json, ToJson};
use std::collections::BTreeMap;

/// Named monotonic counters, gauges, and [`Histogram`]s.
///
/// Keys are `&'static str` so call sites stay allocation-free; storage is
/// a `BTreeMap`, giving deterministic (sorted) serialization order. This
/// registry is for *cool* paths — per-reduction or per-run bookkeeping;
/// per-conflict hot paths should own a [`Histogram`] or counter directly
/// and fold it into a registry at the end.
///
/// # Examples
///
/// ```
/// use telemetry::{Histogram, Registry};
/// let mut reg = Registry::default();
/// reg.inc("solve.restarts");
/// reg.add("solve.conflicts", 41);
/// reg.set_gauge("db.live_fraction", 0.75);
/// reg.histogram("glue", || Histogram::exponential(1, 2, 8)).record(3);
/// assert_eq!(reg.counter("solve.conflicts"), 41);
/// assert_eq!(reg.counter("solve.restarts"), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Registry {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

impl Registry {
    /// Increments a monotonic counter by 1.
    #[inline]
    pub fn inc(&mut self, name: &'static str) {
        self.add(name, 1);
    }

    /// Increments a monotonic counter by `delta`.
    #[inline]
    pub fn add(&mut self, name: &'static str, delta: u64) {
        *self.counters.entry(name).or_insert(0) += delta;
    }

    /// Reads a counter (0 when never written).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sets a gauge to an instantaneous value.
    #[inline]
    pub fn set_gauge(&mut self, name: &'static str, value: f64) {
        self.gauges.insert(name, value);
    }

    /// Reads a gauge.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// The named histogram, created by `init` on first use.
    pub fn histogram(
        &mut self,
        name: &'static str,
        init: impl FnOnce() -> Histogram,
    ) -> &mut Histogram {
        self.histograms.entry(name).or_insert_with(init)
    }

    /// Reads a histogram.
    pub fn get_histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Merges another registry: counters add, gauges take `other`'s value,
    /// histograms merge (matching bounds) or are adopted when absent here.
    pub fn merge(&mut self, other: &Registry) {
        for (&k, &v) in &other.counters {
            *self.counters.entry(k).or_insert(0) += v;
        }
        for (&k, &v) in &other.gauges {
            self.gauges.insert(k, v);
        }
        for (&k, h) in &other.histograms {
            match self.histograms.get_mut(k) {
                Some(mine) => mine.merge(h),
                None => {
                    self.histograms.insert(k, h.clone());
                }
            }
        }
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }
}

impl ToJson for Registry {
    fn to_json(&self) -> Json {
        let mut counters = Json::object();
        for (&k, &v) in &self.counters {
            counters.set(k, Json::from(v));
        }
        let mut gauges = Json::object();
        for (&k, &v) in &self.gauges {
            gauges.set(k, Json::from(v));
        }
        let mut histograms = Json::object();
        for (&k, h) in &self.histograms {
            histograms.set(k, h.to_json());
        }
        Json::object()
            .with("counters", counters)
            .with("gauges", gauges)
            .with("histograms", histograms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_default_to_zero() {
        let mut r = Registry::default();
        assert_eq!(r.counter("x"), 0);
        r.inc("x");
        r.add("x", 9);
        assert_eq!(r.counter("x"), 10);
    }

    #[test]
    fn gauges_overwrite() {
        let mut r = Registry::default();
        r.set_gauge("g", 1.0);
        r.set_gauge("g", 2.5);
        assert_eq!(r.gauge("g"), Some(2.5));
        assert_eq!(r.gauge("missing"), None);
    }

    #[test]
    fn histograms_create_once() {
        let mut r = Registry::default();
        r.histogram("h", || Histogram::linear(1, 1, 3)).record(2);
        r.histogram("h", || panic!("must not re-init")).record(3);
        assert_eq!(r.get_histogram("h").unwrap().count(), 2);
    }

    #[test]
    fn merge_combines_all_kinds() {
        let mut a = Registry::default();
        let mut b = Registry::default();
        a.add("c", 1);
        b.add("c", 2);
        b.add("only_b", 5);
        b.set_gauge("g", 9.0);
        b.histogram("h", || Histogram::linear(1, 1, 2)).record(1);
        a.merge(&b);
        assert_eq!(a.counter("c"), 3);
        assert_eq!(a.counter("only_b"), 5);
        assert_eq!(a.gauge("g"), Some(9.0));
        assert_eq!(a.get_histogram("h").unwrap().count(), 1);
    }

    #[test]
    fn json_shape_is_deterministic() {
        let mut r = Registry::default();
        r.add("b", 2);
        r.add("a", 1);
        let j = r.to_json();
        let keys: Vec<&str> = j
            .get("counters")
            .unwrap()
            .as_object()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, ["a", "b"]);
        assert!(Registry::default().is_empty());
        assert!(!r.is_empty());
    }
}
