//! The per-instance run summary.

use crate::json::{FromJson, FromJsonError, Json, ToJson};
use crate::phase::PhaseTimes;
use crate::SCHEMA_VERSION;

/// One solved instance, summarized: identity, policy, verdict, stats,
/// per-phase timings, and peak clause-database size.
///
/// `stats` and `extra` are open JSON objects filled by the producing crate
/// (the solver serializes its `SolverStats`/`DbStats` there; experiment
/// harnesses can attach their own fields) so this crate stays
/// dependency-free at the bottom of the workspace.
///
/// # Examples
///
/// ```
/// use telemetry::json::{FromJson, ToJson};
/// use telemetry::RunRecord;
///
/// let mut record = RunRecord::new("php-6-5", "prop-freq");
/// record.result = "UNSAT".to_string();
/// record.solve_time_s = 0.125;
/// let roundtripped = RunRecord::from_json(&record.to_json()).unwrap();
/// assert_eq!(record, roundtripped);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    /// Schema version of this record (see [`SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Instance identity (file name, generator tag, …).
    pub instance_id: String,
    /// Deletion policy the run used (display name).
    pub policy: String,
    /// Verdict: `"SAT"`, `"UNSAT"`, or `"UNKNOWN"`.
    pub result: String,
    /// Wall-clock seconds spent solving.
    pub solve_time_s: f64,
    /// Wall-clock seconds of model inference before solving, if any.
    pub inference_time_s: Option<f64>,
    /// Peak number of live learned clauses observed.
    pub peak_learned_clauses: u64,
    /// Per-phase wall time and call counts.
    pub phases: PhaseTimes,
    /// Producer-defined statistics object (e.g. serialized `SolverStats`).
    pub stats: Json,
    /// Producer-defined additional fields (histograms, db snapshots, …).
    pub extra: Json,
    /// Degraded-mode events observed during the run (worker crash, model
    /// fallback, budget exhaustion, …), in occurrence order. Empty for a
    /// fully healthy run.
    pub degradations: Vec<Degradation>,
}

/// One degraded-mode event: the system kept going, but not at full
/// fidelity, and this records why.
///
/// `kind` is a stable machine-readable tag (e.g. `"worker-crash"`,
/// `"model-fallback"`, `"budget-exhausted"`); `detail` is free-form
/// human-readable context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Degradation {
    /// Stable machine-readable tag of the event class.
    pub kind: String,
    /// Free-form human-readable context.
    pub detail: String,
}

impl Degradation {
    /// A degradation event of class `kind` with context `detail`.
    pub fn new(kind: impl Into<String>, detail: impl Into<String>) -> Self {
        Degradation {
            kind: kind.into(),
            detail: detail.into(),
        }
    }
}

impl ToJson for Degradation {
    fn to_json(&self) -> Json {
        Json::object()
            .with("kind", Json::from(self.kind.as_str()))
            .with("detail", Json::from(self.detail.as_str()))
    }
}

impl FromJson for Degradation {
    fn from_json(value: &Json) -> Result<Self, FromJsonError> {
        let str_field = |key: &str| -> Result<String, FromJsonError> {
            value
                .get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or(FromJsonError::field(key))
        };
        Ok(Degradation {
            kind: str_field("kind")?,
            detail: str_field("detail")?,
        })
    }
}

impl RunRecord {
    /// A fresh record for `instance_id` solved under `policy`.
    pub fn new(instance_id: impl Into<String>, policy: impl Into<String>) -> Self {
        RunRecord {
            schema_version: SCHEMA_VERSION,
            instance_id: instance_id.into(),
            policy: policy.into(),
            result: String::new(),
            solve_time_s: 0.0,
            inference_time_s: None,
            peak_learned_clauses: 0,
            phases: PhaseTimes::default(),
            stats: Json::object(),
            extra: Json::object(),
            degradations: Vec::new(),
        }
    }

    /// Appends a degraded-mode event to this record.
    pub fn degrade(&mut self, kind: impl Into<String>, detail: impl Into<String>) {
        self.degradations.push(Degradation::new(kind, detail));
    }
}

impl ToJson for RunRecord {
    fn to_json(&self) -> Json {
        Json::object()
            .with("schema_version", Json::from(self.schema_version))
            .with("instance_id", Json::from(self.instance_id.as_str()))
            .with("policy", Json::from(self.policy.as_str()))
            .with("result", Json::from(self.result.as_str()))
            .with("solve_time_s", Json::from(self.solve_time_s))
            .with(
                "inference_time_s",
                self.inference_time_s.map_or(Json::Null, Json::from),
            )
            .with(
                "peak_learned_clauses",
                Json::from(self.peak_learned_clauses),
            )
            .with("phases", self.phases.to_json())
            .with("stats", self.stats.clone())
            .with("extra", self.extra.clone())
            .with(
                "degradations",
                Json::Array(self.degradations.iter().map(ToJson::to_json).collect()),
            )
    }
}

impl FromJson for RunRecord {
    fn from_json(value: &Json) -> Result<Self, FromJsonError> {
        let str_field = |key: &str| -> Result<String, FromJsonError> {
            value
                .get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or(FromJsonError::field(key))
        };
        Ok(RunRecord {
            schema_version: value
                .get("schema_version")
                .and_then(Json::as_u64)
                .ok_or(FromJsonError::field("schema_version"))? as u32,
            instance_id: str_field("instance_id")?,
            policy: str_field("policy")?,
            result: str_field("result")?,
            solve_time_s: value
                .get("solve_time_s")
                .and_then(Json::as_f64)
                .ok_or(FromJsonError::field("solve_time_s"))?,
            inference_time_s: value.get("inference_time_s").and_then(Json::as_f64),
            peak_learned_clauses: value
                .get("peak_learned_clauses")
                .and_then(Json::as_u64)
                .ok_or(FromJsonError::field("peak_learned_clauses"))?,
            phases: value
                .get("phases")
                .map(PhaseTimes::from_json)
                .transpose()?
                .unwrap_or_default(),
            stats: value.get("stats").cloned().unwrap_or(Json::object()),
            extra: value.get("extra").cloned().unwrap_or(Json::object()),
            degradations: match value.get("degradations") {
                // Absent in schema-version-1 records: default to none.
                None | Some(Json::Null) => Vec::new(),
                Some(Json::Array(items)) => items
                    .iter()
                    .map(Degradation::from_json)
                    .collect::<Result<_, _>>()?,
                Some(_) => return Err(FromJsonError::field("degradations")),
            },
        })
    }
}

/// One admitted daemon request, summarized: the daemon-side sibling of
/// [`RunRecord`]. Where a `RunRecord` describes what a *solver* did, a
/// `RequestRecord` describes what the *service* did around it: which
/// session and worker handled the request, how long it waited in the
/// queue versus solved, and how it terminated (verdict, stop cause, or
/// typed error kind). Exactly one is emitted per admitted request — the
/// accounting unit for admission tuning and tail-latency triage.
///
/// # Examples
///
/// ```
/// use telemetry::json::{FromJson, ToJson};
/// use telemetry::RequestRecord;
///
/// let mut record = RequestRecord::new(7, 3);
/// record.verdict = "sat".to_string();
/// record.queue_wait_ms = 2.5;
/// record.solve_ms = 40.0;
/// let roundtripped = RequestRecord::from_json(&record.to_json()).unwrap();
/// assert_eq!(record, roundtripped);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RequestRecord {
    /// Schema version of this record (see [`SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Daemon-minted request id, echoed verbatim in the wire reply.
    pub request_id: u64,
    /// Session the request addressed.
    pub session: u64,
    /// Worker thread index that executed the request.
    pub worker: u64,
    /// Milliseconds spent queued between admission and checkout.
    pub queue_wait_ms: f64,
    /// Milliseconds of solver wall-clock (0 for pre-solve failures).
    pub solve_ms: f64,
    /// Terminal verdict: `"sat"`, `"unsat"`, `"unknown"`, or `"error"`.
    pub verdict: String,
    /// Stop cause of an `"unknown"` verdict (`"deadline"`, `"memory"`, …).
    pub stop_cause: Option<String>,
    /// Error kind of an `"error"` verdict (`"crashed"`, `"eliminated"`, …).
    pub error_kind: Option<String>,
    /// Solver stat *deltas* attributable to this request (serialized
    /// `SolverStats`), or an empty object when the solver never ran.
    pub stats: Json,
    /// Degraded-mode events of this request, in occurrence order.
    pub degradations: Vec<Degradation>,
}

impl RequestRecord {
    /// A fresh record for request `request_id` on session `session`.
    pub fn new(request_id: u64, session: u64) -> Self {
        RequestRecord {
            schema_version: SCHEMA_VERSION,
            request_id,
            session,
            worker: 0,
            queue_wait_ms: 0.0,
            solve_ms: 0.0,
            verdict: String::new(),
            stop_cause: None,
            error_kind: None,
            stats: Json::object(),
            degradations: Vec::new(),
        }
    }

    /// Appends a degraded-mode event to this record.
    pub fn degrade(&mut self, kind: impl Into<String>, detail: impl Into<String>) {
        self.degradations.push(Degradation::new(kind, detail));
    }
}

impl ToJson for RequestRecord {
    fn to_json(&self) -> Json {
        let opt_str = |v: &Option<String>| match v {
            Some(s) => Json::from(s.as_str()),
            None => Json::Null,
        };
        Json::object()
            .with("schema_version", Json::from(self.schema_version))
            .with("request_id", Json::from(self.request_id))
            .with("session", Json::from(self.session))
            .with("worker", Json::from(self.worker))
            .with("queue_wait_ms", Json::from(self.queue_wait_ms))
            .with("solve_ms", Json::from(self.solve_ms))
            .with("verdict", Json::from(self.verdict.as_str()))
            .with("stop_cause", opt_str(&self.stop_cause))
            .with("error_kind", opt_str(&self.error_kind))
            .with("stats", self.stats.clone())
            .with(
                "degradations",
                Json::Array(self.degradations.iter().map(ToJson::to_json).collect()),
            )
    }
}

impl FromJson for RequestRecord {
    fn from_json(value: &Json) -> Result<Self, FromJsonError> {
        let u64_field = |key: &str| -> Result<u64, FromJsonError> {
            value
                .get(key)
                .and_then(Json::as_u64)
                .ok_or(FromJsonError::field(key))
        };
        let f64_field = |key: &str| -> Result<f64, FromJsonError> {
            value
                .get(key)
                .and_then(Json::as_f64)
                .ok_or(FromJsonError::field(key))
        };
        let opt_str = |key: &str| value.get(key).and_then(Json::as_str).map(str::to_string);
        Ok(RequestRecord {
            schema_version: u64_field("schema_version")? as u32,
            request_id: u64_field("request_id")?,
            session: u64_field("session")?,
            worker: u64_field("worker")?,
            queue_wait_ms: f64_field("queue_wait_ms")?,
            solve_ms: f64_field("solve_ms")?,
            verdict: value
                .get("verdict")
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or(FromJsonError::field("verdict"))?,
            stop_cause: opt_str("stop_cause"),
            error_kind: opt_str("error_kind"),
            stats: value.get("stats").cloned().unwrap_or(Json::object()),
            degradations: match value.get("degradations") {
                None | Some(Json::Null) => Vec::new(),
                Some(Json::Array(items)) => items
                    .iter()
                    .map(Degradation::from_json)
                    .collect::<Result<_, _>>()?,
                Some(_) => return Err(FromJsonError::field("degradations")),
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phase::Phase;
    use std::time::Duration;

    #[test]
    fn roundtrip_full_record() {
        let mut r = RunRecord::new("inst", "default");
        r.result = "SAT".to_string();
        r.solve_time_s = 1.5;
        r.inference_time_s = Some(0.01);
        r.peak_learned_clauses = 321;
        r.phases.add(Phase::Propagate, Duration::from_micros(7));
        r.stats = Json::object().with("conflicts", Json::from(9u64));
        r.extra = Json::object().with("note", Json::from("x"));
        assert_eq!(RunRecord::from_json(&r.to_json()).unwrap(), r);
    }

    #[test]
    fn optional_inference_time_serializes_as_null() {
        let r = RunRecord::new("i", "p");
        let j = r.to_json();
        assert_eq!(j.get("inference_time_s"), Some(&Json::Null));
        assert_eq!(RunRecord::from_json(&j).unwrap().inference_time_s, None);
    }

    #[test]
    fn missing_required_field_is_an_error() {
        let j = RunRecord::new("i", "p").to_json();
        let Json::Object(mut fields) = j else {
            unreachable!()
        };
        fields.retain(|(k, _)| k != "instance_id");
        assert!(RunRecord::from_json(&Json::Object(fields)).is_err());
    }

    #[test]
    fn roundtrip_full_request_record() {
        let mut r = RequestRecord::new(42, 7);
        r.worker = 1;
        r.queue_wait_ms = 3.25;
        r.solve_ms = 120.5;
        r.verdict = "unknown".to_string();
        r.stop_cause = Some("deadline".to_string());
        r.stats = Json::object().with("conflicts", Json::from(9u64));
        r.degrade("daemon-degraded", "deadline");
        assert_eq!(RequestRecord::from_json(&r.to_json()).unwrap(), r);
    }

    #[test]
    fn error_request_record_roundtrips_with_null_stop_cause() {
        let mut r = RequestRecord::new(1, 2);
        r.verdict = "error".to_string();
        r.error_kind = Some("crashed".to_string());
        let j = r.to_json();
        assert_eq!(j.get("stop_cause"), Some(&Json::Null));
        assert_eq!(RequestRecord::from_json(&j).unwrap(), r);
    }

    #[test]
    fn request_record_missing_required_field_is_an_error() {
        let j = RequestRecord::new(1, 2).to_json();
        let Json::Object(mut fields) = j else {
            unreachable!()
        };
        fields.retain(|(k, _)| k != "request_id");
        assert!(RequestRecord::from_json(&Json::Object(fields)).is_err());
    }
}
