//! Fixed-bucket histograms for solver-shaped distributions (glue,
//! learned-clause length, trail depth at conflict).

use crate::json::{FromJson, FromJsonError, Json, ToJson};

/// A histogram over `u64` observations with fixed bucket upper bounds.
///
/// Bucket `i` counts observations `v` with `v <= bounds[i]` (and greater
/// than the previous bound); one implicit overflow bucket counts
/// everything above the last bound. Recording is O(#buckets) with no
/// allocation, cheap enough for per-conflict use.
///
/// # Examples
///
/// ```
/// use telemetry::Histogram;
/// let mut h = Histogram::with_bounds(&[2, 4, 8]);
/// for v in [1, 2, 3, 9, 100] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 5);
/// assert_eq!(h.bucket_counts(), &[2, 1, 0, 2]); // ≤2, ≤4, ≤8, overflow
/// assert_eq!(h.max(), Some(100));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    bounds: Vec<u64>,
    /// `bounds.len() + 1` slots; the last is the overflow bucket.
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Histogram {
    /// A histogram with the given strictly increasing bucket upper bounds.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly increasing.
    pub fn with_bounds(bounds: &[u64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Linear bounds `start, start+width, …` (`count` buckets).
    ///
    /// # Panics
    ///
    /// Panics if `width == 0` or `count == 0`.
    pub fn linear(start: u64, width: u64, count: usize) -> Self {
        assert!(width > 0 && count > 0, "need positive width and count");
        let bounds: Vec<u64> = (0..count as u64).map(|i| start + i * width).collect();
        Histogram::with_bounds(&bounds)
    }

    /// Exponential bounds `start, start*factor, …` (`count` buckets).
    ///
    /// # Panics
    ///
    /// Panics if `start == 0`, `factor < 2`, or `count == 0`.
    pub fn exponential(start: u64, factor: u64, count: usize) -> Self {
        assert!(
            start > 0 && factor >= 2 && count > 0,
            "degenerate exponential bounds"
        );
        let mut bounds = Vec::with_capacity(count);
        let mut b = start;
        for _ in 0..count {
            bounds.push(b);
            b = b.saturating_mul(factor);
        }
        bounds.dedup(); // saturation can repeat u64::MAX
        Histogram::with_bounds(&bounds)
    }

    /// Records one observation.
    #[inline]
    pub fn record(&mut self, value: u64) {
        let i = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[i] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation, or `None` when empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation, or `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean observation, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The bucket upper bounds.
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Per-bucket counts; the final slot is the overflow bucket.
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// An upper bound on the `q`-quantile (0.0–1.0): the smallest bucket
    /// bound at which the cumulative count reaches `q * count`. Returns
    /// `None` when empty; the overflow bucket reports the observed max.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut cumulative = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            cumulative += c;
            if cumulative >= rank {
                return Some(if i < self.bounds.len() {
                    self.bounds[i]
                } else {
                    self.max
                });
            }
        }
        Some(self.max)
    }

    /// The `q`-quantile (0.0–1.0) estimated by linear interpolation inside
    /// the bucket containing the target rank. Returns `None` when empty.
    ///
    /// Unlike [`Histogram::quantile`] (which reports the bucket's upper
    /// *bound*, a conservative ceiling), this interpolates between the
    /// bucket's edges — clamped to the observed min/max so wide first or
    /// overflow buckets cannot invent values outside the data.
    pub fn quantile_interpolated(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).max(1.0);
        let mut cumulative = 0.0;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let next = cumulative + c as f64;
            if next >= target {
                let lower = if i == 0 {
                    self.min as f64
                } else {
                    self.bounds[i - 1] as f64
                };
                let upper = if i < self.bounds.len() {
                    self.bounds[i] as f64
                } else {
                    self.max as f64
                };
                let (lower, upper) = (
                    lower.clamp(self.min as f64, self.max as f64),
                    upper.clamp(self.min as f64, self.max as f64),
                );
                let frac = ((target - cumulative) / c as f64).clamp(0.0, 1.0);
                return Some(lower + frac * (upper - lower));
            }
            cumulative = next;
        }
        Some(self.max as f64)
    }

    /// Interpolated median; see [`Histogram::quantile_interpolated`].
    pub fn p50(&self) -> Option<f64> {
        self.quantile_interpolated(0.50)
    }

    /// Interpolated 90th percentile; see [`Histogram::quantile_interpolated`].
    pub fn p90(&self) -> Option<f64> {
        self.quantile_interpolated(0.90)
    }

    /// Interpolated 99th percentile; see [`Histogram::quantile_interpolated`].
    pub fn p99(&self) -> Option<f64> {
        self.quantile_interpolated(0.99)
    }

    /// Interpolated 99.9th percentile; see
    /// [`Histogram::quantile_interpolated`]. The tail meter for latency
    /// reports where rare outliers (GC-like pauses, reduction storms)
    /// hide inside an ordinary-looking p99.
    pub fn p999(&self) -> Option<f64> {
        self.quantile_interpolated(0.999)
    }

    /// Merges another histogram with identical bounds into this one.
    ///
    /// # Panics
    ///
    /// Panics if the bucket bounds differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.bounds, other.bounds,
            "merging histograms with different bounds"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl ToJson for Histogram {
    fn to_json(&self) -> Json {
        Json::object()
            .with("bounds", Json::from(self.bounds.clone()))
            .with("counts", Json::from(self.counts.clone()))
            .with("count", Json::from(self.count))
            .with("sum", Json::from(self.sum))
            .with("min", self.min().map_or(Json::Null, Json::from))
            .with("max", self.max().map_or(Json::Null, Json::from))
    }
}

impl FromJson for Histogram {
    fn from_json(value: &Json) -> Result<Self, FromJsonError> {
        let u64s = |key: &str| -> Result<Vec<u64>, FromJsonError> {
            value
                .get(key)
                .and_then(Json::as_array)
                .ok_or(FromJsonError::field(key))?
                .iter()
                .map(|v| v.as_u64().ok_or(FromJsonError::field(key)))
                .collect()
        };
        let bounds = u64s("bounds")?;
        let counts = u64s("counts")?;
        if counts.len() != bounds.len() + 1 {
            return Err(FromJsonError::new(
                "histogram counts/bounds length mismatch",
            ));
        }
        let mut h = Histogram::with_bounds(&bounds);
        h.counts = counts;
        h.count = value
            .get("count")
            .and_then(Json::as_u64)
            .ok_or(FromJsonError::field("count"))?;
        h.sum = value
            .get("sum")
            .and_then(Json::as_u64)
            .ok_or(FromJsonError::field("sum"))?;
        h.min = value.get("min").and_then(Json::as_u64).unwrap_or(u64::MAX);
        h.max = value.get("max").and_then(Json::as_u64).unwrap_or(0);
        Ok(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_partition_observations() {
        let mut h = Histogram::with_bounds(&[1, 2, 4, 8]);
        for v in 0..=10 {
            h.record(v);
        }
        // ≤1: {0,1}; ≤2: {2}; ≤4: {3,4}; ≤8: {5..=8}; overflow: {9,10}
        assert_eq!(h.bucket_counts(), &[2, 1, 2, 4, 2]);
        assert_eq!(h.count(), 11);
        assert_eq!(h.sum(), 55);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(10));
        assert!((h.mean() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn constructors() {
        assert_eq!(Histogram::linear(1, 2, 4).bounds(), &[1, 3, 5, 7]);
        assert_eq!(Histogram::exponential(1, 2, 5).bounds(), &[1, 2, 4, 8, 16]);
    }

    #[test]
    fn quantiles() {
        let mut h = Histogram::exponential(1, 2, 8);
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), Some(1));
        assert_eq!(h.quantile(0.5), Some(64));
        assert_eq!(h.quantile(1.0), Some(128));
        assert_eq!(Histogram::linear(1, 1, 2).quantile(0.5), None);
    }

    #[test]
    fn interpolated_quantiles_track_uniform_data() {
        let mut h = Histogram::exponential(1, 2, 8);
        for v in 1..=100u64 {
            h.record(v);
        }
        // Uniform 1..=100: interpolation should land near the true
        // percentiles, and strictly inside the conservative bucket bounds.
        let p50 = h.p50().unwrap();
        let p90 = h.p90().unwrap();
        let p99 = h.p99().unwrap();
        let p999 = h.p999().unwrap();
        assert!((40.0..=64.0).contains(&p50), "p50 = {p50}");
        assert!((80.0..=100.0).contains(&p90), "p90 = {p90}");
        assert!((90.0..=100.0).contains(&p99), "p99 = {p99}");
        assert!((90.0..=100.0).contains(&p999), "p999 = {p999}");
        assert!(
            p50 <= p90 && p90 <= p99 && p99 <= p999,
            "quantiles must be monotone"
        );
        assert_eq!(Histogram::linear(1, 1, 2).p999(), None);
        // Edges clamp to observed data, never to the raw bucket bounds.
        assert!(h.quantile_interpolated(0.0).unwrap() >= 1.0);
        assert!((h.quantile_interpolated(1.0).unwrap() - 100.0).abs() < 1e-9);
        assert_eq!(Histogram::linear(1, 1, 2).p50(), None);
    }

    #[test]
    fn interpolated_quantiles_on_single_value() {
        let mut h = Histogram::exponential(1, 2, 6);
        h.record(7);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert!((h.quantile_interpolated(q).unwrap() - 7.0).abs() < 1e-9);
        }
    }

    #[test]
    fn merge_accumulates() {
        let mut a = Histogram::with_bounds(&[5, 10]);
        let mut b = a.clone();
        a.record(3);
        b.record(7);
        b.record(100);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.bucket_counts(), &[1, 1, 1]);
        assert_eq!(a.min(), Some(3));
        assert_eq!(a.max(), Some(100));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_unsorted_bounds() {
        let _ = Histogram::with_bounds(&[3, 2]);
    }

    #[test]
    fn json_roundtrip() {
        let mut h = Histogram::exponential(1, 2, 6);
        for v in [0, 1, 5, 9, 1000] {
            h.record(v);
        }
        let parsed = Histogram::from_json(&h.to_json()).unwrap();
        assert_eq!(h, parsed);
        let empty = Histogram::linear(1, 1, 3);
        assert_eq!(Histogram::from_json(&empty.to_json()).unwrap(), empty);
    }
}
