//! Live metrics: a sharded, lock-free registry of named counters and
//! gauges, drained by a background [`Sampler`] into a versioned JSONL
//! time series.
//!
//! Where [`RunRecord`](crate::RunRecord) answers "what did the solve
//! cost?" after the fact and [`trace`](crate::trace) answers "what
//! happened when?" span by span, this module answers "what is the solver
//! doing *right now*": propagation and conflict rates, learned-clause and
//! clause-pool traffic, the live memory estimate, and the pipeline's
//! inference latency, all readable while the search is running.
//!
//! # Two-tier gating
//!
//! The module mirrors the overhead discipline of [`trace`](crate::trace):
//!
//! 1. **Cargo feature.** Without the `metrics` feature, [`enabled`] is
//!    `const false`, [`arm`] refuses, and every entry point reduces to a
//!    branch on a compile-time constant the optimizer deletes. Hot-path
//!    call sites in the solver crates are *additionally* wrapped in
//!    `#[cfg(feature = "metrics")]` (enforced by the `metrics-feature-gate`
//!    xtask rule), so default builds carry no metrics code at all.
//! 2. **Runtime arming.** With the feature on, recording still costs one
//!    relaxed atomic load until [`arm`] is called. Armed increments are a
//!    single relaxed `fetch_add` on a shard mostly private to the calling
//!    thread — no locks, no allocation.
//!
//! # Sharding
//!
//! Counter storage is split across [`NUM_SHARDS`] independently allocated
//! shards; each thread is assigned a shard round-robin on first use and
//! keeps it for life. Portfolio workers therefore increment disjoint cache
//! lines instead of contending on one global counter array. A
//! [`snapshot`] sums the shards — reads are racy-by-design (relaxed), which
//! is fine for monitoring: every counter is monotonic, so a snapshot is a
//! consistent lower bound.
//!
//! # Metric names
//!
//! The name tables in [`Counter::name`] and [`Gauge::name`] are a
//! stability contract with dashboards and the perf-trajectory harness.
//! `xtask lint` compares them against the golden manifest
//! `crates/xtask/metrics.names`; `cargo run -p xtask -- metrics-update`
//! regenerates it after an intentional change.
//!
//! # Examples
//!
//! ```
//! use telemetry::metrics::{self, Counter, Gauge};
//!
//! if metrics::arm() {
//!     metrics::add(Counter::Propagations, 128);
//!     metrics::inc(Counter::Conflicts);
//!     metrics::set_gauge(Gauge::MemoryBytes, 4096.0);
//!     let snap = metrics::snapshot();
//!     assert_eq!(snap.counter(Counter::Propagations), 128);
//!     metrics::disarm();
//! } else {
//!     // Built without `--features metrics`: recording is compiled out.
//!     assert!(!metrics::enabled());
//! }
//! ```

use crate::json::{Json, ToJson};
use crate::SCHEMA_VERSION;
use std::cell::Cell;
use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Whether this build carries metrics support (the `metrics` cargo
/// feature). `const`, so disabled call sites fold to nothing.
pub const fn enabled() -> bool {
    cfg!(feature = "metrics")
}

/// Number of counter shards. Threads are assigned round-robin, so up to
/// this many concurrent writers never share a counter cache line.
pub const NUM_SHARDS: usize = 8;

/// A registered counter: monotonic, `u64`, incremented on the hot path.
///
/// The closed set keeps the registry a fixed array — no hashing or
/// allocation per increment. The wire names returned by
/// [`name`](Counter::name) are pinned by the `metrics-names` manifest.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Counter {
    /// BCP assignments made inside the search loop.
    Propagations,
    /// Conflicts found by propagation.
    Conflicts,
    /// Branching decisions.
    Decisions,
    /// Restarts performed.
    Restarts,
    /// Clause-database reductions performed.
    Reductions,
    /// Clauses learned from conflict analysis.
    LearnedClauses,
    /// Learned clauses deleted by reduction.
    DeletedClauses,
    /// Wall nanoseconds spent in BCP (the `propagate` phase).
    PropagateNanos,
    /// Completed `propagate` phase calls.
    PropagateCalls,
    /// Wall nanoseconds spent in conflict analysis (incl. minimization).
    AnalyzeNanos,
    /// Completed `analyze` phase calls.
    AnalyzeCalls,
    /// Wall nanoseconds spent reducing the clause database.
    ReduceNanos,
    /// Completed `reduce` phase calls.
    ReduceCalls,
    /// Wall nanoseconds spent in inprocessing rounds.
    InprocessNanos,
    /// Completed inprocessing rounds.
    InprocessCalls,
    /// Clauses deleted by in-search subsumption.
    InprocessSubsumed,
    /// Clauses shortened by self-subsuming resolution or vivification.
    InprocessStrengthened,
    /// Variables eliminated by in-search bounded variable elimination.
    InprocessEliminated,
    /// Clauses this process exported to the shared portfolio pool.
    PoolExported,
    /// Clause copies imported from the shared portfolio pool.
    PoolImported,
    /// Model inferences run by the NeuroSelect pipeline.
    Inferences,
    /// Wall nanoseconds spent in model inference.
    InferenceNanos,
    /// Daemon requests admitted past admission control.
    DaemonAdmitted,
    /// Daemon requests rejected by admission control (`busy`).
    DaemonRejected,
    /// Daemon sessions evicted for idleness or memory pressure.
    DaemonEvicted,
    /// Daemon sessions quarantined after a solver panic.
    DaemonCrashed,
    /// Daemon solves degraded to `unknown` by their deadline.
    DaemonDeadlineExceeded,
    /// Daemon requests that reached a terminal record (any verdict,
    /// including degraded and error outcomes).
    DaemonCompleted,
}

impl Counter {
    /// All counters, in registry (and serialization) order.
    pub const ALL: [Counter; 28] = [
        Counter::Propagations,
        Counter::Conflicts,
        Counter::Decisions,
        Counter::Restarts,
        Counter::Reductions,
        Counter::LearnedClauses,
        Counter::DeletedClauses,
        Counter::PropagateNanos,
        Counter::PropagateCalls,
        Counter::AnalyzeNanos,
        Counter::AnalyzeCalls,
        Counter::ReduceNanos,
        Counter::ReduceCalls,
        Counter::InprocessNanos,
        Counter::InprocessCalls,
        Counter::InprocessSubsumed,
        Counter::InprocessStrengthened,
        Counter::InprocessEliminated,
        Counter::PoolExported,
        Counter::PoolImported,
        Counter::Inferences,
        Counter::InferenceNanos,
        Counter::DaemonAdmitted,
        Counter::DaemonRejected,
        Counter::DaemonEvicted,
        Counter::DaemonCrashed,
        Counter::DaemonDeadlineExceeded,
        Counter::DaemonCompleted,
    ];

    /// The stable wire name (see the `metrics-names` manifest rule).
    pub fn name(self) -> &'static str {
        // metrics-names:begin counters (parsed by xtask; one `=> "name"` per line)
        match self {
            Counter::Propagations => "solver.propagations",
            Counter::Conflicts => "solver.conflicts",
            Counter::Decisions => "solver.decisions",
            Counter::Restarts => "solver.restarts",
            Counter::Reductions => "solver.reductions",
            Counter::LearnedClauses => "solver.learned_clauses",
            Counter::DeletedClauses => "solver.deleted_clauses",
            Counter::PropagateNanos => "phase.propagate_ns",
            Counter::PropagateCalls => "phase.propagate_calls",
            Counter::AnalyzeNanos => "phase.analyze_ns",
            Counter::AnalyzeCalls => "phase.analyze_calls",
            Counter::ReduceNanos => "phase.reduce_ns",
            Counter::ReduceCalls => "phase.reduce_calls",
            Counter::InprocessNanos => "phase.inprocess_ns",
            Counter::InprocessCalls => "phase.inprocess_calls",
            Counter::InprocessSubsumed => "inprocess.subsumed",
            Counter::InprocessStrengthened => "inprocess.strengthened",
            Counter::InprocessEliminated => "inprocess.eliminated_vars",
            Counter::PoolExported => "pool.exported",
            Counter::PoolImported => "pool.imported",
            Counter::Inferences => "pipeline.inferences",
            Counter::InferenceNanos => "pipeline.inference_ns",
            Counter::DaemonAdmitted => "daemon.admitted",
            Counter::DaemonRejected => "daemon.rejected",
            Counter::DaemonEvicted => "daemon.evicted",
            Counter::DaemonCrashed => "daemon.crashed",
            Counter::DaemonDeadlineExceeded => "daemon.deadline_exceeded",
            Counter::DaemonCompleted => "daemon.completed",
        }
        // metrics-names:end counters
    }

    /// Whether snapshots derive a `<name>_per_sec` rate meter for this
    /// counter (the headline live rates: propagations, conflicts, learned
    /// clauses, and pool import/export traffic).
    pub fn rated(self) -> bool {
        matches!(
            self,
            Counter::Propagations
                | Counter::Conflicts
                | Counter::LearnedClauses
                | Counter::PoolExported
                | Counter::PoolImported
        )
    }
}

/// A registered gauge: a last-write-wins `f64` set on cool paths
/// (reduction boundaries, pipeline decisions).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Gauge {
    /// Live memory estimate of the solver, in bytes.
    MemoryBytes,
    /// Live learned clauses currently in the database.
    LiveLearned,
    /// Wall seconds of the most recent model inference.
    InferenceLastSeconds,
    /// Probability the model assigned to its most recent policy pick.
    PolicyConfidence,
    /// Live sessions currently open in the daemon.
    DaemonSessions,
    /// Aggregate approximate memory of the daemon's live solvers, bytes.
    DaemonMemoryBytes,
    /// Daemon requests currently queued or running (admitted, not yet
    /// terminal).
    DaemonInFlight,
}

impl Gauge {
    /// All gauges, in registry (and serialization) order.
    pub const ALL: [Gauge; 7] = [
        Gauge::MemoryBytes,
        Gauge::LiveLearned,
        Gauge::InferenceLastSeconds,
        Gauge::PolicyConfidence,
        Gauge::DaemonSessions,
        Gauge::DaemonMemoryBytes,
        Gauge::DaemonInFlight,
    ];

    /// The stable wire name (see the `metrics-names` manifest rule).
    pub fn name(self) -> &'static str {
        // metrics-names:begin gauges (parsed by xtask; one `=> "name"` per line)
        match self {
            Gauge::MemoryBytes => "solver.memory_bytes",
            Gauge::LiveLearned => "solver.live_learned_clauses",
            Gauge::InferenceLastSeconds => "pipeline.inference_last_s",
            Gauge::PolicyConfidence => "pipeline.policy_confidence",
            Gauge::DaemonSessions => "daemon.sessions",
            Gauge::DaemonMemoryBytes => "daemon.memory_bytes",
            Gauge::DaemonInFlight => "daemon.in_flight",
        }
        // metrics-names:end gauges
    }
}

/// One shard of counter storage. Shards are separately heap-allocated so
/// different workers' hot counters land on different cache lines.
struct Shard {
    counters: Box<[AtomicU64]>,
}

impl Shard {
    fn new() -> Shard {
        Shard {
            counters: (0..Counter::ALL.len()).map(|_| AtomicU64::new(0)).collect(),
        }
    }
}

/// The process-global registry: counter shards plus unsharded gauges
/// (gauges are last-write-wins, so sharding them would be meaningless).
struct Registry {
    shards: Vec<Shard>,
    /// Gauge values as `f64` bits; NaN bits mean "never set".
    gauges: Box<[AtomicU64]>,
}

impl Registry {
    fn new() -> Registry {
        Registry {
            shards: (0..NUM_SHARDS).map(|_| Shard::new()).collect(),
            gauges: (0..Gauge::ALL.len())
                .map(|_| AtomicU64::new(f64::NAN.to_bits()))
                .collect(),
        }
    }

    fn reset(&self) {
        for shard in &self.shards {
            for c in shard.counters.iter() {
                c.store(0, Ordering::Relaxed);
            }
        }
        for g in self.gauges.iter() {
            g.store(f64::NAN.to_bits(), Ordering::Relaxed);
        }
    }
}

static REGISTRY: OnceLock<Registry> = OnceLock::new();
static ARMED: AtomicBool = AtomicBool::new(false);
static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// This thread's shard index; `usize::MAX` until first use.
    static SHARD: Cell<usize> = const { Cell::new(usize::MAX) };
}

fn registry() -> &'static Registry {
    REGISTRY.get_or_init(Registry::new)
}

#[inline]
fn shard_index() -> usize {
    SHARD.with(|cell| {
        let cached = cell.get();
        if cached != usize::MAX {
            return cached;
        }
        let idx = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % NUM_SHARDS;
        cell.set(idx);
        idx
    })
}

/// Arms the registry: zeroes every counter, clears every gauge, and turns
/// recording on, returning `true`. Without the `metrics` feature this is a
/// no-op returning `false` — callers that *require* metrics should treat
/// that as a configuration error (as `rsat --metrics-out` does).
///
/// The registry is process-global; tests that arm it must serialize.
pub fn arm() -> bool {
    if !enabled() {
        return false;
    }
    registry().reset();
    ARMED.store(true, Ordering::Release);
    true
}

/// Turns recording off. Counter values remain readable via [`snapshot`]
/// until the next [`arm`].
pub fn disarm() {
    ARMED.store(false, Ordering::Release);
}

/// Whether the registry is currently recording.
#[inline]
pub fn armed() -> bool {
    enabled() && ARMED.load(Ordering::Relaxed)
}

/// Adds `delta` to a counter: one relaxed `fetch_add` on the calling
/// thread's shard when armed, nothing otherwise. Never allocates.
#[inline]
pub fn add(counter: Counter, delta: u64) {
    if !armed() {
        return;
    }
    let reg = registry();
    reg.shards[shard_index()].counters[counter as usize].fetch_add(delta, Ordering::Relaxed);
}

/// Increments a counter by one; see [`add`].
#[inline]
pub fn inc(counter: Counter) {
    add(counter, 1);
}

/// Sets a gauge (last write wins). Meant for cool paths.
#[inline]
pub fn set_gauge(gauge: Gauge, value: f64) {
    if !armed() {
        return;
    }
    registry().gauges[gauge as usize].store(value.to_bits(), Ordering::Relaxed);
}

/// Phase timers sample one in this many calls per thread. Clock reads are
/// the dominant cost of metering a phase that runs tens of thousands of
/// times per second; sampling keeps the armed-registry overhead on the
/// search loop under the DESIGN §13 budget while the scaled estimate in
/// the `phase.*_ns` counters stays unbiased.
pub const PHASE_SAMPLE_EVERY: u64 = 64;

thread_local! {
    /// Per-thread tick selecting which [`phase_timer`] calls get a clock.
    static PHASE_TICK: Cell<u64> = const { Cell::new(0) };
}

/// Starts a phase timer: `Some(now)` when armed **and** this call is
/// sampled (the first call on each thread, then every
/// [`PHASE_SAMPLE_EVERY`]th), `None` otherwise, so disarmed runs and
/// unsampled calls skip the clock read entirely.
#[inline]
pub fn phase_timer() -> Option<Instant> {
    if !armed() {
        return None;
    }
    PHASE_TICK.with(|t| {
        let tick = t.get();
        t.set(tick.wrapping_add(1));
        if tick % PHASE_SAMPLE_EVERY == 0 {
            Some(Instant::now())
        } else {
            None
        }
    })
}

/// Completes a [`phase_timer`]: counts one call into `calls` (exact —
/// every armed call lands here), and for sampled starts records the
/// elapsed nanoseconds scaled by [`PHASE_SAMPLE_EVERY`] into `nanos`, an
/// unbiased estimate of the phase's total time. Disarmed: records
/// nothing.
#[inline]
pub fn phase_done(start: Option<Instant>, nanos: Counter, calls: Counter) {
    if !armed() {
        return;
    }
    inc(calls);
    if let Some(t0) = start {
        add(
            nanos,
            (t0.elapsed().as_nanos() as u64).saturating_mul(PHASE_SAMPLE_EVERY),
        );
    }
}

/// Reads the registry into a point-in-time snapshot: counters summed
/// across shards, gauges as last written. `seq` and `elapsed_s` are zero;
/// the caller (normally the [`Sampler`]) stamps them.
pub fn snapshot() -> MetricsSnapshot {
    let reg = registry();
    let counters = Counter::ALL
        .iter()
        .map(|&c| {
            reg.shards
                .iter()
                .map(|s| s.counters[c as usize].load(Ordering::Relaxed))
                .sum()
        })
        .collect();
    let gauges = Gauge::ALL
        .iter()
        .map(|&g| f64::from_bits(reg.gauges[g as usize].load(Ordering::Relaxed)))
        .collect();
    MetricsSnapshot {
        seq: 0,
        elapsed_s: 0.0,
        counters,
        gauges,
    }
}

/// One point-in-time reading of the registry.
///
/// Serialized as a `metrics_snapshot` JSONL event (see
/// [`to_json_line`](MetricsSnapshot::to_json_line)); the shape is pinned
/// by the schema golden test alongside the [`RunRecord`](crate::RunRecord)
/// events.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Monotonic snapshot number within one sampler run (0-based).
    pub seq: u64,
    /// Seconds since the sampler (or its caller) started.
    pub elapsed_s: f64,
    /// Counter values in [`Counter::ALL`] order.
    counters: Vec<u64>,
    /// Gauge values in [`Gauge::ALL`] order; NaN means "never set".
    gauges: Vec<f64>,
}

impl MetricsSnapshot {
    /// Builds a snapshot from explicit values — for tests and replay
    /// tooling. `counters`/`gauges` are in [`Counter::ALL`] /
    /// [`Gauge::ALL`] order and are padded with zero / NaN ("unset") when
    /// short.
    pub fn from_parts(seq: u64, elapsed_s: f64, counters: Vec<u64>, gauges: Vec<f64>) -> Self {
        let mut counters = counters;
        counters.resize(Counter::ALL.len(), 0);
        let mut gauges = gauges;
        gauges.resize(Gauge::ALL.len(), f64::NAN);
        MetricsSnapshot {
            seq,
            elapsed_s,
            counters,
            gauges,
        }
    }

    /// The value of `counter` at snapshot time.
    pub fn counter(&self, counter: Counter) -> u64 {
        self.counters[counter as usize]
    }

    /// The value of `gauge`, or `None` if it was never set.
    pub fn gauge(&self, gauge: Gauge) -> Option<f64> {
        let v = self.gauges[gauge as usize];
        if v.is_nan() {
            None
        } else {
            Some(v)
        }
    }

    /// Per-second rate of `counter` since `prev`, or `None` when the
    /// interval is not positive (clock went nowhere or snapshots are out
    /// of order). Counter resets (a re-[`arm`]) saturate to zero.
    pub fn rate_since(&self, prev: &MetricsSnapshot, counter: Counter) -> Option<f64> {
        let dt = self.elapsed_s - prev.elapsed_s;
        if dt <= 0.0 {
            return None;
        }
        let delta = self.counter(counter).saturating_sub(prev.counter(counter));
        Some(delta as f64 / dt)
    }

    /// Serializes one versioned JSONL event. All counters are always
    /// present; gauges appear once set; `rates` carries the
    /// `<name>_per_sec` meters for [rated](Counter::rated) counters when a
    /// previous snapshot is available.
    pub fn to_json_line(&self, prev: Option<&MetricsSnapshot>) -> Json {
        let mut counters = Json::object();
        for c in Counter::ALL {
            counters.set(c.name(), Json::from(self.counter(c)));
        }
        let mut gauges = Json::object();
        for g in Gauge::ALL {
            if let Some(v) = self.gauge(g) {
                gauges.set(g.name(), Json::from(v));
            }
        }
        let mut rates = Json::object();
        if let Some(prev) = prev {
            for c in Counter::ALL.into_iter().filter(|c| c.rated()) {
                if let Some(rate) = self.rate_since(prev, c) {
                    rates.set(&format!("{}_per_sec", c.name()), Json::from(rate));
                }
            }
        }
        Json::object()
            .with("schema_version", Json::from(SCHEMA_VERSION))
            .with("event", Json::from("metrics_snapshot"))
            .with("seq", Json::from(self.seq))
            .with("elapsed_s", Json::from(self.elapsed_s))
            .with("counters", counters)
            .with("gauges", gauges)
            .with("rates", rates)
    }
}

impl ToJson for MetricsSnapshot {
    /// [`to_json_line`](Self::to_json_line) without rate meters (no
    /// previous snapshot to difference against).
    fn to_json(&self) -> Json {
        self.to_json_line(None)
    }
}

/// Live-view callback: the fresh snapshot plus the previous one (for
/// instantaneous rates).
pub type SnapshotObserver = Box<dyn FnMut(&MetricsSnapshot, Option<&MetricsSnapshot>) + Send>;

/// What one sampler run produced, returned by [`Sampler::stop`].
#[derive(Debug)]
pub struct SamplerReport {
    /// Snapshots taken (including the final one on stop).
    pub snapshots: u64,
    /// The final snapshot.
    pub last: Option<MetricsSnapshot>,
    /// First write error, if the output stream failed. Later writes are
    /// skipped once an error is recorded (same sticky-error policy as
    /// `JsonlSink`).
    pub io_error: Option<String>,
}

/// Background thread draining the registry on a fixed interval.
///
/// Each tick takes a [`snapshot`], stamps `seq`/`elapsed_s`, writes one
/// [`to_json_line`](MetricsSnapshot::to_json_line) to the writer (when
/// given), and invokes the observer (when given). [`stop`](Sampler::stop)
/// requests shutdown, waits for one final snapshot, and returns the
/// [`SamplerReport`]. Dropping a `Sampler` without calling `stop` also
/// shuts the thread down, discarding the report.
pub struct Sampler {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<SamplerReport>>,
}

impl Sampler {
    /// Spawns the sampler thread. `interval` is clamped to at least one
    /// millisecond. The sampler itself does not [`arm`] the registry — do
    /// that first, or every snapshot reads zeros.
    pub fn spawn(
        interval: Duration,
        writer: Option<Box<dyn Write + Send>>,
        observer: Option<SnapshotObserver>,
    ) -> Sampler {
        let interval = interval.max(Duration::from_millis(1));
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("metrics-sampler".to_string())
            .spawn(move || run_sampler(interval, &stop_flag, writer, observer))
            .ok();
        // Thread-spawn failure degrades to a dead sampler whose stop()
        // reports zero snapshots — monitoring must never take the run down.
        Sampler { stop, handle }
    }

    /// Stops the thread (after one final snapshot) and returns its report.
    pub fn stop(mut self) -> SamplerReport {
        self.stop.store(true, Ordering::Release);
        match self.handle.take().map(std::thread::JoinHandle::join) {
            Some(Ok(report)) => report,
            _ => SamplerReport {
                snapshots: 0,
                last: None,
                io_error: Some("sampler thread unavailable".to_string()),
            },
        }
    }
}

impl Drop for Sampler {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

fn run_sampler(
    interval: Duration,
    stop: &AtomicBool,
    mut writer: Option<Box<dyn Write + Send>>,
    mut observer: Option<SnapshotObserver>,
) -> SamplerReport {
    let started = Instant::now();
    let mut prev: Option<MetricsSnapshot> = None;
    let mut seq = 0u64;
    let mut io_error: Option<String> = None;
    loop {
        // Sleep in short slices so stop() returns promptly even with a
        // long sampling interval.
        let tick_deadline = Instant::now() + interval;
        let mut stopping = stop.load(Ordering::Acquire);
        while !stopping {
            let now = Instant::now();
            if now >= tick_deadline {
                break;
            }
            std::thread::sleep((tick_deadline - now).min(Duration::from_millis(20)));
            stopping = stop.load(Ordering::Acquire);
        }
        let mut snap = snapshot();
        snap.seq = seq;
        snap.elapsed_s = started.elapsed().as_secs_f64();
        seq += 1;
        if let Some(w) = writer.as_mut() {
            if io_error.is_none() {
                let line = snap.to_json_line(prev.as_ref()).to_string();
                let write = writeln!(w, "{line}").and_then(|()| w.flush());
                if let Err(e) = write {
                    io_error = Some(e.to_string());
                }
            }
        }
        if let Some(obs) = observer.as_mut() {
            obs(&snap, prev.as_ref());
        }
        prev = Some(snap);
        if stopping {
            return SamplerReport {
                snapshots: seq,
                last: prev,
                io_error,
            };
        }
    }
}

/// Serializes access to the process-global armed flag across tests in
/// this crate (mirrors `trace::tests::serial`).
#[cfg(test)]
pub(crate) fn serial() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[test]
    fn name_tables_are_unique_and_well_formed() {
        let mut names: Vec<&str> = Counter::ALL
            .iter()
            .map(|c| c.name())
            .chain(Gauge::ALL.iter().map(|g| g.name()))
            .collect();
        let total = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), total, "duplicate metric name");
        for name in names {
            assert!(
                name.chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || "._".contains(c)),
                "metric name {name:?} breaks the [a-z0-9._] convention"
            );
        }
    }

    #[test]
    fn disarmed_recording_is_a_no_op() {
        let _guard = serial();
        disarm();
        add(Counter::Propagations, 999);
        set_gauge(Gauge::MemoryBytes, 1.0);
        assert!(phase_timer().is_none());
        if enabled() {
            assert!(arm());
            let snap = snapshot();
            assert_eq!(snap.counter(Counter::Propagations), 0);
            assert_eq!(snap.gauge(Gauge::MemoryBytes), None);
            disarm();
        } else {
            assert!(!arm(), "arming must refuse without the feature");
        }
    }

    #[test]
    fn snapshot_round_trips_counters_and_gauges() {
        let _guard = serial();
        if !arm() {
            return; // feature off: covered by disarmed_recording_is_a_no_op
        }
        add(Counter::Conflicts, 41);
        inc(Counter::Conflicts);
        set_gauge(Gauge::LiveLearned, 17.0);
        set_gauge(Gauge::LiveLearned, 18.0);
        let snap = snapshot();
        assert_eq!(snap.counter(Counter::Conflicts), 42);
        assert_eq!(snap.gauge(Gauge::LiveLearned), Some(18.0));
        assert_eq!(snap.gauge(Gauge::PolicyConfidence), None);
        disarm();
    }

    #[test]
    fn rearming_resets_the_registry() {
        let _guard = serial();
        if !arm() {
            return;
        }
        add(Counter::Decisions, 7);
        assert!(arm(), "re-arming must succeed");
        assert_eq!(snapshot().counter(Counter::Decisions), 0);
        disarm();
    }

    #[test]
    fn concurrent_increments_from_many_threads_are_all_counted() {
        let _guard = serial();
        if !arm() {
            return;
        }
        const THREADS: usize = 8;
        const PER_THREAD: u64 = 50_000;
        std::thread::scope(|scope| {
            for _ in 0..THREADS {
                scope.spawn(|| {
                    for i in 0..PER_THREAD {
                        inc(Counter::Propagations);
                        if i % 64 == 0 {
                            // Interleave racy reads: totals must only grow.
                            let snap = snapshot();
                            assert!(
                                snap.counter(Counter::Propagations) <= THREADS as u64 * PER_THREAD
                            );
                        }
                    }
                });
            }
        });
        let snap = snapshot();
        assert_eq!(
            snap.counter(Counter::Propagations),
            THREADS as u64 * PER_THREAD,
            "lock-free increments lost updates"
        );
        disarm();
    }

    #[test]
    fn rates_difference_consecutive_snapshots() {
        let a = MetricsSnapshot::from_parts(0, 1.0, vec![1000], vec![]);
        let mut counters = vec![0; Counter::ALL.len()];
        counters[Counter::Propagations as usize] = 3000;
        let b = MetricsSnapshot::from_parts(1, 3.0, counters, vec![]);
        assert_eq!(b.rate_since(&a, Counter::Propagations), Some(1000.0));
        assert_eq!(a.rate_since(&a, Counter::Propagations), None, "dt == 0");
        // A reset (b → a) saturates to zero instead of underflowing.
        let mut later = a.clone();
        later.elapsed_s = 5.0;
        assert_eq!(later.rate_since(&b, Counter::Propagations), Some(0.0));
    }

    #[test]
    fn sampler_writes_jsonl_and_reports_the_final_snapshot() {
        let _guard = serial();
        let armed = arm();
        let buf: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
        struct SharedBuf(Arc<Mutex<Vec<u8>>>);
        impl Write for SharedBuf {
            fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(data);
                Ok(data.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let seen = Arc::new(AtomicU64::new(0));
        let seen_in_obs = Arc::clone(&seen);
        let sampler = Sampler::spawn(
            Duration::from_millis(5),
            Some(Box::new(SharedBuf(Arc::clone(&buf)))),
            Some(Box::new(move |snap, _prev| {
                seen_in_obs.store(snap.seq + 1, Ordering::Relaxed);
            })),
        );
        if armed {
            add(Counter::Propagations, 12345);
        }
        std::thread::sleep(Duration::from_millis(30));
        let report = sampler.stop();
        assert!(report.snapshots >= 1, "stop() must take a final snapshot");
        assert_eq!(report.io_error, None);
        assert_eq!(seen.load(Ordering::Relaxed), report.snapshots);
        let last = report.last.expect("final snapshot");
        if armed {
            assert_eq!(last.counter(Counter::Propagations), 12345);
        }
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len() as u64, report.snapshots);
        for line in lines {
            let v = Json::parse(line).expect("sampler emitted invalid JSON");
            assert_eq!(
                v.get("event").and_then(Json::as_str),
                Some("metrics_snapshot")
            );
            assert_eq!(
                v.get("schema_version").and_then(Json::as_u64),
                Some(u64::from(SCHEMA_VERSION))
            );
            assert!(v.get("counters").is_some() && v.get("rates").is_some());
        }
        disarm();
    }
}
