//! Pluggable event sinks: where instrumentation goes when it leaves
//! the solver.

use crate::json::{FromJson, FromJsonError, Json, ToJson};
use crate::record::{RequestRecord, RunRecord};
use crate::SCHEMA_VERSION;
use std::io::{self, Write};
use std::sync::{Arc, Mutex};

/// A structured telemetry event.
///
/// Every event serializes to a single JSON object carrying
/// `"schema_version"` and a discriminating `"event"` field, so a JSONL
/// stream stays self-describing line by line.
// `SolveEnd` carries the full run summary and dwarfs the other variants;
// events are created once per emission, never stored in bulk, so the
// size imbalance is harmless.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A solve began on one instance.
    SolveStart {
        /// Instance identity (file name, generator tag, …).
        instance_id: String,
        /// Deletion policy chosen for the run (display name).
        policy: String,
        /// Variable count of the input formula.
        num_vars: u64,
        /// Clause count of the input formula.
        num_clauses: u64,
    },
    /// A periodic heartbeat while solving.
    Progress {
        /// Conflicts so far.
        conflicts: u64,
        /// Propagations (literal assignments by BCP) so far.
        propagations: u64,
        /// Decisions so far.
        decisions: u64,
        /// Live learned clauses right now.
        learned: u64,
        /// Seconds since the solve started.
        elapsed_s: f64,
        /// Conflict throughput since the solve started.
        conflicts_per_sec: f64,
        /// Propagation throughput since the solve started.
        propagations_per_sec: f64,
    },
    /// A clause-database reduction completed.
    Reduction {
        /// 1-based ordinal of this reduction within the run.
        reduction_no: u64,
        /// Clauses considered for deletion.
        candidates: u64,
        /// Clauses actually deleted.
        deleted: u64,
        /// Live learned clauses after the reduction.
        learned_after: u64,
        /// Conflicts at the time of the reduction.
        conflicts: u64,
    },
    /// The solve finished; carries the full summary.
    SolveEnd {
        /// Per-instance run summary.
        record: RunRecord,
    },
    /// An admitted daemon request reached its terminal state; carries
    /// the per-request accounting summary.
    RequestEnd {
        /// Per-request daemon summary.
        record: RequestRecord,
    },
}

impl Event {
    /// The value of this event's `"event"` discriminator field.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::SolveStart { .. } => "solve_start",
            Event::Progress { .. } => "progress",
            Event::Reduction { .. } => "reduction",
            Event::SolveEnd { .. } => "solve_end",
            Event::RequestEnd { .. } => "request_end",
        }
    }
}

impl ToJson for Event {
    fn to_json(&self) -> Json {
        let base = Json::object()
            .with("schema_version", Json::from(SCHEMA_VERSION))
            .with("event", Json::from(self.kind()));
        match self {
            Event::SolveStart {
                instance_id,
                policy,
                num_vars,
                num_clauses,
            } => base
                .with("instance_id", Json::from(instance_id.as_str()))
                .with("policy", Json::from(policy.as_str()))
                .with("num_vars", Json::from(*num_vars))
                .with("num_clauses", Json::from(*num_clauses)),
            Event::Progress {
                conflicts,
                propagations,
                decisions,
                learned,
                elapsed_s,
                conflicts_per_sec,
                propagations_per_sec,
            } => base
                .with("conflicts", Json::from(*conflicts))
                .with("propagations", Json::from(*propagations))
                .with("decisions", Json::from(*decisions))
                .with("learned", Json::from(*learned))
                .with("elapsed_s", Json::from(*elapsed_s))
                .with("conflicts_per_sec", Json::from(*conflicts_per_sec))
                .with("propagations_per_sec", Json::from(*propagations_per_sec)),
            Event::Reduction {
                reduction_no,
                candidates,
                deleted,
                learned_after,
                conflicts,
            } => base
                .with("reduction_no", Json::from(*reduction_no))
                .with("candidates", Json::from(*candidates))
                .with("deleted", Json::from(*deleted))
                .with("learned_after", Json::from(*learned_after))
                .with("conflicts", Json::from(*conflicts)),
            Event::SolveEnd { record } => base.with("record", record.to_json()),
            Event::RequestEnd { record } => base.with("record", record.to_json()),
        }
    }
}

impl FromJson for Event {
    fn from_json(value: &Json) -> Result<Self, FromJsonError> {
        let kind = value
            .get("event")
            .and_then(Json::as_str)
            .ok_or(FromJsonError::field("event"))?;
        let u64_field = |key: &str| -> Result<u64, FromJsonError> {
            value
                .get(key)
                .and_then(Json::as_u64)
                .ok_or(FromJsonError::field(key))
        };
        let f64_field = |key: &str| -> Result<f64, FromJsonError> {
            value
                .get(key)
                .and_then(Json::as_f64)
                .ok_or(FromJsonError::field(key))
        };
        match kind {
            "solve_start" => Ok(Event::SolveStart {
                instance_id: value
                    .get("instance_id")
                    .and_then(Json::as_str)
                    .ok_or(FromJsonError::field("instance_id"))?
                    .to_string(),
                policy: value
                    .get("policy")
                    .and_then(Json::as_str)
                    .ok_or(FromJsonError::field("policy"))?
                    .to_string(),
                num_vars: u64_field("num_vars")?,
                num_clauses: u64_field("num_clauses")?,
            }),
            "progress" => Ok(Event::Progress {
                conflicts: u64_field("conflicts")?,
                propagations: u64_field("propagations")?,
                decisions: u64_field("decisions")?,
                learned: u64_field("learned")?,
                elapsed_s: f64_field("elapsed_s")?,
                conflicts_per_sec: f64_field("conflicts_per_sec")?,
                propagations_per_sec: f64_field("propagations_per_sec")?,
            }),
            "reduction" => Ok(Event::Reduction {
                reduction_no: u64_field("reduction_no")?,
                candidates: u64_field("candidates")?,
                deleted: u64_field("deleted")?,
                learned_after: u64_field("learned_after")?,
                conflicts: u64_field("conflicts")?,
            }),
            "solve_end" => Ok(Event::SolveEnd {
                record: RunRecord::from_json(
                    value.get("record").ok_or(FromJsonError::field("record"))?,
                )?,
            }),
            "request_end" => Ok(Event::RequestEnd {
                record: RequestRecord::from_json(
                    value.get("record").ok_or(FromJsonError::field("record"))?,
                )?,
            }),
            other => Err(FromJsonError::new(format!("unknown event kind `{other}`"))),
        }
    }
}

/// A destination for [`Event`]s.
///
/// Sinks must be `Send` so a solve can run on a worker thread (the
/// parallel batch runner hands each worker its own sink). Implementations
/// should be cheap: the solver calls `emit` from inside its search loop
/// for progress heartbeats.
pub trait Sink: Send {
    /// Consumes one event.
    fn emit(&mut self, event: &Event);

    /// Flushes any buffered output. The default does nothing.
    fn flush(&mut self) {}
}

/// The zero-cost default sink: drops every event.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl Sink for NullSink {
    #[inline]
    fn emit(&mut self, _event: &Event) {}
}

/// An in-memory sink for tests: records every event, shareable across
/// threads via a clone of its handle.
///
/// # Examples
///
/// ```
/// use telemetry::{Event, MemorySink, RunRecord, Sink};
///
/// let mut sink = MemorySink::default();
/// let events = sink.events_handle();
/// sink.emit(&Event::SolveEnd { record: RunRecord::new("i", "default") });
/// assert_eq!(events.lock().unwrap().len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct MemorySink {
    events: Arc<Mutex<Vec<Event>>>,
}

impl MemorySink {
    /// A shared handle to the recorded events.
    pub fn events_handle(&self) -> Arc<Mutex<Vec<Event>>> {
        Arc::clone(&self.events)
    }

    /// A snapshot of the events recorded so far.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().unwrap().clone()
    }
}

impl Sink for MemorySink {
    fn emit(&mut self, event: &Event) {
        self.events.lock().unwrap().push(event.clone());
    }
}

/// Writes one JSON object per line to any [`Write`] target.
///
/// Lines follow the versioned event schema (see [`SCHEMA_VERSION`] and
/// DESIGN.md); field names are stable within a schema version.
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    writer: W,
    error: Option<io::Error>,
}

impl<W: Write> JsonlSink<W> {
    /// Wraps a writer; each emitted event becomes one line.
    pub fn new(writer: W) -> Self {
        JsonlSink {
            writer,
            error: None,
        }
    }

    /// The first I/O error hit while emitting or flushing, if any.
    ///
    /// Telemetry must never take the solver down, so write failures do not
    /// panic and do not propagate — but they are not silently swallowed
    /// either: the first error is retained here and all subsequent emits
    /// become no-ops (a failed writer never receives a fresh line that
    /// could interleave with a torn one).
    pub fn last_error(&self) -> Option<&io::Error> {
        self.error.as_ref()
    }

    /// Unwraps the inner writer (flushing first).
    pub fn into_inner(mut self) -> W {
        let _ = self.writer.flush();
        self.writer
    }
}

impl<W: Write + Send> Sink for JsonlSink<W> {
    fn emit(&mut self, event: &Event) {
        if self.error.is_some() {
            return;
        }
        // One write_all per record: every line preceding a mid-line I/O
        // failure is complete and parseable — torn bytes can only appear
        // at the exact cut point, never before it.
        let mut line = event.to_json().to_string();
        line.push('\n');
        if let Err(e) = self.writer.write_all(line.as_bytes()) {
            self.error = Some(e);
        }
    }

    fn flush(&mut self) {
        if let Err(e) = self.writer.flush() {
            self.error.get_or_insert(e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<Event> {
        let mut record = RunRecord::new("inst-1", "prop-freq");
        record.result = "SAT".to_string();
        let mut request = RequestRecord::new(9, 4);
        request.verdict = "sat".to_string();
        request.queue_wait_ms = 1.5;
        request.solve_ms = 12.0;
        vec![
            Event::SolveStart {
                instance_id: "inst-1".to_string(),
                policy: "prop-freq".to_string(),
                num_vars: 50,
                num_clauses: 218,
            },
            Event::Progress {
                conflicts: 1000,
                propagations: 50_000,
                decisions: 1500,
                learned: 800,
                elapsed_s: 0.5,
                conflicts_per_sec: 2000.0,
                propagations_per_sec: 100_000.0,
            },
            Event::Reduction {
                reduction_no: 1,
                candidates: 600,
                deleted: 300,
                learned_after: 500,
                conflicts: 2000,
            },
            Event::SolveEnd { record },
            Event::RequestEnd { record: request },
        ]
    }

    #[test]
    fn every_event_kind_roundtrips() {
        for event in sample_events() {
            let j = event.to_json();
            assert_eq!(
                j.get("schema_version").and_then(Json::as_u64),
                Some(u64::from(SCHEMA_VERSION))
            );
            assert_eq!(j.get("event").and_then(Json::as_str), Some(event.kind()));
            assert_eq!(Event::from_json(&j).unwrap(), event);
        }
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_event() {
        let mut sink = JsonlSink::new(Vec::new());
        for event in sample_events() {
            sink.emit(&event);
        }
        let out = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 5);
        for (line, event) in lines.iter().zip(sample_events()) {
            let parsed = Json::parse(line).unwrap();
            assert_eq!(Event::from_json(&parsed).unwrap(), event);
        }
    }

    #[test]
    fn memory_sink_is_observable_through_its_handle() {
        let mut sink = MemorySink::default();
        let handle = sink.events_handle();
        for event in sample_events() {
            sink.emit(&event);
        }
        assert_eq!(handle.lock().unwrap().len(), 5);
        assert_eq!(sink.events(), sample_events());
    }

    #[test]
    fn null_sink_drops_everything() {
        let mut sink = NullSink;
        for event in sample_events() {
            sink.emit(&event);
        }
        // Nothing to observe — the point is that this compiles and is free.
    }

    #[test]
    fn sinks_are_object_safe_and_send() {
        fn assert_send<T: Send>(_: &T) {}
        let mut boxed: Box<dyn Sink> = Box::new(JsonlSink::new(Vec::new()));
        assert_send(&boxed);
        boxed.emit(&sample_events()[0]);
        boxed.flush();
    }
}
