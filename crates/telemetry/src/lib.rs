//! Structured observability for the NeuroSelect workspace.
//!
//! The paper's whole argument rests on in-flight solver measurements —
//! propagation-frequency snapshots, per-policy deletion behaviour, runtime
//! deltas with GNN inference accounted separately from solving. This crate
//! is the measurement substrate those experiments (and every later
//! performance PR) report against:
//!
//! * [`Registry`] — named monotonic counters, gauges, and fixed-bucket
//!   [`Histogram`]s;
//! * [`Phase`] / [`PhaseTimes`] — scoped wall-time and call counts for the
//!   solver's `propagate` / `analyze` / `minimize` / `reduce` / `restart`
//!   phases and the pipeline's `feature-extract` / `gnn-forward` /
//!   `policy-select` phases;
//! * [`Sink`] — pluggable event output: [`NullSink`] (the zero-cost
//!   default), [`MemorySink`] (tests), and [`JsonlSink`] (versioned,
//!   schema-stable JSONL records);
//! * [`RunRecord`] — the one-per-instance summary (instance id, policy,
//!   result, stats, per-phase timings, peak clause-DB size);
//! * [`trace`] — low-overhead span tracing into per-thread ring buffers
//!   with Chrome trace-event export (behind the `trace` cargo feature);
//! * [`metrics`] — a sharded, lock-free live registry of named counters
//!   and gauges with a background snapshot [`metrics::Sampler`] emitting
//!   versioned JSONL time series (behind the `metrics` cargo feature).
//!
//! Serialization is handled by the self-contained [`json`] module (the
//! build environment is offline, so `serde`/`serde_json` are replaced by
//! [`json::ToJson`] / [`json::FromJson`] with the same derive-style
//! round-trip contract).
//!
//! # Schema stability
//!
//! Every emitted JSONL event carries `"schema_version"`. Field renames or
//! removals bump [`SCHEMA_VERSION`]; adding fields does not. A golden-file
//! test in this crate pins the current schema.
//!
//! # Examples
//!
//! ```
//! use telemetry::{Event, JsonlSink, Phase, PhaseTimes, RunRecord, Sink};
//! use std::time::Duration;
//!
//! let mut phases = PhaseTimes::default();
//! phases.add(Phase::Propagate, Duration::from_micros(250));
//!
//! let mut record = RunRecord::new("example-instance", "default");
//! record.result = "SAT".to_string();
//! record.phases = phases;
//!
//! let mut sink = JsonlSink::new(Vec::new());
//! sink.emit(&Event::SolveEnd { record });
//! let out = String::from_utf8(sink.into_inner()).unwrap();
//! assert!(out.contains("\"schema_version\""));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod json;
pub mod metrics;
pub mod trace;

mod histogram;
mod phase;
mod record;
mod registry;
mod sink;

pub use histogram::Histogram;
pub use phase::{Phase, PhaseGuard, PhaseTimes};
pub use record::{Degradation, RequestRecord, RunRecord};
pub use registry::Registry;
pub use sink::{Event, JsonlSink, MemorySink, NullSink, Sink};

/// Version of the JSONL event schema emitted by [`JsonlSink`].
///
/// Bumped on any breaking change (field rename/removal or semantic
/// change); purely additive fields do not bump it. Version 2 added the
/// always-present `degradations` array to [`RunRecord`] (bumped, despite
/// being additive, because degraded-mode accounting changes how consumers
/// must interpret an `UNKNOWN` result: absence of the field no longer
/// implies a fully healthy run).
pub const SCHEMA_VERSION: u32 = 2;
