//! Low-overhead span tracing into per-thread ring buffers.
//!
//! This module records *time-resolved* evidence of where a run spends its
//! wall clock: hierarchical spans ([`span`], ended by dropping the returned
//! [`SpanGuard`]) and point-in-time [`instant`] events. Events land in a
//! fixed-capacity ring buffer owned by the recording thread — no locks, no
//! shared cache lines, and no allocation on the hot path (the buffer is
//! allocated once, on a thread's first recorded event). When the ring is
//! full the oldest events are overwritten, so a bounded amount of memory
//! always holds the *most recent* window of activity.
//!
//! # Life cycle
//!
//! 1. [`arm`] turns recording on process-wide (it is off by default; every
//!    record entry point is a single relaxed atomic load when disarmed).
//! 2. Threads record via [`span`] / [`instant`] / [`instant_with`], and tag
//!    their lane with [`set_lane`] (the portfolio gives each worker its own
//!    Chrome `pid` so traces render one lane per worker).
//! 3. Each thread calls [`flush`] before it exits, moving its ring into a
//!    global collector. This is what makes crash drains work: events
//!    recorded before a `catch_unwind`-isolated panic are still in the
//!    thread-local ring afterwards, and the supervising closure flushes
//!    them along with the crash instants it records itself.
//! 4. The coordinating thread calls [`drain`] (which flushes its own ring
//!    first) and feeds the logs to [`chrome_trace`] to build a Chrome
//!    trace-event JSON document loadable in Perfetto / `chrome://tracing`.
//!
//! # Feature gating
//!
//! Without the `trace` cargo feature every function here is a no-op that
//! the optimizer erases: [`arm`] refuses to arm, so the armed check at each
//! entry point is a constant `false` and the recording code is dead.
//! Solver BCP hot-path call sites are additionally wrapped in
//! `#[cfg(feature = "trace")]` so a default build contains no trace code at
//! all (an `xtask` lint rule enforces this), keeping `--portfolio=1` stats
//! and tier-1 timings byte-identical with the feature off.

use crate::json::Json;
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Default per-thread ring capacity (events), used when [`arm`] is given 0.
pub const DEFAULT_CAPACITY: usize = 1 << 16;

/// Maximum number of key/value arguments carried by one event.
pub const MAX_ARGS: usize = 2;

/// What a single [`TraceEvent`] marks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceKind {
    /// A span opened (paired with a later [`TraceKind::End`] on the same
    /// thread; spans nest strictly because they end on guard drop).
    Begin,
    /// A span closed.
    End,
    /// A point-in-time event.
    Instant,
}

/// One recorded event. `Copy` and free of heap data so ring writes are a
/// handful of stores.
#[derive(Clone, Copy, Debug)]
pub struct TraceEvent {
    /// Begin / end / instant marker.
    pub kind: TraceKind,
    /// Static event name (also the Chrome trace event name).
    pub name: &'static str,
    /// Nanoseconds since the process-wide trace epoch (first use of the
    /// monotonic clock by this module).
    pub t_ns: u64,
    /// Up to [`MAX_ARGS`] key/value arguments; a key of `""` means unused.
    pub args: [(&'static str, u64); MAX_ARGS],
}

const NO_ARGS: [(&str, u64); MAX_ARGS] = [("", 0); MAX_ARGS];

/// The drained contents of one thread's ring buffer.
#[derive(Clone, Debug)]
pub struct ThreadLog {
    /// Chrome `pid` lane this thread renders into (workers get
    /// `worker index + 1`; the coordinating/pipeline thread keeps 0).
    pub pid: u32,
    /// Human-readable lane label (becomes the Chrome process name).
    pub label: String,
    /// Number of events lost to ring wrap-around (oldest-first overwrite).
    pub dropped: u64,
    /// Surviving events in chronological order.
    pub events: Vec<TraceEvent>,
}

/// Whether the `trace` cargo feature is compiled in.
///
/// `rsat` uses this to reject `--trace-out` on a build that cannot record
/// anything, instead of silently writing an empty trace.
pub const fn enabled() -> bool {
    cfg!(feature = "trace")
}

static ARMED: AtomicBool = AtomicBool::new(false);
static CAPACITY: AtomicUsize = AtomicUsize::new(DEFAULT_CAPACITY);

fn epoch() -> &'static Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now)
}

fn collector() -> &'static Mutex<Vec<ThreadLog>> {
    static COLLECTED: OnceLock<Mutex<Vec<ThreadLog>>> = OnceLock::new();
    COLLECTED.get_or_init(|| Mutex::new(Vec::new()))
}

fn now_ns() -> u64 {
    // Saturates after ~584 years of process uptime; fine for traces.
    epoch().elapsed().as_nanos() as u64
}

struct Ring {
    buf: Vec<TraceEvent>,
    capacity: usize,
    /// Next overwrite position once `buf.len() == capacity`.
    head: usize,
    dropped: u64,
    pid: u32,
    label: String,
}

impl Ring {
    fn new(capacity: usize) -> Self {
        Ring {
            buf: Vec::with_capacity(capacity),
            capacity,
            head: 0,
            dropped: 0,
            pid: 0,
            label: "main".to_string(),
        }
    }

    fn push(&mut self, ev: TraceEvent) {
        if self.buf.len() < self.capacity {
            self.buf.push(ev);
        } else if self.capacity > 0 {
            self.buf[self.head] = ev;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        } else {
            self.dropped += 1;
        }
    }

    /// Events in chronological order (rotating out the wrap point).
    fn into_log(mut self) -> ThreadLog {
        self.buf.rotate_left(self.head);
        ThreadLog {
            pid: self.pid,
            label: self.label,
            dropped: self.dropped,
            events: self.buf,
        }
    }
}

thread_local! {
    static RING: RefCell<Option<Ring>> = const { RefCell::new(None) };
}

fn record(ev: TraceEvent) {
    RING.with(|cell| {
        let mut slot = cell.borrow_mut();
        let ring = slot.get_or_insert_with(|| Ring::new(CAPACITY.load(Ordering::Relaxed)));
        ring.push(ev);
    });
}

/// Turns recording on process-wide.
///
/// `capacity` is the per-thread ring size in events (0 selects
/// [`DEFAULT_CAPACITY`]). Without the `trace` feature this is a no-op and
/// [`armed`] stays `false`.
pub fn arm(capacity: usize) {
    if !enabled() {
        return;
    }
    let capacity = if capacity == 0 {
        DEFAULT_CAPACITY
    } else {
        capacity
    };
    CAPACITY.store(capacity, Ordering::Relaxed);
    // Pin the epoch before any event so timestamps never precede it.
    let _ = epoch();
    ARMED.store(true, Ordering::Relaxed);
}

/// Turns recording off. Already-recorded rings remain drainable.
pub fn disarm() {
    ARMED.store(false, Ordering::Relaxed);
}

/// Whether recording is currently armed (always `false` without the
/// `trace` feature).
pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// A scoped span: records `Begin` on creation (via [`span`]) and `End` on
/// drop. Spans on one thread therefore nest strictly (LIFO).
#[must_use = "a span ends when its guard drops; binding to `_` ends it immediately"]
pub struct SpanGuard {
    name: &'static str,
    live: bool,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.live && armed() {
            record(TraceEvent {
                kind: TraceKind::End,
                name: self.name,
                t_ns: now_ns(),
                args: NO_ARGS,
            });
        }
    }
}

/// Opens a span named `name`; it ends when the returned guard drops.
pub fn span(name: &'static str) -> SpanGuard {
    let live = armed();
    if live {
        record(TraceEvent {
            kind: TraceKind::Begin,
            name,
            t_ns: now_ns(),
            args: NO_ARGS,
        });
    }
    SpanGuard { name, live }
}

/// Opens a span like [`span`], attaching up to [`MAX_ARGS`] integer
/// arguments to its begin event (extra pairs are ignored). The exporter
/// carries the arguments on the resulting complete event.
pub fn span_with(name: &'static str, args: &[(&'static str, u64)]) -> SpanGuard {
    let live = armed();
    if live {
        let mut packed = NO_ARGS;
        for (slot, arg) in packed.iter_mut().zip(args.iter()) {
            *slot = *arg;
        }
        record(TraceEvent {
            kind: TraceKind::Begin,
            name,
            t_ns: now_ns(),
            args: packed,
        });
    }
    SpanGuard { name, live }
}

/// Nanoseconds since the trace epoch right now, or 0 when disarmed.
///
/// Capture this at the *start* of an interval whose span you can only
/// record later (e.g. queue wait, measurable only once a worker picks
/// the job up) and close it with [`span_retro`].
pub fn epoch_ns() -> u64 {
    if !armed() {
        return 0;
    }
    now_ns()
}

/// Records a span retroactively: begin at `started_ns` (an earlier
/// [`epoch_ns`] reading, clamped to now), end now. The two events are
/// pushed adjacently, so the exporter pairs them even when the interval
/// overlaps other spans recorded in between on this thread.
pub fn span_retro(name: &'static str, started_ns: u64, args: &[(&'static str, u64)]) {
    if !armed() {
        return;
    }
    let end_ns = now_ns();
    let mut packed = NO_ARGS;
    for (slot, arg) in packed.iter_mut().zip(args.iter()) {
        *slot = *arg;
    }
    record(TraceEvent {
        kind: TraceKind::Begin,
        name,
        t_ns: started_ns.min(end_ns),
        args: packed,
    });
    record(TraceEvent {
        kind: TraceKind::End,
        name,
        t_ns: end_ns,
        args: NO_ARGS,
    });
}

/// Records a point-in-time event.
pub fn instant(name: &'static str) {
    instant_with(name, &[]);
}

/// Records a point-in-time event carrying up to [`MAX_ARGS`] integer
/// arguments (extra pairs are ignored).
pub fn instant_with(name: &'static str, args: &[(&'static str, u64)]) {
    if !armed() {
        return;
    }
    let mut packed = NO_ARGS;
    for (slot, arg) in packed.iter_mut().zip(args.iter()) {
        *slot = *arg;
    }
    record(TraceEvent {
        kind: TraceKind::Instant,
        name,
        t_ns: now_ns(),
        args: packed,
    });
}

/// Tags the current thread's lane: `pid` is the Chrome process id
/// (one per portfolio worker), `label` its display name. No-op when
/// disarmed, so untraced runs never allocate a ring.
pub fn set_lane(pid: u32, label: &str) {
    if !armed() {
        return;
    }
    RING.with(|cell| {
        let mut slot = cell.borrow_mut();
        let ring = slot.get_or_insert_with(|| Ring::new(CAPACITY.load(Ordering::Relaxed)));
        ring.pid = pid;
        ring.label = label.to_string();
    });
}

/// Moves the current thread's ring (if any) into the global collector.
///
/// Every traced thread must call this before exiting — including after a
/// `catch_unwind`-isolated worker crash, where the events recorded up to
/// the panic are exactly the evidence worth keeping.
pub fn flush() {
    let ring = RING.with(|cell| cell.borrow_mut().take());
    if let Some(ring) = ring {
        let log = ring.into_log();
        if !log.events.is_empty() || log.dropped > 0 {
            collector().lock().unwrap().push(log);
        }
    }
}

/// Flushes the current thread, then removes and returns all collected
/// thread logs, ordered by `pid` (stable for equal pids).
pub fn drain() -> Vec<ThreadLog> {
    flush();
    let mut logs = std::mem::take(&mut *collector().lock().unwrap());
    logs.sort_by_key(|l| l.pid);
    logs
}

fn micros(t_ns: u64) -> Json {
    Json::F64(t_ns as f64 / 1000.0)
}

fn args_json(args: &[(&'static str, u64); MAX_ARGS]) -> Option<Json> {
    let pairs: Vec<(String, Json)> = args
        .iter()
        .filter(|(k, _)| !k.is_empty())
        .map(|&(k, v)| (k.to_string(), Json::from(v)))
        .collect();
    if pairs.is_empty() {
        None
    } else {
        Some(Json::Object(pairs))
    }
}

fn event_base(ph: &str, pid: u32, name: &str, t_ns: u64) -> Vec<(String, Json)> {
    vec![
        ("ph".to_string(), Json::from(ph)),
        ("pid".to_string(), Json::from(u64::from(pid))),
        ("tid".to_string(), Json::from(0u64)),
        ("name".to_string(), Json::from(name)),
        ("ts".to_string(), micros(t_ns)),
    ]
}

fn metadata(pid: u32, meta_name: &str, value: &str) -> Json {
    Json::Object(vec![
        ("ph".to_string(), Json::from("M")),
        ("pid".to_string(), Json::from(u64::from(pid))),
        ("tid".to_string(), Json::from(0u64)),
        ("name".to_string(), Json::from(meta_name)),
        (
            "args".to_string(),
            Json::Object(vec![("name".to_string(), Json::from(value))]),
        ),
    ])
}

/// Builds a Chrome trace-event JSON document from drained thread logs.
///
/// Span begin/end pairs become `"ph":"X"` complete events, instants become
/// `"ph":"i"` with thread scope, and each lane gets `process_name` /
/// `thread_name` metadata. `End` events whose `Begin` was lost to ring
/// wrap-around are skipped; `Begin` events still open at the end of a log
/// (e.g. a worker killed mid-span by a crash) are closed at the log's last
/// timestamp. The result loads in Perfetto / `chrome://tracing`.
pub fn chrome_trace(logs: &[ThreadLog]) -> Json {
    let mut events: Vec<Json> = Vec::new();
    for log in logs {
        events.push(metadata(log.pid, "process_name", &log.label));
        events.push(metadata(log.pid, "thread_name", &log.label));
        if log.dropped > 0 {
            let mut obj = event_base("i", log.pid, "trace-dropped", 0);
            obj.push(("s".to_string(), Json::from("t")));
            obj.push((
                "args".to_string(),
                Json::Object(vec![("count".to_string(), Json::from(log.dropped))]),
            ));
            events.push(Json::Object(obj));
        }
        let last_ns = log.events.iter().map(|e| e.t_ns).max().unwrap_or(0);
        let mut open: Vec<&TraceEvent> = Vec::new();
        let complete = |begin: &TraceEvent, end_ns: u64| {
            let mut obj = event_base("X", log.pid, begin.name, begin.t_ns);
            obj.push(("dur".to_string(), micros(end_ns.saturating_sub(begin.t_ns))));
            if let Some(args) = args_json(&begin.args) {
                obj.push(("args".to_string(), args));
            }
            Json::Object(obj)
        };
        for ev in &log.events {
            match ev.kind {
                TraceKind::Begin => open.push(ev),
                TraceKind::End => {
                    // Guards guarantee LIFO; a mismatch means the Begin was
                    // overwritten by ring wrap. Find the nearest matching
                    // Begin and discard anything opened after it.
                    if let Some(pos) = open.iter().rposition(|b| b.name == ev.name) {
                        let begin = open[pos];
                        open.truncate(pos);
                        events.push(complete(begin, ev.t_ns));
                    }
                }
                TraceKind::Instant => {
                    let mut obj = event_base("i", log.pid, ev.name, ev.t_ns);
                    obj.push(("s".to_string(), Json::from("t")));
                    if let Some(args) = args_json(&ev.args) {
                        obj.push(("args".to_string(), args));
                    }
                    events.push(Json::Object(obj));
                }
            }
        }
        // Close spans interrupted by a crash (or still open at drain) at
        // the lane's final timestamp, innermost first.
        while let Some(begin) = open.pop() {
            events.push(complete(begin, last_ns));
        }
    }
    Json::Object(vec![
        ("traceEvents".to_string(), Json::Array(events)),
        ("displayTimeUnit".to_string(), Json::from("ms")),
    ])
}

#[cfg(all(test, feature = "trace"))]
mod tests {
    use super::*;

    /// `ARMED` and the collector are process-global; tests that arm must
    /// not interleave.
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn reset() {
        disarm();
        let _ = drain();
    }

    #[test]
    fn disarmed_recording_is_invisible() {
        let _guard = serial();
        reset();
        instant("ghost");
        let s = span("ghost-span");
        drop(s);
        assert!(drain().is_empty());
    }

    #[test]
    fn spans_and_instants_round_trip_through_chrome_export() {
        let _guard = serial();
        reset();
        arm(64);
        set_lane(3, "worker 3");
        {
            let _outer = span("outer");
            instant_with("tick", &[("glue", 2), ("stripe", 5)]);
            let _inner = span("inner");
        }
        disarm();
        let logs = drain();
        assert_eq!(logs.len(), 1);
        assert_eq!(logs[0].pid, 3);
        assert_eq!(logs[0].label, "worker 3");
        assert_eq!(logs[0].dropped, 0);
        // Begin(outer), Instant(tick), Begin(inner), End(inner), End(outer)
        assert_eq!(logs[0].events.len(), 5);

        let doc = chrome_trace(&logs);
        let text = doc.to_string();
        let parsed = Json::parse(&text).expect("chrome trace is valid JSON");
        let events = parsed
            .get("traceEvents")
            .and_then(Json::as_array)
            .expect("traceEvents array");
        let phase = |e: &Json| e.get("ph").and_then(Json::as_str).unwrap().to_string();
        let complete: Vec<&Json> = events.iter().filter(|e| phase(e) == "X").collect();
        assert_eq!(complete.len(), 2);
        let instants: Vec<&Json> = events.iter().filter(|e| phase(e) == "i").collect();
        assert_eq!(instants.len(), 1);
        assert_eq!(
            instants[0]
                .get("args")
                .and_then(|a| a.get("glue"))
                .and_then(Json::as_u64),
            Some(2)
        );
        // Nested span must not outlast its parent.
        let by_name = |n: &str| {
            complete
                .iter()
                .find(|e| e.get("name").and_then(Json::as_str) == Some(n))
                .copied()
                .unwrap()
        };
        let ts = |e: &Json| e.get("ts").and_then(Json::as_f64).unwrap();
        let dur = |e: &Json| e.get("dur").and_then(Json::as_f64).unwrap();
        let (outer, inner) = (by_name("outer"), by_name("inner"));
        assert!(ts(inner) >= ts(outer));
        assert!(ts(inner) + dur(inner) <= ts(outer) + dur(outer) + 1e-6);
    }

    #[test]
    fn retro_spans_pair_and_carry_args() {
        let _guard = serial();
        reset();
        arm(64);
        let queued_at = epoch_ns();
        {
            // A live span opened *after* the retro interval began: the
            // adjacent-pair exporter contract must keep them separate.
            let _solve = span_with("solve", &[("request", 7)]);
        }
        span_retro("queue-wait", queued_at, &[("request", 7), ("session", 3)]);
        disarm();
        let logs = drain();
        assert_eq!(logs.len(), 1);
        let doc = chrome_trace(&logs);
        let events = doc.get("traceEvents").and_then(Json::as_array).unwrap();
        let completes: Vec<&Json> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .collect();
        assert_eq!(completes.len(), 2);
        let by_name = |n: &str| {
            completes
                .iter()
                .find(|e| e.get("name").and_then(Json::as_str) == Some(n))
                .copied()
                .unwrap()
        };
        let wait = by_name("queue-wait");
        assert_eq!(
            wait.get("args")
                .and_then(|a| a.get("session"))
                .and_then(Json::as_u64),
            Some(3)
        );
        let solve = by_name("solve");
        assert_eq!(
            solve
                .get("args")
                .and_then(|a| a.get("request"))
                .and_then(Json::as_u64),
            Some(7)
        );
        // The retro span starts at (or before) the live span it preceded.
        let ts = |e: &Json| e.get("ts").and_then(Json::as_f64).unwrap();
        assert!(ts(wait) <= ts(solve));
    }

    #[test]
    fn epoch_ns_is_zero_when_disarmed() {
        let _guard = serial();
        reset();
        assert_eq!(epoch_ns(), 0);
        span_retro("ghost", 0, &[]);
        assert!(drain().is_empty());
    }

    #[test]
    fn ring_wraps_and_reports_drops() {
        let _guard = serial();
        reset();
        arm(8);
        for _ in 0..20 {
            instant("beat");
        }
        disarm();
        let logs = drain();
        assert_eq!(logs.len(), 1);
        assert_eq!(logs[0].events.len(), 8);
        assert_eq!(logs[0].dropped, 12);
        // Chronological order must survive the wrap rotation.
        let times: Vec<u64> = logs[0].events.iter().map(|e| e.t_ns).collect();
        let mut sorted = times.clone();
        sorted.sort_unstable();
        assert_eq!(times, sorted);
        // The export surfaces the loss.
        let doc = chrome_trace(&logs);
        assert!(doc.to_string().contains("trace-dropped"));
    }

    #[test]
    fn unmatched_end_is_skipped_and_open_begin_is_closed() {
        let log = ThreadLog {
            pid: 1,
            label: "w".to_string(),
            dropped: 0,
            events: vec![
                // End whose Begin was wrapped away.
                TraceEvent {
                    kind: TraceKind::End,
                    name: "lost",
                    t_ns: 10,
                    args: NO_ARGS,
                },
                // Begin left open by a crash.
                TraceEvent {
                    kind: TraceKind::Begin,
                    name: "solve",
                    t_ns: 20,
                    args: NO_ARGS,
                },
                TraceEvent {
                    kind: TraceKind::Instant,
                    name: "worker-crash",
                    t_ns: 30,
                    args: NO_ARGS,
                },
            ],
        };
        let doc = chrome_trace(&[log]);
        let events = doc.get("traceEvents").and_then(Json::as_array).unwrap();
        let completes: Vec<&Json> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .collect();
        assert_eq!(completes.len(), 1);
        assert_eq!(
            completes[0].get("name").and_then(Json::as_str),
            Some("solve")
        );
        // Closed at the lane's last timestamp: 30µs-20µs → dur 0.01ms.
        assert!((completes[0].get("dur").and_then(Json::as_f64).unwrap() - 0.01).abs() < 1e-9);
        assert!(!doc.to_string().contains("\"lost\""));
    }

    #[test]
    fn flush_from_worker_threads_collects_per_thread_lanes() {
        let _guard = serial();
        reset();
        arm(64);
        std::thread::scope(|scope| {
            for w in 0u32..3 {
                scope.spawn(move || {
                    set_lane(w + 1, &format!("worker {w}"));
                    let _s = span("solve");
                    instant("beat");
                    drop(_s);
                    flush();
                });
            }
        });
        disarm();
        let logs = drain();
        assert_eq!(logs.len(), 3);
        let pids: Vec<u32> = logs.iter().map(|l| l.pid).collect();
        assert_eq!(pids, vec![1, 2, 3]);
    }
}
