//! A minimal, dependency-free JSON value, writer, and parser.
//!
//! The build environment has no crates.io access, so `serde`/`serde_json`
//! are unavailable; this module supplies the serialization substrate the
//! telemetry layer (and the solver crates implementing [`ToJson`] /
//! [`FromJson`] for their stats types) builds on. Output is deterministic:
//! object keys keep insertion order, and floats are written with enough
//! precision to round-trip.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number that fits an unsigned 64-bit integer (counters).
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A floating-point number (finite; NaN/∞ serialize as `null`).
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn object() -> Json {
        Json::Object(Vec::new())
    }

    /// Adds or replaces a field on an object; panics on non-objects.
    pub fn set(&mut self, key: &str, value: Json) {
        let Json::Object(fields) = self else {
            panic!("Json::set on a non-object");
        };
        if let Some(slot) = fields.iter_mut().find(|(k, _)| k == key) {
            slot.1 = value;
        } else {
            fields.push((key.to_string(), value));
        }
    }

    /// Builder-style [`set`](Self::set).
    pub fn with(mut self, key: &str, value: Json) -> Json {
        self.set(key, value);
        self
    }

    /// Looks up a field of an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `u64`, if it is an unsigned (or exact float) number.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::U64(n) => Some(n),
            Json::I64(n) => u64::try_from(n).ok(),
            Json::F64(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => Some(f as u64),
            _ => None,
        }
    }

    /// The value as `f64`, if it is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::U64(n) => Some(n as f64),
            Json::I64(n) => Some(n as f64),
            Json::F64(f) => Some(f),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The object's fields, in insertion order.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(fields) => Some(fields),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(n) => {
                let _ = write!(out, "{n}");
            }
            Json::I64(n) => {
                let _ = write!(out, "{n}");
            }
            Json::F64(f) => {
                if f.is_finite() {
                    if f.fract() == 0.0 && f.abs() < 1e15 {
                        // Keep integral floats readable and round-trippable.
                        let _ = write!(out, "{f:.1}");
                    } else {
                        let _ = write!(out, "{f}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Serializes to a compact JSON string (also available via `Display`).
    #[allow(clippy::inherent_to_string_shadow_display)]
    pub fn to_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Parses a JSON document.
    pub fn parse(text: &str) -> Result<Json, ParseJsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.error("trailing characters"));
        }
        Ok(v)
    }
}

impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::U64(n)
    }
}

impl From<u32> for Json {
    fn from(n: u32) -> Json {
        Json::U64(n as u64)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::U64(n as u64)
    }
}

impl From<i64> for Json {
    fn from(n: i64) -> Json {
        if n >= 0 {
            Json::U64(n as u64)
        } else {
            Json::I64(n)
        }
    }
}

impl From<f64> for Json {
    fn from(f: f64) -> Json {
        Json::F64(f)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(items: Vec<T>) -> Json {
        Json::Array(items.into_iter().map(Into::into).collect())
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Types serializable to a [`Json`] value (the offline stand-in for
/// `serde::Serialize`).
pub trait ToJson {
    /// The JSON representation.
    fn to_json(&self) -> Json;
}

/// Types reconstructible from a [`Json`] value (the offline stand-in for
/// `serde::Deserialize`).
pub trait FromJson: Sized {
    /// Parses the JSON representation produced by [`ToJson::to_json`].
    fn from_json(value: &Json) -> Result<Self, FromJsonError>;
}

/// Error from [`FromJson::from_json`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FromJsonError {
    /// What was wrong (field path and expectation).
    pub message: String,
}

impl FromJsonError {
    /// Creates the error.
    pub fn new(message: impl Into<String>) -> Self {
        FromJsonError {
            message: message.into(),
        }
    }

    /// Convenience: a "missing or mistyped field" error.
    pub fn field(name: &str) -> Self {
        FromJsonError::new(format!("missing or mistyped field `{name}`"))
    }
}

impl std::fmt::Display for FromJsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "from_json: {}", self.message)
    }
}

impl std::error::Error for FromJsonError {}

/// Error from [`Json::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseJsonError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What was expected.
    pub message: &'static str,
}

impl std::fmt::Display for ParseJsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseJsonError {}

/// Maximum container nesting [`Json::parse`] accepts. The parser is
/// recursive-descent, so unbounded nesting (e.g. a file of 100k `[`s)
/// would overflow the stack; past this depth it returns a parse error
/// instead. No legitimate telemetry document nests anywhere near this.
const MAX_PARSE_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn error(&self, message: &'static str) -> ParseJsonError {
        ParseJsonError {
            offset: self.pos,
            message,
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, message: &'static str) -> Result<(), ParseJsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(message))
        }
    }

    fn literal(&mut self, lit: &str, message: &'static str) -> Result<(), ParseJsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.error(message))
        }
    }

    fn value(&mut self) -> Result<Json, ParseJsonError> {
        match self.peek() {
            Some(b'n') => {
                self.literal("null", "expected null")?;
                Ok(Json::Null)
            }
            Some(b't') => {
                self.literal("true", "expected true")?;
                Ok(Json::Bool(true))
            }
            Some(b'f') => {
                self.literal("false", "expected false")?;
                Ok(Json::Bool(false))
            }
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn enter(&mut self) -> Result<(), ParseJsonError> {
        self.depth += 1;
        if self.depth > MAX_PARSE_DEPTH {
            return Err(self.error("nesting too deep"));
        }
        Ok(())
    }

    fn array(&mut self) -> Result<Json, ParseJsonError> {
        self.eat(b'[', "expected [")?;
        self.enter()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.error("expected , or ] in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseJsonError> {
        self.eat(b'{', "expected {")?;
        self.enter()?;
        let mut fields: Vec<(String, Json)> = Vec::new();
        let mut seen: BTreeMap<String, usize> = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected : after object key")?;
            self.skip_ws();
            let value = self.value()?;
            if let Some(&i) = seen.get(&key) {
                fields[i].1 = value; // last duplicate wins
            } else {
                seen.insert(key.clone(), fields.len());
                fields.push((key, value));
            }
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(self.error("expected , or } in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseJsonError> {
        self.eat(b'"', "expected string")?;
        let mut out = String::new();
        loop {
            let rest = &self.bytes[self.pos..];
            let Some(&b) = rest.first() else {
                return Err(self.error("unterminated string"));
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    let esc = rest.get(1).copied().ok_or(self.error("bad escape"))?;
                    self.pos += 2;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or(self.error("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed for our own
                            // output (we never escape above U+001F).
                            out.push(char::from_u32(hex).ok_or(self.error("bad codepoint"))?);
                        }
                        _ => return Err(self.error("unknown escape")),
                    }
                }
                _ => {
                    // Consume the whole run up to the next quote or escape,
                    // validating UTF-8 once per run — validating the full
                    // remaining input per character is quadratic on large
                    // documents (a megabyte trace would take minutes).
                    let run = rest
                        .iter()
                        .position(|&c| c == b'"' || c == b'\\')
                        .ok_or(self.error("unterminated string"))?;
                    let s = std::str::from_utf8(&rest[..run])
                        .map_err(|_| self.error("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos += run;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseJsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Json::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Json::F64)
            .map_err(|_| self.error("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested() {
        let v = Json::object()
            .with("name", Json::from("run \"42\"\n"))
            .with("count", Json::from(18_446_744_073_709_551_615u64))
            .with("delta", Json::from(-7i64))
            .with("ratio", Json::from(0.375))
            .with("flag", Json::from(true))
            .with("nothing", Json::Null)
            .with("items", Json::from(vec![1u64, 2, 3]))
            .with("nested", Json::object().with("k", Json::from("v")));
        let text = v.to_string();
        let parsed = Json::parse(&text).expect("own output parses");
        assert_eq!(v, parsed);
    }

    #[test]
    fn u64_precision_survives() {
        let v = Json::U64(u64::MAX);
        assert_eq!(
            Json::parse(&v.to_string()).unwrap().as_u64(),
            Some(u64::MAX)
        );
    }

    #[test]
    fn integral_floats_stay_floats() {
        let text = Json::F64(2.0).to_string();
        assert_eq!(text, "2.0");
        assert_eq!(Json::parse(&text).unwrap(), Json::F64(2.0));
    }

    #[test]
    fn object_access() {
        let v = Json::object().with("a", Json::from(1u64));
        assert_eq!(v.get("a").and_then(Json::as_u64), Some(1));
        assert_eq!(v.get("b"), None);
        assert_eq!(v.as_object().unwrap().len(), 1);
    }

    #[test]
    fn set_replaces_existing_key() {
        let mut v = Json::object().with("a", Json::from(1u64));
        v.set("a", Json::from(2u64));
        assert_eq!(v.get("a").and_then(Json::as_u64), Some(2));
        assert_eq!(v.as_object().unwrap().len(), 1);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("nul").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn parse_bounds_nesting_depth_instead_of_overflowing() {
        // Exactly at the limit: fine.
        let ok = format!(
            "{}1{}",
            "[".repeat(MAX_PARSE_DEPTH),
            "]".repeat(MAX_PARSE_DEPTH)
        );
        assert!(Json::parse(&ok).is_ok());
        // One past the limit: a parse error, not a stack overflow.
        let deep = format!(
            "{}1{}",
            "[".repeat(MAX_PARSE_DEPTH + 1),
            "]".repeat(MAX_PARSE_DEPTH + 1)
        );
        let err = Json::parse(&deep).expect_err("over-deep arrays must be rejected");
        assert_eq!(err.message, "nesting too deep");
        // A pathological unclosed run (the original trace-report crash).
        assert!(Json::parse(&"[".repeat(100_000)).is_err());
        assert!(Json::parse(&"{\"a\":".repeat(100_000)).is_err());
        // Siblings don't accumulate depth: a wide flat document is fine.
        let wide = format!("[{}]", vec!["[1]"; 1000].join(","));
        assert!(Json::parse(&wide).is_ok());
    }

    #[test]
    fn parse_accepts_whitespace_and_escapes() {
        let v = Json::parse(" { \"a\" : [ 1 , \"x\\u0041\" ] } ").unwrap();
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[1].as_str(),
            Some("xA")
        );
    }

    #[test]
    fn nonfinite_floats_become_null() {
        assert_eq!(Json::F64(f64::NAN).to_string(), "null");
        assert_eq!(Json::F64(f64::INFINITY).to_string(), "null");
    }
}
