//! `JsonlSink` under injected I/O faults: a truncated stream must never
//! contain a torn (unparseable) line *before* the cut point, and write
//! errors must surface through `last_error` instead of panicking.

use faults::TruncatingWriter;
use telemetry::json::{FromJson, Json, ToJson};
use telemetry::{Event, JsonlSink, RunRecord, Sink};

fn sample_events(n: usize) -> Vec<Event> {
    (0..n)
        .map(|i| match i % 3 {
            0 => Event::SolveStart {
                instance_id: format!("inst-{i}"),
                policy: "prop-freq".to_string(),
                num_vars: 50 + i as u64,
                num_clauses: 218,
            },
            1 => Event::Progress {
                conflicts: 1000 + i as u64,
                propagations: 50_000,
                decisions: 1500,
                learned: 800,
                elapsed_s: 0.5,
                conflicts_per_sec: 2000.0,
                propagations_per_sec: 100_000.0,
            },
            _ => Event::SolveEnd {
                record: RunRecord::new(format!("inst-{i}"), "default"),
            },
        })
        .collect()
}

/// Every byte budget from "nothing fits" to "everything fits": all lines
/// before the cut parse, at most the final (cut) segment is torn, and no
/// emit panics.
#[test]
fn truncation_never_tears_a_line_before_the_cut() {
    let events = sample_events(9);
    let full_len: usize = events
        .iter()
        .map(|e| e.to_json().to_string().len() + 1)
        .sum();

    for budget in 0..=full_len {
        let mut bytes = Vec::new();
        let hit_error;
        {
            let mut sink = JsonlSink::new(TruncatingWriter::new(&mut bytes, budget as u64));
            for event in &events {
                sink.emit(event);
            }
            sink.flush();
            hit_error = sink.last_error().is_some();
        }

        assert!(bytes.len() <= budget, "budget {budget} overrun");
        if budget < full_len {
            assert!(hit_error, "budget {budget}: error did not surface");
        } else {
            assert!(!hit_error, "full budget must not error");
        }

        let text = String::from_utf8(bytes).expect("output is UTF-8");
        let mut segments: Vec<&str> = text.split('\n').collect();
        // A trailing "" segment means the stream ends on a complete line;
        // anything else is the (permitted) torn tail at the cut point.
        let _tail = segments.pop().unwrap_or("");
        for (i, line) in segments.iter().enumerate() {
            let parsed = Json::parse(line)
                .unwrap_or_else(|e| panic!("budget {budget}, line {i} torn: {e:?}"));
            assert_eq!(Event::from_json(&parsed).unwrap(), events[i]);
        }
    }
}

/// After the first failure the sink goes quiet: no later event may append
/// bytes that would interleave with the torn tail.
#[test]
fn failed_sink_stops_writing() {
    let mut bytes = Vec::new();
    {
        let mut sink = JsonlSink::new(TruncatingWriter::new(&mut bytes, 10));
        for event in sample_events(6) {
            sink.emit(&event);
        }
        assert!(sink.last_error().is_some());
    }
    assert_eq!(bytes.len(), 10, "exactly the budget, nothing after the cut");
}

/// A zero-budget writer fails on the very first byte; the sink absorbs it.
#[test]
fn zero_budget_writer_is_survivable() {
    let mut bytes = Vec::new();
    {
        let mut sink = JsonlSink::new(TruncatingWriter::new(&mut bytes, 0));
        for event in sample_events(3) {
            sink.emit(&event);
        }
        assert!(sink.last_error().is_some());
    }
    assert!(bytes.is_empty());
}
