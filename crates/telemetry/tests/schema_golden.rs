//! Golden-file tests pinning the JSONL event schema.
//!
//! Every event line carries `schema_version` (currently 2) and an `event`
//! discriminator; the field names below are a compatibility contract with
//! external consumers. Changing any rendered string here requires bumping
//! [`SCHEMA_VERSION`] and updating the stability note in README.md.

use std::time::Duration;
use telemetry::json::{FromJson, Json, ToJson};
use telemetry::{Event, Phase, RequestRecord, RunRecord, SCHEMA_VERSION};

#[test]
fn schema_version_is_pinned() {
    assert_eq!(SCHEMA_VERSION, 2);
}

#[test]
fn solve_start_event_golden() {
    let event = Event::SolveStart {
        instance_id: "php-6-5".to_string(),
        policy: "prop-freq".to_string(),
        num_vars: 30,
        num_clauses: 81,
    };
    assert_eq!(
        event.to_json().to_string(),
        r#"{"schema_version":2,"event":"solve_start","instance_id":"php-6-5","policy":"prop-freq","num_vars":30,"num_clauses":81}"#
    );
}

#[test]
fn progress_event_golden() {
    let event = Event::Progress {
        conflicts: 1000,
        propagations: 50000,
        decisions: 1500,
        learned: 400,
        elapsed_s: 0.5,
        conflicts_per_sec: 2000.0,
        propagations_per_sec: 100000.0,
    };
    assert_eq!(
        event.to_json().to_string(),
        r#"{"schema_version":2,"event":"progress","conflicts":1000,"propagations":50000,"decisions":1500,"learned":400,"elapsed_s":0.5,"conflicts_per_sec":2000.0,"propagations_per_sec":100000.0}"#
    );
}

#[test]
fn reduction_event_golden() {
    let event = Event::Reduction {
        reduction_no: 3,
        candidates: 120,
        deleted: 60,
        learned_after: 80,
        conflicts: 900,
    };
    assert_eq!(
        event.to_json().to_string(),
        r#"{"schema_version":2,"event":"reduction","reduction_no":3,"candidates":120,"deleted":60,"learned_after":80,"conflicts":900}"#
    );
}

#[test]
fn solve_end_event_golden() {
    let mut record = RunRecord::new("php-6-5", "default");
    record.result = "UNSAT".to_string();
    record.solve_time_s = 0.25;
    record.inference_time_s = Some(0.125);
    record.peak_learned_clauses = 42;
    record
        .phases
        .add(Phase::Propagate, Duration::from_nanos(1500));
    record.phases.add(Phase::Analyze, Duration::from_nanos(500));
    record.stats = Json::object().with("conflicts", Json::from(77u64));
    record.extra = Json::object().with("note", Json::from("golden"));
    let event = Event::SolveEnd { record };
    assert_eq!(
        event.to_json().to_string(),
        r#"{"schema_version":2,"event":"solve_end","record":{"schema_version":2,"instance_id":"php-6-5","policy":"default","result":"UNSAT","solve_time_s":0.25,"inference_time_s":0.125,"peak_learned_clauses":42,"phases":{"propagate":{"nanos":1500,"calls":1},"analyze":{"nanos":500,"calls":1}},"stats":{"conflicts":77},"extra":{"note":"golden"},"degradations":[]}}"#
    );
}

#[test]
fn request_end_event_golden() {
    let mut record = RequestRecord::new(42, 7);
    record.worker = 1;
    record.queue_wait_ms = 2.5;
    record.solve_ms = 40.0;
    record.verdict = "unknown".to_string();
    record.stop_cause = Some("deadline".to_string());
    record.stats = Json::object().with("conflicts", Json::from(77u64));
    record.degrade("daemon-degraded", "deadline");
    let event = Event::RequestEnd { record };
    assert_eq!(
        event.to_json().to_string(),
        r#"{"schema_version":2,"event":"request_end","record":{"schema_version":2,"request_id":42,"session":7,"worker":1,"queue_wait_ms":2.5,"solve_ms":40.0,"verdict":"unknown","stop_cause":"deadline","error_kind":null,"stats":{"conflicts":77},"degradations":[{"kind":"daemon-degraded","detail":"deadline"}]}}"#
    );
    let line = event.to_json().to_string();
    let parsed = Event::from_json(&Json::parse(&line).expect("parses")).expect("round-trips");
    assert_eq!(parsed, event);
}

#[test]
fn error_request_record_golden() {
    let mut record = RequestRecord::new(9, 3);
    record.verdict = "error".to_string();
    record.error_kind = Some("crashed".to_string());
    assert_eq!(
        record.to_json().to_string(),
        r#"{"schema_version":2,"request_id":9,"session":3,"worker":0,"queue_wait_ms":0.0,"solve_ms":0.0,"verdict":"error","stop_cause":null,"error_kind":"crashed","stats":{},"degradations":[]}"#
    );
    let parsed = RequestRecord::from_json(&record.to_json()).expect("round-trips");
    assert_eq!(parsed, record);
}

#[test]
fn degraded_record_golden() {
    let mut record = RunRecord::new("race-w2", "prop-freq");
    record.result = "UNKNOWN".to_string();
    record.degrade("worker-crash", "injected worker panic");
    record.degrade("budget-exhausted", "deadline");
    assert_eq!(
        record.to_json().to_string(),
        r#"{"schema_version":2,"instance_id":"race-w2","policy":"prop-freq","result":"UNKNOWN","solve_time_s":0.0,"inference_time_s":null,"peak_learned_clauses":0,"phases":{},"stats":{},"extra":{},"degradations":[{"kind":"worker-crash","detail":"injected worker panic"},{"kind":"budget-exhausted","detail":"deadline"}]}"#
    );
    let parsed = RunRecord::from_json(&record.to_json()).expect("round-trips");
    assert_eq!(parsed, record);
}

#[test]
fn version_one_record_without_degradations_still_parses() {
    let line = r#"{"schema_version":1,"instance_id":"old","policy":"default","result":"SAT","solve_time_s":0.5,"inference_time_s":null,"peak_learned_clauses":3,"phases":{},"stats":{},"extra":{}}"#;
    let parsed = RunRecord::from_json(&Json::parse(line).expect("parses")).expect("compatible");
    assert!(parsed.degradations.is_empty());
    assert_eq!(parsed.schema_version, 1);
}

#[test]
fn golden_lines_parse_back() {
    for line in [
        r#"{"schema_version":2,"event":"solve_start","instance_id":"x","policy":"default","num_vars":1,"num_clauses":1}"#,
        r#"{"schema_version":2,"event":"progress","conflicts":1,"propagations":2,"decisions":3,"learned":4,"elapsed_s":0.5,"conflicts_per_sec":2.0,"propagations_per_sec":4.0}"#,
        r#"{"schema_version":2,"event":"reduction","reduction_no":1,"candidates":2,"deleted":1,"learned_after":1,"conflicts":5}"#,
    ] {
        let value = Json::parse(line).expect("golden line parses");
        let event = Event::from_json(&value).expect("golden line is a known event");
        assert_eq!(event.to_json().to_string(), line, "round-trip is lossless");
    }
}

#[test]
fn metrics_snapshot_golden() {
    use telemetry::metrics::{Counter, Gauge, MetricsSnapshot};

    let mut counters = vec![0u64; Counter::ALL.len()];
    let mut set = |c: Counter, v: u64| counters[c as usize] = v;
    set(Counter::Propagations, 100_000);
    set(Counter::Conflicts, 250);
    set(Counter::Decisions, 900);
    set(Counter::Restarts, 3);
    set(Counter::Reductions, 2);
    set(Counter::LearnedClauses, 240);
    set(Counter::DeletedClauses, 120);
    set(Counter::PropagateNanos, 5_000_000);
    set(Counter::PropagateCalls, 1_150);
    set(Counter::AnalyzeNanos, 2_000_000);
    set(Counter::AnalyzeCalls, 250);
    set(Counter::ReduceNanos, 300_000);
    set(Counter::ReduceCalls, 2);
    set(Counter::InprocessNanos, 400_000);
    set(Counter::InprocessCalls, 3);
    set(Counter::InprocessSubsumed, 18);
    set(Counter::InprocessStrengthened, 7);
    set(Counter::InprocessEliminated, 2);
    set(Counter::PoolExported, 40);
    set(Counter::PoolImported, 12);
    set(Counter::Inferences, 4);
    set(Counter::InferenceNanos, 8_000_000);
    let mut gauges = vec![f64::NAN; Gauge::ALL.len()];
    gauges[Gauge::MemoryBytes as usize] = 1_048_576.0;
    // Gauge::LiveLearned stays unset: it must be absent from the output.
    gauges[Gauge::InferenceLastSeconds as usize] = 0.002;
    gauges[Gauge::PolicyConfidence as usize] = 0.875;
    let snap = MetricsSnapshot::from_parts(3, 1.5, counters, gauges);

    let mut prev_counters = vec![0u64; Counter::ALL.len()];
    prev_counters[Counter::Propagations as usize] = 50_000;
    prev_counters[Counter::Conflicts as usize] = 150;
    prev_counters[Counter::LearnedClauses as usize] = 140;
    prev_counters[Counter::PoolExported as usize] = 20;
    prev_counters[Counter::PoolImported as usize] = 2;
    let prev = MetricsSnapshot::from_parts(2, 0.5, prev_counters, Vec::new());

    assert_eq!(
        snap.to_json_line(Some(&prev)).to_string(),
        r#"{"schema_version":2,"event":"metrics_snapshot","seq":3,"elapsed_s":1.5,"counters":{"solver.propagations":100000,"solver.conflicts":250,"solver.decisions":900,"solver.restarts":3,"solver.reductions":2,"solver.learned_clauses":240,"solver.deleted_clauses":120,"phase.propagate_ns":5000000,"phase.propagate_calls":1150,"phase.analyze_ns":2000000,"phase.analyze_calls":250,"phase.reduce_ns":300000,"phase.reduce_calls":2,"phase.inprocess_ns":400000,"phase.inprocess_calls":3,"inprocess.subsumed":18,"inprocess.strengthened":7,"inprocess.eliminated_vars":2,"pool.exported":40,"pool.imported":12,"pipeline.inferences":4,"pipeline.inference_ns":8000000,"daemon.admitted":0,"daemon.rejected":0,"daemon.evicted":0,"daemon.crashed":0,"daemon.deadline_exceeded":0,"daemon.completed":0},"gauges":{"solver.memory_bytes":1048576.0,"pipeline.inference_last_s":0.002,"pipeline.policy_confidence":0.875},"rates":{"solver.propagations_per_sec":50000.0,"solver.conflicts_per_sec":100.0,"solver.learned_clauses_per_sec":100.0,"pool.exported_per_sec":20.0,"pool.imported_per_sec":10.0}}"#
    );

    // Without a previous snapshot (the sampler's first line, and the
    // ToJson impl) `rates` is present but empty.
    let first = snap.to_json_line(None).to_string();
    assert!(first.ends_with(r#""rates":{}}"#), "{first}");
    assert_eq!(snap.to_json().to_string(), first);

    // The line is self-describing JSON that parses back.
    let parsed = Json::parse(&first).expect("snapshot line parses");
    assert_eq!(
        parsed.get("event").and_then(Json::as_str),
        Some("metrics_snapshot")
    );
    assert_eq!(
        parsed
            .get("counters")
            .and_then(|c| c.get("solver.propagations"))
            .and_then(Json::as_u64),
        Some(100_000)
    );
}
