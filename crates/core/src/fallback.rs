//! The degradation ladder behind policy selection: model → static
//! heuristic → default policy.
//!
//! The NeuroSelect pipeline treats the learned classifier as an
//! *optimisation*, never a requirement: when the model cannot be
//! consulted — its weights failed to load, inference panicked, or
//! inference blew past the configured deadline — policy selection steps
//! down to [`static_heuristic_policy`] (a clause/variable-ratio rule
//! computed in O(1) from the parsed formula), and if even that panics, to
//! [`PolicyKind::Default`]. Every step down is recorded as a
//! [`DegradeReason`] so telemetry (`RunRecord` degradations) shows *why*
//! a run was degraded, and the solve itself proceeds normally: a broken
//! model can cost solving time, never a verdict.

use cnf::Cnf;
use sat_solver::{run_isolated, PolicyKind};
use std::time::Duration;

/// Which rung of the selection ladder produced the policy pick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicySource {
    /// The modelled deployment pipeline: classifier inference, including
    /// its by-design node-count cutoff (oversized instances use the
    /// default policy *deliberately*, which is not a degradation).
    Model,
    /// The static clause/variable-ratio heuristic (model unavailable).
    Heuristic,
    /// The hard-coded default policy (the heuristic also failed).
    Default,
}

impl PolicySource {
    /// Stable lower-case name for telemetry.
    pub fn as_str(self) -> &'static str {
        match self {
            PolicySource::Model => "model",
            PolicySource::Heuristic => "heuristic",
            PolicySource::Default => "default",
        }
    }
}

/// Why policy selection stepped down a rung.
#[derive(Debug, Clone)]
pub enum DegradeReason {
    /// The model's weights could not be loaded; the error is sticky and
    /// every later selection skips inference.
    ModelLoad(String),
    /// Inference panicked (caught; the panic message is kept).
    InferencePanic(String),
    /// Inference finished but exceeded the configured deadline, so its
    /// answer is discarded: a model this slow is not worth its amortised
    /// cost (Section 5.3 budgets inference against solving time).
    InferenceDeadline {
        /// The configured ceiling.
        limit: Duration,
        /// What inference actually took.
        elapsed: Duration,
    },
    /// The static heuristic itself panicked.
    HeuristicPanic(String),
}

impl DegradeReason {
    /// Stable kind tag, used as the `RunRecord` degradation `kind`.
    pub fn kind(&self) -> &'static str {
        match self {
            DegradeReason::ModelLoad(_) => "model-load-error",
            DegradeReason::InferencePanic(_) => "inference-panic",
            DegradeReason::InferenceDeadline { .. } => "inference-deadline",
            DegradeReason::HeuristicPanic(_) => "heuristic-panic",
        }
    }

    /// Human-readable detail, used as the `RunRecord` degradation `detail`.
    pub fn detail(&self) -> String {
        match self {
            DegradeReason::ModelLoad(e)
            | DegradeReason::InferencePanic(e)
            | DegradeReason::HeuristicPanic(e) => e.clone(),
            DegradeReason::InferenceDeadline { limit, elapsed } => format!(
                "inference took {:.3}s, deadline {:.3}s",
                elapsed.as_secs_f64(),
                limit.as_secs_f64()
            ),
        }
    }
}

/// The outcome of the policy-selection ladder.
#[derive(Debug, Clone)]
pub struct PolicyDecision {
    /// The deletion policy to run.
    pub policy: PolicyKind,
    /// The model's probability for the propagation-frequency policy
    /// (0.0 when the model was not consulted).
    pub probability: f32,
    /// Which rung produced the pick.
    pub source: PolicySource,
    /// Every step down the ladder, in order (empty in normal operation).
    pub degradations: Vec<DegradeReason>,
}

/// Picks a policy from static formula features, no model required.
///
/// The clause/variable ratio is the cheapest useful proxy for the
/// paper's finding (Figure 4) that the propagation-frequency policy
/// earns its keep on constraint-dense instances: at or above ratio 4.0
/// (around the random-3-SAT phase transition) the search is
/// conflict-heavy and propagation counters are informative, so the
/// heuristic picks [`PolicyKind::PropFreq`]; sparser formulas keep
/// [`PolicyKind::Default`].
pub fn static_heuristic_policy(formula: &Cnf) -> PolicyKind {
    #[cfg(feature = "faults")]
    if faults::fire(faults::site::HEURISTIC_PANIC, &[]).is_some() {
        panic!("injected fault: heuristic policy pick panicked");
    }
    let vars = formula.num_vars().max(1) as f64;
    let ratio = formula.num_clauses() as f64 / vars;
    if ratio >= 4.0 {
        PolicyKind::PropFreq
    } else {
        PolicyKind::Default
    }
}

/// Runs the rungs below the model: the static heuristic in panic
/// isolation, then the unconditional default.
pub(crate) fn degraded_decision(formula: &Cnf, reason: DegradeReason) -> PolicyDecision {
    // Each ladder step leaves an instant in the trace: the triggering
    // cause (its stable kind string) and the rung the pick landed on
    // (1 = heuristic, 2 = default).
    telemetry::trace::instant(reason.kind());
    let mut degradations = vec![reason];
    match run_isolated(|| static_heuristic_policy(formula)) {
        Ok(policy) => {
            telemetry::trace::instant_with("fallback-rung", &[("rung", 1)]);
            PolicyDecision {
                policy,
                probability: 0.0,
                source: PolicySource::Heuristic,
                degradations,
            }
        }
        Err(crash) => {
            let heuristic_panic = DegradeReason::HeuristicPanic(crash.message);
            telemetry::trace::instant(heuristic_panic.kind());
            telemetry::trace::instant_with("fallback-rung", &[("rung", 2)]);
            degradations.push(heuristic_panic);
            PolicyDecision {
                policy: PolicyKind::Default,
                probability: 0.0,
                source: PolicySource::Default,
                degradations,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heuristic_splits_on_clause_density() {
        let dense = sat_gen::phase_transition_3sat(20, 1); // ratio ~4.27
        assert_eq!(static_heuristic_policy(&dense), PolicyKind::PropFreq);
        let sparse = cnf::parse_dimacs_str("p cnf 4 2\n1 2 0\n-3 4 0\n").unwrap();
        assert_eq!(static_heuristic_policy(&sparse), PolicyKind::Default);
    }

    #[test]
    fn degraded_decision_lands_on_the_heuristic() {
        let f = sat_gen::phase_transition_3sat(20, 1);
        let d = degraded_decision(&f, DegradeReason::ModelLoad(String::from("gone")));
        assert_eq!(d.source, PolicySource::Heuristic);
        assert_eq!(d.policy, PolicyKind::PropFreq);
        assert_eq!(d.degradations.len(), 1);
        assert_eq!(d.degradations.first().unwrap().kind(), "model-load-error");
    }

    #[test]
    fn reason_kinds_are_stable() {
        let reasons = [
            DegradeReason::ModelLoad(String::from("x")),
            DegradeReason::InferencePanic(String::from("x")),
            DegradeReason::InferenceDeadline {
                limit: Duration::from_millis(1),
                elapsed: Duration::from_millis(2),
            },
            DegradeReason::HeuristicPanic(String::from("x")),
        ];
        let kinds: Vec<&str> = reasons.iter().map(DegradeReason::kind).collect();
        assert_eq!(
            kinds,
            [
                "model-load-error",
                "inference-panic",
                "inference-deadline",
                "heuristic-panic"
            ]
        );
        assert!(reasons.iter().all(|r| !r.detail().is_empty()));
    }
}
