//! Classifier-seeded portfolio racing: the NeuroSelect model no longer
//! picks *one* deletion policy but the policy mix a clause-sharing
//! portfolio starts from.
//!
//! Figure 4 of the paper shows neither policy dominates; the classifier's
//! probability is therefore best read as a *confidence weighting* between
//! them. [`policy_mix_for`] turns that probability into a per-worker policy
//! assignment — confident predictions tilt the portfolio toward the
//! predicted winner while (below near-certainty) always keeping at least
//! one worker on the rival policy as a hedge — and
//! [`NeuroSelectSolver::solve_portfolio`] runs the race.

use crate::fallback::{PolicyDecision, PolicySource};
use crate::NeuroSelectSolver;
use cnf::Cnf;
use sat_solver::{
    solve_portfolio, Budget, PolicyKind, PortfolioConfig, PortfolioError, PortfolioResult,
    SolverConfig,
};
use std::time::Duration;

/// The record of one classifier-seeded portfolio race.
#[derive(Debug)]
pub struct RaceOutcome {
    /// The model's probability for the propagation-frequency policy.
    pub probability: f32,
    /// Wall-clock time of the model inference.
    pub inference_time: Duration,
    /// The policy assignment the probability was turned into (one entry
    /// per worker; worker 0 runs the predicted winner).
    pub mix: Vec<PolicyKind>,
    /// The portfolio result: verdict, winner, per-worker reports, pool
    /// counters, and the shared DRAT log.
    pub portfolio: PortfolioResult,
    /// The full policy decision, including the ladder rung that produced
    /// it and any degradations hit (also recorded in worker 0's
    /// `RunRecord`).
    pub decision: PolicyDecision,
}

/// Turns the classifier's probability for the propagation-frequency policy
/// into a portfolio policy mix of length `workers`.
///
/// The predicted winner (PropFreq iff `probability > threshold`) fills the
/// first `round(workers · confidence)` slots — clamped so it gets at least
/// one worker, and, below 95% confidence, so the rival keeps at least one
/// worker too (Figure 4: neither policy dominates, so hedging is cheap
/// insurance).
///
/// # Examples
///
/// ```
/// use neuroselect::policy_mix_for;
/// use sat_solver::PolicyKind;
/// // Balanced probability: a 4-worker race splits 2/2.
/// let mix = policy_mix_for(0.5, 0.5, 4);
/// assert_eq!(mix.iter().filter(|&&p| p == PolicyKind::Default).count(), 2);
/// // Near-certain PropFreq: every worker runs it.
/// assert!(policy_mix_for(0.99, 0.5, 4).iter().all(|&p| p == PolicyKind::PropFreq));
/// ```
pub fn policy_mix_for(probability: f32, threshold: f32, workers: usize) -> Vec<PolicyKind> {
    let p = probability.clamp(0.0, 1.0);
    let prefer_freq = p > threshold;
    let confidence = if prefer_freq { p } else { 1.0 - p };
    let (preferred, rival) = if prefer_freq {
        (PolicyKind::PropFreq, PolicyKind::Default)
    } else {
        (PolicyKind::Default, PolicyKind::PropFreq)
    };
    let mut preferred_count = ((workers as f32) * confidence).round() as usize;
    preferred_count = preferred_count.clamp(1, workers);
    if workers >= 2 && confidence < 0.95 {
        preferred_count = preferred_count.min(workers - 1);
    }
    (0..workers)
        .map(|i| {
            if i < preferred_count {
                preferred
            } else {
                rival
            }
        })
        .collect()
}

impl NeuroSelectSolver {
    /// Solves `formula` with a classifier-seeded clause-sharing portfolio:
    /// one model inference chooses the policy mix (see [`policy_mix_for`]),
    /// then `workers` diversified solvers race under `budget` with a shared
    /// DRAT log, and the verified first verdict is returned.
    pub fn solve_portfolio(
        &self,
        formula: &Cnf,
        workers: usize,
        budget: Budget,
    ) -> Result<RaceOutcome, PortfolioError> {
        let (decision, inference_time) = self.decide_policy(formula);
        // A degraded pick carries no model probability; synthesise a
        // mildly confident one so the mix still tilts toward the
        // heuristic's choice while keeping the rival hedge.
        let mix_probability = if decision.source == PolicySource::Model {
            decision.probability
        } else if decision.policy == PolicyKind::PropFreq {
            (self.threshold + 0.2).min(0.95)
        } else {
            (self.threshold - 0.2).max(0.05)
        };
        let mix = policy_mix_for(mix_probability, self.threshold, workers);
        let mut config = PortfolioConfig::new(workers);
        config.base = SolverConfig::with_policy(decision.policy);
        config.policy_mix = mix.clone();
        config.budget = budget;
        config.proof = true;
        config.instance_id = String::from("race");
        let mut portfolio = solve_portfolio(formula, &config)?;
        if let Some(record) = portfolio
            .workers
            .first_mut()
            .and_then(|w| w.record.as_mut())
        {
            for d in &decision.degradations {
                record.degrade(d.kind(), d.detail());
            }
        }
        Ok(RaceOutcome {
            probability: decision.probability,
            inference_time,
            mix,
            portfolio,
            decision,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NeuroSelectClassifier;
    use neuro::NeuroSelectConfig;

    fn tiny_solver() -> NeuroSelectSolver {
        NeuroSelectSolver::new(NeuroSelectClassifier::new(
            NeuroSelectConfig {
                hidden_dim: 8,
                hgt_layers: 1,
                mpnn_per_hgt: 1,
                use_attention: true,
                seed: 3,
            },
            0.01,
        ))
    }

    #[test]
    fn mix_keeps_a_hedge_below_near_certainty() {
        for &p in &[0.2, 0.4, 0.6, 0.8, 0.9] {
            let mix = policy_mix_for(p, 0.5, 4);
            assert_eq!(mix.len(), 4);
            assert!(
                mix.contains(&PolicyKind::Default) && mix.contains(&PolicyKind::PropFreq),
                "p={p}: both policies must be represented, got {mix:?}"
            );
        }
    }

    #[test]
    fn mix_worker_zero_runs_the_predicted_winner() {
        assert_eq!(policy_mix_for(0.9, 0.5, 4)[0], PolicyKind::PropFreq);
        assert_eq!(policy_mix_for(0.1, 0.5, 4)[0], PolicyKind::Default);
    }

    #[test]
    fn mix_single_worker_is_the_predicted_winner_only() {
        assert_eq!(policy_mix_for(0.7, 0.5, 1), vec![PolicyKind::PropFreq]);
        assert_eq!(policy_mix_for(0.3, 0.5, 1), vec![PolicyKind::Default]);
    }

    #[test]
    fn degraded_race_still_wins_and_records_why() {
        let f = sat_gen::phase_transition_3sat(25, 7);
        let mut s = tiny_solver();
        let _ = s.load_weights(std::path::Path::new("/nonexistent/weights.params"));
        let out = s
            .solve_portfolio(&f, 2, Budget::unlimited())
            .expect("degraded race verified");
        assert!(!out.portfolio.result.is_unknown());
        assert_eq!(out.decision.source, PolicySource::Heuristic);
        let record = out
            .portfolio
            .workers
            .first()
            .and_then(|w| w.record.as_ref())
            .expect("worker 0 record");
        assert!(
            record
                .degradations
                .iter()
                .any(|d| d.kind == "model-load-error"),
            "degradation must be recorded in the worker record"
        );
    }

    #[test]
    fn race_returns_verified_verdict() {
        let f = sat_gen::phase_transition_3sat(25, 7);
        let s = tiny_solver();
        let out = s
            .solve_portfolio(&f, 2, Budget::unlimited())
            .expect("race verified");
        assert!(!out.portfolio.result.is_unknown());
        assert_eq!(out.mix.len(), 2);
        assert_eq!(out.portfolio.workers.len(), 2);
        if let Some(model) = out.portfolio.result.model() {
            assert!(cnf::verify_model(&f, model).is_ok());
        } else {
            let proof = out.portfolio.proof.as_ref().expect("proof collected");
            assert!(proof.claims_unsat());
        }
    }
}
