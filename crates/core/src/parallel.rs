//! Parallel batch evaluation (the paper runs its Table 3 comparison on 20
//! concurrent solver processes).
//!
//! Built on scoped threads and an atomic work index — no external
//! dependencies — so batch experiments scale to however many cores the
//! machine offers while staying deterministic per instance.

use cnf::Cnf;
use sat_solver::{
    solve_with_policy, solve_with_policy_recorded, Budget, PolicyKind, SolveResult, SolverStats,
};
use std::sync::atomic::{AtomicUsize, Ordering};
use telemetry::RunRecord;

/// Applies `f` to every item on `threads` worker threads, preserving input
/// order in the output.
///
/// Results are deterministic (each item is processed exactly once and
/// output slots are pre-assigned), only completion order varies.
///
/// # Panics
///
/// Panics if `threads == 0`, or propagates a worker's panic.
///
/// # Examples
///
/// ```
/// use neuroselect::par_map;
/// let squares = par_map(&[1, 2, 3, 4], 2, |&x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    assert!(threads > 0, "need at least one worker thread");
    let next = AtomicUsize::new(0);
    let mut results: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    let slots: Vec<std::sync::Mutex<&mut Option<R>>> =
        results.iter_mut().map(std::sync::Mutex::new).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads.min(items.len().max(1)) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(&items[i]);
                **slots[i].lock().expect("slot lock") = Some(r);
            });
        }
    });
    drop(slots);
    results
        .into_iter()
        .map(|r| r.expect("every slot filled"))
        .collect()
}

/// Solves every formula under `policy` on `threads` workers, returning
/// per-instance results in input order.
///
/// # Examples
///
/// ```
/// use neuroselect::{solve_batch, Budget, PolicyKind};
/// let batch = vec![
///     sat_gen::phase_transition_3sat(30, 1),
///     sat_gen::pigeonhole(5, 4),
/// ];
/// let results = solve_batch(&batch, PolicyKind::Default, Budget::unlimited(), 2);
/// assert!(results[0].0.is_sat() || results[0].0.is_unsat());
/// assert!(results[1].0.is_unsat());
/// ```
pub fn solve_batch(
    formulas: &[Cnf],
    policy: PolicyKind,
    budget: Budget,
    threads: usize,
) -> Vec<(SolveResult, SolverStats)> {
    par_map(formulas, threads, |f| solve_with_policy(f, policy, budget))
}

/// Like [`solve_batch`], but each worker carries a telemetry recorder:
/// the output additionally holds one [`RunRecord`] per instance (phase
/// timings, glue/length/trail distributions, peak clause-DB size), in
/// input order. Records are tagged `{id_prefix}-{index:04}`.
///
/// # Examples
///
/// ```
/// use neuroselect::{solve_batch_recorded, Budget, PolicyKind};
/// let batch = vec![sat_gen::pigeonhole(5, 4)];
/// let runs = solve_batch_recorded(&batch, PolicyKind::Default, Budget::unlimited(), 1, "php");
/// assert_eq!(runs[0].2.instance_id, "php-0000");
/// assert_eq!(runs[0].2.result, "UNSAT");
/// ```
pub fn solve_batch_recorded(
    formulas: &[Cnf],
    policy: PolicyKind,
    budget: Budget,
    threads: usize,
    id_prefix: &str,
) -> Vec<(SolveResult, SolverStats, RunRecord)> {
    let indexed: Vec<(usize, &Cnf)> = formulas.iter().enumerate().collect();
    par_map(&indexed, threads, |&(i, f)| {
        solve_with_policy_recorded(f, policy, budget, &format!("{id_prefix}-{i:04}"), None)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let input: Vec<u64> = (0..100).collect();
        let out = par_map(&input, 4, |&x| x * 2);
        assert_eq!(out, input.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_single_thread_matches_sequential() {
        let input = vec!["a", "bb", "ccc"];
        assert_eq!(par_map(&input, 1, |s| s.len()), vec![1, 2, 3]);
    }

    #[test]
    fn par_map_empty_input() {
        let out: Vec<u32> = par_map(&Vec::<u32>::new(), 3, |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn solve_batch_matches_sequential_verdicts() {
        let formulas: Vec<Cnf> = (0..6)
            .map(|s| sat_gen::phase_transition_3sat(30, s))
            .collect();
        let parallel = solve_batch(&formulas, PolicyKind::Default, Budget::unlimited(), 3);
        for (f, (r, s)) in formulas.iter().zip(&parallel) {
            let (r2, s2) = solve_with_policy(f, PolicyKind::Default, Budget::unlimited());
            assert_eq!(r.is_sat(), r2.is_sat());
            // the solver is deterministic, so stats agree exactly
            assert_eq!(s.propagations, s2.propagations);
            assert_eq!(s.conflicts, s2.conflicts);
        }
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_rejected() {
        let _ = par_map(&[1], 0, |&x: &i32| x);
    }
}
