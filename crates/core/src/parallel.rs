//! Parallel batch evaluation (the paper runs its Table 3 comparison on 20
//! concurrent solver processes).
//!
//! Built on scoped threads and an atomic work index — no external
//! dependencies — so batch experiments scale to however many cores the
//! machine offers while staying deterministic per instance.

use cnf::Cnf;
use sat_solver::{
    solve_with_policy, solve_with_policy_recorded, Budget, PolicyKind, SolveResult, SolverStats,
};
use std::sync::atomic::{AtomicUsize, Ordering};
use telemetry::RunRecord;

/// Applies `f` to every item on `threads` worker threads, preserving input
/// order in the output.
///
/// Results are deterministic (each item is processed exactly once and
/// output slots are pre-assigned), only completion order varies.
///
/// Each worker accumulates `(index, result)` pairs privately and hands
/// them back through its join handle, so the hot path takes no lock at
/// all — the shared state is one atomic work index. (An earlier version
/// wrapped every output slot in its own `Mutex`, paying a lock round-trip
/// per item.)
///
/// # Panics
///
/// Panics if `threads == 0`, or propagates a worker's panic. Propagation
/// cannot deadlock: the scope joins every worker — the survivors just
/// drain the remaining work — before the panic is re-raised here.
///
/// # Examples
///
/// ```
/// use neuroselect::par_map;
/// let squares = par_map(&[1, 2, 3, 4], 2, |&x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    assert!(threads > 0, "need at least one worker thread");
    let next = AtomicUsize::new(0);
    let workers = threads.min(items.len().max(1));
    let chunks: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut chunk: Vec<(usize, R)> = Vec::new();
                    loop {
                        // Claimed exactly once per index by the atomic RMW;
                        // items are read-only, so no ordering is needed.
                        let i = next.fetch_add(1, Ordering::Relaxed); // xtask: allow(atomic-ordering) work index, not a publication flag
                        let Some(item) = items.get(i) else { break };
                        chunk.push((i, f(item)));
                    }
                    chunk
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(chunk) => chunk,
                // Data-parallel map has no degraded mode: a panicking
                // closure is a caller bug, so the panic is re-raised
                // unchanged on the calling thread.
                Err(panic) => std::panic::resume_unwind(panic), // xtask: allow(no-unwind-escape) deliberate re-raise in par_map
            })
            .collect()
    });
    let mut results: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    for (i, r) in chunks.into_iter().flatten() {
        if let Some(slot) = results.get_mut(i) {
            *slot = Some(r);
        }
    }
    results
        .into_iter()
        .map(|r| r.expect("every slot filled"))
        .collect()
}

/// Solves every formula under `policy` on `threads` workers, returning
/// per-instance results in input order.
///
/// # Examples
///
/// ```
/// use neuroselect::{solve_batch, Budget, PolicyKind};
/// let batch = vec![
///     sat_gen::phase_transition_3sat(30, 1),
///     sat_gen::pigeonhole(5, 4),
/// ];
/// let results = solve_batch(&batch, PolicyKind::Default, Budget::unlimited(), 2);
/// assert!(results[0].0.is_sat() || results[0].0.is_unsat());
/// assert!(results[1].0.is_unsat());
/// ```
pub fn solve_batch(
    formulas: &[Cnf],
    policy: PolicyKind,
    budget: Budget,
    threads: usize,
) -> Vec<(SolveResult, SolverStats)> {
    par_map(formulas, threads, |f| solve_with_policy(f, policy, budget))
}

/// Like [`solve_batch`], but each worker carries a telemetry recorder:
/// the output additionally holds one [`RunRecord`] per instance (phase
/// timings, glue/length/trail distributions, peak clause-DB size), in
/// input order. Records are tagged `{id_prefix}-{index:04}`.
///
/// # Examples
///
/// ```
/// use neuroselect::{solve_batch_recorded, Budget, PolicyKind};
/// let batch = vec![sat_gen::pigeonhole(5, 4)];
/// let runs = solve_batch_recorded(&batch, PolicyKind::Default, Budget::unlimited(), 1, "php");
/// assert_eq!(runs[0].2.instance_id, "php-0000");
/// assert_eq!(runs[0].2.result, "UNSAT");
/// ```
pub fn solve_batch_recorded(
    formulas: &[Cnf],
    policy: PolicyKind,
    budget: Budget,
    threads: usize,
    id_prefix: &str,
) -> Vec<(SolveResult, SolverStats, RunRecord)> {
    let indexed: Vec<(usize, &Cnf)> = formulas.iter().enumerate().collect();
    par_map(&indexed, threads, |&(i, f)| {
        solve_with_policy_recorded(f, policy, budget, &format!("{id_prefix}-{i:04}"), None)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let input: Vec<u64> = (0..100).collect();
        let out = par_map(&input, 4, |&x| x * 2);
        assert_eq!(out, input.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_single_thread_matches_sequential() {
        let input = vec!["a", "bb", "ccc"];
        assert_eq!(par_map(&input, 1, |s| s.len()), vec![1, 2, 3]);
    }

    #[test]
    fn par_map_empty_input() {
        let out: Vec<u32> = par_map(&Vec::<u32>::new(), 3, |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn solve_batch_matches_sequential_verdicts() {
        let formulas: Vec<Cnf> = (0..6)
            .map(|s| sat_gen::phase_transition_3sat(30, s))
            .collect();
        let parallel = solve_batch(&formulas, PolicyKind::Default, Budget::unlimited(), 3);
        for (f, (r, s)) in formulas.iter().zip(&parallel) {
            let (r2, s2) = solve_with_policy(f, PolicyKind::Default, Budget::unlimited());
            assert_eq!(r.is_sat(), r2.is_sat());
            // the solver is deterministic, so stats agree exactly
            assert_eq!(s.propagations, s2.propagations);
            assert_eq!(s.conflicts, s2.conflicts);
        }
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_rejected() {
        let _ = par_map(&[1], 0, |&x: &i32| x);
    }

    #[test]
    #[should_panic(expected = "worker died on 3")]
    fn worker_panic_propagates_without_deadlock() {
        // The surviving workers drain the queue and the scope joins them
        // all, so the panic must re-raise here instead of hanging.
        let _ = par_map(&[1, 2, 3, 4, 5, 6], 2, |&x: &i32| {
            if x == 3 {
                panic!("worker died on {x}");
            }
            x * 2
        });
    }
}
