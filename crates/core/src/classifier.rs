//! A uniform interface over the SAT-instance classifiers of Table 2, plus
//! the shared training and evaluation loops.

use crate::{ClassifierMetrics, LabeledInstance};
use cnf::Cnf;
use neuro::{
    Adam, BaselineConfig, GinModel, GraphTensors, LcgTensors, NeuroSatModel, NeuroSelectConfig,
    NeuroSelectModel, ParamStore,
};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use sat_graph::{BipartiteGraph, LiteralClauseGraph};

/// A trainable binary classifier of CNF instances.
///
/// `Prepared` caches the graph conversion so that multi-epoch training does
/// not rebuild adjacency every pass.
pub trait Classifier {
    /// The cached graph representation.
    type Prepared;

    /// Human-readable name used in experiment tables.
    fn name(&self) -> &'static str;

    /// Converts a formula into the classifier's graph representation.
    fn prepare(&self, formula: &Cnf) -> Self::Prepared;

    /// One batch-size-1 gradient step; returns the loss.
    fn train_step(&mut self, prepared: &Self::Prepared, label: u8) -> f32;

    /// The predicted probability of label 1.
    fn predict(&self, prepared: &Self::Prepared) -> f32;

    /// The hard prediction at threshold 0.5.
    fn classify(&self, prepared: &Self::Prepared) -> u8 {
        u8::from(self.predict(prepared) > 0.5)
    }
}

/// The NeuroSelect HGT classifier (optionally without attention, for the
/// Table 2 ablation row).
pub struct NeuroSelectClassifier {
    model: NeuroSelectModel,
    store: ParamStore,
    adam: Adam,
    with_attention: bool,
}

impl NeuroSelectClassifier {
    /// Creates the classifier with the paper's architecture and learning
    /// rate (Adam, 1e-4 by default — pass a larger `lr` for short runs).
    pub fn new(config: NeuroSelectConfig, lr: f32) -> Self {
        let mut store = ParamStore::new();
        let with_attention = config.use_attention;
        let model = NeuroSelectModel::new(&mut store, config);
        NeuroSelectClassifier {
            model,
            store,
            adam: Adam::new(lr),
            with_attention,
        }
    }

    /// Access to the parameter store (for model persistence).
    pub fn store(&self) -> &ParamStore {
        &self.store
    }

    /// The predicted probability of label 1, plus the wall-clock time of
    /// the forward pass (the telemetry pipeline's `gnn_forward` phase).
    pub fn predict_timed(&self, prepared: &GraphTensors) -> (f32, std::time::Duration) {
        self.model.predict_timed(&self.store, prepared)
    }

    /// Mutable access to the parameter store (for model loading).
    pub fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }
}

impl Classifier for NeuroSelectClassifier {
    type Prepared = GraphTensors;

    fn name(&self) -> &'static str {
        if self.with_attention {
            "NeuroSelect"
        } else {
            "NeuroSelect w/o attention"
        }
    }

    fn prepare(&self, formula: &Cnf) -> GraphTensors {
        GraphTensors::new(&BipartiteGraph::from_cnf(formula))
    }

    fn train_step(&mut self, prepared: &GraphTensors, label: u8) -> f32 {
        self.model
            .train_step(&mut self.store, &mut self.adam, prepared, label)
    }

    fn predict(&self, prepared: &GraphTensors) -> f32 {
        self.model.predict(&self.store, prepared)
    }
}

/// The GIN baseline (G4SATBench row of Table 2).
pub struct GinClassifier {
    model: GinModel,
    store: ParamStore,
    adam: Adam,
}

impl GinClassifier {
    /// Creates the baseline with the given configuration and learning rate.
    pub fn new(config: BaselineConfig, lr: f32) -> Self {
        let mut store = ParamStore::new();
        let model = GinModel::new(&mut store, config);
        GinClassifier {
            model,
            store,
            adam: Adam::new(lr),
        }
    }
}

impl Classifier for GinClassifier {
    type Prepared = GraphTensors;

    fn name(&self) -> &'static str {
        "G4SATBench (GIN)"
    }

    fn prepare(&self, formula: &Cnf) -> GraphTensors {
        GraphTensors::new(&BipartiteGraph::from_cnf(formula))
    }

    fn train_step(&mut self, prepared: &GraphTensors, label: u8) -> f32 {
        self.model
            .train_step(&mut self.store, &mut self.adam, prepared, label)
    }

    fn predict(&self, prepared: &GraphTensors) -> f32 {
        self.model.predict(&self.store, prepared)
    }
}

/// The NeuroSAT-style baseline row of Table 2.
pub struct NeuroSatClassifier {
    model: NeuroSatModel,
    store: ParamStore,
    adam: Adam,
}

impl NeuroSatClassifier {
    /// Creates the baseline with the given configuration and learning rate.
    pub fn new(config: BaselineConfig, lr: f32) -> Self {
        let mut store = ParamStore::new();
        let model = NeuroSatModel::new(&mut store, config);
        NeuroSatClassifier {
            model,
            store,
            adam: Adam::new(lr),
        }
    }
}

impl Classifier for NeuroSatClassifier {
    type Prepared = LcgTensors;

    fn name(&self) -> &'static str {
        "NeuroSAT"
    }

    fn prepare(&self, formula: &Cnf) -> LcgTensors {
        LcgTensors::new(&LiteralClauseGraph::from_cnf(formula))
    }

    fn train_step(&mut self, prepared: &LcgTensors, label: u8) -> f32 {
        self.model
            .train_step(&mut self.store, &mut self.adam, prepared, label)
    }

    fn predict(&self, prepared: &LcgTensors) -> f32 {
        self.model.predict(&self.store, prepared)
    }
}

/// Training-loop parameters. The paper trains 400 epochs with batch size 1;
/// tests use far fewer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Shuffling seed (examples are reshuffled every epoch).
    pub seed: u64,
    /// Oversample the minority class so each epoch sees roughly balanced
    /// labels. Policy-win labels are naturally skewed (most instances are
    /// ties, labelled 0), and without balancing BCE converges to the
    /// majority class long before it picks up structure.
    pub balance: bool,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 400,
            seed: 7,
            balance: true,
        }
    }
}

/// Trains `classifier` on the labelled instances and returns the mean loss
/// per epoch.
pub fn train<C: Classifier>(
    classifier: &mut C,
    data: &[LabeledInstance],
    config: &TrainConfig,
) -> Vec<f32> {
    let prepared: Vec<(C::Prepared, u8)> = data
        .iter()
        .map(|d| (classifier.prepare(&d.instance.cnf), d.label()))
        .collect();
    let mut order: Vec<usize> = (0..prepared.len()).collect();
    if config.balance {
        let pos = prepared.iter().filter(|(_, l)| *l == 1).count();
        let neg = prepared.len() - pos;
        if pos > 0 && neg > 0 {
            let (minority, reps) = if pos < neg {
                (1u8, neg / pos)
            } else {
                (0u8, pos / neg)
            };
            for _ in 1..reps {
                order.extend(
                    prepared
                        .iter()
                        .enumerate()
                        .filter(|(_, (_, l))| *l == minority)
                        .map(|(i, _)| i),
                );
            }
        }
    }
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut history = Vec::with_capacity(config.epochs);
    for _ in 0..config.epochs {
        order.shuffle(&mut rng);
        let mut total = 0.0;
        for &i in &order {
            let (g, label) = &prepared[i];
            total += classifier.train_step(g, *label);
        }
        history.push(if order.is_empty() {
            0.0
        } else {
            total / order.len() as f32
        });
    }
    history
}

/// One epoch's record from [`train_with_validation`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochRecord {
    /// Mean training loss of the epoch.
    pub train_loss: f32,
    /// Validation metrics after the epoch.
    pub validation: ClassifierMetrics,
}

/// Trains like [`train`] but evaluates on `validation` after every epoch,
/// returning the full history — the standard way to pick an epoch budget
/// and detect overfitting.
pub fn train_with_validation<C: Classifier>(
    classifier: &mut C,
    data: &[LabeledInstance],
    validation: &[LabeledInstance],
    config: &TrainConfig,
) -> Vec<EpochRecord> {
    let mut history = Vec::with_capacity(config.epochs);
    for epoch in 0..config.epochs {
        let one = TrainConfig {
            epochs: 1,
            seed: config.seed.wrapping_add(epoch as u64),
            balance: config.balance,
        };
        let losses = train(classifier, data, &one);
        history.push(EpochRecord {
            train_loss: losses[0],
            validation: evaluate(classifier, validation),
        });
    }
    history
}

/// Evaluates `classifier` on held-out labelled instances (Table 2 row).
pub fn evaluate<C: Classifier>(classifier: &C, data: &[LabeledInstance]) -> ClassifierMetrics {
    ClassifierMetrics::from_pairs(data.iter().map(|d| {
        let g = classifier.prepare(&d.instance.cnf);
        (classifier.classify(&g), d.label())
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LabelOutcome;
    use sat_gen::{Family, Instance};

    fn labeled(text: &str, label: u8) -> LabeledInstance {
        LabeledInstance {
            instance: Instance {
                name: format!("t-{label}"),
                family: Family::RandomKSat,
                cnf: cnf::parse_dimacs_str(text).unwrap(),
            },
            outcome: LabelOutcome {
                label,
                props_default: 100,
                props_prop_freq: if label == 1 { 50 } else { 100 },
                both_solved: true,
                verdicts_agree: true,
            },
        }
    }

    fn tiny_data() -> Vec<LabeledInstance> {
        vec![
            labeled(
                "p cnf 4 6\n1 2 0\n-1 2 0\n1 -2 0\n3 4 0\n-3 4 0\n3 -4 0\n",
                0,
            ),
            labeled("p cnf 4 2\n1 2 3 4 0\n-1 -2 -3 -4 0\n", 1),
        ]
    }

    fn tiny_ns_config() -> NeuroSelectConfig {
        NeuroSelectConfig {
            hidden_dim: 8,
            hgt_layers: 1,
            mpnn_per_hgt: 2,
            use_attention: true,
            seed: 5,
        }
    }

    #[test]
    fn neuroselect_overfits_tiny_dataset() {
        let data = tiny_data();
        let mut c = NeuroSelectClassifier::new(tiny_ns_config(), 0.02);
        let history = train(
            &mut c,
            &data,
            &TrainConfig {
                epochs: 60,
                seed: 1,
                balance: true,
            },
        );
        assert!(history.last().unwrap() < &history[0]);
        let m = evaluate(&c, &data);
        assert_eq!(m.accuracy(), 1.0, "{m}");
    }

    #[test]
    fn baselines_train_without_error() {
        let data = tiny_data();
        let cfg = BaselineConfig {
            hidden_dim: 8,
            rounds: 2,
            seed: 2,
        };
        let mut gin = GinClassifier::new(cfg, 0.02);
        train(
            &mut gin,
            &data,
            &TrainConfig {
                epochs: 30,
                seed: 1,
                balance: true,
            },
        );
        assert_eq!(evaluate(&gin, &data).total(), 2);
        let mut ns = NeuroSatClassifier::new(cfg, 0.02);
        train(
            &mut ns,
            &data,
            &TrainConfig {
                epochs: 30,
                seed: 1,
                balance: true,
            },
        );
        assert_eq!(evaluate(&ns, &data).total(), 2);
    }

    #[test]
    fn classifier_names() {
        let c = NeuroSelectClassifier::new(tiny_ns_config(), 0.01);
        assert_eq!(c.name(), "NeuroSelect");
        let c2 = NeuroSelectClassifier::new(
            NeuroSelectConfig {
                use_attention: false,
                ..tiny_ns_config()
            },
            0.01,
        );
        assert_eq!(c2.name(), "NeuroSelect w/o attention");
    }

    #[test]
    fn validation_history_has_one_record_per_epoch() {
        let data = tiny_data();
        let mut c = NeuroSelectClassifier::new(tiny_ns_config(), 0.01);
        let history = train_with_validation(
            &mut c,
            &data,
            &data,
            &TrainConfig {
                epochs: 4,
                seed: 2,
                balance: true,
            },
        );
        assert_eq!(history.len(), 4);
        assert!(history.iter().all(|r| r.train_loss.is_finite()));
        assert!(history.iter().all(|r| r.validation.total() == 2));
    }

    #[test]
    fn empty_training_set_is_harmless() {
        let mut c = NeuroSelectClassifier::new(tiny_ns_config(), 0.01);
        let history = train(
            &mut c,
            &[],
            &TrainConfig {
                epochs: 3,
                seed: 0,
                balance: true,
            },
        );
        assert_eq!(history, vec![0.0, 0.0, 0.0]);
    }
}
