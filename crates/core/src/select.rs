//! The NeuroSelect-guided solver: one model inference picks the deletion
//! policy, then the CDCL solver runs with it (Section 4.1, Figure 6).

use crate::fallback::{degraded_decision, DegradeReason, PolicyDecision, PolicySource};
use crate::{Classifier, NeuroSelectClassifier};
use cnf::Cnf;
use neuro::LoadParamsError;
use sat_solver::{
    run_isolated, solve_with_policy_recorded, Budget, PolicyKind, SolveResult, SolverStats,
};
use std::fs::File;
use std::io::BufReader;
use std::path::Path;
use std::time::{Duration, Instant};
use telemetry::json::Json;
use telemetry::{Phase, PhaseTimes, RunRecord, Sink};

/// The record of one NeuroSelect-guided solve, including the one-time
/// inference cost the paper folds into NeuroSelect-Kissat's runtime.
#[derive(Debug, Clone)]
pub struct SelectionOutcome {
    /// The solver verdict.
    pub result: SolveResult,
    /// Solver statistics of the selected run.
    pub stats: SolverStats,
    /// The policy the model chose.
    pub chosen: PolicyKind,
    /// The model's probability for the propagation-frequency policy.
    pub probability: f32,
    /// Wall-clock time of the model inference (graph build + forward pass).
    pub inference_time: Duration,
    /// Wall-clock time of the solving phase.
    pub solve_time: Duration,
    /// Which rung of the selection ladder produced the policy pick.
    pub source: PolicySource,
    /// Degradations hit on the way to the pick (empty in normal
    /// operation); also recorded in [`SelectionOutcome::record`].
    pub degradations: Vec<DegradeReason>,
    /// Full telemetry record: solver phase timings and distributions plus
    /// the pipeline's `feature_extract` / `gnn_forward` / `policy_select`
    /// phases and the inference time.
    pub record: RunRecord,
}

impl SelectionOutcome {
    /// Total wall-clock cost (inference + solving), the paper's
    /// "NeuroSelect-Kissat runtime".
    pub fn total_time(&self) -> Duration {
        self.inference_time + self.solve_time
    }
}

/// A trained NeuroSelect classifier wrapped as a policy-selecting solver
/// front end.
///
/// Mirrors the paper's deployment: instances whose graph exceeds
/// `node_cutoff` skip inference and use the default policy (the paper uses
/// 400 000 nodes, a GPU-memory limit kept here for fidelity).
pub struct NeuroSelectSolver {
    classifier: NeuroSelectClassifier,
    /// Graph-size cutoff above which the default policy is used unselected.
    pub node_cutoff: usize,
    /// Decision threshold on the predicted probability.
    pub threshold: f32,
    /// Ceiling on inference wall time. When inference finishes but took
    /// longer than this, its answer is discarded and the static heuristic
    /// picks instead (recorded as an `inference-deadline` degradation).
    /// `None` (the default) imposes no ceiling.
    pub inference_deadline: Option<Duration>,
    /// Sticky model fault (e.g. a failed weight load): while set, every
    /// selection skips inference and degrades to the static heuristic.
    model_fault: Option<DegradeReason>,
}

impl NeuroSelectSolver {
    /// Wraps a trained classifier with the paper's deployment defaults.
    pub fn new(classifier: NeuroSelectClassifier) -> Self {
        NeuroSelectSolver {
            classifier,
            node_cutoff: 400_000,
            threshold: 0.5,
            inference_deadline: None,
            model_fault: None,
        }
    }

    /// Access to the wrapped classifier.
    pub fn classifier(&self) -> &NeuroSelectClassifier {
        &self.classifier
    }

    /// Loads trained weights from `path` into the wrapped classifier.
    ///
    /// On failure the solver **stays usable but degraded**: the error is
    /// remembered as a sticky model fault, and every later policy
    /// selection skips inference and falls back to the static heuristic
    /// (recorded as a `model-load-error` degradation in the run's
    /// telemetry). A later successful load clears the fault.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`LoadParamsError`] so callers that *want*
    /// to fail hard still can; ignoring it opts into degraded operation.
    pub fn load_weights(&mut self, path: &Path) -> Result<(), LoadParamsError> {
        let result = self.try_load_weights(path);
        self.model_fault = result
            .as_ref()
            .err()
            .map(|e| DegradeReason::ModelLoad(format!("{}: {e}", path.display())));
        result
    }

    fn try_load_weights(&mut self, path: &Path) -> Result<(), LoadParamsError> {
        let file = File::open(path)?;
        #[cfg(feature = "faults")]
        if let Some(cfg) = faults::fire(faults::site::MODEL_IO, &[]) {
            let budget = cfg.get_u64("after", 16);
            let reader = BufReader::new(faults::FailingReader::new(file, budget));
            return neuro::load_params(reader, self.classifier.store_mut());
        }
        neuro::load_params(BufReader::new(file), self.classifier.store_mut())
    }

    /// The sticky model fault, if the model is currently out of service.
    pub fn model_fault(&self) -> Option<&DegradeReason> {
        self.model_fault.as_ref()
    }

    /// Picks the deletion policy for a formula (one model inference),
    /// returning the policy, probability, and inference time.
    pub fn select_policy(&self, formula: &Cnf) -> (PolicyKind, f32, Duration) {
        let (decision, elapsed, _) = self.decide_policy_phased(formula);
        (decision.policy, decision.probability, elapsed)
    }

    /// Picks the deletion policy through the full degradation ladder,
    /// returning the [`PolicyDecision`] (policy, source rung, and any
    /// degradations hit) together with the selection wall time.
    pub fn decide_policy(&self, formula: &Cnf) -> (PolicyDecision, Duration) {
        let (decision, elapsed, _) = self.decide_policy_phased(formula);
        (decision, elapsed)
    }

    /// [`decide_policy`](Self::decide_policy) with per-phase timing:
    /// `feature_extract` (formula → graph tensors), `gnn_forward` (model
    /// forward pass), and `policy_select` (thresholding).
    ///
    /// This is the pipeline's fallback chain. Inference runs in panic
    /// isolation; a panic, a sticky model fault, or an inference time
    /// beyond [`inference_deadline`](Self::inference_deadline) steps down
    /// to the static heuristic (and, should that panic too, to the
    /// default policy) — a broken model degrades the pick, never the run.
    fn decide_policy_phased(&self, formula: &Cnf) -> (PolicyDecision, Duration, PhaseTimes) {
        let start = Instant::now();
        let mut phases = PhaseTimes::default();
        if let Some(reason) = &self.model_fault {
            let decision = degraded_decision(formula, reason.clone());
            return (decision, start.elapsed(), phases);
        }
        let nodes = formula.num_vars() as usize + formula.num_clauses();
        if nodes > self.node_cutoff {
            // By-design cutoff (the paper's GPU-memory limit), not a fault.
            let decision = PolicyDecision {
                policy: PolicyKind::Default,
                probability: 0.0,
                source: PolicySource::Model,
                degradations: Vec::new(),
            };
            return (decision, start.elapsed(), phases);
        }
        // `run_isolated` is sound here for the same reason as in the
        // portfolio: on panic the prepared tensors are dropped mid-unwind
        // and never touched again, and the classifier's forward pass does
        // not mutate shared state.
        let inference = run_isolated(|| {
            #[cfg(feature = "faults")]
            if let Some(cfg) = faults::fire(faults::site::INFERENCE_STALL, &[]) {
                std::thread::sleep(Duration::from_millis(cfg.get_u64("ms", 50)));
            }
            #[cfg(feature = "faults")]
            if faults::fire(faults::site::INFERENCE_PANIC, &[]).is_some() {
                panic!("injected fault: model inference panicked");
            }
            let mut inner = PhaseTimes::default();
            let prepared = {
                let _guard = inner.scope(Phase::FeatureExtract);
                let _span = telemetry::trace::span("feature-extract");
                self.classifier.prepare(formula)
            };
            let (probability, forward_time) = {
                let _span = telemetry::trace::span("gnn-forward");
                self.classifier.predict_timed(&prepared)
            };
            inner.add(Phase::GnnForward, forward_time);
            (probability, inner)
        });
        let (probability, inner) = match inference {
            Ok(out) => out,
            Err(crash) => {
                let reason = DegradeReason::InferencePanic(crash.message);
                return (degraded_decision(formula, reason), start.elapsed(), phases);
            }
        };
        phases.merge(&inner);
        let elapsed = start.elapsed();
        if let Some(limit) = self.inference_deadline {
            if elapsed > limit {
                let reason = DegradeReason::InferenceDeadline { limit, elapsed };
                return (degraded_decision(formula, reason), start.elapsed(), phases);
            }
        }
        let select_start = Instant::now();
        let chosen = {
            let _span = telemetry::trace::span("policy-select");
            if probability > self.threshold {
                PolicyKind::PropFreq
            } else {
                PolicyKind::Default
            }
        };
        phases.add(Phase::PolicySelect, select_start.elapsed());
        // Live pipeline meters: how often the model runs, how long a query
        // takes, and how confident the latest pick was. No-ops unless the
        // `metrics` feature is on and the registry is armed.
        telemetry::metrics::inc(telemetry::metrics::Counter::Inferences);
        telemetry::metrics::add(
            telemetry::metrics::Counter::InferenceNanos,
            elapsed.as_nanos() as u64,
        );
        telemetry::metrics::set_gauge(
            telemetry::metrics::Gauge::InferenceLastSeconds,
            elapsed.as_secs_f64(),
        );
        telemetry::metrics::set_gauge(
            telemetry::metrics::Gauge::PolicyConfidence,
            f64::from(probability),
        );
        let decision = PolicyDecision {
            policy: chosen,
            probability,
            source: PolicySource::Model,
            degradations: Vec::new(),
        };
        (decision, start.elapsed(), phases)
    }

    /// Solves a formula with the model-selected deletion policy.
    pub fn solve(&self, formula: &Cnf, budget: Budget) -> SelectionOutcome {
        self.solve_recorded(formula, budget, "unnamed", None)
    }

    /// Like [`solve`](Self::solve), with telemetry identity and output:
    /// the outcome's [`RunRecord`] is tagged with `instance_id`, and solver
    /// events stream into `sink` when one is given.
    ///
    /// The `solve_end` event emitted through the sink carries solver-side
    /// measurements only; the *returned* record is additionally enriched
    /// with the pipeline phases, the inference time, and the model
    /// probability.
    pub fn solve_recorded(
        &self,
        formula: &Cnf,
        budget: Budget,
        instance_id: &str,
        sink: Option<Box<dyn Sink>>,
    ) -> SelectionOutcome {
        let (decision, inference_time, pipeline_phases) = self.decide_policy_phased(formula);
        let solve_start = Instant::now();
        let (result, stats, mut record) =
            solve_with_policy_recorded(formula, decision.policy, budget, instance_id, sink);
        let solve_time = solve_start.elapsed();
        record.inference_time_s = Some(inference_time.as_secs_f64());
        record.phases.merge(&pipeline_phases);
        record
            .extra
            .set("probability", Json::from(f64::from(decision.probability)));
        record
            .extra
            .set("policy_source", Json::from(decision.source.as_str()));
        for d in &decision.degradations {
            record.degrade(d.kind(), d.detail());
        }
        SelectionOutcome {
            result,
            stats,
            chosen: decision.policy,
            probability: decision.probability,
            inference_time,
            solve_time,
            source: decision.source,
            degradations: decision.degradations,
            record,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neuro::NeuroSelectConfig;

    fn tiny_solver() -> NeuroSelectSolver {
        NeuroSelectSolver::new(NeuroSelectClassifier::new(
            NeuroSelectConfig {
                hidden_dim: 8,
                hgt_layers: 1,
                mpnn_per_hgt: 1,
                use_attention: true,
                seed: 3,
            },
            0.01,
        ))
    }

    #[test]
    fn solve_returns_valid_outcome() {
        let f = sat_gen::phase_transition_3sat(30, 4);
        let s = tiny_solver();
        let out = s.solve(&f, Budget::unlimited());
        assert!(!out.result.is_unknown());
        if let Some(model) = out.result.model() {
            assert!(cnf::verify_model(&f, model).is_ok());
        }
        assert!(out.total_time() >= out.inference_time);
        assert!((0.0..=1.0).contains(&out.probability));
    }

    #[test]
    fn oversized_instances_skip_inference() {
        let f = sat_gen::phase_transition_3sat(30, 4);
        let mut s = tiny_solver();
        s.node_cutoff = 1; // force the cutoff path
        let (policy, prob, _) = s.select_policy(&f);
        assert_eq!(policy, PolicyKind::Default);
        assert_eq!(prob, 0.0);
    }

    #[test]
    fn failed_weight_load_degrades_to_the_heuristic() {
        let f = sat_gen::phase_transition_3sat(20, 1); // dense: heuristic → PropFreq
        let mut s = tiny_solver();
        assert!(s
            .load_weights(std::path::Path::new("/nonexistent/weights.params"))
            .is_err());
        assert!(s.model_fault().is_some(), "load failure must be sticky");
        let (decision, _) = s.decide_policy(&f);
        assert_eq!(decision.source, PolicySource::Heuristic);
        assert_eq!(decision.policy, PolicyKind::PropFreq);
        assert_eq!(decision.degradations.len(), 1);

        // The degraded run still solves, and the record says why it was
        // degraded.
        let out = s.solve_recorded(&f, Budget::unlimited(), "degraded", None);
        assert!(!out.result.is_unknown());
        assert_eq!(out.source, PolicySource::Heuristic);
        assert_eq!(out.record.degradations.len(), 1);
        assert_eq!(
            out.record.degradations.first().unwrap().kind,
            "model-load-error"
        );
        assert_eq!(
            out.record
                .extra
                .get("policy_source")
                .and_then(|j| j.as_str()),
            Some("heuristic")
        );
    }

    #[test]
    fn successful_weight_load_restores_the_model() {
        let dir = std::env::temp_dir().join("neuroselect-select-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("weights.params");
        let mut s = tiny_solver();
        {
            let mut buf = Vec::new();
            neuro::save_params(&mut buf, s.classifier().store()).unwrap();
            std::fs::write(&path, buf).unwrap();
        }
        let _ = s.load_weights(std::path::Path::new("/nonexistent/weights.params"));
        assert!(s.model_fault().is_some());
        s.load_weights(&path).expect("round-trip load");
        assert!(s.model_fault().is_none(), "a good load clears the fault");
        let f = sat_gen::phase_transition_3sat(20, 1);
        assert_eq!(s.decide_policy(&f).0.source, PolicySource::Model);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn zero_inference_deadline_degrades_every_pick() {
        let f = sat_gen::phase_transition_3sat(20, 1);
        let mut s = tiny_solver();
        s.inference_deadline = Some(Duration::ZERO);
        let (decision, _) = s.decide_policy(&f);
        assert_eq!(decision.source, PolicySource::Heuristic);
        assert_eq!(
            decision.degradations.first().unwrap().kind(),
            "inference-deadline"
        );
    }

    #[test]
    fn threshold_controls_choice() {
        let f = sat_gen::phase_transition_3sat(20, 1);
        let mut s = tiny_solver();
        s.threshold = -1.0; // everything above: always prop-freq
        assert_eq!(s.select_policy(&f).0, PolicyKind::PropFreq);
        s.threshold = 2.0; // never
        assert_eq!(s.select_policy(&f).0, PolicyKind::Default);
    }
}
