//! The NeuroSelect-guided solver: one model inference picks the deletion
//! policy, then the CDCL solver runs with it (Section 4.1, Figure 6).

use crate::{Classifier, NeuroSelectClassifier};
use cnf::Cnf;
use sat_solver::{solve_with_policy_recorded, Budget, PolicyKind, SolveResult, SolverStats};
use std::time::{Duration, Instant};
use telemetry::json::Json;
use telemetry::{Phase, PhaseTimes, RunRecord, Sink};

/// The record of one NeuroSelect-guided solve, including the one-time
/// inference cost the paper folds into NeuroSelect-Kissat's runtime.
#[derive(Debug, Clone)]
pub struct SelectionOutcome {
    /// The solver verdict.
    pub result: SolveResult,
    /// Solver statistics of the selected run.
    pub stats: SolverStats,
    /// The policy the model chose.
    pub chosen: PolicyKind,
    /// The model's probability for the propagation-frequency policy.
    pub probability: f32,
    /// Wall-clock time of the model inference (graph build + forward pass).
    pub inference_time: Duration,
    /// Wall-clock time of the solving phase.
    pub solve_time: Duration,
    /// Full telemetry record: solver phase timings and distributions plus
    /// the pipeline's `feature_extract` / `gnn_forward` / `policy_select`
    /// phases and the inference time.
    pub record: RunRecord,
}

impl SelectionOutcome {
    /// Total wall-clock cost (inference + solving), the paper's
    /// "NeuroSelect-Kissat runtime".
    pub fn total_time(&self) -> Duration {
        self.inference_time + self.solve_time
    }
}

/// A trained NeuroSelect classifier wrapped as a policy-selecting solver
/// front end.
///
/// Mirrors the paper's deployment: instances whose graph exceeds
/// `node_cutoff` skip inference and use the default policy (the paper uses
/// 400 000 nodes, a GPU-memory limit kept here for fidelity).
pub struct NeuroSelectSolver {
    classifier: NeuroSelectClassifier,
    /// Graph-size cutoff above which the default policy is used unselected.
    pub node_cutoff: usize,
    /// Decision threshold on the predicted probability.
    pub threshold: f32,
}

impl NeuroSelectSolver {
    /// Wraps a trained classifier with the paper's deployment defaults.
    pub fn new(classifier: NeuroSelectClassifier) -> Self {
        NeuroSelectSolver {
            classifier,
            node_cutoff: 400_000,
            threshold: 0.5,
        }
    }

    /// Access to the wrapped classifier.
    pub fn classifier(&self) -> &NeuroSelectClassifier {
        &self.classifier
    }

    /// Picks the deletion policy for a formula (one model inference),
    /// returning the policy, probability, and inference time.
    pub fn select_policy(&self, formula: &Cnf) -> (PolicyKind, f32, Duration) {
        let (chosen, probability, elapsed, _) = self.select_policy_phased(formula);
        (chosen, probability, elapsed)
    }

    /// [`select_policy`](Self::select_policy) with per-phase timing:
    /// `feature_extract` (formula → graph tensors), `gnn_forward` (model
    /// forward pass), and `policy_select` (thresholding).
    fn select_policy_phased(&self, formula: &Cnf) -> (PolicyKind, f32, Duration, PhaseTimes) {
        let start = Instant::now();
        let mut phases = PhaseTimes::default();
        let nodes = formula.num_vars() as usize + formula.num_clauses();
        if nodes > self.node_cutoff {
            return (PolicyKind::Default, 0.0, start.elapsed(), phases);
        }
        let prepared = {
            let _guard = phases.scope(Phase::FeatureExtract);
            self.classifier.prepare(formula)
        };
        let (probability, forward_time) = self.classifier.predict_timed(&prepared);
        phases.add(Phase::GnnForward, forward_time);
        let select_start = Instant::now();
        let chosen = if probability > self.threshold {
            PolicyKind::PropFreq
        } else {
            PolicyKind::Default
        };
        phases.add(Phase::PolicySelect, select_start.elapsed());
        (chosen, probability, start.elapsed(), phases)
    }

    /// Solves a formula with the model-selected deletion policy.
    pub fn solve(&self, formula: &Cnf, budget: Budget) -> SelectionOutcome {
        self.solve_recorded(formula, budget, "unnamed", None)
    }

    /// Like [`solve`](Self::solve), with telemetry identity and output:
    /// the outcome's [`RunRecord`] is tagged with `instance_id`, and solver
    /// events stream into `sink` when one is given.
    ///
    /// The `solve_end` event emitted through the sink carries solver-side
    /// measurements only; the *returned* record is additionally enriched
    /// with the pipeline phases, the inference time, and the model
    /// probability.
    pub fn solve_recorded(
        &self,
        formula: &Cnf,
        budget: Budget,
        instance_id: &str,
        sink: Option<Box<dyn Sink>>,
    ) -> SelectionOutcome {
        let (chosen, probability, inference_time, pipeline_phases) =
            self.select_policy_phased(formula);
        let solve_start = Instant::now();
        let (result, stats, mut record) =
            solve_with_policy_recorded(formula, chosen, budget, instance_id, sink);
        let solve_time = solve_start.elapsed();
        record.inference_time_s = Some(inference_time.as_secs_f64());
        record.phases.merge(&pipeline_phases);
        record
            .extra
            .set("probability", Json::from(f64::from(probability)));
        SelectionOutcome {
            result,
            stats,
            chosen,
            probability,
            inference_time,
            solve_time,
            record,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neuro::NeuroSelectConfig;

    fn tiny_solver() -> NeuroSelectSolver {
        NeuroSelectSolver::new(NeuroSelectClassifier::new(
            NeuroSelectConfig {
                hidden_dim: 8,
                hgt_layers: 1,
                mpnn_per_hgt: 1,
                use_attention: true,
                seed: 3,
            },
            0.01,
        ))
    }

    #[test]
    fn solve_returns_valid_outcome() {
        let f = sat_gen::phase_transition_3sat(30, 4);
        let s = tiny_solver();
        let out = s.solve(&f, Budget::unlimited());
        assert!(!out.result.is_unknown());
        if let Some(model) = out.result.model() {
            assert!(cnf::verify_model(&f, model).is_ok());
        }
        assert!(out.total_time() >= out.inference_time);
        assert!((0.0..=1.0).contains(&out.probability));
    }

    #[test]
    fn oversized_instances_skip_inference() {
        let f = sat_gen::phase_transition_3sat(30, 4);
        let mut s = tiny_solver();
        s.node_cutoff = 1; // force the cutoff path
        let (policy, prob, _) = s.select_policy(&f);
        assert_eq!(policy, PolicyKind::Default);
        assert_eq!(prob, 0.0);
    }

    #[test]
    fn threshold_controls_choice() {
        let f = sat_gen::phase_transition_3sat(20, 1);
        let mut s = tiny_solver();
        s.threshold = -1.0; // everything above: always prop-freq
        assert_eq!(s.select_policy(&f).0, PolicyKind::PropFreq);
        s.threshold = 2.0; // never
        assert_eq!(s.select_policy(&f).0, PolicyKind::Default);
    }
}
