//! Classification and runtime metrics (Tables 2 and 3).

/// Binary-classification confusion counts with the derived metrics the
/// paper reports in Table 2.
///
/// # Examples
///
/// ```
/// use neuroselect::ClassifierMetrics;
/// let m = ClassifierMetrics::from_pairs([(1u8, 1u8), (1, 0), (0, 0), (0, 1)]);
/// assert_eq!(m.accuracy(), 0.5);
/// assert_eq!(m.precision(), 0.5);
/// assert_eq!(m.recall(), 0.5);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassifierMetrics {
    /// Predicted 1, truth 1.
    pub true_positives: usize,
    /// Predicted 1, truth 0.
    pub false_positives: usize,
    /// Predicted 0, truth 0.
    pub true_negatives: usize,
    /// Predicted 0, truth 1.
    pub false_negatives: usize,
}

impl ClassifierMetrics {
    /// Builds the confusion matrix from `(prediction, truth)` pairs.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (u8, u8)>) -> Self {
        let mut m = ClassifierMetrics::default();
        for (pred, truth) in pairs {
            match (pred != 0, truth != 0) {
                (true, true) => m.true_positives += 1,
                (true, false) => m.false_positives += 1,
                (false, false) => m.true_negatives += 1,
                (false, true) => m.false_negatives += 1,
            }
        }
        m
    }

    /// Total examples.
    pub fn total(&self) -> usize {
        self.true_positives + self.false_positives + self.true_negatives + self.false_negatives
    }

    /// `TP / (TP + FP)`; 0 when no positive predictions were made.
    pub fn precision(&self) -> f64 {
        let denom = self.true_positives + self.false_positives;
        if denom == 0 {
            0.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// `TP / (TP + FN)`; 0 when there are no positive examples.
    pub fn recall(&self) -> f64 {
        let denom = self.true_positives + self.false_negatives;
        if denom == 0 {
            0.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// Harmonic mean of precision and recall; 0 when both are 0.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// `(TP + TN) / total`; 0 for an empty set.
    pub fn accuracy(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            (self.true_positives + self.true_negatives) as f64 / t as f64
        }
    }
}

impl std::fmt::Display for ClassifierMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "precision {:.2}% recall {:.2}% F1 {:.2}% accuracy {:.2}%",
            100.0 * self.precision(),
            100.0 * self.recall(),
            100.0 * self.f1(),
            100.0 * self.accuracy()
        )
    }
}

/// Summary statistics of per-instance costs — one row of Table 3.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RuntimeSummary {
    /// Instances solved within budget.
    pub solved: usize,
    /// Total instances attempted.
    pub attempted: usize,
    /// Median cost over solved instances.
    pub median: f64,
    /// Mean cost over solved instances.
    pub mean: f64,
}

impl RuntimeSummary {
    /// Summarizes per-instance costs; `None` entries are unsolved
    /// (timeouts) and excluded from median/mean, matching the paper's
    /// Table 3 protocol.
    pub fn from_costs(costs: impl IntoIterator<Item = Option<f64>>) -> Self {
        let mut solved_costs: Vec<f64> = Vec::new();
        let mut attempted = 0;
        for c in costs {
            attempted += 1;
            if let Some(v) = c {
                solved_costs.push(v);
            }
        }
        RuntimeSummary {
            solved: solved_costs.len(),
            attempted,
            median: median(&mut solved_costs),
            mean: mean(&solved_costs),
        }
    }
}

/// Median of a slice (sorted in place); 0 for an empty slice.
pub fn median(values: &mut [f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.sort_by(|a, b| a.partial_cmp(b).expect("no NaN costs"));
    let n = values.len();
    if n % 2 == 1 {
        values[n / 2]
    } else {
        (values[n / 2 - 1] + values[n / 2]) / 2.0
    }
}

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Five-number summary (min, q1, median, q3, max) for box-and-whisker plots
/// (the paper's Figure 7(b)).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoxPlot {
    /// Minimum.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Maximum.
    pub max: f64,
}

impl BoxPlot {
    /// Computes the five-number summary. Returns `None` for empty input.
    pub fn from_values(values: &[f64]) -> Option<Self> {
        if values.is_empty() {
            return None;
        }
        let mut v = values.to_vec();
        v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN values"));
        let q = |p: f64| -> f64 {
            let idx = p * (v.len() - 1) as f64;
            let lo = idx.floor() as usize;
            let hi = idx.ceil() as usize;
            let frac = idx - lo as f64;
            v[lo] * (1.0 - frac) + v[hi] * frac
        };
        Some(BoxPlot {
            min: v[0],
            q1: q(0.25),
            median: q(0.5),
            q3: q(0.75),
            max: v[v.len() - 1],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confusion_matrix_counts() {
        let m = ClassifierMetrics::from_pairs([(1u8, 1u8), (1, 1), (1, 0), (0, 1), (0, 0)]);
        assert_eq!(m.true_positives, 2);
        assert_eq!(m.false_positives, 1);
        assert_eq!(m.false_negatives, 1);
        assert_eq!(m.true_negatives, 1);
        assert_eq!(m.total(), 5);
    }

    #[test]
    fn metric_formulas() {
        let m = ClassifierMetrics {
            true_positives: 6,
            false_positives: 2,
            true_negatives: 10,
            false_negatives: 4,
        };
        assert!((m.precision() - 0.75).abs() < 1e-12);
        assert!((m.recall() - 0.6).abs() < 1e-12);
        assert!((m.f1() - 2.0 * 0.75 * 0.6 / 1.35).abs() < 1e-12);
        assert!((m.accuracy() - 16.0 / 22.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_metrics_are_zero_not_nan() {
        let m = ClassifierMetrics::default();
        assert_eq!(m.precision(), 0.0);
        assert_eq!(m.recall(), 0.0);
        assert_eq!(m.f1(), 0.0);
        assert_eq!(m.accuracy(), 0.0);
    }

    #[test]
    fn median_even_odd() {
        assert_eq!(median(&mut [3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&mut [4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&mut []), 0.0);
    }

    #[test]
    fn runtime_summary_excludes_timeouts() {
        let s = RuntimeSummary::from_costs([Some(1.0), None, Some(3.0), Some(2.0)]);
        assert_eq!(s.solved, 3);
        assert_eq!(s.attempted, 4);
        assert_eq!(s.median, 2.0);
        assert_eq!(s.mean, 2.0);
    }

    #[test]
    fn boxplot_quartiles() {
        let b = BoxPlot::from_values(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(b.min, 1.0);
        assert_eq!(b.q1, 2.0);
        assert_eq!(b.median, 3.0);
        assert_eq!(b.q3, 4.0);
        assert_eq!(b.max, 5.0);
        assert!(BoxPlot::from_values(&[]).is_none());
    }

    #[test]
    fn display_formats_percentages() {
        let m = ClassifierMetrics::from_pairs([(1u8, 1u8), (0, 0)]);
        let s = m.to_string();
        assert!(s.contains("100.00%"));
    }
}
