//! **NeuroSelect** — learning to select clause-deletion policies in CDCL
//! SAT solvers (reproduction of Liu et al., DAC 2024).
//!
//! Modern CDCL solvers periodically delete learned clauses; which clauses
//! to delete is decided by a scoring policy. The paper introduces a second
//! policy driven by *variable propagation frequency* (Equation 2) and
//! trains a Hybrid Graph Transformer to pick, per instance, whichever of
//! the two policies will solve it faster — one CPU inference before solving.
//!
//! This crate is the top of the workspace: it wires the
//! [`sat_solver`] substrate (CDCL with pluggable deletion
//! policies), the [`sat_gen`] instance families, the
//! [`sat_graph`] encodings, and the [`neuro`] models into
//! the paper's pipeline:
//!
//! 1. **Label** ([`label_batch`]): solve every instance under both
//!    policies; label 1 iff the new policy saves ≥ 2% propagations.
//! 2. **Train** ([`train`]): fit a [`Classifier`] (NeuroSelect or a
//!    baseline) with Adam, batch size 1.
//! 3. **Evaluate** ([`evaluate`]): Table 2 metrics.
//! 4. **Deploy** ([`NeuroSelectSolver`]): one inference selects the policy,
//!    then the solver runs (Table 3 / Figure 7).
//!
//! # Examples
//!
//! End-to-end on a tiny synthetic dataset:
//!
//! ```
//! use neuroselect::{
//!     evaluate, label_batch, train, Budget, LabelingConfig, NeuroSelectClassifier,
//!     NeuroSelectSolver, TrainConfig,
//! };
//! use neuro::NeuroSelectConfig;
//! use sat_gen::{competition_batch, DatasetConfig};
//!
//! let data_cfg = DatasetConfig::tiny();
//! let train_set = label_batch(&competition_batch("train", &data_cfg, 1), &LabelingConfig::default());
//!
//! let model_cfg = NeuroSelectConfig { hidden_dim: 8, hgt_layers: 1, mpnn_per_hgt: 1, ..Default::default() };
//! let mut classifier = NeuroSelectClassifier::new(model_cfg, 1e-2);
//! train(&mut classifier, &train_set, &TrainConfig { epochs: 3, seed: 0, balance: true });
//!
//! let solver = NeuroSelectSolver::new(classifier);
//! let outcome = solver.solve(&train_set[0].instance.cnf, Budget::unlimited());
//! assert!(!outcome.result.is_unknown());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod calibrate;
mod classifier;
mod fallback;
mod label;
mod metrics;
mod parallel;
mod race;
mod select;

pub use calibrate::{calibrate_threshold, calibrated_solver, Calibration};
pub use classifier::{
    evaluate, train, train_with_validation, Classifier, EpochRecord, GinClassifier,
    NeuroSatClassifier, NeuroSelectClassifier, TrainConfig,
};
pub use fallback::{static_heuristic_policy, DegradeReason, PolicyDecision, PolicySource};
pub use label::{
    label_batch, label_cnf, positive_rate, LabelOutcome, LabeledInstance, LabelingConfig,
};
pub use metrics::{mean, median, BoxPlot, ClassifierMetrics, RuntimeSummary};
pub use parallel::{par_map, solve_batch, solve_batch_recorded};
pub use race::{policy_mix_for, RaceOutcome};
pub use select::{NeuroSelectSolver, SelectionOutcome};

// Re-export the substrate crates so downstream users need only one
// dependency.
pub use cnf;
pub use logic_circuit;
pub use neuro;
pub use rsatd;
pub use sat_gen;
pub use sat_graph;
pub use sat_solver;

// Selected conveniences at the crate root.
pub use sat_solver::{Budget, PolicyKind, SolveResult};
