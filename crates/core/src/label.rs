//! Ground-truth labelling by dual-policy solving (Section 5.1).
//!
//! Each instance is solved twice — once per clause-deletion policy — and
//! labelled `1` when the propagation-frequency policy needs at least 2%
//! fewer propagations than the default. The paper uses propagation counts
//! rather than CPU time because they are deterministic.

use cnf::Cnf;
use sat_gen::{Batch, Instance};
use sat_solver::{solve_with_policy, Budget, PolicyKind, SolveResult};

/// Parameters of the labelling run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LabelingConfig {
    /// Per-solve resource budget (labelling must terminate even on
    /// pathological instances; `Unknown` verdicts are recorded as censored).
    pub budget: Budget,
    /// Relative propagation reduction required for label `1`
    /// (the paper uses 0.02, i.e. 2%).
    pub improvement_threshold: f64,
}

impl Default for LabelingConfig {
    fn default() -> Self {
        LabelingConfig {
            budget: Budget::propagations(20_000_000),
            improvement_threshold: 0.02,
        }
    }
}

/// The measured outcome of labelling one instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LabelOutcome {
    /// `1` if the propagation-frequency policy won by the threshold.
    pub label: u8,
    /// Propagations under the default policy.
    pub props_default: u64,
    /// Propagations under the propagation-frequency policy.
    pub props_prop_freq: u64,
    /// Whether both runs finished within budget (labels from censored runs
    /// compare the budget-limited counts and are less reliable).
    pub both_solved: bool,
    /// Verdict agreement sanity flag (must be true for solved pairs).
    pub verdicts_agree: bool,
}

/// Labels one formula by solving it under both deletion policies.
///
/// # Examples
///
/// ```
/// use neuroselect::{label_cnf, LabelingConfig};
/// let f = sat_gen::phase_transition_3sat(40, 3);
/// let outcome = label_cnf(&f, &LabelingConfig::default());
/// assert!(outcome.verdicts_agree);
/// assert!(outcome.label <= 1);
/// ```
pub fn label_cnf(formula: &Cnf, config: &LabelingConfig) -> LabelOutcome {
    let (r_def, s_def) = solve_with_policy(formula, PolicyKind::Default, config.budget);
    let (r_new, s_new) = solve_with_policy(formula, PolicyKind::PropFreq, config.budget);
    let both_solved = !r_def.is_unknown() && !r_new.is_unknown();
    let verdicts_agree = match (&r_def, &r_new) {
        (SolveResult::Sat(_), SolveResult::Sat(_)) | (SolveResult::Unsat, SolveResult::Unsat) => {
            true
        }
        (SolveResult::Unknown, _) | (_, SolveResult::Unknown) => true, // censored
        _ => false,
    };
    let threshold = (s_def.propagations as f64) * (1.0 - config.improvement_threshold);
    let label = u8::from((s_new.propagations as f64) <= threshold);
    LabelOutcome {
        label,
        props_default: s_def.propagations,
        props_prop_freq: s_new.propagations,
        both_solved,
        verdicts_agree,
    }
}

/// An instance together with its measured label.
#[derive(Debug, Clone)]
pub struct LabeledInstance {
    /// The benchmark instance.
    pub instance: Instance,
    /// The labelling measurement.
    pub outcome: LabelOutcome,
}

impl LabeledInstance {
    /// The binary classification target.
    pub fn label(&self) -> u8 {
        self.outcome.label
    }
}

/// Labels every instance of a batch.
pub fn label_batch(batch: &Batch, config: &LabelingConfig) -> Vec<LabeledInstance> {
    batch
        .instances
        .iter()
        .map(|instance| LabeledInstance {
            instance: instance.clone(),
            outcome: label_cnf(&instance.cnf, config),
        })
        .collect()
}

/// Fraction of label-1 instances — a dataset balance diagnostic.
pub fn positive_rate(data: &[LabeledInstance]) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    data.iter().filter(|d| d.label() == 1).count() as f64 / data.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use sat_gen::{competition_batch, DatasetConfig};

    #[test]
    fn labels_are_deterministic() {
        let f = sat_gen::phase_transition_3sat(50, 9);
        let c = LabelingConfig::default();
        assert_eq!(label_cnf(&f, &c), label_cnf(&f, &c));
    }

    #[test]
    fn threshold_semantics() {
        // With threshold 1.0 (100% improvement required), label is 1 only
        // if the new policy uses 0 propagations — practically never.
        let f = sat_gen::phase_transition_3sat(30, 2);
        let strict = LabelingConfig {
            improvement_threshold: 1.0,
            ..LabelingConfig::default()
        };
        let o = label_cnf(&f, &strict);
        assert_eq!(o.label, u8::from(o.props_prop_freq == 0));
        // With threshold -10 (new policy may be 10× worse), label is 1
        // whenever props_new <= 11 * props_default, i.e. essentially always.
        let lax = LabelingConfig {
            improvement_threshold: -10.0,
            ..LabelingConfig::default()
        };
        assert_eq!(label_cnf(&f, &lax).label, 1);
    }

    #[test]
    fn batch_labelling_covers_all_instances() {
        let batch = competition_batch("t", &DatasetConfig::tiny(), 5);
        let labeled = label_batch(&batch, &LabelingConfig::default());
        assert_eq!(labeled.len(), batch.instances.len());
        for l in &labeled {
            assert!(l.outcome.verdicts_agree, "{}", l.instance.name);
            assert!(l.outcome.both_solved, "{}", l.instance.name);
        }
        let rate = positive_rate(&labeled);
        assert!((0.0..=1.0).contains(&rate));
    }

    #[test]
    fn positive_rate_of_empty_is_zero() {
        assert_eq!(positive_rate(&[]), 0.0);
    }
}
