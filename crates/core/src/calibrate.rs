//! Cost-sensitive decision-threshold calibration (an extension beyond the
//! paper).
//!
//! The paper selects the propagation-frequency policy whenever the model's
//! probability exceeds 0.5. But the costs are asymmetric: a wrong switch on
//! a large instance can waste more propagations than several right switches
//! save (we measured exactly this in EXPERIMENTS.md Table 3). Given a
//! labelled validation set with the *measured* per-policy costs, the
//! optimal threshold simply minimizes total expected cost — a one-line
//! sweep that often beats 0.5 substantially.

use crate::{Classifier, LabeledInstance, NeuroSelectClassifier, NeuroSelectSolver};

/// The outcome of a threshold sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Calibration {
    /// The cost-minimizing probability threshold.
    pub threshold: f32,
    /// Total validation propagations when switching above the threshold.
    pub calibrated_cost: u64,
    /// Total validation propagations at the paper's fixed 0.5 threshold.
    pub default_cost: u64,
    /// Total validation propagations when never switching.
    pub never_switch_cost: u64,
    /// Total validation propagations of the per-instance oracle.
    pub oracle_cost: u64,
}

impl Calibration {
    /// Fraction of the oracle's possible saving realized by the calibrated
    /// threshold, in `[0, 1]` (1 = oracle-optimal; 0 = no better than never
    /// switching). Returns 1.0 when the oracle cannot save anything.
    pub fn oracle_efficiency(&self) -> f64 {
        let possible = self.never_switch_cost.saturating_sub(self.oracle_cost);
        if possible == 0 {
            return 1.0;
        }
        let realized = self.never_switch_cost.saturating_sub(self.calibrated_cost);
        realized as f64 / possible as f64
    }
}

/// Sweeps the decision threshold over the validation set's predicted
/// probabilities and returns the cost-minimizing choice.
///
/// Each validation instance carries its measured cost under both policies
/// (from labelling); choosing threshold `t` means paying
/// `props_prop_freq` when `P(label=1) > t` and `props_default` otherwise.
///
/// # Examples
///
/// ```
/// use neuroselect::{calibrate_threshold, NeuroSelectClassifier};
/// use neuro::NeuroSelectConfig;
/// # use neuroselect::{label_batch, LabelingConfig};
/// # use sat_gen::{competition_batch, DatasetConfig};
/// # let validation = label_batch(
/// #     &competition_batch("v", &DatasetConfig::tiny(), 1),
/// #     &LabelingConfig::default(),
/// # );
/// let classifier = NeuroSelectClassifier::new(
///     NeuroSelectConfig { hidden_dim: 8, hgt_layers: 1, mpnn_per_hgt: 1, ..Default::default() },
///     1e-3,
/// );
/// let calibration = calibrate_threshold(&classifier, &validation);
/// assert!(calibration.calibrated_cost <= calibration.default_cost);
/// assert!(calibration.oracle_cost <= calibration.calibrated_cost);
/// ```
pub fn calibrate_threshold(
    classifier: &NeuroSelectClassifier,
    validation: &[LabeledInstance],
) -> Calibration {
    let scored: Vec<(f32, u64, u64)> = validation
        .iter()
        .map(|d| {
            let g = classifier.prepare(&d.instance.cnf);
            (
                classifier.predict(&g),
                d.outcome.props_default,
                d.outcome.props_prop_freq,
            )
        })
        .collect();

    let cost_at = |t: f32| -> u64 {
        scored
            .iter()
            .map(|&(p, def, freq)| if p > t { freq } else { def })
            .sum()
    };

    // Candidate thresholds: just below each predicted probability, plus the
    // extremes. Cost is piecewise constant in t, so this sweep is exact.
    let mut candidates: Vec<f32> = scored.iter().map(|&(p, _, _)| p - 1e-6).collect();
    candidates.push(0.5);
    candidates.push(1.0); // never switch
    candidates.push(-1.0); // always switch
    let (threshold, calibrated_cost) = candidates
        .into_iter()
        .map(|t| (t, cost_at(t)))
        .min_by(|a, b| a.1.cmp(&b.1).then(b.0.total_cmp(&a.0)))
        .expect("at least the extremes are candidates");

    Calibration {
        threshold,
        calibrated_cost,
        default_cost: cost_at(0.5),
        never_switch_cost: scored.iter().map(|&(_, d, _)| d).sum(),
        oracle_cost: scored.iter().map(|&(_, d, f)| d.min(f)).sum(),
    }
}

/// Builds a [`NeuroSelectSolver`] whose threshold was calibrated on a
/// validation set.
pub fn calibrated_solver(
    classifier: NeuroSelectClassifier,
    validation: &[LabeledInstance],
) -> (NeuroSelectSolver, Calibration) {
    let calibration = calibrate_threshold(&classifier, validation);
    let mut solver = NeuroSelectSolver::new(classifier);
    solver.threshold = calibration.threshold;
    (solver, calibration)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LabelOutcome, LabelingConfig};
    use neuro::NeuroSelectConfig;
    use sat_gen::{competition_batch, DatasetConfig, Family, Instance};

    fn tiny_classifier() -> NeuroSelectClassifier {
        NeuroSelectClassifier::new(
            NeuroSelectConfig {
                hidden_dim: 8,
                hgt_layers: 1,
                mpnn_per_hgt: 1,
                use_attention: false,
                seed: 1,
            },
            1e-3,
        )
    }

    fn fake_instance(name: &str, def: u64, freq: u64) -> LabeledInstance {
        LabeledInstance {
            instance: Instance {
                name: name.into(),
                family: Family::RandomKSat,
                cnf: cnf::parse_dimacs_str("p cnf 3 2\n1 2 0\n-2 3 0\n").unwrap(),
            },
            outcome: LabelOutcome {
                label: u8::from(freq < def),
                props_default: def,
                props_prop_freq: freq,
                both_solved: true,
                verdicts_agree: true,
            },
        }
    }

    #[test]
    fn calibrated_never_worse_than_fixed_threshold() {
        let data = crate::label_batch(
            &competition_batch("cal", &DatasetConfig::tiny(), 3),
            &LabelingConfig::default(),
        );
        let c = tiny_classifier();
        let cal = calibrate_threshold(&c, &data);
        assert!(cal.calibrated_cost <= cal.default_cost);
        assert!(cal.calibrated_cost <= cal.never_switch_cost);
        assert!(cal.oracle_cost <= cal.calibrated_cost);
        assert!((0.0..=1.0).contains(&cal.oracle_efficiency()));
    }

    #[test]
    fn identical_costs_make_everything_equal() {
        // same instance (same prediction) with equal costs everywhere
        let data = vec![fake_instance("a", 100, 100), fake_instance("b", 100, 100)];
        let c = tiny_classifier();
        let cal = calibrate_threshold(&c, &data);
        assert_eq!(cal.calibrated_cost, 200);
        assert_eq!(cal.oracle_cost, 200);
        assert_eq!(cal.oracle_efficiency(), 1.0);
    }

    #[test]
    fn calibrated_solver_uses_the_threshold() {
        let data = vec![fake_instance("a", 100, 50)];
        let (solver, cal) = calibrated_solver(tiny_classifier(), &data);
        assert_eq!(solver.threshold, cal.threshold);
    }
}
