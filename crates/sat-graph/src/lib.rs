//! Graph representations of CNF formulas (Section 4.2 of the paper).
//!
//! Two encodings are provided:
//!
//! * [`BipartiteGraph`] — the signed variable–clause graph used by
//!   NeuroSelect (adopted from NeuroComb): variable nodes `V1`, clause
//!   nodes `V2`, and an edge of weight `+1`/`-1` for each positive/negative
//!   occurrence. Initial features are `1` for variables and `0` for clauses.
//! * [`LiteralClauseGraph`] — the NeuroSAT-style literal–clause graph with
//!   a node per literal, used by the baseline model.
//!
//! Both expose CSR adjacency so message-passing layers can aggregate in
//! `O(|E|)`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use cnf::Cnf;

/// A sparse matrix in compressed-sparse-row form, used as a constant
/// (non-differentiable) operator inside neural layers.
///
/// # Examples
///
/// ```
/// use sat_graph::CsrMatrix;
/// // 2×3 matrix with entries (0,1)=2.0, (1,0)=-1.0
/// let m = CsrMatrix::from_triplets(2, 3, &[(0, 1, 2.0), (1, 0, -1.0)]);
/// assert_eq!(m.rows(), 2);
/// assert_eq!(m.row(0), &[(1, 2.0)][..]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    offsets: Vec<usize>,
    entries: Vec<(u32, f32)>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from `(row, col, weight)` triplets.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn from_triplets(rows: usize, cols: usize, triplets: &[(u32, u32, f32)]) -> Self {
        let mut per_row: Vec<Vec<(u32, f32)>> = vec![Vec::new(); rows];
        for &(r, c, w) in triplets {
            assert!(
                (r as usize) < rows && (c as usize) < cols,
                "index out of bounds"
            );
            per_row[r as usize].push((c, w));
        }
        let mut offsets = Vec::with_capacity(rows + 1);
        let mut entries = Vec::with_capacity(triplets.len());
        offsets.push(0);
        for row in per_row {
            entries.extend(row);
            offsets.push(entries.len());
        }
        CsrMatrix {
            rows,
            cols,
            offsets,
            entries,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// The `(col, weight)` entries of one row.
    pub fn row(&self, r: usize) -> &[(u32, f32)] {
        &self.entries[self.offsets[r]..self.offsets[r + 1]]
    }

    /// Dense `y = self · x` where `x` is row-major `cols × d`;
    /// returns row-major `rows × d`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols * d`.
    pub fn matmul_dense(&self, x: &[f32], d: usize) -> Vec<f32> {
        assert_eq!(x.len(), self.cols * d, "dimension mismatch");
        let mut y = vec![0.0f32; self.rows * d];
        for r in 0..self.rows {
            let out = &mut y[r * d..(r + 1) * d];
            for &(c, w) in self.row(r) {
                let xr = &x[c as usize * d..(c as usize + 1) * d];
                for (o, xi) in out.iter_mut().zip(xr) {
                    *o += w * xi;
                }
            }
        }
        y
    }

    /// The transpose, as a new CSR matrix.
    pub fn transpose(&self) -> CsrMatrix {
        let triplets: Vec<(u32, u32, f32)> = (0..self.rows)
            .flat_map(|r| self.row(r).iter().map(move |&(c, w)| (c, r as u32, w)))
            .collect();
        CsrMatrix::from_triplets(self.cols, self.rows, &triplets)
    }

    /// Returns a copy with each row scaled by `1 / max(1, row_degree)`
    /// (the mean aggregation of Equation 6).
    pub fn row_normalized(&self) -> CsrMatrix {
        let mut out = self.clone();
        for r in 0..self.rows {
            let (start, end) = (self.offsets[r], self.offsets[r + 1]);
            let deg = (end - start).max(1) as f32;
            for e in &mut out.entries[start..end] {
                e.1 /= deg;
            }
        }
        out
    }
}

/// The signed bipartite variable–clause graph of Section 4.2.
///
/// # Examples
///
/// ```
/// use sat_graph::BipartiteGraph;
/// let f = cnf::parse_dimacs_str("p cnf 3 2\n1 -2 0\n2 3 0\n")?;
/// let g = BipartiteGraph::from_cnf(&f);
/// assert_eq!(g.num_vars, 3);
/// assert_eq!(g.num_clauses, 2);
/// assert_eq!(g.num_nodes(), 5);
/// // x2 appears negated in clause 0 and positive in clause 1
/// assert_eq!(g.var_to_clause.row(1), &[(0, -1.0), (1, 1.0)][..]);
/// # Ok::<(), cnf::ParseDimacsError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BipartiteGraph {
    /// `|V1|`: number of variable nodes.
    pub num_vars: usize,
    /// `|V2|`: number of clause nodes.
    pub num_clauses: usize,
    /// `|V1| × |V2|` signed incidence: `w(x_i, c_j) = ±1`.
    pub var_to_clause: CsrMatrix,
    /// The transpose of [`var_to_clause`](Self::var_to_clause).
    pub clause_to_var: CsrMatrix,
}

impl BipartiteGraph {
    /// Builds the graph from a formula.
    ///
    /// If a variable occurs both positively and negatively in the same
    /// clause (a tautological clause), both signed edges are kept; repeated
    /// same-sign occurrences collapse to one edge.
    pub fn from_cnf(formula: &Cnf) -> Self {
        let num_vars = formula.num_vars() as usize;
        let num_clauses = formula.num_clauses();
        let mut triplets: Vec<(u32, u32, f32)> = Vec::with_capacity(formula.num_lits());
        for (j, clause) in formula.clauses().iter().enumerate() {
            let mut seen: Vec<(u32, bool)> = Vec::with_capacity(clause.len());
            for &lit in clause.lits() {
                let key = (lit.var().index(), lit.is_negated());
                if !seen.contains(&key) {
                    seen.push(key);
                    triplets.push((
                        lit.var().index(),
                        j as u32,
                        if lit.is_negated() { -1.0 } else { 1.0 },
                    ));
                }
            }
        }
        let var_to_clause = CsrMatrix::from_triplets(num_vars, num_clauses, &triplets);
        let clause_to_var = var_to_clause.transpose();
        BipartiteGraph {
            num_vars,
            num_clauses,
            var_to_clause,
            clause_to_var,
        }
    }

    /// Total node count `|V1| + |V2|` (the paper's 400 000-node cutoff is
    /// measured on this quantity).
    pub fn num_nodes(&self) -> usize {
        self.num_vars + self.num_clauses
    }

    /// Total edge count.
    pub fn num_edges(&self) -> usize {
        self.var_to_clause.nnz()
    }

    /// Initial variable-node features: all ones (`num_vars × dim`).
    pub fn initial_var_features(&self, dim: usize) -> Vec<f32> {
        vec![1.0; self.num_vars * dim]
    }

    /// Initial clause-node features: all zeros (`num_clauses × dim`).
    pub fn initial_clause_features(&self, dim: usize) -> Vec<f32> {
        vec![0.0; self.num_clauses * dim]
    }
}

/// The NeuroSAT-style literal–clause graph: one node per literal
/// (positive literal of variable `v` at index `2v`, negative at `2v + 1`)
/// plus one node per clause.
#[derive(Debug, Clone, PartialEq)]
pub struct LiteralClauseGraph {
    /// Number of variables (literal nodes are `2 ×` this).
    pub num_vars: usize,
    /// Number of clause nodes.
    pub num_clauses: usize,
    /// `2|V| × |C|` unsigned incidence of literals in clauses.
    pub lit_to_clause: CsrMatrix,
    /// The transpose of [`lit_to_clause`](Self::lit_to_clause).
    pub clause_to_lit: CsrMatrix,
}

impl LiteralClauseGraph {
    /// Builds the literal–clause graph from a formula.
    pub fn from_cnf(formula: &Cnf) -> Self {
        let num_vars = formula.num_vars() as usize;
        let num_clauses = formula.num_clauses();
        let mut triplets: Vec<(u32, u32, f32)> = Vec::with_capacity(formula.num_lits());
        for (j, clause) in formula.clauses().iter().enumerate() {
            let mut seen: Vec<u32> = Vec::with_capacity(clause.len());
            for &lit in clause.lits() {
                if !seen.contains(&lit.code()) {
                    seen.push(lit.code());
                    triplets.push((lit.code(), j as u32, 1.0));
                }
            }
        }
        let lit_to_clause = CsrMatrix::from_triplets(2 * num_vars, num_clauses, &triplets);
        let clause_to_lit = lit_to_clause.transpose();
        LiteralClauseGraph {
            num_vars,
            num_clauses,
            lit_to_clause,
            clause_to_lit,
        }
    }

    /// Total node count (`2|V| + |C|`).
    pub fn num_nodes(&self) -> usize {
        2 * self.num_vars + self.num_clauses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example() -> Cnf {
        cnf::parse_dimacs_str("p cnf 3 2\n1 -2 0\n2 3 0\n").unwrap()
    }

    #[test]
    fn csr_matmul_dense() {
        let m = CsrMatrix::from_triplets(2, 3, &[(0, 0, 1.0), (0, 2, 2.0), (1, 1, -1.0)]);
        // x is 3×2
        let x = [1.0, 10.0, 2.0, 20.0, 3.0, 30.0];
        let y = m.matmul_dense(&x, 2);
        assert_eq!(y, vec![7.0, 70.0, -2.0, -20.0]);
    }

    #[test]
    fn csr_transpose_roundtrip() {
        let m = CsrMatrix::from_triplets(3, 2, &[(0, 1, 1.5), (2, 0, -0.5), (1, 1, 2.0)]);
        let t = m.transpose();
        assert_eq!(t.rows(), 2);
        assert_eq!(t.cols(), 3);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn row_normalization_divides_by_degree() {
        let m = CsrMatrix::from_triplets(2, 3, &[(0, 0, 1.0), (0, 1, 1.0), (1, 2, -1.0)]);
        let n = m.row_normalized();
        assert_eq!(n.row(0), &[(0, 0.5), (1, 0.5)][..]);
        assert_eq!(n.row(1), &[(2, -1.0)][..]);
    }

    #[test]
    fn bipartite_edges_and_signs() {
        let g = BipartiteGraph::from_cnf(&example());
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.var_to_clause.row(0), &[(0, 1.0)][..]);
        assert_eq!(g.var_to_clause.row(1), &[(0, -1.0), (1, 1.0)][..]);
        assert_eq!(g.clause_to_var.row(1), &[(1, 1.0), (2, 1.0)][..]);
    }

    #[test]
    fn bipartite_initial_features() {
        let g = BipartiteGraph::from_cnf(&example());
        assert_eq!(g.initial_var_features(2), vec![1.0; 6]);
        assert_eq!(g.initial_clause_features(4), vec![0.0; 8]);
    }

    #[test]
    fn duplicate_occurrences_collapse() {
        let f = cnf::parse_dimacs_str("p cnf 2 1\n1 1 -1 2 0\n").unwrap();
        let g = BipartiteGraph::from_cnf(&f);
        // x1 positive (collapsed), x1 negative, x2 positive
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn literal_clause_graph_indices() {
        let g = LiteralClauseGraph::from_cnf(&example());
        assert_eq!(g.num_nodes(), 8);
        // clause 0 = {x1, ¬x2}: literal codes 0 and 3
        assert_eq!(g.clause_to_lit.row(0), &[(0, 1.0), (3, 1.0)][..]);
    }

    #[test]
    fn empty_formula_graphs() {
        let f = Cnf::new(2);
        let g = BipartiteGraph::from_cnf(&f);
        assert_eq!(g.num_nodes(), 2);
        assert_eq!(g.num_edges(), 0);
    }
}
