//! Property tests for graph encodings and CSR sparse algebra.

use cnf::{Cnf, Lit};
use proptest::prelude::*;
use sat_graph::{BipartiteGraph, CsrMatrix, LiteralClauseGraph};

fn arb_cnf() -> impl Strategy<Value = Cnf> {
    let lit = (1i32..=12).prop_flat_map(|v| prop_oneof![Just(v), Just(-v)]);
    let clause = proptest::collection::vec(lit, 1..5);
    proptest::collection::vec(clause, 1..25).prop_map(|clauses| {
        let mut f = Cnf::new(12);
        for c in clauses {
            f.add_clause(c.iter().copied().map(Lit::from_dimacs).collect());
        }
        f
    })
}

fn arb_csr(rows: usize, cols: usize) -> impl Strategy<Value = CsrMatrix> {
    proptest::collection::vec(
        (0..rows as u32, 0..cols as u32, -2.0f32..2.0),
        0..rows * cols,
    )
    .prop_map(move |t| CsrMatrix::from_triplets(rows, cols, &t))
}

/// Dense reference of a CSR matrix.
fn densify(m: &CsrMatrix) -> Vec<Vec<f32>> {
    let mut out = vec![vec![0.0; m.cols()]; m.rows()];
    for (r, row) in out.iter_mut().enumerate() {
        for &(c, w) in m.row(r) {
            row[c as usize] += w;
        }
    }
    out
}

proptest! {
    #[test]
    fn csr_matmul_matches_dense_reference(m in arb_csr(5, 4), x in proptest::collection::vec(-2.0f32..2.0, 4 * 3)) {
        let y = m.matmul_dense(&x, 3);
        let dense = densify(&m);
        for r in 0..5 {
            for c in 0..3 {
                let expected: f32 = (0..4).map(|k| dense[r][k] * x[k * 3 + c]).sum();
                prop_assert!((y[r * 3 + c] - expected).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn csr_transpose_is_involution(m in arb_csr(6, 5)) {
        // double transpose preserves the dense content
        prop_assert_eq!(densify(&m.transpose().transpose()), densify(&m));
    }

    #[test]
    fn bipartite_edge_count_bounds(f in arb_cnf()) {
        let g = BipartiteGraph::from_cnf(&f);
        prop_assert!(g.num_edges() <= f.num_lits());
        prop_assert_eq!(g.num_nodes(), f.num_vars() as usize + f.num_clauses());
        // transposes agree
        prop_assert_eq!(densify(&g.var_to_clause.transpose()), densify(&g.clause_to_var));
    }

    #[test]
    fn bipartite_signs_match_polarity(f in arb_cnf()) {
        let g = BipartiteGraph::from_cnf(&f);
        for (j, clause) in f.clauses().iter().enumerate() {
            for &l in clause.lits() {
                let row = g.var_to_clause.row(l.var().index() as usize);
                let expected = if l.is_negated() { -1.0 } else { 1.0 };
                prop_assert!(
                    row.iter().any(|&(c, w)| c as usize == j && w == expected),
                    "missing edge for {l} in clause {j}"
                );
            }
        }
    }

    #[test]
    fn row_normalized_rows_have_unit_l1(m in arb_csr(6, 6)) {
        let n = m.row_normalized();
        for r in 0..6 {
            let raw = m.row(r);
            if raw.is_empty() {
                continue;
            }
            // every entry was divided by the row's entry count
            for (a, b) in raw.iter().zip(n.row(r)) {
                prop_assert!((b.1 * raw.len() as f32 - a.1).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn literal_graph_has_twice_the_literal_nodes(f in arb_cnf()) {
        let g = LiteralClauseGraph::from_cnf(&f);
        prop_assert_eq!(g.num_nodes(), 2 * f.num_vars() as usize + f.num_clauses());
        // every literal edge references a valid clause
        for code in 0..2 * f.num_vars() as usize {
            for &(c, w) in g.lit_to_clause.row(code) {
                prop_assert!((c as usize) < f.num_clauses());
                prop_assert_eq!(w, 1.0);
            }
        }
    }
}
