//! A small synchronous client for the wire protocol.
//!
//! [`Client`] works over any `BufRead`/`Write` pair (a connected unix
//! socket, a child process's stdio, a test socketpair). Requests are
//! numbered; because the daemon may answer out of order (solves finish
//! asynchronously), responses for other requests arriving early are
//! parked and picked up when their turn comes.

use std::collections::HashMap;
use std::io::{BufRead, Write};
use std::time::Duration;

use telemetry::json::Json;

/// Failure of a client call.
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed (connection died, EOF mid-response).
    Io(std::io::Error),
    /// The daemon's bytes were not a valid response.
    Protocol(String),
    /// The daemon answered with a typed error.
    Daemon {
        /// The error's stable `kind` tag.
        kind: String,
        /// Human-readable message.
        message: String,
        /// Back-off hint, present on `busy` rejections.
        retry_after_ms: Option<u64>,
        /// The daemon-minted request id, present when the failing
        /// request had been admitted (its JSONL `RequestRecord` carries
        /// the same id); `None` on pre-admission rejections.
        request_id: Option<u64>,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ClientError::Daemon {
                kind,
                message,
                request_id: Some(rid),
                ..
            } => {
                write!(f, "daemon error [{kind}] (request {rid}): {message}")
            }
            ClientError::Daemon { kind, message, .. } => {
                write!(f, "daemon error [{kind}]: {message}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl ClientError {
    /// The daemon error kind, if this is a daemon-side rejection.
    pub fn kind(&self) -> Option<&str> {
        match self {
            ClientError::Daemon { kind, .. } => Some(kind),
            _ => None,
        }
    }
}

/// A solve's wire-level outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireReply {
    /// The daemon-minted request id; the same id names this solve in
    /// the daemon's per-request JSONL records.
    pub request_id: u64,
    /// `"sat"`, `"unsat"`, or `"unknown"`.
    pub verdict: String,
    /// Stop cause when the verdict is `"unknown"`.
    pub stop_cause: Option<String>,
    /// Conflicts this call spent.
    pub conflicts: u64,
    /// Propagations this call spent.
    pub propagations: u64,
    /// Wall-clock milliseconds the solve ran.
    pub duration_ms: u64,
}

/// The synchronous protocol client.
pub struct Client<R: BufRead, W: Write> {
    reader: R,
    writer: W,
    next_id: u64,
    parked: HashMap<u64, Json>,
}

impl<R: BufRead, W: Write> std::fmt::Debug for Client<R, W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client")
            .field("next_id", &self.next_id)
            .finish()
    }
}

impl<R: BufRead, W: Write> Client<R, W> {
    /// A client over the given transport halves.
    pub fn new(reader: R, writer: W) -> Self {
        Client {
            reader,
            writer,
            next_id: 1,
            parked: HashMap::new(),
        }
    }

    /// Opens a session; returns its id.
    pub fn open(
        &mut self,
        vars: u32,
        inprocess: bool,
        clauses: &[Vec<i64>],
        freeze: &[i64],
    ) -> Result<u64, ClientError> {
        let body = Json::object()
            .with("op", "open".into())
            .with("vars", vars.into())
            .with("inprocess", inprocess.into())
            .with("clauses", clauses_json(clauses))
            .with("freeze", lits_json(freeze));
        let response = self.roundtrip(body)?;
        response
            .get("session")
            .and_then(Json::as_u64)
            .ok_or_else(|| ClientError::Protocol("open response missing `session`".into()))
    }

    /// Appends clauses to a session.
    pub fn add_clauses(&mut self, session: u64, clauses: &[Vec<i64>]) -> Result<(), ClientError> {
        let body = Json::object()
            .with("op", "add_clauses".into())
            .with("session", session.into())
            .with("clauses", clauses_json(clauses));
        self.roundtrip(body).map(|_| ())
    }

    /// Freezes assumption candidates in a session.
    pub fn freeze(&mut self, session: u64, lits: &[i64]) -> Result<(), ClientError> {
        let body = Json::object()
            .with("op", "freeze".into())
            .with("session", session.into())
            .with("lits", lits_json(lits));
        self.roundtrip(body).map(|_| ())
    }

    /// Solves under assumptions, blocking for the verdict.
    pub fn solve(
        &mut self,
        session: u64,
        assumptions: &[i64],
        deadline: Option<Duration>,
    ) -> Result<WireReply, ClientError> {
        let mut body = Json::object()
            .with("op", "solve".into())
            .with("session", session.into())
            .with("assumptions", lits_json(assumptions));
        if let Some(deadline) = deadline {
            body.set("deadline_ms", (deadline.as_millis() as u64).into());
        }
        let response = self.roundtrip(body)?;
        let field = |key: &str| response.get(key).and_then(Json::as_u64).unwrap_or(0);
        Ok(WireReply {
            request_id: field("request_id"),
            verdict: response
                .get("verdict")
                .and_then(Json::as_str)
                .ok_or_else(|| ClientError::Protocol("solve response missing `verdict`".into()))?
                .to_string(),
            stop_cause: response
                .get("stop_cause")
                .and_then(Json::as_str)
                .map(str::to_string),
            conflicts: field("conflicts"),
            propagations: field("propagations"),
            duration_ms: field("duration_ms"),
        })
    }

    /// The model of the last SAT verdict, as DIMACS-signed literals.
    pub fn model(&mut self, session: u64) -> Result<Vec<i64>, ClientError> {
        let body = Json::object()
            .with("op", "model".into())
            .with("session", session.into());
        let response = self.roundtrip(body)?;
        lits_from(&response, "model")
    }

    /// The failed-assumption core of the last UNSAT verdict.
    pub fn core(&mut self, session: u64) -> Result<Vec<i64>, ClientError> {
        let body = Json::object()
            .with("op", "core".into())
            .with("session", session.into());
        let response = self.roundtrip(body)?;
        lits_from(&response, "core")
    }

    /// Closes a session.
    pub fn close(&mut self, session: u64) -> Result<(), ClientError> {
        let body = Json::object()
            .with("op", "close".into())
            .with("session", session.into());
        self.roundtrip(body).map(|_| ())
    }

    /// The daemon's occupancy/robustness snapshot, as raw JSON.
    pub fn status(&mut self) -> Result<Json, ClientError> {
        self.roundtrip(Json::object().with("op", "status".into()))
    }

    /// The daemon's deep-status snapshot (live metrics, per-session
    /// stats, in-flight request ages, slow-request ring), as raw JSON.
    pub fn introspect(&mut self) -> Result<Json, ClientError> {
        self.roundtrip(Json::object().with("op", "introspect".into()))
    }

    /// Asks the daemon to drain and exit.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.roundtrip(Json::object().with("op", "shutdown".into()))
            .map(|_| ())
    }

    /// Sends a raw line verbatim and returns the next raw response line
    /// — the escape hatch protocol tests use for malformed input.
    pub fn raw(&mut self, line: &str) -> Result<Json, ClientError> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        self.read_response_line()
    }

    fn roundtrip(&mut self, mut body: Json) -> Result<Json, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        body.set("id", id.into());
        self.writer.write_all(body.to_string().as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        self.wait_for(id)
    }

    fn read_response_line(&mut self) -> Result<Json, ClientError> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(ClientError::Io(std::io::Error::other(
                "connection closed by daemon",
            )));
        }
        Json::parse(line.trim_end())
            .map_err(|e| ClientError::Protocol(format!("unparseable response: {e}")))
    }

    /// Reads responses until the one for `id` arrives, parking others.
    fn wait_for(&mut self, id: u64) -> Result<Json, ClientError> {
        let response = if let Some(parked) = self.parked.remove(&id) {
            parked
        } else {
            loop {
                let response = self.read_response_line()?;
                let got = response.get("id").and_then(Json::as_u64);
                match got {
                    Some(got_id) if got_id == id => break response,
                    Some(other) => {
                        self.parked.insert(other, response);
                    }
                    None => {
                        // Responses with null ids (malformed-line
                        // reports) cannot be correlated; surface them.
                        return Err(ClientError::Protocol(format!(
                            "uncorrelated response: {response}"
                        )));
                    }
                }
            }
        };
        unwrap_response(response)
    }
}

fn unwrap_response(response: Json) -> Result<Json, ClientError> {
    let ok = response
        .get("ok")
        .and_then(Json::as_bool)
        .ok_or_else(|| ClientError::Protocol("response missing `ok`".into()))?;
    if ok {
        return Ok(response);
    }
    let error = response.get("error");
    Err(ClientError::Daemon {
        kind: error
            .and_then(|e| e.get("kind"))
            .and_then(Json::as_str)
            .unwrap_or("unknown")
            .to_string(),
        message: error
            .and_then(|e| e.get("message"))
            .and_then(Json::as_str)
            .unwrap_or("")
            .to_string(),
        retry_after_ms: error
            .and_then(|e| e.get("retry_after_ms"))
            .and_then(Json::as_u64),
        request_id: response.get("request_id").and_then(Json::as_u64),
    })
}

fn lits_from(response: &Json, key: &str) -> Result<Vec<i64>, ClientError> {
    let arr = response
        .get(key)
        .and_then(Json::as_array)
        .ok_or_else(|| ClientError::Protocol(format!("response missing `{key}` array")))?;
    arr.iter()
        .map(|v| match v {
            Json::U64(n) => {
                i64::try_from(*n).map_err(|_| ClientError::Protocol("literal exceeds i64".into()))
            }
            Json::I64(n) => Ok(*n),
            other => Err(ClientError::Protocol(format!(
                "non-integer literal {other}"
            ))),
        })
        .collect()
}

fn lits_json(lits: &[i64]) -> Json {
    Json::Array(lits.iter().map(|&l| Json::from(l)).collect())
}

fn clauses_json(clauses: &[Vec<i64>]) -> Json {
    Json::Array(clauses.iter().map(|c| lits_json(c)).collect())
}
