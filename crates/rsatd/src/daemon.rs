//! The in-process daemon: session store, bounded worker pool, admission
//! control, eviction, crash quarantine, and graceful drain.
//!
//! Everything here is transport-agnostic — the wire protocol lives in
//! [`crate::server`] / [`crate::proto`]; embedders (tests, benches, the
//! examples) call the typed API on [`Daemon`] directly.
//!
//! # Failure model
//!
//! A session is the unit of isolation. Each solve runs inside
//! [`run_isolated`], so a panic in the solver (a bug, or an injected
//! `session-panic` fault) is converted into a quarantined
//! [`SessionState::Crashed`] marker: later calls on that session get a
//! typed [`DaemonError::SessionCrashed`], while the worker thread, the
//! queue, and every other session continue untouched. Deadline and
//! memory exhaustion are softer: the solve returns
//! [`Verdict::Unknown`] with the stop cause and the session stays
//! usable.

use std::collections::{HashMap, VecDeque};
use std::fs::File;
use std::io::BufWriter;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use cnf::{Cnf, Lit, Var};
use sat_solver::{run_isolated, Budget, SolveResult, Solver, SolverConfig, SolverTelemetry};
use telemetry::json::{Json, ToJson};
use telemetry::metrics::{self, Counter, Gauge};
use telemetry::trace;
use telemetry::{Event, JsonlSink, RequestRecord, Sink};

/// Tuning knobs of a [`Daemon`].
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Worker threads executing solves. At most this many solves run
    /// concurrently; everything else waits in the bounded queue.
    pub workers: usize,
    /// Queue slots. A solve submitted while the queue holds this many
    /// jobs is rejected with [`DaemonError::Busy`].
    pub queue_depth: usize,
    /// Live (non-closed, non-evicted) session cap; `open` beyond it is
    /// rejected with [`DaemonError::Busy`].
    pub max_sessions: usize,
    /// Aggregate solver-memory cap. Admission over this evicts idle
    /// sessions (LRU first) and, failing that, rejects with `busy`;
    /// each admitted solve also gets the remaining headroom as its
    /// in-solve memory budget.
    pub max_memory_bytes: u64,
    /// Idle sessions untouched for this long are evicted.
    pub idle_timeout: Duration,
    /// Deadline applied to solves that do not request one.
    pub default_deadline: Duration,
    /// Hard ceiling on per-solve deadlines; longer requests are clamped.
    pub max_deadline: Duration,
    /// Retry hint (milliseconds) attached to `busy` rejections.
    pub retry_after_ms: u64,
    /// When set, one JSONL [`telemetry::RunRecord`] is appended here per
    /// completed solve.
    pub records_path: Option<PathBuf>,
    /// When set, one JSONL [`telemetry::RequestRecord`] is appended here
    /// per *admitted* request — the daemon-side sibling of the solver's
    /// RunRecord: request id, queue wait, solve wall, verdict/stop cause,
    /// worker id, and solver stat deltas.
    pub request_records_path: Option<PathBuf>,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            workers: 2,
            queue_depth: 16,
            max_sessions: 64,
            max_memory_bytes: 1 << 30,
            idle_timeout: Duration::from_secs(300),
            default_deadline: Duration::from_secs(10),
            max_deadline: Duration::from_secs(300),
            retry_after_ms: 100,
            records_path: None,
            request_records_path: None,
        }
    }
}

/// Typed failure of a daemon call. Every variant maps to a stable wire
/// `kind` (see [`DaemonError::kind`]); none of them is a panic.
#[derive(Debug)]
pub enum DaemonError {
    /// Admission control rejected the request (queue full, memory cap,
    /// or session cap). Retry after the embedded hint.
    Busy {
        /// Suggested client back-off in milliseconds.
        retry_after_ms: u64,
    },
    /// The daemon is draining for shutdown and admits nothing new.
    Draining,
    /// No session with this id was ever opened.
    NoSuchSession(u64),
    /// The session was closed (double-close lands here too).
    SessionClosed(u64),
    /// The session was evicted; the tag says why (`"idle"`/`"memory"`).
    SessionEvicted(u64, &'static str),
    /// The session's solver panicked and is quarantined; the message is
    /// the captured panic payload.
    SessionCrashed(u64, String),
    /// The session already has a solve queued or running.
    SessionBusy(u64),
    /// An assumption names a variable that inprocessing eliminated
    /// before it was ever frozen.
    EliminatedAssumption(u64, Var),
    /// A literal references a variable the session never declared.
    VarOutOfRange {
        /// Session the request addressed.
        session: u64,
        /// Offending DIMACS literal.
        lit: i64,
        /// Variables the session declared at `open`.
        num_vars: u32,
    },
    /// `model` was asked but the last solve was not SAT.
    NoModel(u64),
    /// `core` was asked but the last solve was not UNSAT.
    NoCore(u64),
    /// The request was structurally invalid.
    BadRequest(String),
    /// The daemon lost the worker servicing this request — only
    /// reachable if a worker thread dies outside its isolation scope.
    Internal(String),
}

impl DaemonError {
    /// Stable machine-readable tag, used as the wire `error.kind`.
    pub fn kind(&self) -> &'static str {
        match self {
            DaemonError::Busy { .. } => "busy",
            DaemonError::Draining => "draining",
            DaemonError::NoSuchSession(_) => "no-such-session",
            DaemonError::SessionClosed(_) => "closed",
            DaemonError::SessionEvicted(..) => "evicted",
            DaemonError::SessionCrashed(..) => "crashed",
            DaemonError::SessionBusy(_) => "session-busy",
            DaemonError::EliminatedAssumption(..) => "eliminated",
            DaemonError::VarOutOfRange { .. } => "var-out-of-range",
            DaemonError::NoModel(_) => "no-model",
            DaemonError::NoCore(_) => "no-core",
            DaemonError::BadRequest(_) => "bad-request",
            DaemonError::Internal(_) => "internal",
        }
    }

    /// The back-off hint, present exactly on `busy` rejections.
    pub fn retry_after_ms(&self) -> Option<u64> {
        match self {
            DaemonError::Busy { retry_after_ms } => Some(*retry_after_ms),
            _ => None,
        }
    }
}

impl std::fmt::Display for DaemonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DaemonError::Busy { retry_after_ms } => {
                write!(f, "daemon overloaded; retry after {retry_after_ms} ms")
            }
            DaemonError::Draining => write!(f, "daemon is draining for shutdown"),
            DaemonError::NoSuchSession(s) => write!(f, "no such session {s}"),
            DaemonError::SessionClosed(s) => write!(f, "session {s} is closed"),
            DaemonError::SessionEvicted(s, why) => write!(f, "session {s} was evicted ({why})"),
            DaemonError::SessionCrashed(s, msg) => {
                write!(f, "session {s} crashed and is quarantined: {msg}")
            }
            DaemonError::SessionBusy(s) => write!(f, "session {s} already has a solve in flight"),
            DaemonError::EliminatedAssumption(s, v) => write!(
                f,
                "session {s}: assumption variable {} was eliminated by inprocessing \
                 (freeze it at open)",
                v.index()
            ),
            DaemonError::VarOutOfRange {
                session,
                lit,
                num_vars,
            } => write!(
                f,
                "session {session}: literal {lit} out of range (session has {num_vars} variables)"
            ),
            DaemonError::NoModel(s) => write!(f, "session {s}: last solve was not SAT"),
            DaemonError::NoCore(s) => write!(f, "session {s}: last solve was not UNSAT"),
            DaemonError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            DaemonError::Internal(msg) => write!(f, "internal daemon error: {msg}"),
        }
    }
}

impl std::error::Error for DaemonError {}

/// Outcome of one solve call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Satisfiable under the assumptions; fetch the model with `model`.
    Sat,
    /// Unsatisfiable under the assumptions; fetch the failed-assumption
    /// core with `core`.
    Unsat,
    /// The solve was cut short; the tag is the stop cause
    /// (`"deadline"`, `"memory"`, …).
    Unknown(String),
}

impl Verdict {
    /// Stable wire spelling: `"sat"`, `"unsat"`, or `"unknown"`.
    pub fn as_str(&self) -> &'static str {
        match self {
            Verdict::Sat => "sat",
            Verdict::Unsat => "unsat",
            Verdict::Unknown(_) => "unknown",
        }
    }
}

/// Per-solve summary returned to the caller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SolveReply {
    /// The daemon-minted request id; the same id appears on the wire
    /// reply and in the [`telemetry::RequestRecord`] this solve emitted.
    pub request_id: u64,
    /// The verdict.
    pub verdict: Verdict,
    /// Conflicts spent by this call (delta, not session lifetime).
    pub conflicts: u64,
    /// Propagations spent by this call (delta, not session lifetime).
    pub propagations: u64,
    /// Wall-clock milliseconds the solve ran.
    pub duration_ms: u64,
    /// Session solver memory after the call.
    pub memory_bytes: u64,
}

/// Monotonic robustness counters, mirrored into the metrics registry
/// (`daemon.*`) when the `metrics` feature is armed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DaemonStats {
    /// Solves accepted into the queue.
    pub admitted: u64,
    /// Solves or opens rejected by admission control.
    pub rejected: u64,
    /// Sessions evicted (idle timeout or memory pressure).
    pub evicted: u64,
    /// Sessions quarantined after a solver panic.
    pub crashed: u64,
    /// Solves that degraded to `unknown` on their deadline.
    pub deadline_exceeded: u64,
    /// Solves that ran to a verdict (including degraded ones).
    pub completed: u64,
}

/// Point-in-time occupancy snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DaemonStatus {
    /// Live (idle or busy) sessions.
    pub sessions: usize,
    /// Jobs waiting in the queue.
    pub queued: usize,
    /// Jobs currently executing on workers.
    pub running: usize,
    /// Whether the daemon is draining.
    pub draining: bool,
    /// Aggregate solver memory across live sessions.
    pub memory_bytes: u64,
}

/// Lifecycle of one session slot. `Busy` means the solver is checked
/// out on a worker thread; terminal states keep the slot as a tombstone
/// so late requests get a precise error instead of `no-such-session`.
enum SessionState {
    /// Solver at rest, ready for the next call.
    Idle(Box<Solver>),
    /// Solver checked out by a worker.
    Busy,
    /// Quarantined after a panic; the string is the panic message.
    Crashed(String),
    /// Evicted; the tag says why.
    Evicted(&'static str),
    /// Explicitly closed.
    Closed,
}

struct Session {
    state: SessionState,
    /// True from admission until a worker checks the solver out —
    /// blocks concurrent solves and shields the session from eviction.
    queued: bool,
    vars: u32,
    created: Instant,
    last_used: Instant,
    mem_bytes: u64,
    last_model: Option<Vec<bool>>,
    last_core: Option<Vec<Lit>>,
    /// Cumulative per-session accounting, updated as each of its
    /// requests reaches a terminal record (surfaced by `introspect`).
    solves: u64,
    conflicts: u64,
    propagations: u64,
    last_verdict: Option<String>,
}

/// The outcome callback of one admitted solve. The first argument is
/// the daemon-minted request id — the same id stamped on the wire reply
/// and on the request's [`telemetry::RequestRecord`].
pub type SolveCallback = Box<dyn FnOnce(u64, Result<SolveReply, DaemonError>) + Send>;

struct Job {
    request_id: u64,
    session: u64,
    assumptions: Vec<Lit>,
    deadline_at: Instant,
    /// Wall-clock admission time, for queue-wait accounting.
    admitted_at: Instant,
    /// Trace-epoch admission time (0 when tracing is disarmed), for the
    /// retroactive `queue-wait` span.
    admit_ns: u64,
    seq: u64,
    cb: SolveCallback,
}

/// Live entry for a request between admission and its terminal record.
struct InFlight {
    session: u64,
    admitted_at: Instant,
    /// `None` while queued; the worker id once checked out.
    worker: Option<u64>,
}

/// One slot of the bounded worst-by-wall slow-request ring.
#[derive(Clone)]
struct SlowRequest {
    request_id: u64,
    session: u64,
    queue_wait_ms: f64,
    solve_ms: f64,
    verdict: String,
}

/// Capacity of the slow-request ring kept for `introspect`.
const SLOW_RING: usize = 16;

#[derive(Default)]
struct StatCells {
    admitted: AtomicU64,
    rejected: AtomicU64,
    evicted: AtomicU64,
    crashed: AtomicU64,
    deadline_exceeded: AtomicU64,
    completed: AtomicU64,
}

struct Inner {
    cfg: DaemonConfig,
    sessions: Mutex<HashMap<u64, Session>>,
    next_session: AtomicU64,
    next_request: AtomicU64,
    queue: Mutex<VecDeque<Job>>,
    queue_cv: Condvar,
    running: AtomicUsize,
    draining: AtomicBool,
    jobs_taken: AtomicU64,
    solve_seq: AtomicU64,
    mem_total: AtomicU64,
    stats: StatCells,
    records: Option<Mutex<JsonlSink<BufWriter<File>>>>,
    request_records: Option<Mutex<JsonlSink<BufWriter<File>>>>,
    inflight: Mutex<HashMap<u64, InFlight>>,
    slow: Mutex<Vec<SlowRequest>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

/// Locks recovering from poisoning: a panic that escapes into a lock
/// here must not cascade into every later request — the session-level
/// quarantine is the intended failure boundary.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The solver service. Cheap to clone (shared handle); the worker pool
/// lives until [`Daemon::shutdown`].
#[derive(Clone)]
pub struct Daemon {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for Daemon {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let status = self.status();
        f.debug_struct("Daemon")
            .field("workers", &self.inner.cfg.workers)
            .field("status", &status)
            .finish()
    }
}

impl Daemon {
    /// Boots the worker pool and returns the service handle.
    ///
    /// # Examples
    ///
    /// ```
    /// use rsatd::{Daemon, DaemonConfig, Verdict};
    ///
    /// let daemon = Daemon::start(DaemonConfig::default());
    /// let sid = daemon.open(2, false).unwrap();
    /// daemon.add_clauses(sid, &[vec![1, 2], vec![-1, 2]]).unwrap();
    /// let reply = daemon.solve(sid, &[], None).unwrap();
    /// assert_eq!(reply.verdict, Verdict::Sat);
    /// assert_eq!(daemon.model(sid).unwrap()[1], 2); // variable 2 is true
    /// daemon.close(sid).unwrap();
    /// daemon.shutdown();
    /// ```
    pub fn start(cfg: DaemonConfig) -> Daemon {
        // A records path that cannot be opened degrades to no-records
        // rather than refusing to boot.
        let open_sink = |path: &PathBuf| {
            File::create(path)
                .ok()
                .map(|f| Mutex::new(JsonlSink::new(BufWriter::new(f))))
        };
        let records = cfg.records_path.as_ref().and_then(open_sink);
        let request_records = cfg.request_records_path.as_ref().and_then(open_sink);
        let workers = cfg.workers.max(1);
        let inner = Arc::new(Inner {
            cfg,
            sessions: Mutex::new(HashMap::new()),
            next_session: AtomicU64::new(1),
            next_request: AtomicU64::new(1),
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            running: AtomicUsize::new(0),
            draining: AtomicBool::new(false),
            jobs_taken: AtomicU64::new(0),
            solve_seq: AtomicU64::new(0),
            mem_total: AtomicU64::new(0),
            stats: StatCells::default(),
            records,
            request_records,
            inflight: Mutex::new(HashMap::new()),
            slow: Mutex::new(Vec::new()),
            workers: Mutex::new(Vec::new()),
        });
        let mut handles = Vec::with_capacity(workers);
        for worker_id in 0..workers {
            let inner = Arc::clone(&inner);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("rsatd-worker-{worker_id}"))
                    .spawn(move || worker_loop(&inner, worker_id as u64))
                    .expect("spawning a daemon worker thread"),
            );
        }
        *lock(&inner.workers) = handles;
        Daemon { inner }
    }

    /// Opens a session with `num_vars` variables. All clause literals
    /// and assumptions of the session's lifetime must stay within this
    /// range — the daemon validates and rejects instead of growing the
    /// solver. `inprocess` enables in-search simplification (freeze
    /// every variable you will later assume; see
    /// [`Daemon::freeze`]).
    pub fn open(&self, num_vars: u32, inprocess: bool) -> Result<u64, DaemonError> {
        let inner = &self.inner;
        if inner.draining.load(Ordering::Acquire) {
            return Err(DaemonError::Draining);
        }
        let now = Instant::now();
        let mut sessions = lock(&inner.sessions);
        // xtask: allow(lock-panic) admission is atomic under the sessions guard by design; lock() recovers poisoning
        self.evict_idle(&mut sessions, now);
        let live = sessions
            .values()
            .filter(|s| matches!(s.state, SessionState::Idle(_) | SessionState::Busy))
            .count();
        if live >= inner.cfg.max_sessions {
            // xtask: allow(lock-panic) admission is atomic under the sessions guard by design; lock() recovers poisoning
            self.count_rejected();
            return Err(DaemonError::Busy {
                retry_after_ms: inner.cfg.retry_after_ms,
            });
        }
        let config = SolverConfig {
            inprocess,
            ..SolverConfig::default()
        };
        // xtask: allow(lock-panic) admission is atomic under the sessions guard by design; lock() recovers poisoning
        let solver = Box::new(Solver::new(&Cnf::new(num_vars), config));
        let mem = solver.approx_memory_bytes();
        // xtask: allow(lock-panic) admission is atomic under the sessions guard by design; lock() recovers poisoning
        if self.mem_admit(&mut sessions, mem, now).is_err() {
            // xtask: allow(lock-panic) admission is atomic under the sessions guard by design; lock() recovers poisoning
            self.count_rejected();
            return Err(DaemonError::Busy {
                retry_after_ms: inner.cfg.retry_after_ms,
            });
        }
        let sid = inner.next_session.fetch_add(1, Ordering::AcqRel);
        sessions.insert(
            sid,
            Session {
                state: SessionState::Idle(solver),
                queued: false,
                vars: num_vars,
                created: now,
                last_used: now,
                mem_bytes: mem,
                last_model: None,
                last_core: None,
                solves: 0,
                conflicts: 0,
                propagations: 0,
                last_verdict: None,
            },
        );
        inner.mem_total.fetch_add(mem, Ordering::AcqRel);
        self.publish_gauges(&sessions);
        Ok(sid)
    }

    /// Opens a session and wraps it in a [`SessionHandle`].
    pub fn open_session(
        &self,
        num_vars: u32,
        inprocess: bool,
    ) -> Result<SessionHandle, DaemonError> {
        let sid = self.open(num_vars, inprocess)?;
        Ok(SessionHandle {
            daemon: self.clone(),
            sid,
            closed: false,
        })
    }

    /// Adds clauses (DIMACS-signed literals) to an idle session.
    pub fn add_clauses(&self, sid: u64, clauses: &[Vec<i64>]) -> Result<(), DaemonError> {
        self.with_idle_solver(sid, |solver, vars| {
            let mut lits = Vec::new();
            for clause in clauses {
                lits.clear();
                for &dimacs in clause {
                    lits.push(lit_in_range(sid, dimacs, vars)?);
                }
                if !solver.add_clause(&lits) {
                    // The formula became root-UNSAT; later solves will
                    // report it. Adding more clauses stays legal.
                    return Ok(());
                }
            }
            Ok(())
        })
    }

    /// Freezes literals' variables so inprocessing can never eliminate
    /// them — required before assuming a variable that has no clauses
    /// yet (e.g. activation literals of future BMC frames).
    pub fn freeze(&self, sid: u64, lits: &[i64]) -> Result<(), DaemonError> {
        self.with_idle_solver(sid, |solver, vars| {
            let mut frozen = Vec::with_capacity(lits.len());
            for &dimacs in lits {
                frozen.push(lit_in_range(sid, dimacs, vars)?);
            }
            solver.freeze_lits(&frozen);
            Ok(())
        })
    }

    /// Solves under assumptions, blocking until the verdict. `deadline`
    /// defaults to [`DaemonConfig::default_deadline`] and is clamped to
    /// [`DaemonConfig::max_deadline`]. Admission errors (`busy`,
    /// `draining`, session-state errors) return without queueing.
    pub fn solve(
        &self,
        sid: u64,
        assumptions: &[i64],
        deadline: Option<Duration>,
    ) -> Result<SolveReply, DaemonError> {
        let (tx, rx) = mpsc::channel();
        self.submit_solve(
            sid,
            assumptions.to_vec(),
            deadline,
            Box::new(move |_rid, reply| {
                let _ = tx.send(reply);
            }),
        )?;
        rx.recv()
            .unwrap_or_else(|_| Err(DaemonError::Internal("worker dropped the reply".into())))
    }

    /// Asynchronous solve: admission happens synchronously (errors
    /// return immediately and `cb` is *not* invoked); once admitted,
    /// returns the minted request id and `cb` later receives that id
    /// plus the outcome on a worker thread. Every admitted request —
    /// whatever its fate — emits exactly one terminal
    /// [`telemetry::RequestRecord`] carrying the same id.
    pub fn submit_solve(
        &self,
        sid: u64,
        assumptions: Vec<i64>,
        deadline: Option<Duration>,
        cb: SolveCallback,
    ) -> Result<u64, DaemonError> {
        let inner = &self.inner;
        if inner.draining.load(Ordering::Acquire) {
            return Err(DaemonError::Draining);
        }
        let now = Instant::now();
        let mut sessions = lock(&inner.sessions);
        // xtask: allow(lock-panic) admission is atomic under the sessions guard by design; lock() recovers poisoning
        self.evict_idle(&mut sessions, now);
        let session = sessions
            .get_mut(&sid)
            .ok_or(DaemonError::NoSuchSession(sid))?;
        if session.queued {
            return Err(DaemonError::SessionBusy(sid));
        }
        match &session.state {
            SessionState::Idle(_) => {}
            SessionState::Busy => return Err(DaemonError::SessionBusy(sid)),
            SessionState::Crashed(msg) => {
                return Err(DaemonError::SessionCrashed(sid, msg.clone()))
            }
            SessionState::Evicted(why) => return Err(DaemonError::SessionEvicted(sid, why)),
            SessionState::Closed => return Err(DaemonError::SessionClosed(sid)),
        }
        let vars = session.vars;
        let mut lits = Vec::with_capacity(assumptions.len());
        for &dimacs in &assumptions {
            // xtask: allow(lock-panic) lit validation rejects before the assert can trip; guard recovers poisoning
            lits.push(lit_in_range(sid, dimacs, vars)?);
        }
        // Admission control proper: bounded queue, then memory cap.
        {
            // xtask: allow(lock-order) distinct mutexes: the queue is only ever taken after (inside) the sessions guard
            let queue = lock(&inner.queue);
            if queue.len() >= inner.cfg.queue_depth {
                drop(queue);
                // xtask: allow(lock-panic) admission is atomic under the sessions guard by design; lock() recovers poisoning
                self.count_rejected();
                return Err(DaemonError::Busy {
                    retry_after_ms: inner.cfg.retry_after_ms,
                });
            }
        }
        // xtask: allow(lock-panic) admission is atomic under the sessions guard by design; lock() recovers poisoning
        if self.mem_admit(&mut sessions, 0, now).is_err() {
            // xtask: allow(lock-panic) admission is atomic under the sessions guard by design; lock() recovers poisoning
            self.count_rejected();
            return Err(DaemonError::Busy {
                retry_after_ms: inner.cfg.retry_after_ms,
            });
        }
        let session = sessions
            .get_mut(&sid)
            // xtask: allow(lock-panic) unreachable: the entry was validated under this same continuously-held guard
            .expect("session vanished between validation and admission");
        session.queued = true;
        session.last_used = now;
        drop(sessions);

        let timeout = deadline
            .unwrap_or(inner.cfg.default_deadline)
            .min(inner.cfg.max_deadline);
        let request_id = inner.next_request.fetch_add(1, Ordering::AcqRel);
        let job = Job {
            request_id,
            session: sid,
            assumptions: lits,
            deadline_at: now + timeout,
            admitted_at: now,
            admit_ns: trace::epoch_ns(),
            seq: inner.solve_seq.fetch_add(1, Ordering::AcqRel),
            cb,
        };
        {
            // xtask: allow(lock-order) distinct mutexes: inflight is only ever taken after (inside) the sessions guard
            let mut inflight = lock(&inner.inflight);
            inflight.insert(
                request_id,
                InFlight {
                    session: sid,
                    admitted_at: now,
                    worker: None,
                },
            );
            if metrics::armed() {
                metrics::set_gauge(Gauge::DaemonInFlight, inflight.len() as f64);
            }
        }
        // xtask: allow(lock-order) distinct mutexes: the queue is only ever taken after (inside) the sessions guard
        let mut queue = lock(&inner.queue);
        queue.push_back(job);
        drop(queue);
        inner.queue_cv.notify_one();
        inner.stats.admitted.fetch_add(1, Ordering::AcqRel);
        metrics::inc(Counter::DaemonAdmitted);
        trace::instant_with("daemon-admit", &[("request", request_id), ("session", sid)]);
        Ok(request_id)
    }

    /// The satisfying model of the last `Sat` solve, as DIMACS-signed
    /// literals (one per variable, in variable order).
    pub fn model(&self, sid: u64) -> Result<Vec<i64>, DaemonError> {
        let sessions = lock(&self.inner.sessions);
        let session = sessions.get(&sid).ok_or(DaemonError::NoSuchSession(sid))?;
        let model = session
            .last_model
            .as_ref()
            .ok_or(DaemonError::NoModel(sid))?;
        Ok(model
            .iter()
            .enumerate()
            .map(|(i, &value)| {
                let dimacs = (i + 1) as i64;
                if value {
                    dimacs
                } else {
                    -dimacs
                }
            })
            .collect())
    }

    /// The failed-assumption core of the last `Unsat` solve, as
    /// DIMACS-signed literals.
    pub fn core(&self, sid: u64) -> Result<Vec<i64>, DaemonError> {
        let sessions = lock(&self.inner.sessions);
        let session = sessions.get(&sid).ok_or(DaemonError::NoSuchSession(sid))?;
        let core = session.last_core.as_ref().ok_or(DaemonError::NoCore(sid))?;
        Ok(core.iter().map(|l| l.to_dimacs() as i64).collect())
    }

    /// Closes a session, releasing its solver. Closing a crashed or
    /// evicted session succeeds (it is the cleanup path); closing a
    /// closed session is a typed error; closing a session with a solve
    /// in flight is refused.
    pub fn close(&self, sid: u64) -> Result<(), DaemonError> {
        let mut sessions = lock(&self.inner.sessions);
        let session = sessions
            .get_mut(&sid)
            .ok_or(DaemonError::NoSuchSession(sid))?;
        if session.queued {
            return Err(DaemonError::SessionBusy(sid));
        }
        match &session.state {
            SessionState::Busy => return Err(DaemonError::SessionBusy(sid)),
            SessionState::Closed => return Err(DaemonError::SessionClosed(sid)),
            SessionState::Idle(_) | SessionState::Crashed(_) | SessionState::Evicted(_) => {}
        }
        let mem = session.mem_bytes;
        session.state = SessionState::Closed;
        session.mem_bytes = 0;
        session.last_model = None;
        session.last_core = None;
        self.inner.mem_total.fetch_sub(mem, Ordering::AcqRel);
        self.publish_gauges(&sessions);
        Ok(())
    }

    /// Robustness counters so far.
    pub fn stats(&self) -> DaemonStats {
        let s = &self.inner.stats;
        DaemonStats {
            admitted: s.admitted.load(Ordering::Acquire),
            rejected: s.rejected.load(Ordering::Acquire),
            evicted: s.evicted.load(Ordering::Acquire),
            crashed: s.crashed.load(Ordering::Acquire),
            deadline_exceeded: s.deadline_exceeded.load(Ordering::Acquire),
            completed: s.completed.load(Ordering::Acquire),
        }
    }

    /// Current occupancy.
    pub fn status(&self) -> DaemonStatus {
        let sessions = lock(&self.inner.sessions);
        let live = sessions
            .values()
            .filter(|s| matches!(s.state, SessionState::Idle(_) | SessionState::Busy))
            .count();
        DaemonStatus {
            sessions: live,
            queued: lock(&self.inner.queue).len(),
            running: self.inner.running.load(Ordering::Acquire),
            draining: self.inner.draining.load(Ordering::Acquire),
            memory_bytes: self.inner.mem_total.load(Ordering::Acquire),
        }
    }

    /// Deep-status snapshot for operators: everything [`Daemon::status`]
    /// and [`Daemon::stats`] report, plus a live metrics snapshot (when
    /// the `metrics` feature is armed), per-session state and cumulative
    /// stats, the ages of in-flight requests, and the worst-N
    /// slow-request ring with a queue-wait vs solve phase breakdown.
    pub fn introspect(&self) -> Json {
        let status = self.status();
        let stats = self.stats();
        let now = Instant::now();

        // Collect plain rows under each lock; all Json assembly happens
        // after the guards drop (`Json::with`/`set` panic on duplicate
        // keys, and a panic under these locks would poison the daemon).
        let mut session_rows = Vec::new();
        {
            let sessions = lock(&self.inner.sessions);
            let mut ids: Vec<u64> = sessions.keys().copied().collect();
            ids.sort_unstable();
            for sid in ids {
                let s = &sessions[&sid];
                let state = match &s.state {
                    SessionState::Idle(_) => "idle",
                    SessionState::Busy => "busy",
                    SessionState::Crashed(_) => "crashed",
                    SessionState::Evicted(_) => "evicted",
                    SessionState::Closed => "closed",
                };
                session_rows.push((
                    sid,
                    state,
                    s.vars,
                    s.mem_bytes,
                    now.duration_since(s.created).as_millis() as u64,
                    s.solves,
                    s.conflicts,
                    s.propagations,
                    s.last_verdict.clone(),
                ));
            }
        }

        let mut in_flight_rows = Vec::new();
        {
            let inflight = lock(&self.inner.inflight);
            let mut ids: Vec<u64> = inflight.keys().copied().collect();
            ids.sort_unstable();
            for rid in ids {
                let r = &inflight[&rid];
                in_flight_rows.push((
                    rid,
                    r.session,
                    r.worker,
                    now.duration_since(r.admitted_at).as_millis() as u64,
                ));
            }
        }

        let mut slow_rows: Vec<SlowRequest> = Vec::new();
        {
            let slow = lock(&self.inner.slow);
            slow_rows.extend(slow.iter().cloned());
        }

        let mut out = Json::object()
            .with("sessions", status.sessions.into())
            .with("queued", status.queued.into())
            .with("running", status.running.into())
            .with("draining", status.draining.into())
            .with("memory_bytes", status.memory_bytes.into())
            .with("admitted", stats.admitted.into())
            .with("rejected", stats.rejected.into())
            .with("evicted", stats.evicted.into())
            .with("crashed", stats.crashed.into())
            .with("deadline_exceeded", stats.deadline_exceeded.into())
            .with("completed", stats.completed.into());

        let session_list: Vec<Json> = session_rows
            .into_iter()
            .map(
                |(sid, state, vars, mem, age_ms, solves, conflicts, propagations, verdict)| {
                    Json::object()
                        .with("id", sid.into())
                        .with("state", state.into())
                        .with("vars", vars.into())
                        .with("memory_bytes", mem.into())
                        .with("age_ms", age_ms.into())
                        .with("solves", solves.into())
                        .with("conflicts", conflicts.into())
                        .with("propagations", propagations.into())
                        .with(
                            "last_verdict",
                            verdict.as_deref().map_or(Json::Null, Json::from),
                        )
                },
            )
            .collect();
        out.set("session_list", Json::Array(session_list));

        let in_flight: Vec<Json> = in_flight_rows
            .into_iter()
            .map(|(rid, session, worker, age_ms)| {
                Json::object()
                    .with("request_id", rid.into())
                    .with("session", session.into())
                    .with(
                        "state",
                        if worker.is_some() {
                            "running".into()
                        } else {
                            "queued".into()
                        },
                    )
                    .with("worker", worker.map_or(Json::Null, Json::from))
                    .with("age_ms", age_ms.into())
            })
            .collect();
        out.set("in_flight", Json::Array(in_flight));

        let slow: Vec<Json> = slow_rows
            .into_iter()
            .map(|s| {
                Json::object()
                    .with("request_id", s.request_id.into())
                    .with("session", s.session.into())
                    .with("queue_wait_ms", s.queue_wait_ms.into())
                    .with("solve_ms", s.solve_ms.into())
                    .with("verdict", s.verdict.as_str().into())
            })
            .collect();
        out.set("slow", Json::Array(slow));

        out.set(
            "metrics",
            if metrics::armed() {
                metrics::snapshot().to_json()
            } else {
                Json::Null
            },
        );
        out
    }

    /// True once a drain or shutdown began.
    pub fn draining(&self) -> bool {
        self.inner.draining.load(Ordering::Acquire)
    }

    /// Stops admitting new work. Queued and running solves continue;
    /// call [`Daemon::shutdown`] to also wait for them.
    pub fn begin_drain(&self) {
        self.inner.draining.store(true, Ordering::Release);
        self.inner.queue_cv.notify_all();
    }

    /// Graceful drain: stops admissions, waits for every queued and
    /// running solve to deliver its callback, joins the workers, and
    /// flushes the records sink. Idempotent.
    pub fn shutdown(&self) {
        self.begin_drain();
        let handles = std::mem::take(&mut *lock(&self.inner.workers));
        for handle in handles {
            let _ = handle.join();
        }
        if let Some(records) = &self.inner.records {
            // xtask: allow(lock-panic) the records lock exists to serialize this sink; cold drain path, poisoning recovered
            lock(records).flush();
        }
        if let Some(records) = &self.inner.request_records {
            // xtask: allow(lock-panic) the records lock exists to serialize this sink; cold drain path, poisoning recovered
            lock(records).flush();
        }
    }

    // ---- internals -----------------------------------------------------

    /// Shared idle/busy gauge publication; callers hold the session lock.
    fn publish_gauges(&self, sessions: &HashMap<u64, Session>) {
        if !metrics::armed() {
            return;
        }
        let live = sessions
            .values()
            .filter(|s| matches!(s.state, SessionState::Idle(_) | SessionState::Busy))
            .count();
        metrics::set_gauge(Gauge::DaemonSessions, live as f64);
        metrics::set_gauge(
            Gauge::DaemonMemoryBytes,
            self.inner.mem_total.load(Ordering::Acquire) as f64,
        );
    }

    fn count_rejected(&self) {
        self.inner.stats.rejected.fetch_add(1, Ordering::AcqRel);
        metrics::inc(Counter::DaemonRejected);
        trace::instant("daemon-reject");
    }

    fn count_evicted(&self) {
        self.inner.stats.evicted.fetch_add(1, Ordering::AcqRel);
        metrics::inc(Counter::DaemonEvicted);
    }

    /// Evicts idle-timed-out sessions. Queued/busy sessions are shielded.
    fn evict_idle(&self, sessions: &mut HashMap<u64, Session>, now: Instant) {
        let timeout = self.inner.cfg.idle_timeout;
        let mut freed = 0u64;
        for session in sessions.values_mut() {
            let expired = matches!(session.state, SessionState::Idle(_))
                && !session.queued
                && now.duration_since(session.last_used) > timeout;
            if expired {
                freed += session.mem_bytes;
                session.state = SessionState::Evicted("idle");
                session.mem_bytes = 0;
                session.last_model = None;
                session.last_core = None;
                self.count_evicted();
            }
        }
        if freed > 0 {
            self.inner.mem_total.fetch_sub(freed, Ordering::AcqRel);
            self.publish_gauges(sessions);
        }
    }

    /// Memory admission: ensures `extra` more bytes fit under the cap,
    /// evicting least-recently-used idle sessions if needed.
    fn mem_admit(
        &self,
        sessions: &mut HashMap<u64, Session>,
        extra: u64,
        now: Instant,
    ) -> Result<(), ()> {
        let cap = self.inner.cfg.max_memory_bytes;
        let over = |total: u64| total.saturating_add(extra) > cap;
        if !over(self.inner.mem_total.load(Ordering::Acquire)) {
            return Ok(());
        }
        // LRU order over evictable sessions.
        let mut victims: Vec<(u64, Instant)> = sessions
            .iter()
            .filter(|(_, s)| matches!(s.state, SessionState::Idle(_)) && !s.queued)
            .map(|(&sid, s)| (sid, s.last_used))
            .collect();
        victims.sort_by_key(|&(_, used)| used);
        for (sid, _) in victims {
            if !over(self.inner.mem_total.load(Ordering::Acquire)) {
                break;
            }
            let session = sessions.get_mut(&sid).expect("victim session exists");
            let mem = session.mem_bytes;
            session.state = SessionState::Evicted("memory");
            session.mem_bytes = 0;
            session.last_model = None;
            session.last_core = None;
            self.inner.mem_total.fetch_sub(mem, Ordering::AcqRel);
            self.count_evicted();
        }
        let _ = now;
        self.publish_gauges(sessions);
        if over(self.inner.mem_total.load(Ordering::Acquire)) {
            Err(())
        } else {
            Ok(())
        }
    }

    /// Runs `f` against the checked-in solver of an idle session,
    /// producing precise errors for every other state.
    fn with_idle_solver<T>(
        &self,
        sid: u64,
        f: impl FnOnce(&mut Solver, u32) -> Result<T, DaemonError>,
    ) -> Result<T, DaemonError> {
        let mut sessions = lock(&self.inner.sessions);
        let session = sessions
            .get_mut(&sid)
            .ok_or(DaemonError::NoSuchSession(sid))?;
        if session.queued {
            return Err(DaemonError::SessionBusy(sid));
        }
        let vars = session.vars;
        match &mut session.state {
            SessionState::Idle(solver) => {
                session.last_used = Instant::now();
                f(solver, vars)
            }
            SessionState::Busy => Err(DaemonError::SessionBusy(sid)),
            SessionState::Crashed(msg) => Err(DaemonError::SessionCrashed(sid, msg.clone())),
            SessionState::Evicted(why) => Err(DaemonError::SessionEvicted(sid, why)),
            SessionState::Closed => Err(DaemonError::SessionClosed(sid)),
        }
    }
}

/// Maps a DIMACS literal into the session's declared variable range.
fn lit_in_range(sid: u64, dimacs: i64, num_vars: u32) -> Result<Lit, DaemonError> {
    let out_of_range = DaemonError::VarOutOfRange {
        session: sid,
        lit: dimacs,
        num_vars,
    };
    let magnitude = dimacs.unsigned_abs();
    if dimacs == 0 || magnitude > num_vars as u64 {
        return Err(out_of_range);
    }
    Ok(Lit::from_dimacs(dimacs as i32))
}

// ---- worker pool -------------------------------------------------------

/// Blocks until a job is available (`Some`) or the daemon is draining
/// with an empty queue (`None`). The queue guard never escapes this
/// function.
fn next_job(inner: &Arc<Inner>) -> Option<Job> {
    let mut queue = lock(&inner.queue);
    loop {
        if let Some(job) = queue.pop_front() {
            return Some(job);
        }
        if inner.draining.load(Ordering::Acquire) {
            return None;
        }
        // A timed wait so a missed wakeup degrades to 100 ms of
        // latency instead of a hang.
        queue = inner
            .queue_cv
            .wait_timeout(queue, Duration::from_millis(100))
            .unwrap_or_else(PoisonError::into_inner)
            .0;
    }
}

fn worker_loop(inner: &Arc<Inner>, worker_id: u64) {
    loop {
        let Some(job) = next_job(inner) else {
            // Move this worker's trace ring into the collector so a
            // post-drain export sees its lane.
            trace::flush();
            return;
        };
        if trace::armed() {
            // Tagged per job, not per thread: tracing may be armed
            // after the pool boots. Workers render one Chrome lane
            // each, offset past the coordinator's pid 0.
            trace::set_lane(worker_id as u32 + 1, &format!("daemon-worker-{worker_id}"));
        }
        inner.running.fetch_add(1, Ordering::AcqRel);
        let taken = inner.jobs_taken.fetch_add(1, Ordering::AcqRel) + 1;
        inject_scheduler_stall(taken);
        run_job(inner, job, worker_id);
        inner.running.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Executes one admitted solve end to end: checkout, isolated solve,
/// checkin (or quarantine), telemetry, callback.
fn run_job(inner: &Arc<Inner>, job: Job, worker_id: u64) {
    let daemon = Daemon {
        inner: Arc::clone(inner),
    };
    let request_id = job.request_id;
    let outcome = execute_solve(&daemon, inner, job, worker_id);
    let (cb, result) = outcome;
    // The callback is foreign code (e.g. a connection writer); its
    // panics must not kill the worker.
    let reply_span = trace::span_with("reply", &[("request", request_id)]);
    let _ = run_isolated(move || cb(request_id, result));
    drop(reply_span);
}

type SolveOutcome = (SolveCallback, Result<SolveReply, DaemonError>);

fn execute_solve(daemon: &Daemon, inner: &Arc<Inner>, job: Job, worker_id: u64) -> SolveOutcome {
    let Job {
        request_id,
        session: sid,
        assumptions,
        deadline_at,
        admitted_at,
        admit_ns,
        seq,
        cb,
    } = job;

    // The request reached a worker: measure its queue wait, mark it
    // running, and lay the retroactive queue-wait span into this
    // worker's lane so the trace shows wait and solve back to back.
    let queue_wait_ms = admitted_at.elapsed().as_secs_f64() * 1e3;
    trace::span_retro(
        "queue-wait",
        admit_ns,
        &[("request", request_id), ("session", sid)],
    );
    {
        let mut inflight = lock(&inner.inflight);
        if let Some(entry) = inflight.get_mut(&request_id) {
            entry.worker = Some(worker_id);
        }
    }
    let mut record = RequestRecord::new(request_id, sid);
    record.worker = worker_id;
    record.queue_wait_ms = queue_wait_ms;

    // Checkout: queued -> Busy, taking the solver onto this thread.
    let mut solver = match checkout_solver(inner, sid) {
        Ok(solver) => solver,
        Err(err) => {
            record.verdict = "error".to_string();
            record.error_kind = Some(err.kind().to_string());
            finish_request(daemon, record);
            return (cb, err_outcome(err));
        }
    };

    let checkin = |solver: Box<Solver>, model: Option<Vec<bool>>, core: Option<Vec<Lit>>| {
        checkin_solver(daemon, sid, solver, model, core)
    };

    let now = Instant::now();
    if now >= deadline_at {
        // Queued past its deadline: degrade without touching the solver.
        inner.stats.deadline_exceeded.fetch_add(1, Ordering::AcqRel);
        metrics::inc(Counter::DaemonDeadlineExceeded);
        let verdict = Verdict::Unknown("deadline".to_string());
        let mem = checkin(solver, None, None);
        inner.stats.completed.fetch_add(1, Ordering::AcqRel);
        record.verdict = "unknown".to_string();
        record.stop_cause = Some("deadline".to_string());
        record.degrade("daemon-degraded", "deadline");
        finish_request(daemon, record);
        return (
            cb,
            Ok(SolveReply {
                request_id,
                verdict,
                conflicts: 0,
                propagations: 0,
                duration_ms: 0,
                memory_bytes: mem,
            }),
        );
    }

    // A stale-frozen assumption is a client contract error, not a crash.
    if let Some(v) = solver.find_eliminated(&assumptions) {
        checkin(solver, None, None);
        let err = DaemonError::EliminatedAssumption(sid, v);
        record.verdict = "error".to_string();
        record.error_kind = Some(err.kind().to_string());
        finish_request(daemon, record);
        return (cb, err_outcome(err));
    }
    solver.freeze_lits(&assumptions);

    // Memory budget: the cap minus what every *other* session holds.
    let others = inner
        .mem_total
        .load(Ordering::Acquire)
        .saturating_sub(solver.approx_memory_bytes());
    let headroom = inner
        .cfg
        .max_memory_bytes
        .saturating_sub(others)
        .max(1 << 20);
    let mut budget = Budget::unlimited();
    budget.deadline = Some(deadline_at);
    budget.max_memory_bytes = Some(headroom);

    solver.set_telemetry(SolverTelemetry::new(format!("session-{sid}/solve-{seq}")));

    let before = *solver.stats();
    let started = Instant::now();
    let solve_span = trace::span_with("solve", &[("request", request_id), ("session", sid)]);
    let isolated = run_isolated(move || {
        inject_session_panic(sid, seq);
        let result = solver.solve_with_assumptions(&assumptions, budget);
        (solver, result)
    });
    drop(solve_span);
    let solve_ms = started.elapsed().as_secs_f64() * 1e3;
    record.solve_ms = solve_ms;
    let duration_ms = solve_ms as u64;

    let (mut solver, result) = match isolated {
        Ok(pair) => pair,
        Err(crash) => {
            quarantine_session(daemon, sid, &crash.message);
            record.verdict = "error".to_string();
            record.error_kind = Some("crashed".to_string());
            record.degrade("session-crash", crash.message.clone());
            finish_request(daemon, record);
            return (
                cb,
                err_outcome(DaemonError::SessionCrashed(sid, crash.message)),
            );
        }
    };

    let after = *solver.stats();
    let (verdict, model, core) = match result {
        SolveResult::Sat(model) => (Verdict::Sat, Some(model), None),
        SolveResult::Unsat => (Verdict::Unsat, None, Some(solver.unsat_core().to_vec())),
        SolveResult::Unknown => {
            let cause = solver
                .stop_cause()
                .map(|c| c.as_str().to_string())
                .unwrap_or_else(|| "budget".to_string());
            if cause == "deadline" {
                inner.stats.deadline_exceeded.fetch_add(1, Ordering::AcqRel);
                metrics::inc(Counter::DaemonDeadlineExceeded);
            }
            (Verdict::Unknown(cause), None, None)
        }
    };

    emit_record(inner, &mut solver, &verdict);
    let mem = checkin(solver, model, core);
    inner.stats.completed.fetch_add(1, Ordering::AcqRel);
    record.verdict = verdict.as_str().to_string();
    if let Verdict::Unknown(cause) = &verdict {
        record.stop_cause = Some(cause.clone());
        record.degrade("daemon-degraded", cause.clone());
    }
    record.stats = after.delta_since(&before).to_json();
    finish_request(daemon, record);
    (
        cb,
        Ok(SolveReply {
            request_id,
            verdict,
            conflicts: after.conflicts.saturating_sub(before.conflicts),
            propagations: after.propagations.saturating_sub(before.propagations),
            duration_ms,
            memory_bytes: mem,
        }),
    )
}

fn err_outcome(err: DaemonError) -> Result<SolveReply, DaemonError> {
    Err(err)
}

/// Checkout: queued -> Busy, moving the solver out of the session slot
/// and onto the calling worker thread. The sessions guard never escapes
/// this function.
fn checkout_solver(inner: &Inner, sid: u64) -> Result<Box<Solver>, DaemonError> {
    let mut sessions = lock(&inner.sessions);
    let Some(session) = sessions.get_mut(&sid) else {
        return Err(DaemonError::NoSuchSession(sid));
    };
    session.queued = false;
    match std::mem::replace(&mut session.state, SessionState::Busy) {
        SessionState::Idle(solver) => Ok(solver),
        other => {
            // Only reachable if a terminal transition raced the
            // queue; restore and report it.
            let err = match &other {
                SessionState::Crashed(msg) => DaemonError::SessionCrashed(sid, msg.clone()),
                SessionState::Evicted(why) => DaemonError::SessionEvicted(sid, why),
                SessionState::Closed => DaemonError::SessionClosed(sid),
                _ => DaemonError::SessionBusy(sid),
            };
            session.state = other;
            Err(err)
        }
    }
}

/// Checkin: Busy -> Idle, returning the solver to its slot, refreshing
/// the memory accounting, and stashing the latest model/core. Returns
/// the session's new memory footprint.
fn checkin_solver(
    daemon: &Daemon,
    sid: u64,
    solver: Box<Solver>,
    model: Option<Vec<bool>>,
    core: Option<Vec<Lit>>,
) -> u64 {
    let inner = &daemon.inner;
    let mem = solver.approx_memory_bytes();
    let mut sessions = lock(&inner.sessions);
    if let Some(session) = sessions.get_mut(&sid) {
        let old = session.mem_bytes;
        session.mem_bytes = mem;
        session.last_used = Instant::now();
        session.last_model = model;
        session.last_core = core;
        session.state = SessionState::Idle(solver);
        if mem >= old {
            inner.mem_total.fetch_add(mem - old, Ordering::AcqRel);
        } else {
            inner.mem_total.fetch_sub(old - mem, Ordering::AcqRel);
        }
        daemon.publish_gauges(&sessions);
    }
    mem
}

/// Quarantine: the solver died with its panic; the session slot records
/// why, its memory accounting is released, and everything else keeps
/// running.
fn quarantine_session(daemon: &Daemon, sid: u64, message: &str) {
    let inner = &daemon.inner;
    {
        let mut sessions = lock(&inner.sessions);
        if let Some(session) = sessions.get_mut(&sid) {
            let old = session.mem_bytes;
            session.mem_bytes = 0;
            session.last_model = None;
            session.last_core = None;
            session.state = SessionState::Crashed(message.to_string());
            inner.mem_total.fetch_sub(old, Ordering::AcqRel);
            daemon.publish_gauges(&sessions);
        }
    }
    inner.stats.crashed.fetch_add(1, Ordering::AcqRel);
    metrics::inc(Counter::DaemonCrashed);
}

/// Appends the solve's [`telemetry::RunRecord`] to the records sink.
fn emit_record(inner: &Inner, solver: &mut Solver, verdict: &Verdict) {
    let Some(telemetry) = solver.take_telemetry() else {
        return;
    };
    let Some(records) = &inner.records else {
        return;
    };
    if let Some(mut record) = telemetry.into_record() {
        if let Verdict::Unknown(cause) = verdict {
            record.degrade("daemon-degraded", cause.clone());
        }
        lock(records).emit(&Event::SolveEnd { record });
    }
}

/// The single terminal point of an admitted request: retires the
/// in-flight entry, folds the request into the slow-request ring and
/// the owning session's cumulative stats, bumps the completion counter,
/// and appends the [`telemetry::RequestRecord`] to the request-records
/// sink. Every admitted request — success, crash-quarantined,
/// deadline-degraded, or drained at shutdown — passes through here
/// exactly once.
fn finish_request(daemon: &Daemon, record: RequestRecord) {
    let inner = &daemon.inner;
    {
        let mut inflight = lock(&inner.inflight);
        inflight.remove(&record.request_id);
        if metrics::armed() {
            metrics::set_gauge(Gauge::DaemonInFlight, inflight.len() as f64);
        }
    }
    {
        // Worst-N by total wall (queue wait + solve), bounded.
        let mut slow = lock(&inner.slow);
        slow.push(SlowRequest {
            request_id: record.request_id,
            session: record.session,
            queue_wait_ms: record.queue_wait_ms,
            solve_ms: record.solve_ms,
            verdict: record.verdict.clone(),
        });
        let wall = |s: &SlowRequest| s.queue_wait_ms + s.solve_ms;
        slow.sort_by(|a, b| {
            wall(b)
                .partial_cmp(&wall(a))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        slow.truncate(SLOW_RING);
    }
    {
        let mut sessions = lock(&inner.sessions);
        if let Some(session) = sessions.get_mut(&record.session) {
            session.solves += 1;
            session.conflicts += record
                .stats
                .get("conflicts")
                .and_then(Json::as_u64)
                .unwrap_or(0);
            session.propagations += record
                .stats
                .get("propagations")
                .and_then(Json::as_u64)
                .unwrap_or(0);
            session.last_verdict = Some(record.verdict.clone());
        }
    }
    metrics::inc(Counter::DaemonCompleted);
    if let Some(records) = &inner.request_records {
        lock(records).emit(&Event::RequestEnd { record });
    }
}

/// A session with RAII cleanup: dropping the handle closes the session
/// on a best-effort basis (errors are ignored — the daemon's eviction
/// sweep is the backstop).
pub struct SessionHandle {
    daemon: Daemon,
    sid: u64,
    closed: bool,
}

impl std::fmt::Debug for SessionHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionHandle")
            .field("sid", &self.sid)
            .finish()
    }
}

impl SessionHandle {
    /// The session id (for mixing handle and raw-daemon calls).
    pub fn id(&self) -> u64 {
        self.sid
    }

    /// See [`Daemon::add_clauses`].
    pub fn add_clauses(&self, clauses: &[Vec<i64>]) -> Result<(), DaemonError> {
        self.daemon.add_clauses(self.sid, clauses)
    }

    /// See [`Daemon::freeze`].
    pub fn freeze(&self, lits: &[i64]) -> Result<(), DaemonError> {
        self.daemon.freeze(self.sid, lits)
    }

    /// See [`Daemon::solve`].
    pub fn solve(
        &self,
        assumptions: &[i64],
        deadline: Option<Duration>,
    ) -> Result<SolveReply, DaemonError> {
        self.daemon.solve(self.sid, assumptions, deadline)
    }

    /// See [`Daemon::model`].
    pub fn model(&self) -> Result<Vec<i64>, DaemonError> {
        self.daemon.model(self.sid)
    }

    /// See [`Daemon::core`].
    pub fn core(&self) -> Result<Vec<i64>, DaemonError> {
        self.daemon.core(self.sid)
    }

    /// Closes the session explicitly, surfacing the error if any.
    pub fn close(mut self) -> Result<(), DaemonError> {
        self.closed = true;
        self.daemon.close(self.sid)
    }
}

impl Drop for SessionHandle {
    fn drop(&mut self) {
        if !self.closed {
            let _ = self.daemon.close(self.sid);
        }
    }
}

// ---- fault injection ---------------------------------------------------

/// `scheduler-stall(at=N,delay_ms=D)`: the worker sleeps `D` ms before
/// servicing the `N`-th job it takes — a slow scheduler in a box, for
/// driving queue backpressure and deadline misses in chaos tests.
#[cfg(feature = "faults")]
fn inject_scheduler_stall(jobs_taken: u64) {
    if let Some(cfg) = faults::fire(faults::site::SCHEDULER_STALL, &[("at", jobs_taken)]) {
        std::thread::sleep(Duration::from_millis(cfg.get_u64("delay_ms", 50)));
    }
}

#[cfg(not(feature = "faults"))]
fn inject_scheduler_stall(_jobs_taken: u64) {}

/// `session-panic(session=S,at=N)`: panics inside the isolation scope
/// of the matching solve — a solver bug in a box, for proving the
/// quarantine holds.
#[cfg(feature = "faults")]
fn inject_session_panic(session: u64, seq: u64) {
    if faults::fire(
        faults::site::SESSION_PANIC,
        &[("session", session), ("at", seq)],
    )
    .is_some()
    {
        panic!("injected fault: session {session} solver panic");
    }
}

#[cfg(not(feature = "faults"))]
fn inject_session_panic(_session: u64, _seq: u64) {}
