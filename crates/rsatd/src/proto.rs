//! The newline-delimited JSON wire protocol.
//!
//! One request per line, one JSON object per request; responses are one
//! JSON object per line and carry the request's `id` verbatim, so
//! clients may pipeline and the daemon may answer out of order (solves
//! complete asynchronously; everything else answers in order).
//!
//! ```text
//! -> {"id":1,"op":"open","vars":3,"clauses":[[1,2],[-1,3]],"freeze":[2]}
//! <- {"id":1,"ok":true,"session":1}
//! -> {"id":2,"op":"solve","session":1,"assumptions":[-2],"deadline_ms":500}
//! <- {"id":2,"ok":true,"verdict":"sat","conflicts":0,"propagations":2,
//!     "duration_ms":0,"memory_bytes":4096}
//! -> {"id":3,"op":"model","session":1}
//! <- {"id":3,"ok":true,"model":[1,-2,3]}
//! ```
//!
//! Errors are always `{"id":…,"ok":false,"request_id":…,"error":
//! {"kind":…,"message":…}}` with `retry_after_ms` present exactly on
//! `busy` rejections. `request_id` is the daemon-minted id of the
//! admitted request the error belongs to — explicitly `null` on
//! pre-admission failures (malformed input, admission rejections), so a
//! client can always distinguish "never admitted" from "admitted as
//! request N and then failed". Solve replies carry the same
//! `request_id`, matching the id in the daemon's per-request JSONL
//! records. Malformed input never kills the connection: an unparseable
//! line is answered with `"kind":"malformed"` and a `null` id, an
//! oversized line (over [`MAX_REQUEST_BYTES`]) with
//! `"kind":"oversized"`, and an unknown `op` with
//! `"kind":"unknown-op"`.

use telemetry::json::Json;

use crate::daemon::{DaemonError, SolveReply};

/// Hard cap on one request line, including the newline. Longer lines
/// are rejected (and drained) without buffering them in full.
pub const MAX_REQUEST_BYTES: usize = 4 << 20;

/// A request that failed before reaching the daemon, answered with a
/// typed error response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// Stable machine-readable tag (`"malformed"`, `"unknown-op"`,
    /// `"oversized"`, `"bad-request"`).
    pub kind: &'static str,
    /// Human-readable context.
    pub message: String,
}

impl WireError {
    fn new(kind: &'static str, message: impl Into<String>) -> Self {
        WireError {
            kind,
            message: message.into(),
        }
    }
}

/// A decoded protocol request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Open a session over `vars` variables, optionally seeding clauses
    /// and freezing assumption candidates.
    Open {
        /// Variable count, fixed for the session's lifetime.
        vars: u32,
        /// Enable in-search inprocessing for the session.
        inprocess: bool,
        /// Initial clauses (DIMACS-signed literals).
        clauses: Vec<Vec<i64>>,
        /// Literals whose variables must survive inprocessing.
        freeze: Vec<i64>,
    },
    /// Append clauses to a session.
    AddClauses {
        /// Target session.
        session: u64,
        /// Clauses to add (DIMACS-signed literals).
        clauses: Vec<Vec<i64>>,
    },
    /// Freeze assumption candidates in a session.
    Freeze {
        /// Target session.
        session: u64,
        /// Literals whose variables must survive inprocessing.
        lits: Vec<i64>,
    },
    /// Solve under assumptions with an optional deadline.
    Solve {
        /// Target session.
        session: u64,
        /// Assumption literals (DIMACS-signed).
        assumptions: Vec<i64>,
        /// Wall-clock deadline override in milliseconds.
        deadline_ms: Option<u64>,
    },
    /// Fetch the model of the last SAT verdict.
    Model {
        /// Target session.
        session: u64,
    },
    /// Fetch the failed-assumption core of the last UNSAT verdict.
    Core {
        /// Target session.
        session: u64,
    },
    /// Close a session.
    Close {
        /// Target session.
        session: u64,
    },
    /// Daemon occupancy and robustness counters.
    Status,
    /// Deep status: everything `status` reports plus a live metrics
    /// snapshot, per-session state/stats, in-flight request ages, and
    /// the slow-request ring.
    Introspect,
    /// Graceful drain: stop admitting, finish in-flight work, exit.
    Shutdown,
}

/// One parsed request line: the echoed `id` plus either the request or
/// the wire error to answer with.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    /// The client's correlation id (echoed verbatim; `null` if absent
    /// or unparseable).
    pub id: Json,
    /// The decoded request, or the error that stops it.
    pub req: Result<Request, WireError>,
}

/// Parses one request line. Never panics; every malformation maps to a
/// typed [`WireError`].
pub fn parse_request(line: &str) -> Envelope {
    if line.len() > MAX_REQUEST_BYTES {
        return Envelope {
            id: Json::Null,
            req: Err(WireError::new(
                "oversized",
                format!(
                    "request of {} bytes exceeds the {} byte cap",
                    line.len(),
                    MAX_REQUEST_BYTES
                ),
            )),
        };
    }
    let value = match Json::parse(line) {
        Ok(v) => v,
        Err(e) => {
            return Envelope {
                id: Json::Null,
                req: Err(WireError::new("malformed", e.to_string())),
            }
        }
    };
    let id = value.get("id").cloned().unwrap_or(Json::Null);
    let req = decode(&value);
    Envelope { id, req }
}

fn decode(value: &Json) -> Result<Request, WireError> {
    if value.as_object().is_none() {
        return Err(WireError::new("malformed", "request is not a JSON object"));
    }
    let op = value
        .get("op")
        .and_then(Json::as_str)
        .ok_or_else(|| WireError::new("bad-request", "missing string field `op`"))?;
    match op {
        "open" => Ok(Request::Open {
            vars: u32_field(value, "vars")?,
            inprocess: value
                .get("inprocess")
                .and_then(Json::as_bool)
                .unwrap_or(false),
            clauses: clauses_field(value, "clauses")?,
            freeze: lits_field(value, "freeze")?,
        }),
        "add_clauses" => Ok(Request::AddClauses {
            session: u64_field(value, "session")?,
            clauses: clauses_field(value, "clauses")?,
        }),
        "freeze" => Ok(Request::Freeze {
            session: u64_field(value, "session")?,
            lits: lits_field(value, "lits")?,
        }),
        "solve" => Ok(Request::Solve {
            session: u64_field(value, "session")?,
            assumptions: lits_field(value, "assumptions")?,
            deadline_ms: match value.get("deadline_ms") {
                None | Some(Json::Null) => None,
                Some(v) => Some(v.as_u64().ok_or_else(|| {
                    WireError::new(
                        "bad-request",
                        "`deadline_ms` must be a non-negative integer",
                    )
                })?),
            },
        }),
        "model" => Ok(Request::Model {
            session: u64_field(value, "session")?,
        }),
        "core" => Ok(Request::Core {
            session: u64_field(value, "session")?,
        }),
        "close" => Ok(Request::Close {
            session: u64_field(value, "session")?,
        }),
        "status" => Ok(Request::Status),
        "introspect" => Ok(Request::Introspect),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(WireError::new(
            "unknown-op",
            format!("unknown op `{other}`"),
        )),
    }
}

fn u64_field(value: &Json, key: &str) -> Result<u64, WireError> {
    value.get(key).and_then(Json::as_u64).ok_or_else(|| {
        WireError::new(
            "bad-request",
            format!("missing or non-integer field `{key}`"),
        )
    })
}

fn u32_field(value: &Json, key: &str) -> Result<u32, WireError> {
    let n = u64_field(value, key)?;
    u32::try_from(n)
        .map_err(|_| WireError::new("bad-request", format!("field `{key}` exceeds u32 range")))
}

/// A literal on the wire: a (possibly negative) integer, never zero and
/// never fractional.
fn lit_value(v: &Json) -> Result<i64, WireError> {
    let lit = match v {
        Json::U64(n) => i64::try_from(*n)
            .map_err(|_| WireError::new("bad-request", "literal exceeds i64 range"))?,
        Json::I64(n) => *n,
        _ => return Err(WireError::new("bad-request", "literal must be an integer")),
    };
    if lit == 0 {
        return Err(WireError::new("bad-request", "literal 0 is reserved"));
    }
    Ok(lit)
}

fn lits_field(value: &Json, key: &str) -> Result<Vec<i64>, WireError> {
    match value.get(key) {
        None | Some(Json::Null) => Ok(Vec::new()),
        Some(v) => {
            let arr = v.as_array().ok_or_else(|| {
                WireError::new("bad-request", format!("field `{key}` must be an array"))
            })?;
            arr.iter().map(lit_value).collect()
        }
    }
}

fn clauses_field(value: &Json, key: &str) -> Result<Vec<Vec<i64>>, WireError> {
    match value.get(key) {
        None | Some(Json::Null) => Ok(Vec::new()),
        Some(v) => {
            let arr = v.as_array().ok_or_else(|| {
                WireError::new("bad-request", format!("field `{key}` must be an array"))
            })?;
            arr.iter()
                .map(|clause| {
                    let lits = clause.as_array().ok_or_else(|| {
                        WireError::new("bad-request", "each clause must be an array of literals")
                    })?;
                    lits.iter().map(lit_value).collect()
                })
                .collect()
        }
    }
}

// ---- responses ---------------------------------------------------------

/// A success response carrying `body`'s fields alongside the id.
pub fn ok_response(id: &Json, body: Json) -> String {
    let mut out = Json::object()
        .with("id", id.clone())
        .with("ok", true.into());
    if let Json::Object(fields) = body {
        for (k, v) in fields {
            out.set(&k, v);
        }
    }
    out.to_string()
}

/// An error response: `{"id":…,"ok":false,"request_id":…,"error":{…}}`.
///
/// `request_id` is always present: the daemon-minted id for errors of an
/// admitted request, and an explicit `null` for pre-admission failures.
pub fn err_response(
    id: &Json,
    kind: &str,
    message: &str,
    retry_after_ms: Option<u64>,
    request_id: Option<u64>,
) -> String {
    let mut error = Json::object()
        .with("kind", kind.into())
        .with("message", message.into());
    if let Some(ms) = retry_after_ms {
        error.set("retry_after_ms", ms.into());
    }
    Json::object()
        .with("id", id.clone())
        .with("ok", false.into())
        .with("request_id", request_id.map_or(Json::Null, Json::from))
        .with("error", error)
        .to_string()
}

/// The error response for a [`DaemonError`]; `request_id` as in
/// [`err_response`].
pub fn daemon_err_response(id: &Json, err: &DaemonError, request_id: Option<u64>) -> String {
    err_response(
        id,
        err.kind(),
        &err.to_string(),
        err.retry_after_ms(),
        request_id,
    )
}

/// The success response for a completed solve, carrying the
/// daemon-minted `request_id` that also names the solve's JSONL
/// [`telemetry::RequestRecord`].
pub fn solve_response(id: &Json, reply: &SolveReply) -> String {
    let mut body = Json::object()
        .with("request_id", reply.request_id.into())
        .with("verdict", reply.verdict.as_str().into())
        .with("conflicts", reply.conflicts.into())
        .with("propagations", reply.propagations.into())
        .with("duration_ms", reply.duration_ms.into())
        .with("memory_bytes", reply.memory_bytes.into());
    if let crate::daemon::Verdict::Unknown(cause) = &reply.verdict {
        body.set("stop_cause", cause.as_str().into());
    }
    ok_response(id, body)
}
