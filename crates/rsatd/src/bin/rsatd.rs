//! The `rsatd` daemon binary.
//!
//! ```text
//! rsatd --socket /run/rsatd.sock --workers 4 --mem-limit-mb 2048
//! rsatd --stdio            # serve one connection over stdin/stdout
//! ```
//!
//! On SIGTERM (or when the single stdio connection ends) the daemon
//! drains gracefully: no new work is admitted, in-flight solves finish
//! or deadline out, every admitted request gets its answer, and
//! telemetry is flushed before exit.

use std::io::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use rsatd::{serve_connection, serve_unix, Daemon, DaemonConfig};

/// SIGTERM/SIGINT flag flipped by the signal handler; polled by the
/// accept loop.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod sig {
    use super::SHUTDOWN;
    use std::sync::atomic::Ordering;

    // The workspace is offline (no libc crate); bind the two libc
    // symbols the handler needs directly — std already links libc.
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" fn on_signal(_signum: i32) {
        // Only an atomic store: async-signal-safe.
        SHUTDOWN.store(true, Ordering::Release);
    }

    /// Installs the drain-on-SIGTERM/SIGINT handlers.
    pub fn install() {
        let handler = on_signal as extern "C" fn(i32) as *const () as usize;
        unsafe {
            signal(SIGTERM, handler);
            signal(SIGINT, handler);
        }
    }
}

#[cfg(not(unix))]
mod sig {
    pub fn install() {}
}

enum Transport {
    Unix(PathBuf),
    Stdio,
}

struct Args {
    transport: Transport,
    config: DaemonConfig,
    fault_plan: Option<String>,
    trace_out: Option<PathBuf>,
}

fn usage() -> &'static str {
    "usage: rsatd (--socket PATH | --stdio) [options]\n\
     \n\
     options:\n\
       --workers N          worker threads (default 2)\n\
       --queue N            admission queue depth (default 16)\n\
       --max-sessions N     live session cap (default 64)\n\
       --mem-limit-mb N     aggregate solver memory cap (default 1024)\n\
       --idle-timeout-s N   idle session eviction timeout (default 300)\n\
       --deadline-ms N      default per-solve deadline (default 10000)\n\
       --max-deadline-ms N  hard per-solve deadline ceiling (default 300000)\n\
       --retry-after-ms N   busy-rejection retry hint (default 100)\n\
       --records FILE       append one RunRecord JSONL line per solve\n\
       --records-out FILE   append one RequestRecord JSONL line per admitted request\n\
       --trace-out FILE     write a Chrome trace of worker span lanes on exit\n\
     \x20                    (requires the `trace` feature)\n\
       --fault-plan PLAN    install a fault plan (requires the `faults` feature)\n"
}

fn parse_args() -> Result<Args, String> {
    let mut args = std::env::args().skip(1);
    let mut transport = None;
    let mut config = DaemonConfig::default();
    let mut fault_plan = None;
    let mut trace_out = None;

    let parse_num = |flag: &str, value: Option<String>| -> Result<u64, String> {
        value
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| format!("{flag} expects a non-negative integer"))
    };

    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--socket" => {
                let path = args.next().ok_or("--socket expects a path")?;
                transport = Some(Transport::Unix(PathBuf::from(path)));
            }
            "--stdio" => transport = Some(Transport::Stdio),
            "--workers" => config.workers = parse_num("--workers", args.next())?.max(1) as usize,
            "--queue" => config.queue_depth = parse_num("--queue", args.next())? as usize,
            "--max-sessions" => {
                config.max_sessions = parse_num("--max-sessions", args.next())? as usize
            }
            "--mem-limit-mb" => {
                config.max_memory_bytes = parse_num("--mem-limit-mb", args.next())? << 20
            }
            "--idle-timeout-s" => {
                config.idle_timeout =
                    Duration::from_secs(parse_num("--idle-timeout-s", args.next())?)
            }
            "--deadline-ms" => {
                config.default_deadline =
                    Duration::from_millis(parse_num("--deadline-ms", args.next())?)
            }
            "--max-deadline-ms" => {
                config.max_deadline =
                    Duration::from_millis(parse_num("--max-deadline-ms", args.next())?)
            }
            "--retry-after-ms" => {
                config.retry_after_ms = parse_num("--retry-after-ms", args.next())?
            }
            "--records" => {
                config.records_path = Some(PathBuf::from(
                    args.next().ok_or("--records expects a path")?,
                ))
            }
            "--records-out" => {
                config.request_records_path = Some(PathBuf::from(
                    args.next().ok_or("--records-out expects a path")?,
                ))
            }
            "--trace-out" => {
                let path = args.next().ok_or("--trace-out expects a path")?;
                if !telemetry::trace::enabled() {
                    return Err(
                        "--trace-out needs the `trace` feature; rebuild with --features trace"
                            .into(),
                    );
                }
                trace_out = Some(PathBuf::from(path));
            }
            "--fault-plan" => fault_plan = Some(args.next().ok_or("--fault-plan expects a plan")?),
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    let transport = transport.ok_or("one of --socket or --stdio is required")?;
    Ok(Args {
        transport,
        config,
        fault_plan,
        trace_out,
    })
}

/// Exports the drained worker span lanes as a Perfetto-loadable Chrome
/// trace. Best-effort: a write failure is reported, never fatal.
fn write_trace(path: &PathBuf) {
    let doc = telemetry::trace::chrome_trace(&telemetry::trace::drain());
    if let Err(e) = std::fs::write(path, doc.to_string()) {
        let _ = writeln!(
            std::io::stderr(),
            "rsatd: could not write trace to {}: {e}",
            path.display()
        );
    }
}

#[cfg(feature = "faults")]
fn install_fault_plan(plan: &str) -> Result<(), String> {
    let plan: faults::FaultPlan = plan.parse().map_err(|e| format!("{e}"))?;
    faults::install_global(plan);
    Ok(())
}

#[cfg(not(feature = "faults"))]
fn install_fault_plan(_plan: &str) -> Result<(), String> {
    Err("this build has no `faults` feature; rebuild with --features faults".into())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            let mut err = std::io::stderr();
            if !message.is_empty() {
                let _ = writeln!(err, "rsatd: {message}");
            }
            let _ = write!(err, "{}", usage());
            return ExitCode::FAILURE;
        }
    };
    if let Some(plan) = &args.fault_plan {
        if let Err(message) = install_fault_plan(plan) {
            let _ = writeln!(std::io::stderr(), "rsatd: {message}");
            return ExitCode::FAILURE;
        }
    }

    sig::install();
    if args.trace_out.is_some() {
        // Armed before the workers take their first job so every
        // queue-wait/solve/reply span lands in a worker lane.
        telemetry::trace::arm(0);
    }
    let daemon = Daemon::start(args.config);

    match args.transport {
        Transport::Unix(path) => {
            let stop = Arc::new(AtomicBool::new(false));
            let poll_stop = Arc::clone(&stop);
            // Bridge the signal flag into the accept loop's stop flag.
            let bridge = std::thread::spawn(move || {
                while !poll_stop.load(Ordering::Acquire) {
                    if SHUTDOWN.load(Ordering::Acquire) {
                        poll_stop.store(true, Ordering::Release);
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(25));
                }
            });
            let served = serve_unix(&daemon, &path, Arc::clone(&stop));
            stop.store(true, Ordering::Release);
            let _ = bridge.join();
            daemon.shutdown();
            if let Some(out) = &args.trace_out {
                write_trace(out);
            }
            if let Err(e) = served {
                let _ = writeln!(std::io::stderr(), "rsatd: socket error: {e}");
                return ExitCode::FAILURE;
            }
        }
        Transport::Stdio => {
            let stdin = std::io::stdin();
            let stdout = std::io::stdout();
            serve_connection(&daemon, stdin.lock(), stdout);
            daemon.shutdown();
            if let Some(out) = &args.trace_out {
                write_trace(out);
            }
        }
    }
    ExitCode::SUCCESS
}
