//! `rsatd`: a fault-isolated SAT solver service.
//!
//! The daemon wraps the workspace's incremental CDCL solver
//! ([`sat_solver::Solver`]) in a long-running service with *sessions*:
//! a client opens a session, streams clauses into it, and issues
//! repeated `solve` calls under assumptions — learned clauses, variable
//! activities, and inprocessing simplifications persist between calls,
//! so a session amortizes solving cost the way an embedded IPASIR
//! solver would, but across a process boundary.
//!
//! The crate's reason to exist is the robustness layer around that:
//!
//! * **Admission control** — a bounded worker pool and a bounded queue;
//!   when the queue is full or the live-memory cap is exceeded, new work
//!   is rejected *immediately* with a typed `busy` error carrying a
//!   retry hint, instead of piling up latency for everyone.
//! * **Deadlines** — every solve carries a wall-clock deadline; an
//!   over-deadline solve degrades to an `unknown` verdict and the
//!   session stays usable.
//! * **Crash isolation** — each solve runs under
//!   [`sat_solver::run_isolated`]; a panicking solver quarantines *its*
//!   session (subsequent calls get a typed `crashed` error) while the
//!   daemon and every other session keep working.
//! * **Eviction** — idle sessions are evicted after a configurable
//!   timeout, and memory pressure evicts least-recently-used idle
//!   sessions before rejecting new work.
//! * **Graceful drain** — shutdown stops admissions, lets in-flight
//!   solves finish (or deadline out), answers every queued request, and
//!   flushes telemetry before returning.
//! * **Per-request observability** — every admitted request gets a
//!   daemon-minted `request_id` echoed on its wire reply and stamped on
//!   exactly one terminal [`telemetry::RequestRecord`] JSONL line
//!   (queue wait, solve wall, verdict, worker, solver stat deltas);
//!   the `introspect` request exposes live metrics, per-session stats,
//!   in-flight request ages, and a worst-N slow-request ring.
//!
//! Module map: [`daemon`] is the in-process service (typed API, worker
//! pool, session store); [`proto`] is the newline-delimited JSON wire
//! protocol; [`server`] speaks the protocol over any byte stream (unix
//! socket or stdio); [`client`] is a small synchronous client for the
//! same protocol.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod client;
pub mod daemon;
pub mod proto;
pub mod server;

pub use client::{Client, ClientError, WireReply};
pub use daemon::{
    Daemon, DaemonConfig, DaemonError, DaemonStats, DaemonStatus, SessionHandle, SolveCallback,
    SolveReply, Verdict,
};
pub use proto::{parse_request, Envelope, Request, WireError, MAX_REQUEST_BYTES};
pub use server::{serve_connection, serve_unix};
