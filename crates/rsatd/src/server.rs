//! Serving the wire protocol over byte streams.
//!
//! [`serve_connection`] speaks the protocol of [`crate::proto`] over
//! any `Read`/`Write` pair — a unix-socket connection, a stdio pipe, or
//! a socketpair in tests. [`serve_unix`] accepts connections on a unix
//! socket, one thread per connection, until asked to stop.
//!
//! A connection is expendable; the daemon is not. Write failures (a
//! client that vanished, or an injected `socket-truncate` fault) kill
//! only the connection: in-flight solve callbacks find the writer slot
//! emptied and drop their responses, the read loop ends, and the daemon
//! keeps serving everyone else.

use std::io::{BufRead, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

use telemetry::json::Json;

use crate::daemon::{Daemon, DaemonError};
use crate::proto::{
    self, daemon_err_response, err_response, ok_response, parse_request, Request, MAX_REQUEST_BYTES,
};

/// The connection's output side, shared between the read loop and
/// asynchronous solve callbacks. `None` once a write failed.
type WriterSlot = Arc<Mutex<Option<Box<dyn Write + Send>>>>;

fn write_line(slot: &WriterSlot, line: &str) {
    let mut guard = slot.lock().unwrap_or_else(PoisonError::into_inner);
    let Some(writer) = guard.as_mut() else {
        return;
    };
    let failed = writer
        // xtask: allow(lock-panic) the slot exists to serialize connection writes; errors clear it, poisoning recovered
        .write_all(line.as_bytes())
        // xtask: allow(lock-panic) the slot exists to serialize connection writes; errors clear it, poisoning recovered
        .and_then(|()| writer.write_all(b"\n"))
        // xtask: allow(lock-panic) the slot exists to serialize connection writes; errors clear it, poisoning recovered
        .and_then(|()| writer.flush())
        .is_err();
    if failed {
        // Dead connection: drop the writer so later responses become
        // no-ops instead of repeated failures.
        *guard = None;
    }
}

fn connection_alive(slot: &WriterSlot) -> bool {
    slot.lock()
        .unwrap_or_else(PoisonError::into_inner)
        .is_some()
}

/// Outcome of one capped line read.
enum LineRead {
    /// A complete line (without the newline).
    Line(String),
    /// The line exceeded [`MAX_REQUEST_BYTES`] and was drained.
    Oversized,
    /// End of stream or read error.
    Eof,
}

/// Reads one newline-terminated line without ever buffering more than
/// the cap: an oversized line is discarded as it streams past, so a
/// hostile client cannot balloon daemon memory.
fn read_line_capped(reader: &mut impl BufRead) -> LineRead {
    let mut buf: Vec<u8> = Vec::new();
    let mut discarding = false;
    loop {
        let chunk = match reader.fill_buf() {
            Ok([]) => {
                return if discarding {
                    LineRead::Oversized
                } else if buf.is_empty() {
                    LineRead::Eof
                } else {
                    LineRead::Line(String::from_utf8_lossy(&buf).into_owned())
                };
            }
            Ok(chunk) => chunk,
            Err(_) => return LineRead::Eof,
        };
        let newline = chunk.iter().position(|&b| b == b'\n');
        let take = newline.map_or(chunk.len(), |i| i);
        if !discarding {
            if buf.len() + take > MAX_REQUEST_BYTES {
                discarding = true;
                buf.clear();
            } else {
                buf.extend_from_slice(&chunk[..take]);
            }
        }
        match newline {
            Some(i) => {
                reader.consume(i + 1);
                return if discarding {
                    LineRead::Oversized
                } else {
                    LineRead::Line(String::from_utf8_lossy(&buf).into_owned())
                };
            }
            None => {
                let len = chunk.len();
                reader.consume(len);
            }
        }
    }
}

/// Serves one connection until EOF, connection death, or a `shutdown`
/// request. Returns after the daemon has answered (or abandoned)
/// everything it admitted from this connection.
pub fn serve_connection(
    daemon: &Daemon,
    mut reader: impl BufRead,
    writer: impl Write + Send + 'static,
) {
    let writer: Box<dyn Write + Send> = wrap_writer(Box::new(writer));
    let slot: WriterSlot = Arc::new(Mutex::new(Some(writer)));
    // Tracks solves admitted on behalf of this connection so shutdown /
    // EOF can wait for their callbacks before returning.
    let in_flight = Arc::new(AtomicU64::new(0));

    loop {
        if !connection_alive(&slot) {
            break;
        }
        let line = match read_line_capped(&mut reader) {
            LineRead::Eof => break,
            LineRead::Oversized => {
                write_line(
                    &slot,
                    &err_response(
                        &Json::Null,
                        "oversized",
                        &format!("request exceeds the {MAX_REQUEST_BYTES} byte cap"),
                        None,
                        None,
                    ),
                );
                continue;
            }
            LineRead::Line(line) => line,
        };
        if line.trim().is_empty() {
            continue;
        }
        let envelope = parse_request(&line);
        let id = envelope.id;
        let request = match envelope.req {
            Ok(request) => request,
            Err(wire) => {
                write_line(
                    &slot,
                    &err_response(&id, wire.kind, &wire.message, None, None),
                );
                continue;
            }
        };
        match request {
            Request::Solve {
                session,
                assumptions,
                deadline_ms,
            } => {
                let deadline = deadline_ms.map(Duration::from_millis);
                let cb_slot = Arc::clone(&slot);
                let cb_in_flight = Arc::clone(&in_flight);
                let cb_id = id.clone();
                in_flight.fetch_add(1, Ordering::AcqRel);
                let submitted = daemon.submit_solve(
                    session,
                    assumptions,
                    deadline,
                    Box::new(move |request_id, outcome| {
                        let response = match outcome {
                            Ok(reply) => proto::solve_response(&cb_id, &reply),
                            Err(err) => daemon_err_response(&cb_id, &err, Some(request_id)),
                        };
                        write_line(&cb_slot, &response);
                        cb_in_flight.fetch_sub(1, Ordering::AcqRel);
                    }),
                );
                if let Err(err) = submitted {
                    // Rejected at admission: the callback never runs and
                    // no request id was minted — the reply says so with
                    // an explicit `request_id: null`.
                    in_flight.fetch_sub(1, Ordering::AcqRel);
                    write_line(&slot, &daemon_err_response(&id, &err, None));
                }
            }
            Request::Shutdown => {
                daemon.shutdown();
                write_line(&slot, &ok_response(&id, Json::object()));
                break;
            }
            other => {
                let response = dispatch_sync(daemon, &id, other);
                write_line(&slot, &response);
            }
        }
    }

    // Don't tear the writer down under callbacks that were already
    // admitted: wait for them (they are deadline-bounded).
    while in_flight.load(Ordering::Acquire) > 0 {
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Handles every request kind that answers inline.
fn dispatch_sync(daemon: &Daemon, id: &Json, request: Request) -> String {
    let outcome: Result<Json, DaemonError> = match request {
        Request::Open {
            vars,
            inprocess,
            clauses,
            freeze,
        } => daemon.open(vars, inprocess).and_then(|sid| {
            // Seeding failures close the half-open session before
            // reporting, so the client never learns a broken id.
            let seed = daemon
                .add_clauses(sid, &clauses)
                .and_then(|()| daemon.freeze(sid, &freeze));
            match seed {
                Ok(()) => Ok(Json::object().with("session", sid.into())),
                Err(err) => {
                    let _ = daemon.close(sid);
                    Err(err)
                }
            }
        }),
        Request::AddClauses { session, clauses } => daemon
            .add_clauses(session, &clauses)
            .map(|()| Json::object()),
        Request::Freeze { session, lits } => daemon.freeze(session, &lits).map(|()| Json::object()),
        Request::Model { session } => daemon.model(session).map(|model| {
            Json::object().with(
                "model",
                model.into_iter().map(Json::from).collect::<Vec<_>>().into(),
            )
        }),
        Request::Core { session } => daemon.core(session).map(|core| {
            Json::object().with(
                "core",
                core.into_iter().map(Json::from).collect::<Vec<_>>().into(),
            )
        }),
        Request::Close { session } => daemon.close(session).map(|()| Json::object()),
        Request::Status => {
            let status = daemon.status();
            let stats = daemon.stats();
            Ok(Json::object()
                .with("sessions", status.sessions.into())
                .with("queued", status.queued.into())
                .with("running", status.running.into())
                .with("draining", status.draining.into())
                .with("memory_bytes", status.memory_bytes.into())
                .with("admitted", stats.admitted.into())
                .with("rejected", stats.rejected.into())
                .with("evicted", stats.evicted.into())
                .with("crashed", stats.crashed.into())
                .with("deadline_exceeded", stats.deadline_exceeded.into())
                .with("completed", stats.completed.into()))
        }
        Request::Introspect => Ok(daemon.introspect()),
        Request::Solve { .. } | Request::Shutdown => {
            unreachable!("handled asynchronously by the read loop")
        }
    };
    match outcome {
        Ok(body) => ok_response(id, body),
        // Synchronous requests are never admitted solves, so their
        // errors carry `request_id: null`.
        Err(err) => daemon_err_response(id, &err, None),
    }
}

/// Accepts connections on a unix socket until `stop` is set or the
/// daemon drains; one thread per connection. The socket file is created
/// fresh (an existing file is removed) and unlinked on exit.
#[cfg(unix)]
pub fn serve_unix(
    daemon: &Daemon,
    path: &std::path::Path,
    stop: Arc<AtomicBool>,
) -> std::io::Result<()> {
    use std::os::unix::net::UnixListener;

    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path)?;
    listener.set_nonblocking(true)?;
    let mut connections: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !stop.load(Ordering::Acquire) && !daemon.draining() {
        match listener.accept() {
            Ok((stream, _addr)) => {
                let daemon = daemon.clone();
                let reader = stream.try_clone()?;
                connections.push(std::thread::spawn(move || {
                    serve_connection(&daemon, std::io::BufReader::new(reader), stream);
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(_) => break,
        }
        connections.retain(|handle| !handle.is_finished());
    }
    // Join connections that already finished; ones still blocked in
    // `read` are left behind — the daemon's own shutdown waits for
    // every admitted solve, so no answer is lost by not joining them.
    for handle in connections {
        if handle.is_finished() {
            let _ = handle.join();
        }
    }
    let _ = std::fs::remove_file(path);
    Ok(())
}

/// Non-unix stub so the crate builds everywhere; only the unix build
/// serves sockets.
#[cfg(not(unix))]
pub fn serve_unix(
    _daemon: &Daemon,
    _path: &std::path::Path,
    _stop: Arc<AtomicBool>,
) -> std::io::Result<()> {
    Err(std::io::Error::other("unix sockets are unavailable here"))
}

/// `socket-truncate(after=N)`: wraps a fresh connection's writer in a
/// [`faults::TruncatingWriter`] that dies after `N` bytes — a severed
/// socket in a box, proving connection death never harms the daemon.
#[cfg(feature = "faults")]
fn wrap_writer(writer: Box<dyn Write + Send>) -> Box<dyn Write + Send> {
    if let Some(cfg) = faults::fire(faults::site::SOCKET_TRUNCATE, &[]) {
        return Box::new(faults::TruncatingWriter::new(
            writer,
            cfg.get_u64("after", 0),
        ));
    }
    writer
}

#[cfg(not(feature = "faults"))]
fn wrap_writer(writer: Box<dyn Write + Send>) -> Box<dyn Write + Send> {
    writer
}
