//! Per-request observability: daemon-minted request ids on the wire,
//! terminal `RequestRecord` JSONL emission, and the `introspect` RPC.
//!
//! The binary round-trip test doubles as the CI smoke: it spawns the
//! real `rsatd` binary over stdio with `--records-out`, drives a mixed
//! batch of solves (including a forced pre-admission rejection), and
//! proves every reply's `request_id` appears in exactly one record.

use std::io::BufReader;
use std::process::{Command, Stdio};
use std::time::Duration;

use rsatd::{Client, ClientError, Daemon, DaemonConfig, Verdict};
use telemetry::json::Json;

/// 3 variables, satisfiable, forced `x2 = true`; UNSAT under `-2`.
const SAT_CLAUSES: &[&[i64]] = &[&[1, 2], &[-1, 2], &[2, 3]];

fn sat_clauses() -> Vec<Vec<i64>> {
    SAT_CLAUSES.iter().map(|c| c.to_vec()).collect()
}

fn temp_path(tag: &str) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "rsatd-observability-{}-{tag}-{n}.jsonl",
        std::process::id()
    ))
}

fn keys(value: &Json) -> Vec<&str> {
    value
        .as_object()
        .expect("a JSON object")
        .iter()
        .map(|(k, _)| k.as_str())
        .collect()
}

#[test]
fn binary_round_trips_request_ids_from_replies_to_records() {
    let records_path = temp_path("e2e");
    let mut child = Command::new(env!("CARGO_BIN_EXE_rsatd"))
        .arg("--stdio")
        .arg("--records-out")
        .arg(&records_path)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn rsatd");
    let stdin = child.stdin.take().unwrap();
    let stdout = BufReader::new(child.stdout.take().unwrap());
    let mut client = Client::new(stdout, stdin);

    // 20 mixed solves across three sessions: every fourth flips to
    // UNSAT under the assumption `-2`.
    let sids: Vec<u64> = (0..3)
        .map(|_| client.open(3, false, &sat_clauses(), &[2]).expect("open"))
        .collect();
    let mut reply_ids = Vec::new();
    for i in 0..20usize {
        let sid = sids[i % sids.len()];
        let assumptions: &[i64] = if i % 4 == 3 { &[-2] } else { &[] };
        let reply = client.solve(sid, assumptions, None).expect("solve");
        let expected = if i % 4 == 3 { "unsat" } else { "sat" };
        assert_eq!(reply.verdict, expected, "solve {i}");
        assert!(reply.request_id > 0, "replies carry the daemon-minted id");
        reply_ids.push(reply.request_id);
    }

    // A forced rejection: an unknown session fails before admission,
    // with an explicit null request id on the error reply.
    let err = client
        .solve(9999, &[], None)
        .expect_err("unknown session is rejected");
    match err {
        ClientError::Daemon {
            ref kind,
            request_id,
            ..
        } => {
            assert_eq!(kind, "no-such-session");
            assert_eq!(
                request_id, None,
                "pre-admission errors carry request_id: null"
            );
        }
        other => panic!("expected a daemon error, got {other}"),
    }

    // introspect over the wire: per-session cumulative stats are live.
    let snap = client.introspect().expect("introspect");
    let session_list = snap
        .get("session_list")
        .and_then(Json::as_array)
        .expect("session_list array");
    assert_eq!(session_list.len(), sids.len());
    let total_solves: u64 = session_list
        .iter()
        .map(|s| s.get("solves").and_then(Json::as_u64).unwrap_or(0))
        .sum();
    assert_eq!(total_solves, 20, "introspect sums the completed solves");
    assert!(
        !snap
            .get("slow")
            .and_then(Json::as_array)
            .expect("slow ring")
            .is_empty(),
        "the slow-request ring has entries after 20 solves"
    );

    client.shutdown().expect("shutdown");
    drop(client);
    let status = child.wait().expect("child exits");
    assert!(status.success(), "rsatd exits cleanly: {status:?}");

    // Exactly one terminal record per admitted request, ids verbatim.
    let raw = std::fs::read_to_string(&records_path).expect("records written");
    assert!(raw.ends_with('\n'), "records end on a line boundary");
    let mut recorded: Vec<u64> = raw
        .lines()
        .map(|line| {
            let parsed = Json::parse(line).unwrap_or_else(|e| panic!("torn line {line:?}: {e}"));
            assert_eq!(
                parsed.get("event").and_then(Json::as_str),
                Some("request_end")
            );
            let record = parsed.get("record").expect("record body");
            assert!(
                matches!(
                    record.get("verdict").and_then(Json::as_str),
                    Some("sat" | "unsat")
                ),
                "unexpected verdict in {line}"
            );
            record
                .get("request_id")
                .and_then(Json::as_u64)
                .expect("record id")
        })
        .collect();
    recorded.sort_unstable();
    let mut expected = reply_ids;
    expected.sort_unstable();
    assert_eq!(
        recorded, expected,
        "every reply id appears in exactly one record; the rejection in none"
    );
    let _ = std::fs::remove_file(&records_path);
}

/// With the `trace` feature, `--trace-out` exports a Chrome trace whose
/// worker lanes carry the queue-wait/solve/reply spans `bench`'s
/// `trace-report --daemon` consumes.
#[cfg(feature = "trace")]
#[test]
fn trace_out_writes_worker_span_lanes() {
    let trace_path = temp_path("trace");
    let mut child = Command::new(env!("CARGO_BIN_EXE_rsatd"))
        .arg("--stdio")
        .arg("--trace-out")
        .arg(&trace_path)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn rsatd");
    let stdin = child.stdin.take().unwrap();
    let stdout = BufReader::new(child.stdout.take().unwrap());
    let mut client = Client::new(stdout, stdin);

    let sid = client.open(3, false, &sat_clauses(), &[2]).expect("open");
    for _ in 0..4 {
        client.solve(sid, &[], None).expect("solve");
    }
    client.shutdown().expect("shutdown");
    drop(client);
    assert!(child.wait().expect("child exits").success());

    let raw = std::fs::read_to_string(&trace_path).expect("trace written");
    let doc = Json::parse(&raw).expect("trace is valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_array)
        .expect("Chrome trace shape");
    let names: Vec<&str> = events
        .iter()
        .filter_map(|ev| ev.get("name").and_then(Json::as_str))
        .collect();
    for expected in ["queue-wait", "solve", "reply", "daemon-admit"] {
        assert!(names.contains(&expected), "missing {expected} events");
    }
    assert!(
        raw.contains("daemon-worker-0"),
        "worker lanes are labelled for Perfetto"
    );
    let _ = std::fs::remove_file(&trace_path);
}

#[test]
fn introspect_wire_shape_is_pinned() {
    let daemon = Daemon::start(DaemonConfig {
        workers: 2,
        default_deadline: Duration::from_secs(5),
        ..DaemonConfig::default()
    });
    let sid = daemon.open(3, false).unwrap();
    daemon.add_clauses(sid, &sat_clauses()).unwrap();
    let first = daemon.solve(sid, &[], None).unwrap();
    assert_eq!(first.verdict, Verdict::Sat);
    let second = daemon.solve(sid, &[-2], None).unwrap();
    assert_eq!(second.verdict, Verdict::Unsat);

    let snap = daemon.introspect();
    // The golden key sets: removing or renaming any of these breaks
    // dashboards reading the introspect reply — extend, don't mutate.
    assert_eq!(
        keys(&snap),
        [
            "sessions",
            "queued",
            "running",
            "draining",
            "memory_bytes",
            "admitted",
            "rejected",
            "evicted",
            "crashed",
            "deadline_exceeded",
            "completed",
            "session_list",
            "in_flight",
            "slow",
            "metrics",
        ]
    );
    let session_list = snap.get("session_list").and_then(Json::as_array).unwrap();
    assert_eq!(session_list.len(), 1);
    assert_eq!(
        keys(&session_list[0]),
        [
            "id",
            "state",
            "vars",
            "memory_bytes",
            "age_ms",
            "solves",
            "conflicts",
            "propagations",
            "last_verdict",
        ]
    );
    assert_eq!(
        session_list[0].get("state").and_then(Json::as_str),
        Some("idle")
    );
    assert_eq!(
        session_list[0].get("solves").and_then(Json::as_u64),
        Some(2)
    );
    assert_eq!(
        session_list[0].get("last_verdict").and_then(Json::as_str),
        Some("unsat")
    );

    // Both solves are done: nothing in flight, both in the slow ring,
    // worst (longest wall) first.
    assert_eq!(
        snap.get("in_flight")
            .and_then(Json::as_array)
            .unwrap()
            .len(),
        0
    );
    let slow = snap.get("slow").and_then(Json::as_array).unwrap();
    assert_eq!(slow.len(), 2);
    assert_eq!(
        keys(&slow[0]),
        [
            "request_id",
            "session",
            "queue_wait_ms",
            "solve_ms",
            "verdict"
        ]
    );
    let wall = |s: &Json| {
        s.get("queue_wait_ms").and_then(Json::as_f64).unwrap()
            + s.get("solve_ms").and_then(Json::as_f64).unwrap()
    };
    assert!(wall(&slow[0]) >= wall(&slow[1]), "ring is worst-first");

    // The metrics key is always present (null when the feature is off).
    assert!(snap.get("metrics").is_some());
    daemon.shutdown();
}

#[test]
fn typed_api_reports_request_ids_and_records_errors() {
    // The typed SessionHandle path and error replies: a solve on a
    // crashed-or-missing session via submit_solve is rejected without
    // minting an id, while admitted solves get monotonically increasing
    // ids.
    let records_path = temp_path("typed");
    let daemon = Daemon::start(DaemonConfig {
        workers: 1,
        request_records_path: Some(records_path.clone()),
        ..DaemonConfig::default()
    });
    let sid = daemon.open(3, false).unwrap();
    daemon.add_clauses(sid, &sat_clauses()).unwrap();

    let (tx, rx) = std::sync::mpsc::channel();
    let mut submitted = Vec::new();
    for _ in 0..3 {
        let tx = tx.clone();
        let rid = daemon
            .submit_solve(
                sid,
                vec![],
                None,
                Box::new(move |rid, outcome| {
                    let _ = tx.send((rid, outcome));
                }),
            )
            .expect("admitted");
        submitted.push(rid);
        // One at a time: the session admits a single in-flight solve.
        let (cb_rid, outcome) = rx.recv_timeout(Duration::from_secs(10)).unwrap();
        assert_eq!(cb_rid, rid, "callback sees the id submit returned");
        assert_eq!(outcome.unwrap().request_id, rid, "reply carries the id");
    }
    assert!(
        submitted.windows(2).all(|w| w[0] < w[1]),
        "ids are monotonically increasing: {submitted:?}"
    );

    // Pre-admission rejection mints nothing.
    let err = daemon
        .submit_solve(424242, vec![], None, Box::new(|_, _| {}))
        .expect_err("unknown session");
    assert_eq!(err.kind(), "no-such-session");

    daemon.shutdown();
    let raw = std::fs::read_to_string(&records_path).unwrap();
    assert_eq!(raw.lines().count(), submitted.len());
    let _ = std::fs::remove_file(&records_path);
}
