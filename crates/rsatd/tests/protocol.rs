//! Protocol edge-case wall (the wire half of the robustness story):
//! malformed, hostile, or merely confused input must produce typed
//! error responses — never a panic, never a hang, never a dead daemon.

#![cfg(unix)]

use std::io::BufReader;
use std::os::unix::net::UnixStream;
use std::thread::JoinHandle;
use std::time::Duration;

use rsatd::{
    parse_request, serve_connection, Client, ClientError, Daemon, DaemonConfig, Request,
    MAX_REQUEST_BYTES,
};
use telemetry::json::Json;

fn test_daemon() -> Daemon {
    Daemon::start(DaemonConfig {
        workers: 2,
        default_deadline: Duration::from_secs(5),
        ..DaemonConfig::default()
    })
}

type TestClient = Client<BufReader<UnixStream>, UnixStream>;

/// One served connection over a socketpair.
fn connect(daemon: &Daemon) -> (TestClient, JoinHandle<()>) {
    let (server_side, client_side) = UnixStream::pair().expect("socketpair");
    let daemon = daemon.clone();
    let handle = std::thread::spawn(move || {
        let reader = BufReader::new(server_side.try_clone().expect("clone server socket"));
        serve_connection(&daemon, reader, server_side);
    });
    let reader = BufReader::new(client_side.try_clone().expect("clone client socket"));
    (Client::new(reader, client_side), handle)
}

fn error_kind(err: &ClientError) -> String {
    match err {
        ClientError::Daemon { kind, .. } => kind.clone(),
        other => panic!("expected a daemon error, got {other}"),
    }
}

// ---- parser-level cases (no daemon involved) ---------------------------

#[test]
fn parse_rejects_malformed_json_with_null_id() {
    for line in ["{", "not json at all", "\"just a string\"", "[1,2,3]", "{}"] {
        let envelope = parse_request(line);
        let err = envelope.req.expect_err(line);
        assert!(
            err.kind == "malformed" || err.kind == "bad-request",
            "`{line}` must be malformed/bad-request, got {}",
            err.kind
        );
    }
    assert_eq!(parse_request("{").id, Json::Null);
}

#[test]
fn parse_rejects_deeply_nested_json_without_overflowing() {
    // Far past the parser's depth bound; a recursive-descent parser
    // without the bound would blow the stack here.
    let mut hostile = String::from("{\"id\":1,\"op\":\"status\",\"x\":");
    hostile.push_str(&"[".repeat(100_000));
    hostile.push_str(&"]".repeat(100_000));
    hostile.push('}');
    let envelope = parse_request(&hostile);
    assert_eq!(envelope.req.unwrap_err().kind, "malformed");
}

#[test]
fn parse_rejects_unknown_op_but_echoes_id() {
    let envelope = parse_request("{\"id\":42,\"op\":\"explode\"}");
    assert_eq!(envelope.id, Json::U64(42));
    assert_eq!(envelope.req.unwrap_err().kind, "unknown-op");
}

#[test]
fn parse_rejects_bad_fields() {
    let cases = [
        ("{\"id\":1,\"op\":\"solve\"}", "missing session"),
        (
            "{\"id\":1,\"op\":\"solve\",\"session\":\"one\"}",
            "string session",
        ),
        (
            "{\"id\":1,\"op\":\"solve\",\"session\":1,\"assumptions\":[0]}",
            "literal zero",
        ),
        (
            "{\"id\":1,\"op\":\"solve\",\"session\":1,\"assumptions\":[1.5]}",
            "fractional literal",
        ),
        (
            "{\"id\":1,\"op\":\"solve\",\"session\":1,\"deadline_ms\":-5}",
            "negative deadline",
        ),
        ("{\"id\":1,\"op\":\"open\"}", "missing vars"),
        (
            "{\"id\":1,\"op\":\"open\",\"vars\":3,\"clauses\":[1]}",
            "clause not an array",
        ),
    ];
    for (line, what) in cases {
        let envelope = parse_request(line);
        assert_eq!(
            envelope.req.expect_err(what).kind,
            "bad-request",
            "case: {what}"
        );
    }
}

#[test]
fn parse_accepts_the_full_surface() {
    let envelope = parse_request(
        "{\"id\":7,\"op\":\"open\",\"vars\":4,\"inprocess\":true,\
         \"clauses\":[[1,-2],[3]],\"freeze\":[4]}",
    );
    assert_eq!(
        envelope.req.unwrap(),
        Request::Open {
            vars: 4,
            inprocess: true,
            clauses: vec![vec![1, -2], vec![3]],
            freeze: vec![4],
        }
    );
}

// ---- served-connection cases -------------------------------------------

#[test]
fn wire_round_trip_open_solve_model_core_close() {
    let daemon = test_daemon();
    let (mut client, server) = connect(&daemon);

    let sid = client
        .open(3, false, &[vec![1, 2], vec![-1, 2], vec![2, 3]], &[])
        .unwrap();
    let reply = client.solve(sid, &[], None).unwrap();
    assert_eq!(reply.verdict, "sat");
    let model = client.model(sid).unwrap();
    assert!(model.contains(&2), "x2 is forced: {model:?}");

    let reply = client.solve(sid, &[-2], None).unwrap();
    assert_eq!(reply.verdict, "unsat");
    assert!(!client.core(sid).unwrap().is_empty());

    client.close(sid).unwrap();
    drop(client);
    server.join().unwrap();
    daemon.shutdown();
}

#[test]
fn malformed_line_answers_and_connection_survives() {
    let daemon = test_daemon();
    let (mut client, server) = connect(&daemon);

    let response = client.raw("this is { not json").unwrap();
    assert_eq!(response.get("id"), Some(&Json::Null));
    assert_eq!(
        response
            .get("error")
            .and_then(|e| e.get("kind"))
            .and_then(Json::as_str),
        Some("malformed")
    );

    // Same connection keeps working afterwards.
    let sid = client.open(2, false, &[vec![1]], &[]).unwrap();
    assert_eq!(client.solve(sid, &[], None).unwrap().verdict, "sat");
    drop(client);
    server.join().unwrap();
    daemon.shutdown();
}

#[test]
fn oversized_line_is_rejected_without_killing_the_connection() {
    let daemon = test_daemon();
    let (mut client, server) = connect(&daemon);

    // ~1 MiB past the cap, mostly one giant string field.
    let mut line = String::with_capacity(MAX_REQUEST_BYTES + (1 << 20));
    line.push_str("{\"id\":9,\"op\":\"status\",\"pad\":\"");
    line.push_str(&"x".repeat(MAX_REQUEST_BYTES + (1 << 20)));
    line.push_str("\"}");
    let response = client.raw(&line).unwrap();
    assert_eq!(
        response
            .get("error")
            .and_then(|e| e.get("kind"))
            .and_then(Json::as_str),
        Some("oversized")
    );

    // The oversized line was drained, not buffered: the next request on
    // the same connection parses cleanly.
    assert!(client.status().unwrap().get("sessions").is_some());
    drop(client);
    server.join().unwrap();
    daemon.shutdown();
}

#[test]
fn commands_on_closed_and_unknown_sessions_are_typed() {
    let daemon = test_daemon();
    let (mut client, server) = connect(&daemon);

    assert_eq!(
        error_kind(&client.solve(404, &[], None).unwrap_err()),
        "no-such-session"
    );

    let sid = client.open(2, false, &[vec![1, 2]], &[]).unwrap();
    client.close(sid).unwrap();
    assert_eq!(error_kind(&client.close(sid).unwrap_err()), "closed");
    assert_eq!(
        error_kind(&client.solve(sid, &[], None).unwrap_err()),
        "closed"
    );
    assert_eq!(
        error_kind(&client.add_clauses(sid, &[vec![1]]).unwrap_err()),
        "closed"
    );
    assert_eq!(error_kind(&client.model(sid).unwrap_err()), "no-model");
    drop(client);
    server.join().unwrap();
    daemon.shutdown();
}

#[test]
fn out_of_range_literals_are_typed_on_the_wire() {
    let daemon = test_daemon();
    let (mut client, server) = connect(&daemon);
    let sid = client.open(3, false, &[], &[]).unwrap();
    assert_eq!(
        error_kind(&client.add_clauses(sid, &[vec![1, -9]]).unwrap_err()),
        "var-out-of-range"
    );
    assert_eq!(
        error_kind(&client.solve(sid, &[9], None).unwrap_err()),
        "var-out-of-range"
    );
    drop(client);
    server.join().unwrap();
    daemon.shutdown();
}

#[test]
fn open_with_bad_seed_clauses_does_not_leak_a_session() {
    let daemon = test_daemon();
    let (mut client, server) = connect(&daemon);
    let err = client.open(2, false, &[vec![5]], &[]).unwrap_err();
    assert_eq!(error_kind(&err), "var-out-of-range");
    assert_eq!(
        daemon.status().sessions,
        0,
        "half-open session must be closed"
    );
    drop(client);
    server.join().unwrap();
    daemon.shutdown();
}

#[test]
fn busy_rejection_carries_retry_hint_on_the_wire() {
    let daemon = Daemon::start(DaemonConfig {
        queue_depth: 0,
        retry_after_ms: 123,
        ..DaemonConfig::default()
    });
    let (mut client, server) = connect(&daemon);
    let sid = client.open(2, false, &[vec![1]], &[]).unwrap();
    match client.solve(sid, &[], None).unwrap_err() {
        ClientError::Daemon {
            kind,
            retry_after_ms,
            ..
        } => {
            assert_eq!(kind, "busy");
            assert_eq!(retry_after_ms, Some(123));
        }
        other => panic!("expected busy, got {other}"),
    }
    drop(client);
    server.join().unwrap();
    daemon.shutdown();
}

#[test]
fn shutdown_op_drains_and_ends_the_connection() {
    let daemon = test_daemon();
    let (mut client, server) = connect(&daemon);
    let sid = client.open(2, false, &[vec![1, 2]], &[]).unwrap();
    assert_eq!(client.solve(sid, &[], None).unwrap().verdict, "sat");
    client.shutdown().unwrap();
    server.join().unwrap();
    assert!(daemon.status().draining);
    // The daemon refuses new work; the connection is gone.
    assert!(client.open(1, false, &[], &[]).is_err());
}

#[test]
fn status_reports_counters_on_the_wire() {
    let daemon = test_daemon();
    let (mut client, server) = connect(&daemon);
    let sid = client.open(2, false, &[vec![1]], &[]).unwrap();
    client.solve(sid, &[], None).unwrap();
    let status = client.status().unwrap();
    for key in [
        "sessions",
        "queued",
        "running",
        "memory_bytes",
        "admitted",
        "rejected",
        "evicted",
        "crashed",
        "deadline_exceeded",
        "completed",
    ] {
        assert!(status.get(key).is_some(), "status must report `{key}`");
    }
    assert_eq!(status.get("admitted").and_then(Json::as_u64), Some(1));
    drop(client);
    server.join().unwrap();
    daemon.shutdown();
}
